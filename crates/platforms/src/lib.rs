//! # platforms — analytical GPU and CPU reference models
//!
//! The paper compares against a real NVIDIA GeForce RTX 4090 and a 16-core
//! Intel Xeon Gold 6544Y (§VII). Neither is available here, so this crate
//! substitutes first-order analytical models (see DESIGN.md §2): a
//! roofline of compute throughput vs. memory bandwidth, kernel-launch
//! overhead, *host-to-device transfer of the working set over PCIe* (PUM
//! data is already resident in memory — the standard PUM-vs-GPU
//! methodology and the dominant term for data-intensive kernels), and a
//! utilization-interpolated power model.
//!
//! ```
//! use platforms::PlatformModel;
//! use workloads::WorkProfile;
//!
//! let gpu = PlatformModel::rtx4090();
//! let profile = WorkProfile {
//!     ops_per_elem: 1.0,
//!     bytes_per_elem: 24.0,
//!     kernel_launches: 1,
//!     gpu_efficiency: 0.9,
//!     avg_trip_count: 1.0,
//! };
//! let run = gpu.run(&profile, 1 << 20);
//! assert!(run.time_ns > 0.0 && run.energy_pj > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use workloads::WorkProfile;

/// An analytical conventional-platform model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformModel {
    /// Platform name.
    pub name: &'static str,
    /// Peak arithmetic throughput, operation slots per nanosecond.
    pub peak_ops_per_ns: f64,
    /// Device memory bandwidth, bytes per nanosecond.
    pub mem_bytes_per_ns: f64,
    /// Host→device link bandwidth, bytes per nanosecond (0 disables the
    /// transfer term — e.g. for the CPU, whose data is host-resident).
    pub pcie_bytes_per_ns: f64,
    /// Fixed overhead per kernel launch, nanoseconds.
    pub launch_overhead_ns: f64,
    /// Board/package power when fully utilized, watts.
    pub max_power_w: f64,
    /// Power when memory-bound / lightly utilized, watts.
    pub low_power_w: f64,
    /// Idle power while waiting (host transfers etc.), watts.
    pub idle_power_w: f64,
    /// System energy per byte staged host→device (host DRAM read + link +
    /// device DRAM write, wall-power), pJ/byte.
    pub transfer_pj_per_byte: f64,
}

/// Modeled execution of one workload on a conventional platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformRun {
    /// Total time, nanoseconds.
    pub time_ns: f64,
    /// Host→device transfer component, nanoseconds.
    pub transfer_ns: f64,
    /// Kernel execution component (roofline + launches), nanoseconds.
    pub kernel_ns: f64,
    /// Total energy, picojoules.
    pub energy_pj: f64,
    /// True when the kernel is compute-bound.
    pub compute_bound: bool,
}

impl PlatformModel {
    /// NVIDIA GeForce RTX 4090: ~82.6 TFLOP/s fp32, 1008 GB/s GDDR6X,
    /// PCIe 4.0 x16 (~32 GB/s), 450 W board power.
    pub fn rtx4090() -> Self {
        Self {
            name: "RTX 4090",
            peak_ops_per_ns: 82_600.0,
            mem_bytes_per_ns: 1008.0,
            pcie_bytes_per_ns: 32.0,
            launch_overhead_ns: 4_000.0,
            max_power_w: 450.0,
            low_power_w: 220.0,
            idle_power_w: 55.0,
            transfer_pj_per_byte: 300.0,
        }
    }

    /// 16-core Intel Xeon Gold 6544Y with the paper's Table III host
    /// memory (DDR3L, 64-bit bus): ~1.8 TFLOP/s peak, ~25.6 GB/s.
    pub fn xeon_gold_6544y() -> Self {
        Self {
            name: "Xeon Gold 6544Y",
            peak_ops_per_ns: 1_840.0,
            mem_bytes_per_ns: 25.6,
            pcie_bytes_per_ns: 0.0, // data is host-resident
            launch_overhead_ns: 500.0,
            max_power_w: 270.0,
            low_power_w: 120.0,
            idle_power_w: 40.0,
            transfer_pj_per_byte: 60.0, // host DRAM only
        }
    }

    /// Models a workload of `n` elements with the given profile.
    pub fn run(&self, profile: &WorkProfile, n: u64) -> PlatformRun {
        let n = n as f64;
        let total_ops = n * profile.ops_per_elem;
        let total_bytes = n * profile.bytes_per_elem;
        let compute_ns = total_ops / (self.peak_ops_per_ns * profile.gpu_efficiency.max(1e-3));
        let mem_ns = total_bytes / self.mem_bytes_per_ns;
        let kernel_ns =
            compute_ns.max(mem_ns) + profile.kernel_launches as f64 * self.launch_overhead_ns;
        let transfer_ns =
            if self.pcie_bytes_per_ns > 0.0 { total_bytes / self.pcie_bytes_per_ns } else { 0.0 };
        let time_ns = kernel_ns + transfer_ns;
        let compute_bound = compute_ns > mem_ns;
        // Power: interpolate between memory-bound and compute-bound levels
        // during the kernel; idle draw during host transfers.
        let util = if kernel_ns > 0.0 { (compute_ns / kernel_ns).min(1.0) } else { 0.0 };
        let kernel_power_w = self.low_power_w + (self.max_power_w - self.low_power_w) * util;
        let transfer_energy = if self.pcie_bytes_per_ns > 0.0 {
            total_bytes * self.transfer_pj_per_byte
        } else {
            0.0
        };
        // 1 W = 1000 pJ/ns. Transfers are charged per byte (device-level
        // accounting), not via idle board power.
        let energy_pj = kernel_ns * kernel_power_w * 1000.0 + transfer_energy;
        PlatformRun { time_ns, transfer_ns, kernel_ns, energy_pj, compute_bound }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming_profile() -> WorkProfile {
        WorkProfile {
            ops_per_elem: 1.0,
            bytes_per_elem: 24.0,
            kernel_launches: 1,
            gpu_efficiency: 0.9,
            avg_trip_count: 1.0,
        }
    }

    fn divergent_profile() -> WorkProfile {
        WorkProfile {
            ops_per_elem: 3000.0,
            bytes_per_elem: 16.0,
            kernel_launches: 1,
            gpu_efficiency: 0.3,
            avg_trip_count: 16.0,
        }
    }

    #[test]
    fn streaming_kernels_are_transfer_dominated_on_gpu() {
        let gpu = PlatformModel::rtx4090();
        let run = gpu.run(&streaming_profile(), 1 << 20);
        assert!(!run.compute_bound);
        assert!(
            run.transfer_ns > run.kernel_ns,
            "PCIe staging dominates for data-intensive streaming kernels"
        );
    }

    #[test]
    fn divergent_kernels_are_compute_bound() {
        let gpu = PlatformModel::rtx4090();
        let run = gpu.run(&divergent_profile(), 1 << 20);
        assert!(run.compute_bound);
        // Kernel time takes a much larger share than for streaming work.
        let streaming = gpu.run(&streaming_profile(), 1 << 20);
        assert!(run.kernel_ns / run.time_ns > streaming.kernel_ns / streaming.time_ns);
    }

    #[test]
    fn gpu_always_outperforms_cpu() {
        // The paper omits CPU results "as the GPU always outperforms the
        // CPU"; the models must agree for every evaluated profile shape.
        let gpu = PlatformModel::rtx4090();
        let cpu = PlatformModel::xeon_gold_6544y();
        for kernel in workloads::all_kernels() {
            let p = kernel.profile();
            let n = 1 << 22;
            let g = gpu.run(&p, n);
            let c = cpu.run(&p, n);
            assert!(
                g.time_ns < c.time_ns,
                "{}: GPU {} ns vs CPU {} ns",
                kernel.name(),
                g.time_ns,
                c.time_ns
            );
        }
    }

    #[test]
    fn energy_scales_with_time_and_utilization() {
        let gpu = PlatformModel::rtx4090();
        let small = gpu.run(&streaming_profile(), 1 << 16);
        let large = gpu.run(&streaming_profile(), 1 << 22);
        assert!(large.energy_pj > small.energy_pj);
        // A compute-bound run burns closer to max power per ns.
        let hot = gpu.run(&divergent_profile(), 1 << 20);
        let hot_w = hot.energy_pj / hot.time_ns;
        let cold_w = large.energy_pj / large.time_ns;
        assert!(hot_w > cold_w);
    }

    #[test]
    fn launch_overhead_visible_for_tiny_problems() {
        let gpu = PlatformModel::rtx4090();
        let run = gpu.run(&streaming_profile(), 16);
        assert!(run.kernel_ns >= gpu.launch_overhead_ns);
    }
}
