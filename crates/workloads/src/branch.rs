//! The five *branch-focused* kernels: per-lane data-driven branches,
//! including the multiply-nested case the paper's group description calls
//! out.

use crate::kernel::{KernelGroup, WorkProfile};
use crate::lane::{const_reg, rand_reg, LaneKernel};
use ezpim::Cond;
use mpu_isa::RegId;

fn r(i: u16) -> RegId {
    RegId(i)
}

/// `threshold`: binarize against a broadcast threshold.
pub fn threshold() -> LaneKernel {
    LaneKernel {
        name: "threshold",
        group: KernelGroup::Branch,
        profile: WorkProfile {
            ops_per_elem: 2.0,
            bytes_per_elem: 17.0,
            kernel_launches: 1,
            gpu_efficiency: 0.5,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| vec![rand_reg(0, seed, lanes, 1 << 32), const_reg(1, 1 << 31, lanes)],
        body: |b| {
            b.if_else(
                Cond::Gt(r(0), r(1)),
                |b| {
                    b.init1(r(2));
                },
                |b| {
                    b.init0(r(2));
                },
            );
        },
        reference: |regs| regs[2] = u64::from(regs[0] > regs[1]),
        outputs: &[2],
        regs_per_elem: 2,
    }
}

/// `clamp`: clip values into `[lo, hi]` with two sequential branches.
pub fn clamp() -> LaneKernel {
    LaneKernel {
        name: "clamp",
        group: KernelGroup::Branch,
        profile: WorkProfile {
            ops_per_elem: 4.0,
            bytes_per_elem: 17.0,
            kernel_launches: 1,
            gpu_efficiency: 0.5,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            vec![
                rand_reg(0, seed, lanes, 1 << 20),
                const_reg(1, 3 << 18, lanes), // hi
                const_reg(2, 1 << 18, lanes), // lo
            ]
        },
        body: |b| {
            b.mov(r(0), r(4));
            b.if_then(Cond::Gt(r(4), r(1)), |b| {
                b.mov(r(1), r(4));
            });
            b.if_then(Cond::Lt(r(4), r(2)), |b| {
                b.mov(r(2), r(4));
            });
        },
        reference: |regs| regs[4] = regs[0].clamp(regs[2], regs[1]),
        outputs: &[4],
        regs_per_elem: 2,
    }
}

/// `absdiff`: `|a - b|` via a data-driven if/else.
pub fn absdiff() -> LaneKernel {
    LaneKernel {
        name: "absdiff",
        group: KernelGroup::Branch,
        profile: WorkProfile {
            ops_per_elem: 3.0,
            bytes_per_elem: 24.0,
            kernel_launches: 1,
            gpu_efficiency: 0.5,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            vec![rand_reg(0, seed, lanes, u64::MAX), rand_reg(1, seed ^ 7, lanes, u64::MAX)]
        },
        body: |b| {
            b.if_else(
                Cond::Gt(r(0), r(1)),
                |b| {
                    b.sub(r(0), r(1), r(2));
                },
                |b| {
                    b.sub(r(1), r(0), r(2));
                },
            );
        },
        reference: |regs| regs[2] = regs[0].abs_diff(regs[1]),
        outputs: &[2],
        regs_per_elem: 3,
    }
}

/// `quantize`: bucket values into four bins with *nested* branches.
pub fn quantize() -> LaneKernel {
    LaneKernel {
        name: "quantize",
        group: KernelGroup::Branch,
        profile: WorkProfile {
            ops_per_elem: 6.0,
            bytes_per_elem: 17.0,
            kernel_launches: 1,
            gpu_efficiency: 0.35,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            vec![
                rand_reg(0, seed, lanes, 4096),
                const_reg(1, 1024, lanes),
                const_reg(2, 2048, lanes),
                const_reg(3, 3072, lanes),
            ]
        },
        body: |b| {
            b.if_else(
                Cond::Lt(r(0), r(2)),
                |b| {
                    b.if_else(
                        Cond::Lt(r(0), r(1)),
                        |b| {
                            b.init0(r(4));
                        },
                        |b| {
                            b.init1(r(4));
                        },
                    );
                },
                |b| {
                    b.if_else(
                        Cond::Lt(r(0), r(3)),
                        |b| {
                            b.init1(r(4));
                            b.lshift(r(4), r(4));
                        },
                        |b| {
                            b.init1(r(4));
                            b.lshift(r(4), r(4));
                            b.inc(r(4), r(4));
                        },
                    );
                },
            );
        },
        reference: |regs| {
            regs[4] = match regs[0] {
                x if x < 1024 => 0,
                x if x < 2048 => 1,
                x if x < 3072 => 2,
                _ => 3,
            };
        },
        outputs: &[4],
        regs_per_elem: 2,
    }
}

/// `mux-blend`: bitwise select between two streams by a mask stream.
pub fn muxblend() -> LaneKernel {
    LaneKernel {
        name: "mux-blend",
        group: KernelGroup::Branch,
        profile: WorkProfile {
            ops_per_elem: 3.0,
            bytes_per_elem: 32.0,
            kernel_launches: 1,
            gpu_efficiency: 0.6,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            vec![
                rand_reg(0, seed, lanes, u64::MAX),
                rand_reg(1, seed ^ 9, lanes, u64::MAX),
                rand_reg(2, seed ^ 11, lanes, u64::MAX),
            ]
        },
        body: |b| {
            b.mux(r(0), r(1), r(2));
        },
        reference: |regs| regs[2] = (regs[2] & regs[0]) | (!regs[2] & regs[1]),
        outputs: &[2],
        regs_per_elem: 4,
    }
}
