//! The five *stencil* kernels. Neighbor vectors are staged as shifted
//! copies (the natural PUM stencil layout); the in-program transfer
//! ensemble charges the staging cost. Baseline datapaths instead pay the
//! paper's ≈4× Toeplitz/mat-mul footprint inflation (see
//! [`crate::Kernel::baseline_footprint`]).

use crate::kernel::{KernelGroup, WorkProfile};
use crate::lane::{shifted_regs, LaneKernel};
use mpu_isa::RegId;

fn r(i: u16) -> RegId {
    RegId(i)
}

/// Logical row width for the 2-D stencils (lanes index a W-wide image).
pub const STENCIL_W: i64 = 8;

/// `jacobi1d`: 3-point average `(x[i-1] + x[i] + x[i+1]) / 3`.
pub fn jacobi1d() -> LaneKernel {
    LaneKernel {
        name: "jacobi1d",
        group: KernelGroup::Stencil,
        profile: WorkProfile {
            ops_per_elem: 4.0,
            bytes_per_elem: 16.0,
            kernel_launches: 1,
            gpu_efficiency: 0.8,
            avg_trip_count: 1.0,
        },
        staged: true,
        gen: |seed, lanes| {
            let mut regs = shifted_regs(0, seed, lanes, &[-1, 0, 1], 1 << 30);
            regs.push((3, vec![3; lanes]));
            regs
        },
        body: |b| {
            b.add(r(0), r(1), r(4));
            b.add(r(4), r(2), r(4));
            b.qdiv(r(4), r(3), r(5));
        },
        reference: |regs| {
            regs[5] = (regs[0].wrapping_add(regs[1]).wrapping_add(regs[2])) / 3;
        },
        outputs: &[5],
        regs_per_elem: 2,
    }
}

/// `gaussian`: 5-tap binomial blur `(x₋₂ + 4x₋₁ + 6x₀ + 4x₁ + x₂) / 16`.
pub fn gaussian() -> LaneKernel {
    LaneKernel {
        name: "gaussian",
        group: KernelGroup::Stencil,
        profile: WorkProfile {
            ops_per_elem: 9.0,
            bytes_per_elem: 16.0,
            kernel_launches: 1,
            gpu_efficiency: 0.8,
            avg_trip_count: 1.0,
        },
        staged: true,
        gen: |seed, lanes| {
            let mut regs = shifted_regs(0, seed, lanes, &[-2, -1, 0, 1, 2], 1 << 27);
            regs.push((9, vec![16; lanes]));
            regs
        },
        body: |b| {
            b.add(r(0), r(4), r(5)); // outer taps
            b.add(r(1), r(3), r(6)); // inner taps
            b.lshift(r(6), r(6));
            b.lshift(r(6), r(6)); // ×4
            b.add(r(5), r(6), r(5));
            b.mov(r(2), r(7));
            b.lshift(r(7), r(7)); // 2×center
            b.mov(r(7), r(6));
            b.lshift(r(6), r(6)); // 4×center
            b.add(r(7), r(6), r(7)); // 6×center
            b.add(r(5), r(7), r(5));
            b.qdiv(r(5), r(9), r(8));
        },
        reference: |regs| {
            let sum = regs[0]
                .wrapping_add(4 * regs[1])
                .wrapping_add(6 * regs[2])
                .wrapping_add(4 * regs[3])
                .wrapping_add(regs[4]);
            regs[8] = sum / 16;
        },
        outputs: &[8],
        regs_per_elem: 2,
    }
}

/// `jacobi2d`: 5-point average over N/S/E/W/center.
pub fn jacobi2d() -> LaneKernel {
    LaneKernel {
        name: "jacobi2d",
        group: KernelGroup::Stencil,
        profile: WorkProfile {
            ops_per_elem: 6.0,
            bytes_per_elem: 16.0,
            kernel_launches: 1,
            gpu_efficiency: 0.75,
            avg_trip_count: 1.0,
        },
        staged: true,
        gen: |seed, lanes| {
            let mut regs =
                shifted_regs(0, seed, lanes, &[-STENCIL_W, STENCIL_W, -1, 1, 0], 1 << 29);
            regs.push((5, vec![5; lanes]));
            regs
        },
        body: |b| {
            b.add(r(0), r(1), r(6));
            b.add(r(6), r(2), r(6));
            b.add(r(6), r(3), r(6));
            b.add(r(6), r(4), r(6));
            b.qdiv(r(6), r(5), r(7));
        },
        reference: |regs| {
            let sum = regs[0]
                .wrapping_add(regs[1])
                .wrapping_add(regs[2])
                .wrapping_add(regs[3])
                .wrapping_add(regs[4]);
            regs[7] = sum / 5;
        },
        outputs: &[7],
        regs_per_elem: 2,
    }
}

/// `conv3x3`: 3×3 binomial convolution (corners + 2·edges + 4·center)/16.
pub fn conv3x3() -> LaneKernel {
    LaneKernel {
        name: "conv3x3",
        group: KernelGroup::Stencil,
        profile: WorkProfile {
            ops_per_elem: 15.0,
            bytes_per_elem: 16.0,
            kernel_launches: 1,
            gpu_efficiency: 0.75,
            avg_trip_count: 1.0,
        },
        staged: true,
        gen: |seed, lanes| {
            let w = STENCIL_W;
            // r0..r8: NW N NE W C E SW S SE
            shifted_regs(0, seed, lanes, &[-w - 1, -w, -w + 1, -1, 0, 1, w - 1, w, w + 1], 1 << 26)
        },
        body: |b| {
            // Edges ×2 in r9.
            b.add(r(1), r(3), r(9));
            b.add(r(9), r(5), r(9));
            b.add(r(9), r(7), r(9));
            b.lshift(r(9), r(9));
            // Corners in r10.
            b.add(r(0), r(2), r(10));
            b.add(r(10), r(6), r(10));
            b.add(r(10), r(8), r(10));
            b.add(r(9), r(10), r(9));
            // Center ×4.
            b.mov(r(4), r(10));
            b.lshift(r(10), r(10));
            b.lshift(r(10), r(10));
            b.add(r(9), r(10), r(9));
            // Normalize by 16.
            b.init1(r(10));
            b.repeat(4, |b| {
                b.lshift(r(10), r(10));
            });
            b.qdiv(r(9), r(10), r(11));
        },
        reference: |regs| {
            let corners = regs[0] + regs[2] + regs[6] + regs[8];
            let edges = regs[1] + regs[3] + regs[5] + regs[7];
            regs[11] = (corners + 2 * edges + 4 * regs[4]) / 16;
        },
        outputs: &[11],
        regs_per_elem: 2,
    }
}

/// `sobel`: gradient magnitude `|gx| + |gy|` with 3×3 Sobel taps.
pub fn sobel() -> LaneKernel {
    LaneKernel {
        name: "sobel",
        group: KernelGroup::Stencil,
        profile: WorkProfile {
            ops_per_elem: 20.0,
            bytes_per_elem: 16.0,
            kernel_launches: 1,
            gpu_efficiency: 0.7,
            avg_trip_count: 1.0,
        },
        staged: true,
        gen: |seed, lanes| {
            let w = STENCIL_W;
            shifted_regs(0, seed, lanes, &[-w - 1, -w, -w + 1, -1, 0, 1, w - 1, w, w + 1], 1 << 24)
        },
        body: |b| {
            // gx: (NE + 2E + SE) - (NW + 2W + SW), as |max-min|.
            b.mov(r(5), r(9));
            b.lshift(r(9), r(9));
            b.add(r(9), r(2), r(9));
            b.add(r(9), r(8), r(9));
            b.mov(r(3), r(10));
            b.lshift(r(10), r(10));
            b.add(r(10), r(0), r(10));
            b.add(r(10), r(6), r(10));
            b.max(r(9), r(10), r(11));
            b.min(r(9), r(10), r(12));
            b.sub(r(11), r(12), r(11)); // |gx|
                                        // gy: (SW + 2S + SE) - (NW + 2N + NE).
            b.mov(r(7), r(9));
            b.lshift(r(9), r(9));
            b.add(r(9), r(6), r(9));
            b.add(r(9), r(8), r(9));
            b.mov(r(1), r(10));
            b.lshift(r(10), r(10));
            b.add(r(10), r(0), r(10));
            b.add(r(10), r(2), r(10));
            b.max(r(9), r(10), r(12));
            b.min(r(9), r(10), r(13));
            b.sub(r(12), r(13), r(12)); // |gy|
            b.add(r(11), r(12), r(13));
        },
        reference: |regs| {
            let gxp = 2 * regs[5] + regs[2] + regs[8];
            let gxm = 2 * regs[3] + regs[0] + regs[6];
            let gyp = 2 * regs[7] + regs[6] + regs[8];
            let gym = 2 * regs[1] + regs[0] + regs[2];
            regs[13] = gxp.abs_diff(gxm) + gyp.abs_diff(gym);
        },
        outputs: &[13],
        regs_per_elem: 2,
    }
}
