//! `histogram`: privatized per-lane bins with a log-depth cross-member
//! tree merge — the PrIM HST-S pattern.
//!
//! Phase 1 bins three elements per lane into four private bins (bin =
//! `value & 3`), entirely predicated, so every lane of every member owns
//! a private histogram. Phase 2 merges the privatized bins with a
//! log-depth binary tree across ensemble members: each round DTC-copies
//! the source member's bins into scratch registers of the destination
//! member (the element registers, dead after binning) and adds them in.
//! Member 0's bins end up holding the per-lane totals over all members,
//! which is what the harness verifies against the oracle.

use crate::kernel::{BuiltKernel, Kernel, KernelGroup, WorkProfile};
use crate::lane::{member_seed, rand_reg};
use ezpim::{Cond, EzProgram};
use mpu_isa::RegId;
use pum_backend::Geometry;

/// Elements binned per lane per member.
const ELEMS: usize = 3;
/// Number of histogram bins (bin index = `value & 3`).
const BINS: usize = 4;

fn bin(k: usize) -> RegId {
    RegId(3 + k as u16)
}

/// Scratch registers for the merge phase: the element registers and the
/// masked-value temp, all dead once binning is done.
const TMP: [RegId; BINS] = [RegId(0), RegId(1), RegId(2), RegId(8)];

/// The histogram kernel (see module docs).
pub struct Histogram;

/// Constructs the `histogram` kernel.
pub fn histogram() -> Histogram {
    Histogram
}

impl Kernel for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn group(&self) -> KernelGroup {
        KernelGroup::Prim
    }

    fn regs_per_elem(&self) -> u32 {
        1
    }

    fn profile(&self) -> WorkProfile {
        WorkProfile {
            ops_per_elem: 3.0,
            bytes_per_elem: 8.5,
            kernel_launches: 1,
            // GPU histograms bottleneck on atomics contention.
            gpu_efficiency: 0.2,
            avg_trip_count: 1.0,
        }
    }

    fn build(&self, geometry: &Geometry, members: &[(u16, u16)], seed: u64) -> BuiltKernel {
        let lanes = geometry.lanes_per_vrf;
        let mut ez = EzProgram::new();

        // Phase 1: private binning. r7 holds the broadcast bin mask (3),
        // r8 the masked value, r9 a bin cursor compared against r8.
        ez.ensemble(members, |b| {
            for k in 0..BINS {
                b.init0(bin(k));
            }
            for e in 0..ELEMS {
                b.and(RegId(e as u16), RegId(7), RegId(8));
                b.init0(RegId(9));
                for k in 0..BINS {
                    b.if_then(Cond::Eq(RegId(8), RegId(9)), |b| {
                        b.inc(bin(k), bin(k));
                    });
                    b.inc(RegId(9), RegId(9));
                }
            }
        })
        .expect("histogram binning phase must build");

        // Phase 2: log-depth tree merge. One transfer block is emitted
        // per distinct (src_vrf, dst_vrf) pair because a block shares its
        // memcpy list across all of its rfh pairs.
        let mut gap = 1;
        while gap < members.len() {
            // (src_vrf, dst_vrf) -> list of (src_rfh, dst_rfh) memcpy pairs.
            type VrfMoves = Vec<((u16, u16), Vec<(u16, u16)>)>;
            let mut moves: VrfMoves = Vec::new();
            let mut dsts: Vec<(u16, u16)> = Vec::new();
            let mut i = 0;
            while i + gap < members.len() {
                let (src_rfh, src_vrf) = members[i + gap];
                let (dst_rfh, dst_vrf) = members[i];
                match moves.iter_mut().find(|(vrfs, _)| *vrfs == (src_vrf, dst_vrf)) {
                    Some((_, pairs)) => pairs.push((src_rfh, dst_rfh)),
                    None => moves.push(((src_vrf, dst_vrf), vec![(src_rfh, dst_rfh)])),
                }
                dsts.push(members[i]);
                i += 2 * gap;
            }
            for ((src_vrf, dst_vrf), pairs) in &moves {
                ez.transfer(pairs, |t| {
                    for (k, &tmp) in TMP.iter().enumerate() {
                        t.memcpy(*src_vrf, bin(k), *dst_vrf, tmp);
                    }
                });
            }
            ez.ensemble(&dsts, |b| {
                for (k, &tmp) in TMP.iter().enumerate() {
                    b.add(tmp, bin(k), bin(k));
                }
            })
            .expect("histogram merge phase must build");
            gap *= 2;
        }
        let program = ez.assemble().expect("histogram must assemble");

        // Oracle: per-lane bin totals summed across members (lane L of
        // member 0 accumulates lane L of every member).
        let mut inputs = Vec::new();
        let mut totals = vec![[0u64; BINS]; lanes];
        for (mi, &(rfh, vrf)) in members.iter().enumerate() {
            let mseed = member_seed(seed, mi);
            for e in 0..ELEMS {
                let (reg, values) = rand_reg(e as u8, mseed, lanes, u64::MAX);
                for (lane, &v) in values.iter().enumerate() {
                    totals[lane][(v & 3) as usize] += 1;
                }
                inputs.push(((rfh, vrf, reg), values));
            }
            inputs.push(((rfh, vrf, 7), vec![(BINS - 1) as u64; lanes]));
        }
        let (rfh0, vrf0) = members[0];
        let outputs: Vec<_> = (0..BINS).map(|k| (rfh0, vrf0, 3 + k as u8)).collect();
        let expected: Vec<Vec<u64>> =
            (0..BINS).map(|k| totals.iter().map(|t| t[k]).collect()).collect();

        BuiltKernel {
            program,
            members: members.to_vec(),
            inputs,
            outputs,
            expected,
            ezpim_statements: ez.statements(),
        }
    }
}
