//! `gather` and `scatter`: indexed reads and writes over a per-lane
//! 4-entry window, the PrIM GAS pattern expressed as predicated
//! compare-select sweeps (PUM datapaths have no indexed addressing; a
//! gather/scatter is a cursor sweep with one predicated move per slot).
//!
//! Index 4 is out of range by construction: a gather miss yields 0 and a
//! scatter to index 4 is dropped. Duplicate scatter indices resolve by
//! **last-writer-wins in pair order** — pair 1's predicated move is
//! emitted after pair 0's inside each cursor step, so when both pairs
//! target the same slot, pair 1's value lands. The oracle encodes the
//! same order.

use crate::kernel::WorkProfile;
use crate::lane::{const_reg, rand_reg, LaneKernel, MemberInputs};
use crate::prim::mix;
use crate::KernelGroup;
use ezpim::Cond;
use mpu_isa::RegId;

/// Table / slot window size.
const SLOTS: usize = 4;

fn r(i: u16) -> RegId {
    RegId(i)
}

fn gather_gen(seed: u64, lanes: usize) -> MemberInputs {
    let mut regs: Vec<(u8, Vec<u64>)> = (0..SLOTS)
        .map(|k| const_reg(k as u8, mix(seed, k as u64), lanes)) // broadcast table
        .collect();
    regs.push(rand_reg(4, seed, lanes, SLOTS as u64 + 1)); // idx0, SLOTS = miss
    regs.push(rand_reg(5, seed, lanes, SLOTS as u64 + 1)); // idx1
    regs
}

/// Constructs the `gather` kernel: broadcast table in r0–r3, two indices
/// in r4/r5, gathered results in r6/r7, cursor in r8.
pub fn gather() -> LaneKernel {
    LaneKernel {
        name: "gather",
        group: KernelGroup::Prim,
        profile: WorkProfile {
            ops_per_elem: 2.0,
            bytes_per_elem: 24.0,
            kernel_launches: 1,
            gpu_efficiency: 0.3,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: gather_gen,
        body: |b| {
            b.init0(r(6));
            b.init0(r(7));
            b.init0(r(8));
            for k in 0..SLOTS as u16 {
                b.if_then(Cond::Eq(r(4), r(8)), |b| {
                    b.mov(r(k), r(6));
                });
                b.if_then(Cond::Eq(r(5), r(8)), |b| {
                    b.mov(r(k), r(7));
                });
                b.inc(r(8), r(8));
            }
        },
        reference: |regs| {
            let (idx0, idx1) = (regs[4] as usize, regs[5] as usize);
            regs[6] = if idx0 < SLOTS { regs[idx0] } else { 0 };
            regs[7] = if idx1 < SLOTS { regs[idx1] } else { 0 };
        },
        outputs: &[6, 7],
        regs_per_elem: 2,
    }
}

fn scatter_gen(seed: u64, lanes: usize) -> MemberInputs {
    vec![
        rand_reg(4, seed, lanes, 1 << 32),          // v0
        rand_reg(5, seed, lanes, SLOTS as u64 + 1), // i0, SLOTS = dropped
        rand_reg(6, seed, lanes, 1 << 32),          // v1
        rand_reg(7, seed, lanes, SLOTS as u64 + 1), // i1
    ]
}

/// `scatter` variant generator forcing `i0 == i1` on every lane, so the
/// documented last-writer-wins resolution is exercised on every lane
/// (used by the differential tests, not registered in the sweep).
fn scatter_dup_gen(seed: u64, lanes: usize) -> MemberInputs {
    let mut regs = scatter_gen(seed, lanes);
    let dup = regs[1].1.clone();
    regs[3].1 = dup;
    regs
}

fn scatter_body(b: &mut ezpim::Body<'_>) {
    for k in 0..SLOTS as u16 {
        b.init0(r(k));
    }
    b.init0(r(8));
    for k in 0..SLOTS as u16 {
        b.if_then(Cond::Eq(r(5), r(8)), |b| {
            b.mov(r(4), r(k));
        });
        // Pair 1 after pair 0: duplicate indices resolve last-writer-wins.
        b.if_then(Cond::Eq(r(7), r(8)), |b| {
            b.mov(r(6), r(k));
        });
        b.inc(r(8), r(8));
    }
}

fn scatter_reference(regs: &mut [u64; crate::lane::REGS]) {
    let (v0, i0, v1, i1) = (regs[4], regs[5] as usize, regs[6], regs[7] as usize);
    for slot in regs.iter_mut().take(SLOTS) {
        *slot = 0;
    }
    if i0 < SLOTS {
        regs[i0] = v0;
    }
    if i1 < SLOTS {
        regs[i1] = v1; // last writer wins
    }
}

fn scatter_kernel(name: &'static str, gen: fn(u64, usize) -> MemberInputs) -> LaneKernel {
    LaneKernel {
        name,
        group: KernelGroup::Prim,
        profile: WorkProfile {
            ops_per_elem: 2.0,
            bytes_per_elem: 24.0,
            kernel_launches: 1,
            gpu_efficiency: 0.3,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen,
        body: scatter_body,
        reference: scatter_reference,
        outputs: &[0, 1, 2, 3],
        regs_per_elem: 2,
    }
}

/// Constructs the `scatter` kernel: slots r0–r3 (zeroed in-program), two
/// (value, index) pairs in r4–r7, cursor in r8.
pub fn scatter() -> LaneKernel {
    scatter_kernel("scatter", scatter_gen)
}

/// The duplicate-index `scatter` variant (every lane has `i0 == i1`).
pub fn scatter_dup() -> LaneKernel {
    scatter_kernel("scatter-dup", scatter_dup_gen)
}
