//! `spmv`: sparse matrix–vector multiply over CSR, one row per lane.
//!
//! The generator builds a CSR matrix host-side (random row lengths
//! including empty rows, random columns including duplicates), performs
//! the DTC gather of `x[col_idx[..]]` — exactly the host staging step a
//! PIM SpMV performs — and ELL-pads every row to width 4 with explicit
//! zeros so the on-chip program is a uniform 4-term multiply-accumulate.

use crate::kernel::WorkProfile;
use crate::lane::{LaneKernel, MemberInputs};
use crate::KernelGroup;
use mpu_isa::RegId;
use pum_backend::semantics;

/// ELL padding width: the maximum nonzeros per row.
const WIDTH: usize = 4;
/// Columns in the (implicit) sparse matrix / length of the dense vector.
const COLS: usize = 64;

fn r(i: u16) -> RegId {
    RegId(i)
}

fn gen(seed: u64, lanes: usize) -> MemberInputs {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5045_4d53_504d_5621);
    let x: Vec<u64> = (0..COLS).map(|_| rng.random_range(0..1u64 << 32)).collect();
    let mut regs: Vec<(u8, Vec<u64>)> =
        (0..2 * WIDTH).map(|reg| (reg as u8, vec![0u64; lanes])).collect();
    for lane in 0..lanes {
        // One CSR row per lane. Duplicate columns are allowed (their
        // products simply both accumulate), and nnz == 0 keeps the row
        // all-padding: y stays 0.
        let nnz = rng.random_range(0..=WIDTH);
        for k in 0..nnz {
            let col = rng.random_range(0..COLS);
            regs[k].1[lane] = rng.random_range(0..1u64 << 32);
            regs[WIDTH + k].1[lane] = x[col];
        }
    }
    regs
}

/// Constructs the `spmv` kernel: vals in r0–r3, gathered x in r4–r7,
/// y accumulated in r8.
pub fn spmv() -> LaneKernel {
    LaneKernel {
        name: "spmv",
        group: KernelGroup::Prim,
        profile: WorkProfile {
            ops_per_elem: 2.0,
            bytes_per_elem: 20.0,
            kernel_launches: 1,
            // Irregular gathers keep GPU SpMV far from peak.
            gpu_efficiency: 0.25,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen,
        body: |b| {
            b.init0(r(8));
            for k in 0..WIDTH as u16 {
                b.mac(r(k), r(WIDTH as u16 + k), r(8));
            }
        },
        reference: |regs| {
            let mut y = 0u64;
            for k in 0..WIDTH {
                y = y.wrapping_add(semantics::mul32(regs[k], regs[WIDTH + k]));
            }
            regs[8] = y;
        },
        outputs: &[8],
        regs_per_elem: 2,
    }
}
