//! `prefix-scan`: per-lane inclusive prefix sum over an 8-element
//! segment, computed in-place with log-depth Hillis–Steele rounds — the
//! in-register half of the PrIM SCAN-SSA pattern (the `dpapi` frontend
//! adds the cross-lane offset pass as a second launch).
//!
//! Each round `d ∈ {1, 2, 4}` runs `r[i] += r[i-d]` with `i` descending
//! so every read observes the previous round's values; after the last
//! round `r[i]` holds the inclusive prefix over `r[0..=i]` (wrapping).

use crate::kernel::WorkProfile;
use crate::lane::{rand_reg, LaneKernel, MemberInputs};
use crate::KernelGroup;
use mpu_isa::RegId;

/// Segment length: one scan segment per lane, one element per register.
const SEG: usize = 8;

fn r(i: u16) -> RegId {
    RegId(i)
}

fn gen(seed: u64, lanes: usize) -> MemberInputs {
    (0..SEG).map(|i| rand_reg(i as u8, seed, lanes, u64::MAX)).collect()
}

/// Constructs the `prefix-scan` kernel: segment in r0–r7, scanned
/// in-place.
pub fn prefixscan() -> LaneKernel {
    LaneKernel {
        name: "prefix-scan",
        group: KernelGroup::Prim,
        profile: WorkProfile {
            ops_per_elem: 2.0,
            bytes_per_elem: 16.0,
            // GPU scans are two-launch (block scan + offset fixup).
            kernel_launches: 2,
            gpu_efficiency: 0.5,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen,
        body: |b| {
            let mut d = 1;
            while d < SEG {
                for i in (d..SEG).rev() {
                    b.add(r((i - d) as u16), r(i as u16), r(i as u16));
                }
                d *= 2;
            }
        },
        reference: |regs| {
            let mut running = 0u64;
            for slot in regs.iter_mut().take(SEG) {
                running = running.wrapping_add(*slot);
                *slot = running;
            }
        },
        outputs: &[0, 1, 2, 3, 4, 5, 6, 7],
        regs_per_elem: 1,
    }
}
