//! `select` and `hash-join`: the two columnar database staples of the
//! PrIM suite, expressed as predicated per-lane filters.
//!
//! `select` emits a keep-flag column plus the masked value column (the
//! host compacts survivors at readback — the same contract the `dpapi`
//! frontend uses for `filter`). `hash-join` probes a host-built 3-slot
//! hash table broadcast as constants; build keys are distinct by
//! construction, so at most one slot matches.

use crate::kernel::gen_values;
use crate::kernel::WorkProfile;
use crate::lane::{const_reg, rand_reg, LaneKernel, MemberInputs};
use crate::prim::mix;
use crate::KernelGroup;
use ezpim::Cond;
use mpu_isa::RegId;

/// Hash-table slots for the join build side.
const BUILD: usize = 3;

fn r(i: u16) -> RegId {
    RegId(i)
}

fn select_gen(seed: u64, lanes: usize) -> MemberInputs {
    vec![
        rand_reg(0, seed, lanes, u64::MAX),
        // Broadcast threshold drawn from the full range, so selectivity
        // varies freely with the seed.
        const_reg(1, mix(seed, 0x5e1e), lanes),
    ]
}

/// `select` variant with an always-false predicate (threshold
/// `u64::MAX`), for the all-false filter edge case in the differential
/// tests; not registered in the sweep.
fn select_none_gen(seed: u64, lanes: usize) -> MemberInputs {
    vec![rand_reg(0, seed, lanes, u64::MAX), const_reg(1, u64::MAX, lanes)]
}

fn select_kernel(name: &'static str, gen: fn(u64, usize) -> MemberInputs) -> LaneKernel {
    LaneKernel {
        name,
        group: KernelGroup::Prim,
        profile: WorkProfile {
            ops_per_elem: 2.0,
            bytes_per_elem: 17.0,
            kernel_launches: 1,
            gpu_efficiency: 0.4,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen,
        body: |b| {
            b.init0(r(2));
            b.init0(r(3));
            b.if_then(Cond::Gt(r(0), r(1)), |b| {
                b.init1(r(2));
                b.mov(r(0), r(3));
            });
        },
        reference: |regs| {
            regs[2] = u64::from(regs[0] > regs[1]);
            regs[3] = if regs[0] > regs[1] { regs[0] } else { 0 };
        },
        outputs: &[2, 3],
        regs_per_elem: 1,
    }
}

/// Constructs the `select` kernel: value r0, broadcast threshold r1,
/// keep-flag r2, masked value r3.
pub fn select() -> LaneKernel {
    select_kernel("select", select_gen)
}

/// The all-false `select` variant (nothing survives the predicate).
pub fn select_none() -> LaneKernel {
    select_kernel("select-none", select_none_gen)
}

/// Build-side key for slot `j`: distinct by construction (low nibble
/// encodes the slot; probe misses force low nibble 0xF).
fn key(seed: u64, j: u64) -> u64 {
    (mix(seed, 100 + j) & !0xF) | j
}

fn hashjoin_gen(seed: u64, lanes: usize) -> MemberInputs {
    let mut regs: Vec<(u8, Vec<u64>)> = Vec::new();
    for j in 0..BUILD as u64 {
        regs.push(const_reg(j as u8, key(seed, j), lanes));
        regs.push(const_reg(BUILD as u8 + j as u8, mix(seed, 200 + j), lanes));
    }
    // Probe column: roughly half the lanes hit one of the build keys,
    // the rest miss (low nibble forced past every slot tag).
    let sel = gen_values(seed ^ 0xab1e, lanes, 2 * BUILD as u64);
    let noise = gen_values(seed ^ 0x1dea, lanes, u64::MAX);
    let probe = (0..lanes)
        .map(|l| if sel[l] < BUILD as u64 { key(seed, sel[l]) } else { noise[l] | 0xF })
        .collect();
    regs.push((2 * BUILD as u8, probe));
    regs
}

/// Constructs the `hash-join` kernel: build keys r0–r2, build values
/// r3–r5 (broadcast), probe key r6, joined value r7, match flag r8.
pub fn hashjoin() -> LaneKernel {
    LaneKernel {
        name: "hash-join",
        group: KernelGroup::Prim,
        profile: WorkProfile {
            ops_per_elem: 4.0,
            bytes_per_elem: 25.0,
            kernel_launches: 1,
            gpu_efficiency: 0.25,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: hashjoin_gen,
        body: |b| {
            b.init0(r(7));
            b.init0(r(8));
            for j in 0..BUILD as u16 {
                b.if_then(Cond::Eq(r(2 * BUILD as u16), r(j)), |b| {
                    b.mov(r(BUILD as u16 + j), r(7));
                    b.init1(r(8));
                });
            }
        },
        reference: |regs| {
            let probe = regs[2 * BUILD];
            regs[2 * BUILD + 1] = 0;
            regs[2 * BUILD + 2] = 0;
            for j in 0..BUILD {
                if probe == regs[j] {
                    regs[2 * BUILD + 1] = regs[BUILD + j];
                    regs[2 * BUILD + 2] = 1;
                }
            }
        },
        outputs: &[7, 8],
        regs_per_elem: 2,
    }
}
