//! The six *basic* kernels: data-parallel arithmetic the original RACER
//! datapath can already execute without CPU/MPU support.

use crate::kernel::{KernelGroup, WorkProfile};
use crate::lane::{const_reg, rand_reg, LaneKernel};
use mpu_isa::RegId;
use pum_backend::semantics;

fn r(i: u16) -> RegId {
    RegId(i)
}

/// `vecadd`: element-wise 64-bit addition.
pub fn vecadd() -> LaneKernel {
    LaneKernel {
        name: "vecadd",
        group: KernelGroup::Basic,
        profile: WorkProfile {
            ops_per_elem: 1.0,
            bytes_per_elem: 24.0,
            kernel_launches: 1,
            gpu_efficiency: 0.85,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            vec![rand_reg(0, seed, lanes, u64::MAX), rand_reg(1, seed ^ 1, lanes, u64::MAX)]
        },
        body: |b| {
            b.add(r(0), r(1), r(2));
        },
        reference: |regs| regs[2] = regs[0].wrapping_add(regs[1]),
        outputs: &[2],
        regs_per_elem: 3,
    }
}

/// `vecmul`: element-wise multiply (32-bit inputs, 64-bit product).
pub fn vecmul() -> LaneKernel {
    LaneKernel {
        name: "vecmul",
        group: KernelGroup::Basic,
        profile: WorkProfile {
            ops_per_elem: 1.0,
            bytes_per_elem: 24.0,
            kernel_launches: 1,
            gpu_efficiency: 0.85,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            vec![rand_reg(0, seed, lanes, 1 << 32), rand_reg(1, seed ^ 1, lanes, 1 << 32)]
        },
        body: |b| {
            b.mul(r(0), r(1), r(2));
        },
        reference: |regs| regs[2] = semantics::mul32(regs[0], regs[1]),
        outputs: &[2],
        regs_per_elem: 3,
    }
}

/// `saxpy`: `y += a * x` with a broadcast scalar `a`.
pub fn saxpy() -> LaneKernel {
    LaneKernel {
        name: "saxpy",
        group: KernelGroup::Basic,
        profile: WorkProfile {
            ops_per_elem: 2.0,
            bytes_per_elem: 24.0,
            kernel_launches: 1,
            gpu_efficiency: 0.9,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            vec![
                const_reg(0, 0x1234 ^ (seed & 0xffff), lanes),
                rand_reg(1, seed ^ 2, lanes, 1 << 16),
                rand_reg(2, seed ^ 3, lanes, 1 << 32),
            ]
        },
        body: |b| {
            b.mac(r(0), r(1), r(2));
        },
        reference: |regs| {
            regs[2] = regs[2].wrapping_add(semantics::mul32(regs[0], regs[1]));
        },
        outputs: &[2],
        regs_per_elem: 3,
    }
}

/// `dot4`: per-lane dot product of two 4-component vectors.
pub fn dot4() -> LaneKernel {
    LaneKernel {
        name: "dot",
        group: KernelGroup::Basic,
        profile: WorkProfile {
            ops_per_elem: 8.0,
            bytes_per_elem: 72.0,
            kernel_launches: 1,
            gpu_efficiency: 0.9,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            (0..8u8).map(|i| rand_reg(i, seed ^ (i as u64 + 10), lanes, 1 << 16)).collect()
        },
        body: |b| {
            b.init0(r(8));
            for i in 0..4u16 {
                b.mac(r(i), r(4 + i), r(8));
            }
        },
        reference: |regs| {
            let mut acc = 0u64;
            for i in 0..4 {
                acc = acc.wrapping_add(semantics::mul32(regs[i], regs[4 + i]));
            }
            regs[8] = acc;
        },
        outputs: &[8],
        regs_per_elem: 9,
    }
}

/// `xorcipher`: XOR encrypt → bit-reverse diffuse → XOR again.
pub fn xorcipher() -> LaneKernel {
    LaneKernel {
        name: "xorcipher",
        group: KernelGroup::Basic,
        profile: WorkProfile {
            ops_per_elem: 3.0,
            bytes_per_elem: 24.0,
            kernel_launches: 1,
            gpu_efficiency: 0.5,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            vec![rand_reg(0, seed, lanes, u64::MAX), rand_reg(1, seed ^ 5, lanes, u64::MAX)]
        },
        body: |b| {
            b.xor(r(0), r(1), r(2));
            b.bflip(r(2), r(2));
            b.xor(r(2), r(1), r(2));
        },
        reference: |regs| {
            regs[2] = ((regs[0] ^ regs[1]).reverse_bits()) ^ regs[1];
        },
        outputs: &[2],
        regs_per_elem: 3,
    }
}

/// `popcount`: per-lane population count.
pub fn popcount() -> LaneKernel {
    LaneKernel {
        name: "popcount",
        group: KernelGroup::Basic,
        profile: WorkProfile {
            ops_per_elem: 1.0,
            bytes_per_elem: 16.0,
            kernel_launches: 1,
            gpu_efficiency: 0.6,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| vec![rand_reg(0, seed, lanes, u64::MAX)],
        body: |b| {
            b.popc(r(0), r(1));
        },
        reference: |regs| regs[1] = regs[0].count_ones() as u64,
        outputs: &[1],
        regs_per_elem: 2,
    }
}
