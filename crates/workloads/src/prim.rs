//! The *PrIM* kernel group: real-PIM benchmark staples from the PrIM
//! suite (arXiv 2105.03814) that the original 21-kernel sweep lacked —
//! histogram, SpMV over CSR, gather/scatter, select and hash-join over
//! columnar data, and an inclusive prefix-scan.
//!
//! Each kernel is registered in [`crate::all_kernels`], runs on all five
//! substrates through all three execution tiers, and is verified
//! lane-exact against a plain-Rust oracle by the harness (and again by
//! `tests/prim_differential.rs` across the full backend × tier ×
//! optimizer matrix). Every kernel is also expressible through the
//! `dpapi` data-parallel frontend; `dpapi`'s tests cross-check the two
//! implementations byte for byte.

mod gather_scatter;
mod histogram;
mod scan;
mod select_join;
mod spmv;

pub use gather_scatter::{gather, scatter, scatter_dup};
pub use histogram::{histogram, Histogram};
pub use scan::prefixscan;
pub use select_join::{hashjoin, select, select_none};
pub use spmv::spmv;

/// splitmix64 finalizer: derives broadcast constants (table entries,
/// thresholds, hash-table keys) deterministically from `(seed, salt)`.
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
