//! # workloads — the MPU paper's evaluation programs
//!
//! The 21 data-intensive kernels of §VII (four groups: basic, branch,
//! stencil, complex), the seven PrIM-style kernels of the `prim` group
//! (histogram, SpMV, gather/scatter, select, hash-join, prefix-scan),
//! and the three end-to-end applications of §VIII-D
//! (`LLMEncode`, `BlackScholes`, `EditDistance`), each expressed through
//! the ezpim assembler with a per-lane golden reference model, plus the
//! chip-level harness that simulates, verifies, and scales them.
//!
//! ```
//! use mastodon::SimConfig;
//! use pum_backend::DatapathKind;
//! use workloads::{all_kernels, run_kernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernels = all_kernels();
//! assert_eq!(kernels.len(), 28);
//! let run = run_kernel(
//!     kernels[0].as_ref(),
//!     &SimConfig::mpu(DatapathKind::Racer),
//!     1 << 12,
//!     42,
//! )?;
//! assert!(run.verified);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
mod basic;
mod branch;
mod complex_k;
mod harness;
mod kernel;
mod lane;
pub mod prim;
mod stencil;

pub use harness::{
    effective_jobs, parallel_map, parallel_map_isolated, run_kernel, run_kernel_pooled,
    run_kernel_traced, run_sweep_parallel, ChipRun, HarnessError, SweepTask,
};
pub use kernel::{gen_values, BuiltKernel, Kernel, KernelGroup, WorkProfile};
pub use lane::{member_seed, LaneKernel, MemberInputs, REGS};

/// All 28 kernels, grouped and ordered as in the paper's figures
/// (the PrIM group last).
pub fn all_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        // basic
        Box::new(basic::vecadd()),
        Box::new(basic::vecmul()),
        Box::new(basic::saxpy()),
        Box::new(basic::dot4()),
        Box::new(basic::xorcipher()),
        Box::new(basic::popcount()),
        // branch
        Box::new(branch::threshold()),
        Box::new(branch::clamp()),
        Box::new(branch::absdiff()),
        Box::new(branch::quantize()),
        Box::new(branch::muxblend()),
        // stencil
        Box::new(stencil::jacobi1d()),
        Box::new(stencil::gaussian()),
        Box::new(stencil::jacobi2d()),
        Box::new(stencil::conv3x3()),
        Box::new(stencil::sobel()),
        // complex
        Box::new(complex_k::manhattan()),
        Box::new(complex_k::euclidean()),
        Box::new(complex_k::ibert_sqrt()),
        Box::new(complex_k::softmax4()),
        Box::new(complex_k::crc32()),
        // prim
        Box::new(prim::histogram()),
        Box::new(prim::spmv()),
        Box::new(prim::gather()),
        Box::new(prim::scatter()),
        Box::new(prim::select()),
        Box::new(prim::hashjoin()),
        Box::new(prim::prefixscan()),
    ]
}

/// Kernels belonging to one group.
pub fn kernels_in_group(group: KernelGroup) -> Vec<Box<dyn Kernel>> {
    all_kernels().into_iter().filter(|k| k.group() == group).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_eight_kernels_in_five_groups() {
        let kernels = all_kernels();
        assert_eq!(kernels.len(), 28);
        assert_eq!(kernels_in_group(KernelGroup::Basic).len(), 6);
        assert_eq!(kernels_in_group(KernelGroup::Branch).len(), 5);
        assert_eq!(kernels_in_group(KernelGroup::Stencil).len(), 5);
        assert_eq!(kernels_in_group(KernelGroup::Complex).len(), 5);
        assert_eq!(kernels_in_group(KernelGroup::Prim).len(), 7);
    }

    #[test]
    fn paper_named_kernels_present() {
        let names: Vec<_> = all_kernels().iter().map(|k| k.name()).collect();
        for name in [
            "manhattan",
            "euclidean",
            "ibert-sqrt",
            "softmax",
            "crc32",
            "histogram",
            "spmv",
            "gather",
            "scatter",
            "select",
            "hash-join",
            "prefix-scan",
        ] {
            assert!(names.contains(&name), "missing paper kernel {name}");
        }
    }

    #[test]
    fn names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<_> = all_kernels().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 28);
    }

    #[test]
    fn stencils_have_baseline_inflation() {
        for k in all_kernels() {
            let expect = if k.group() == KernelGroup::Stencil { 4.0 } else { 1.0 };
            assert_eq!(k.baseline_footprint(), expect, "{}", k.name());
        }
    }
}
