//! The kernel abstraction: each of the paper's 21 data-intensive kernels
//! builds an ezpim/ISA program for one scheduling wave of VRFs, supplies
//! seeded input data, a golden reference for verification, and a work
//! profile used by the analytical GPU/CPU models.

use mpu_isa::Program;
use pum_backend::Geometry;
use serde::{Deserialize, Serialize};

/// The paper's four kernel groups (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelGroup {
    /// Kernels the RACER datapath can execute without CPU/MPU support.
    Basic,
    /// Kernels with multiple (nested) branches.
    Branch,
    /// Stencils, which Baselines express as Toeplitz mat-muls (~4×
    /// footprint inflation).
    Stencil,
    /// Kernels with complex control instructions the datapaths cannot run
    /// without a CPU/MPU.
    Complex,
    /// PrIM-style real-PIM benchmark staples (histogram, SpMV,
    /// gather/scatter, select, hash-join, prefix-scan).
    Prim,
}

impl KernelGroup {
    /// All groups, in the paper's order (PrIM extensions last).
    pub const ALL: [KernelGroup; 5] = [
        KernelGroup::Basic,
        KernelGroup::Branch,
        KernelGroup::Stencil,
        KernelGroup::Complex,
        KernelGroup::Prim,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            KernelGroup::Basic => "basic",
            KernelGroup::Branch => "branch",
            KernelGroup::Stencil => "stencil",
            KernelGroup::Complex => "complex",
            KernelGroup::Prim => "prim",
        }
    }
}

/// Workload characterization consumed by the analytical GPU/CPU models
/// (our substitute for running on a real RTX 4090; see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkProfile {
    /// Arithmetic operations per element (on a conventional core).
    pub ops_per_elem: f64,
    /// DRAM bytes moved per element by a fused GPU implementation.
    pub bytes_per_elem: f64,
    /// Kernel launches needed per pass over the data.
    pub kernel_launches: u64,
    /// Fraction of GPU peak compute throughput the kernel can use
    /// (bit-twiddling and divergent kernels sit far below 1.0).
    pub gpu_efficiency: f64,
    /// Average dynamic iteration count for data-driven loops (1.0 if
    /// statically bounded) — scales both ops and divergence penalties.
    pub avg_trip_count: f64,
}

/// One wave's worth of executable kernel, with verification data.
#[derive(Debug, Clone)]
pub struct BuiltKernel {
    /// The MPU program for this wave.
    pub program: Program,
    /// Ensemble members (rfh, vrf) the program computes on.
    pub members: Vec<(u16, u16)>,
    /// Initial register data: ((rfh, vrf, reg), lane values).
    pub inputs: Vec<((u16, u16, u8), Vec<u64>)>,
    /// Registers holding results to verify: (rfh, vrf, reg).
    pub outputs: Vec<(u16, u16, u8)>,
    /// Expected lane values, parallel to `outputs`.
    pub expected: Vec<Vec<u64>>,
    /// High-level ezpim statements used (Table IV-style LoC metric).
    pub ezpim_statements: usize,
}

/// A data-intensive kernel from the paper's evaluation.
///
/// `Send + Sync` so sweeps can fan kernels out across worker threads
/// (kernels are stateless descriptors; all run state lives in the
/// simulator).
pub trait Kernel: Send + Sync {
    /// Kernel name as it appears on the figure x-axes.
    fn name(&self) -> &'static str;

    /// Which of the four groups it belongs to.
    fn group(&self) -> KernelGroup;

    /// Input vector registers consumed per element (for footprint and
    /// external-streaming estimates).
    fn regs_per_elem(&self) -> u32;

    /// Builds the program + data for one wave over `members`, with data
    /// seeded by `seed`. Stencil kernels may also stage data in `vrf + 1`
    /// of each member (the staging VRF convention).
    fn build(&self, geometry: &Geometry, members: &[(u16, u16)], seed: u64) -> BuiltKernel;

    /// Characterization for the analytical platform models.
    fn profile(&self) -> WorkProfile;

    /// Footprint multiplier a Baseline datapath pays (stencils → Toeplitz
    /// mat-mul conversion, ≈4×; everything else 1×).
    fn baseline_footprint(&self) -> f64 {
        if self.group() == KernelGroup::Stencil {
            4.0
        } else {
            1.0
        }
    }
}

/// Deterministic per-lane input generator.
pub fn gen_values(seed: u64, lanes: usize, max: u64) -> Vec<u64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..lanes).map(|_| rng.random_range(0..max)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_have_labels() {
        assert_eq!(KernelGroup::Basic.label(), "basic");
        assert_eq!(KernelGroup::Prim.label(), "prim");
        assert_eq!(KernelGroup::ALL.len(), 5);
    }

    #[test]
    fn gen_values_is_deterministic_and_bounded() {
        let a = gen_values(7, 100, 1000);
        let b = gen_values(7, 100, 1000);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v < 1000));
        let c = gen_values(8, 100, 1000);
        assert_ne!(a, c);
    }
}
