//! EditDistance: bitap-style genome read comparison with a 2-D systolic
//! stream of reads through an MPU grid (paper §VIII-D).
//!
//! Each lane of each MPU holds a resident 32-symbol read `A` (2 bits per
//! symbol, packed into 64 bits). Two read streams flow through the grid —
//! one rightward along rows, one downward along columns. Every systolic
//! step, an MPU compares `A` against both streaming reads with bitwise
//! XOR + POPC alignment sweeps (the bitap core) and keeps the minimum
//! distance, then forwards the streams. This reproduces the paper's
//! communication-dominated behaviour: almost all Baseline time goes to
//! synchronizing the systolic steps through the host CPU.

use super::{App, BuiltApp, Table4Row};
use crate::kernel::{gen_values, WorkProfile};
use ezpim::EzProgram;
use mastodon::SimConfig;
use mpu_isa::RegId;

/// The EditDistance application (23 MPUs in the paper; we use the largest
/// square grid that fits the requested MPU count).
#[derive(Debug, Clone, Copy, Default)]
pub struct EditDistance;

fn r(i: u16) -> RegId {
    RegId(i)
}

/// All eight RFHs carry an (identically-seeded) systolic plane, so each
/// control step amortizes over `8 x lanes` resident reads.
const MEMBERS: [(u16, u16); 8] = [(0, 0), (1, 0), (2, 0), (3, 0), (4, 0), (5, 0), (6, 0), (7, 0)];
const STREAM_PAIRS: [(u16, u16); 8] =
    [(0, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (6, 6), (7, 7)];

/// Alignment distance: minimum bit mismatches over the identity and
/// 1-symbol (2-bit) shift alignments of `b`, plus the column stream `c`.
fn golden_distance(a: u64, b: u64, c: u64) -> u64 {
    let d0 = (a ^ b).count_ones() as u64;
    let d1 = (a ^ (b << 2)).count_ones() as u64;
    let d2 = (a ^ c).count_ones() as u64;
    d0.min(d1).min(d2)
}

/// Emits the per-step compare body. With `first`, initializes the best
/// register instead of folding into it.
fn compare_body(b: &mut ezpim::Body<'_>, first: bool) {
    // Row stream r1: identity and 2-bit-shift alignments.
    b.xor(r(0), r(1), r(9));
    b.popc(r(9), r(9));
    b.mov(r(1), r(2));
    b.lshift(r(2), r(2));
    b.lshift(r(2), r(2));
    b.xor(r(0), r(2), r(3));
    b.popc(r(3), r(3));
    b.min(r(9), r(3), r(9));
    // Column stream r4.
    b.xor(r(0), r(4), r(2));
    b.popc(r(2), r(2));
    b.min(r(9), r(2), r(9));
    if first {
        b.mov(r(9), r(8));
    } else {
        b.min(r(8), r(9), r(8));
    }
}

impl App for EditDistance {
    fn name(&self) -> &'static str {
        "EditDistance"
    }

    fn table4(&self) -> Table4Row {
        Table4Row {
            name: "EditDistance",
            compute_steps: "bitwise comparisons",
            collectives: "2-D systolic",
            paper_mpus: 23,
        }
    }

    fn default_mpus(&self) -> usize {
        9 // 3×3 grid
    }

    fn profile(&self) -> WorkProfile {
        WorkProfile {
            ops_per_elem: 40.0,
            bytes_per_elem: 24.0,
            kernel_launches: 4,
            gpu_efficiency: 0.2, // bit-twiddling + fine-grained sync
            avg_trip_count: 1.0,
        }
    }

    fn elements(&self, config: &SimConfig, mpus: usize) -> u64 {
        let side = (mpus as f64).sqrt().floor() as u64;
        config.datapath.geometry().lanes_per_vrf as u64 * MEMBERS.len() as u64 * side * side
    }

    fn build(&self, config: &SimConfig, mpus: usize, seed: u64) -> BuiltApp {
        let side = (mpus as f64).sqrt().floor() as usize;
        assert!(side >= 2, "EditDistance needs at least a 2x2 grid");
        let lanes = config.datapath.geometry().lanes_per_vrf;
        let grid = side * side;
        let steps = side - 1;
        let id = |row: usize, col: usize| row * side + col;

        let mut programs = Vec::new();
        let mut ezpim_statements = 0;
        for row in 0..side {
            for col in 0..side {
                let mut ez = EzProgram::new();
                ez.ensemble(&MEMBERS, |b| compare_body(b, true)).expect("initial compare");
                for _ in 0..steps {
                    // Forward streams (sends precede receives to keep the
                    // lower-ID-first discipline deadlock-free).
                    if col + 1 < side {
                        ez.send(id(row, col + 1) as u16, |s| {
                            s.transfer(&STREAM_PAIRS, |t| {
                                t.memcpy(0, r(1), 0, r(1));
                            });
                        });
                    }
                    if row + 1 < side {
                        ez.send(id(row + 1, col) as u16, |s| {
                            s.transfer(&STREAM_PAIRS, |t| {
                                t.memcpy(0, r(4), 0, r(4));
                            });
                        });
                    }
                    if col > 0 {
                        ez.recv(id(row, col - 1) as u16);
                    }
                    if row > 0 {
                        ez.recv(id(row - 1, col) as u16);
                    }
                    ez.ensemble(&MEMBERS, |b| compare_body(b, false)).expect("step compare");
                }
                ezpim_statements += ez.statements();
                programs.push(ez.assemble().expect("grid program"));
            }
        }
        programs.resize(mpus, mpu_isa::Program::new());

        // Data + golden model.
        let gen = |mpu: usize, reg: u64| {
            gen_values(seed ^ ((mpu as u64) << 24) ^ (reg << 8), lanes, u64::MAX)
        };
        let mut a = Vec::new();
        let mut b_stream = Vec::new();
        let mut c_stream = Vec::new();
        let mut best: Vec<Vec<u64>> = Vec::new();
        for mpu in 0..grid {
            a.push(gen(mpu, 0));
            b_stream.push(gen(mpu, 1));
            c_stream.push(gen(mpu, 4));
            best.push(vec![0; lanes]);
        }
        for mpu in 0..grid {
            for lane in 0..lanes {
                best[mpu][lane] =
                    golden_distance(a[mpu][lane], b_stream[mpu][lane], c_stream[mpu][lane]);
            }
        }
        for _ in 0..steps {
            // Streams advance: right along rows, down along columns;
            // boundary MPUs re-inject their current value.
            let prev_b = b_stream.clone();
            let prev_c = c_stream.clone();
            for row in 0..side {
                for col in 0..side {
                    if col > 0 {
                        b_stream[id(row, col)] = prev_b[id(row, col - 1)].clone();
                    }
                    if row > 0 {
                        c_stream[id(row, col)] = prev_c[id(row - 1, col)].clone();
                    }
                }
            }
            for mpu in 0..grid {
                for lane in 0..lanes {
                    let d = golden_distance(a[mpu][lane], b_stream[mpu][lane], c_stream[mpu][lane]);
                    best[mpu][lane] = best[mpu][lane].min(d);
                }
            }
        }

        let mut inputs = Vec::new();
        let mut expected = Vec::new();
        for mpu in 0..grid {
            for &(rfh, vrf) in &MEMBERS {
                inputs.push((mpu, (rfh, vrf, 0), a[mpu].clone()));
                inputs.push((mpu, (rfh, vrf, 1), gen(mpu, 1)));
                inputs.push((mpu, (rfh, vrf, 4), gen(mpu, 4)));
                expected.push((mpu, (rfh, vrf, 8), best[mpu].clone()));
            }
        }

        let isa_instructions = programs.iter().map(|p| p.len()).sum();
        BuiltApp { programs, inputs, expected, ezpim_statements, isa_instructions }
    }
}
