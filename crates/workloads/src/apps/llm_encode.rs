//! LLMEncode: a transformer encoder layer slice (paper §VIII-D).
//!
//! Tokens live one per lane across worker MPUs; MPU 0 coordinates. The
//! phases mirror Table IV's compute steps and collectives:
//!
//! 1. **broadcast** — MPU 0 ships the (structured) weight scalars to every
//!    worker;
//! 2. **scatter** — MPU 0 ships per-worker bias vectors;
//! 3. **matmul** — `h_i = w1·x_i + w2·(Σx − x_i) + bias`, the rank-1
//!    structured 4×4 weight matrix (diagonal `w1`, off-diagonal `w2`)
//!    computed with MAC-class ops, followed by **ReLU**;
//! 4. **softmax** — `2^h` exponentials via per-lane dynamic shift loops,
//!    then Q8 normalization (divisions);
//! 5. **layernorm** — mean-centering of the softmax outputs;
//! 6. **P2P** — neighbouring workers exchange boundary activations;
//! 7. **gather** — workers return results to MPU 0.

use super::{App, BuiltApp, Table4Row};
use crate::kernel::{gen_values, WorkProfile};
use ezpim::EzProgram;
use mastodon::SimConfig;
use mpu_isa::RegId;

/// The LLMEncode application (130 MPUs in the paper; 1 coordinator +
/// workers here).
#[derive(Debug, Clone, Copy, Default)]
pub struct LlmEncode;

fn r(i: u16) -> RegId {
    RegId(i)
}

const W1: u64 = 2;
const W2: u64 = 1;

/// Tokens occupy all eight RFHs of each worker, so every control step
/// amortizes over `8 x lanes` tokens (chip-scale behaviour).
const WORKER_MEMBERS: [(u16, u16); 8] =
    [(0, 0), (1, 0), (2, 0), (3, 0), (4, 0), (5, 0), (6, 0), (7, 0)];

/// Golden per-lane forward pass: returns the centered activation.
fn golden_forward(x: &[u64; 4], bias: u64) -> u64 {
    let s: u64 = x.iter().sum();
    let mut h = [0u64; 4];
    for i in 0..4 {
        h[i] = W1 * x[i] + W2 * (s - x[i]) + bias; // matmul row + bias
                                                   // ReLU: values are non-negative already.
    }
    let e: Vec<u64> = h.iter().map(|&v| 1u64 << v).collect();
    let es: u64 = e.iter().sum();
    let out: Vec<u64> = e.iter().map(|&v| (v << 8) / es).collect();
    let mean = out.iter().sum::<u64>() / 4;
    out[0].abs_diff(mean)
}

fn worker_compute(ez: &mut EzProgram) {
    ez.ensemble(&WORKER_MEMBERS, |b| {
        // s = Σ x.
        b.add(r(0), r(1), r(4));
        b.add(r(4), r(2), r(4));
        b.add(r(4), r(3), r(4));
        // h_i = w1·x_i + w2·(s − x_i) + bias, then ReLU, back into x_i.
        for i in 0..4u16 {
            b.sub(r(4), r(i), r(5));
            b.mul(r(8), r(i), r(10));
            b.mul(r(9), r(5), r(11));
            b.add(r(10), r(11), r(10));
            b.add(r(10), r(6), r(10));
            b.relu(r(10), r(10));
            b.mov(r(10), r(i));
        }
        // softmax: e_i = 2^{h_i} (dynamic loops), s = Σ e, out = (e<<8)/s.
        for i in 0..4u16 {
            b.init1(r(4 + i));
            b.for_loop(r(9), r(i), |b| {
                b.lshift(r(4 + i), r(4 + i));
            });
        }
        b.init0(r(8));
        for i in 0..4u16 {
            b.add(r(8), r(4 + i), r(8));
        }
        for i in 0..4u16 {
            b.repeat(8, |b| {
                b.lshift(r(4 + i), r(4 + i));
            });
            b.qdiv(r(4 + i), r(8), r(i));
        }
        // layernorm-style centering of out[0].
        b.add(r(0), r(1), r(9));
        b.add(r(9), r(2), r(9));
        b.add(r(9), r(3), r(9));
        b.init1(r(10));
        b.lshift(r(10), r(10));
        b.lshift(r(10), r(10)); // 4
        b.qdiv(r(9), r(10), r(11)); // mean
        b.max(r(0), r(11), r(9));
        b.min(r(0), r(11), r(10));
        b.sub(r(9), r(10), r(9)); // |out0 − mean|
                                  // Clear the P2P landing register: only RFH 0 will receive a real
                                  // neighbour activation; other members must add zero.
        b.init0(r(5));
    })
    .expect("worker compute");
}

impl App for LlmEncode {
    fn name(&self) -> &'static str {
        "LLMEncode"
    }

    fn table4(&self) -> Table4Row {
        Table4Row {
            name: "LLMEncode",
            compute_steps: "matmul, softmax, layernorm, relu",
            collectives: "gather, scatter, P2P, broadcast",
            paper_mpus: 130,
        }
    }

    fn default_mpus(&self) -> usize {
        9 // coordinator + 8 workers
    }

    fn profile(&self) -> WorkProfile {
        WorkProfile {
            ops_per_elem: 80.0,
            bytes_per_elem: 80.0,
            kernel_launches: 4,
            gpu_efficiency: 0.7, // GPUs are excellent at the mat-mul bulk
            avg_trip_count: 20.0,
        }
    }

    fn elements(&self, config: &SimConfig, mpus: usize) -> u64 {
        config.datapath.geometry().lanes_per_vrf as u64
            * WORKER_MEMBERS.len() as u64
            * (mpus.saturating_sub(1)) as u64
    }

    fn build(&self, config: &SimConfig, mpus: usize, seed: u64) -> BuiltApp {
        assert!(mpus >= 3, "LLMEncode needs a coordinator and >= 2 workers");
        let lanes = config.datapath.geometry().lanes_per_vrf;
        let workers = mpus - 1;

        // --- coordinator (MPU 0): broadcast weights, scatter biases,
        // gather results.
        let mut ez0 = EzProgram::new();
        for k in 1..=workers {
            // Broadcast: same source registers to every worker RFH.
            let fanout: Vec<(u16, u16)> = (0..8u16).map(|h| (0, h)).collect();
            ez0.send(k as u16, move |s| {
                s.transfer(&fanout, |t| {
                    t.memcpy(0, r(8), 0, r(8));
                    t.memcpy(0, r(9), 0, r(9));
                });
            });
        }
        for k in 1..=workers {
            // Scatter: per-worker bias from a distinct coordinator RFH,
            // fanned out to all of the worker's RFHs.
            let src_rfh = ((k - 1) % 8) as u16;
            let fanout: Vec<(u16, u16)> = (0..8u16).map(|h| (src_rfh, h)).collect();
            ez0.send(k as u16, move |s| {
                s.transfer(&fanout, |t| {
                    t.memcpy(1, r(6), 0, r(6));
                });
            });
        }
        for k in 1..=workers {
            ez0.recv(k as u16);
        }
        let p0 = ez0.assemble().expect("coordinator program");

        // --- workers.
        let mut programs = vec![p0];
        let mut total_statements = ez0.statements();
        for k in 1..=workers {
            let mut ez = EzProgram::new();
            ez.recv(0); // broadcast (w1, w2)
            ez.recv(0); // scatter (bias)
            worker_compute(&mut ez);
            // P2P: ship boundary activation to the next worker.
            if k < workers {
                ez.send((k + 1) as u16, |s| {
                    s.transfer(&[(0, 0)], |t| {
                        t.memcpy(0, r(9), 0, r(5));
                    });
                });
            }
            if k > 1 {
                ez.recv((k - 1) as u16);
                // Only RFH 0 receives the neighbour activation; the other
                // members add an untouched (zero) r5.
                ez.ensemble(&WORKER_MEMBERS, |b| {
                    b.add(r(9), r(5), r(9));
                })
                .expect("residual add");
            }
            // Gather: return the final activation to the coordinator.
            let dst_rfh = ((k - 1) % 8) as u16;
            ez.send(0, |s| {
                s.transfer(&[(0, dst_rfh)], |t| {
                    t.memcpy(0, r(9), 2, r(0));
                });
            });
            total_statements += ez.statements();
            programs.push(ez.assemble().expect("worker program"));
        }

        // --- data + golden model.
        let mut inputs = Vec::new();
        let mut expected = Vec::new();
        // Coordinator state: weights + per-worker biases.
        inputs.push((0, (0, 0, 8), vec![W1; lanes]));
        inputs.push((0, (0, 0, 9), vec![W2; lanes]));
        let mut biases = Vec::new();
        for rfh in 0..8u16 {
            let b = gen_values(seed ^ 0xb1a5 ^ (rfh as u64), lanes, 5);
            inputs.push((0, (rfh, 1, 6), b.clone()));
            biases.push(b);
        }
        // Worker token embeddings, then golden forward passes.
        let mut cents: Vec<Vec<u64>> = vec![Vec::new()]; // index by worker (0 unused)
        for k in 1..=workers {
            let xs: Vec<Vec<u64>> =
                (0..4).map(|i| gen_values(seed ^ ((k as u64) << 16) ^ i, lanes, 4)).collect();
            for &(rfh, vrf) in &WORKER_MEMBERS {
                for (i, x) in xs.iter().enumerate() {
                    inputs.push((k, (rfh, vrf, i as u8), x.clone()));
                }
            }
            let bias = &biases[(k - 1) % 8];
            let cent: Vec<u64> = (0..lanes)
                .map(|lane| {
                    let x = [xs[0][lane], xs[1][lane], xs[2][lane], xs[3][lane]];
                    golden_forward(&x, bias[lane])
                })
                .collect();
            cents.push(cent);
        }
        // P2P residual: worker k (>1) adds worker k−1's centered value.
        let mut finals: Vec<Vec<u64>> = vec![Vec::new()];
        for k in 1..=workers {
            let f: Vec<u64> = if k == 1 {
                cents[1].clone()
            } else {
                cents[k].iter().zip(&cents[k - 1]).map(|(&a, &b)| a.wrapping_add(b)).collect()
            };
            expected.push((k, (0, 0, 9), f.clone()));
            // Members on RFHs 1..7 never receive the P2P activation.
            for &(rfh, vrf) in &WORKER_MEMBERS[1..] {
                expected.push((k, (rfh, vrf, 9), cents[k].clone()));
            }
            finals.push(f);
        }
        // Gather: coordinator's (rfh, vrf 2, r0) holds the *last* worker
        // with that RFH residue (RECVs apply in worker order).
        for rfh in 0..8.min(workers) {
            let mut last = None;
            for k in 1..=workers {
                if (k - 1) % 8 == rfh {
                    last = Some(k);
                }
            }
            if let Some(k) = last {
                expected.push((0, (rfh as u16, 2, 0), finals[k].clone()));
            }
        }

        let isa_instructions = programs.iter().map(|p| p.len()).sum();
        BuiltApp {
            programs,
            inputs,
            expected,
            ezpim_statements: total_statements,
            isa_instructions,
        }
    }
}
