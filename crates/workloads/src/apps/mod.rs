//! End-to-end applications (paper §VIII-D, Table IV): multi-MPU programs
//! with compute phases and collective communication, executed on the
//! [`mastodon::System`] simulator and verified against golden models.
//!
//! * [`LlmEncode`] — a transformer encoder layer slice: mat-mul (as
//!   structured MACs), ReLU, softmax (dynamic loops), layer-norm-style
//!   centering; broadcast + scatter + P2P + gather collectives.
//! * [`BlackScholes`] — fixed-point option pricing with CORDIC-class
//!   software subroutines (Newton sqrt, shift-loop exp, rational CDF);
//!   a CDF-aggregation exchange between its two MPUs.
//! * [`EditDistance`] — bitap-style genome read comparison: XOR/POPC
//!   alignment sweeps with a systolic stream of reads through an MPU
//!   chain.
//!
//! The arithmetic is integer/fixed-point renditions of each application's
//! operation mix (the repository has no float datapath, matching bitwise
//! PUM), with golden references computing the *same* integer algorithms —
//! see DESIGN.md's substitution table.

mod black_scholes;
mod edit_distance;
mod llm_encode;

pub use black_scholes::BlackScholes;
pub use edit_distance::EditDistance;
pub use llm_encode::LlmEncode;

use crate::kernel::WorkProfile;
use mastodon::{SimConfig, Stats, System};
use mpu_isa::Program;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Table IV row metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Application name.
    pub name: &'static str,
    /// Compute steps, as listed in Table IV.
    pub compute_steps: &'static str,
    /// Collective-communication patterns used.
    pub collectives: &'static str,
    /// MPU count the paper used.
    pub paper_mpus: usize,
}

/// One placed data binding: `(mpu, (rfh, vrf, reg), lane values)`.
pub type PlacedData = (usize, (u16, u16, u8), Vec<u64>);

/// A fully-instantiated multi-MPU application.
#[derive(Debug)]
pub struct BuiltApp {
    /// Per-MPU programs.
    pub programs: Vec<Program>,
    /// Initial data: (mpu, (rfh, vrf, reg), lane values).
    pub inputs: Vec<PlacedData>,
    /// Expected outputs: (mpu, (rfh, vrf, reg), lane values).
    pub expected: Vec<PlacedData>,
    /// Total ezpim statements across MPU programs.
    pub ezpim_statements: usize,
    /// Total lowered ISA instructions across MPU programs.
    pub isa_instructions: usize,
}

/// An end-to-end application.
///
/// `Send + Sync` so the app matrix can run configurations on worker
/// threads (apps are stateless descriptors, like [`crate::Kernel`]s).
pub trait App: Send + Sync {
    /// Application name.
    fn name(&self) -> &'static str;

    /// Table IV metadata.
    fn table4(&self) -> Table4Row;

    /// Builds programs + data for `mpus` MPUs of the given geometry.
    fn build(&self, config: &SimConfig, mpus: usize, seed: u64) -> BuiltApp;

    /// Default (paper-scaled-down) MPU count for simulation.
    fn default_mpus(&self) -> usize;

    /// Work profile for the analytical GPU/CPU models, per element.
    fn profile(&self) -> WorkProfile;

    /// Elements processed per run at `mpus` MPUs (for platform models).
    fn elements(&self, config: &SimConfig, mpus: usize) -> u64;
}

/// Result of an application run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppRun {
    /// Configuration label.
    pub label: String,
    /// Application name.
    pub app: &'static str,
    /// MPUs simulated.
    pub mpus: usize,
    /// System statistics (parallel-merged).
    pub stats: Stats,
    /// All outputs matched the golden model.
    pub verified: bool,
    /// Total ezpim statements (Table IV LoC column).
    pub ezpim_statements: usize,
    /// Total lowered ISA instructions (Table IV baseline-LoC column).
    pub isa_instructions: usize,
}

/// Application harness failure.
#[derive(Debug)]
pub enum AppError {
    /// System simulation failed.
    System(mastodon::SystemError),
    /// Machine-level failure during setup/readout.
    Sim(mastodon::SimError),
    /// A lane diverged from the golden model.
    Mismatch {
        /// Application name.
        app: &'static str,
        /// MPU holding the mismatching value.
        mpu: usize,
        /// `(rfh, vrf, reg)` of the output.
        at: (u16, u16, u8),
        /// First mismatching lane.
        lane: usize,
        /// Simulated value.
        got: u64,
        /// Golden value.
        want: u64,
    },
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::System(e) => write!(f, "system: {e}"),
            AppError::Sim(e) => write!(f, "sim: {e}"),
            AppError::Mismatch { app, mpu, at, lane, got, want } => write!(
                f,
                "{app}: MPU {mpu} output {at:?} lane {lane}: got {got:#x}, want {want:#x}"
            ),
        }
    }
}

impl std::error::Error for AppError {}

impl From<mastodon::SystemError> for AppError {
    fn from(e: mastodon::SystemError) -> Self {
        AppError::System(e)
    }
}

impl From<mastodon::SimError> for AppError {
    fn from(e: mastodon::SimError) -> Self {
        AppError::Sim(e)
    }
}

/// Builds, runs, and verifies an application on `mpus` MPUs.
///
/// # Errors
///
/// See [`AppError`].
pub fn run_app(
    app: &dyn App,
    config: &SimConfig,
    mpus: usize,
    seed: u64,
) -> Result<AppRun, AppError> {
    run_app_pooled(app, config, mpus, seed, None)
}

/// [`run_app`] with an optional shared recipe-synthesis pool (see
/// [`mastodon::RecipePool`]); results are bit-identical either way.
///
/// # Errors
///
/// See [`AppError`].
pub fn run_app_pooled(
    app: &dyn App,
    config: &SimConfig,
    mpus: usize,
    seed: u64,
    pool: Option<&std::sync::Arc<mastodon::RecipePool>>,
) -> Result<AppRun, AppError> {
    let built = app.build(config, mpus, seed);
    let mut system = match pool {
        Some(pool) => System::new_pooled(config.clone(), mpus, pool),
        None => System::new(config.clone(), mpus),
    };
    for (i, program) in built.programs.iter().enumerate() {
        system.set_program(i, program.clone());
    }
    for (mpu, (rfh, vrf, reg), values) in &built.inputs {
        system.mpu_mut(*mpu).write_register(*rfh, *vrf, *reg, values)?;
    }
    let stats = system.run()?;
    for (mpu, at, want) in &built.expected {
        let got = system.mpu_mut(*mpu).read_register(at.0, at.1, at.2)?;
        for lane in 0..want.len().min(got.len()) {
            if got[lane] != want[lane] {
                return Err(AppError::Mismatch {
                    app: app.name(),
                    mpu: *mpu,
                    at: *at,
                    lane,
                    got: got[lane],
                    want: want[lane],
                });
            }
        }
    }
    Ok(AppRun {
        label: config.label(),
        app: app.name(),
        mpus,
        stats,
        verified: true,
        ezpim_statements: built.ezpim_statements,
        isa_instructions: built.isa_instructions,
    })
}

/// The three evaluated applications.
pub fn all_apps() -> Vec<Box<dyn App>> {
    vec![Box::new(LlmEncode), Box::new(BlackScholes), Box::new(EditDistance)]
}
