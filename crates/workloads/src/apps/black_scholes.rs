//! BlackScholes: fixed-point European option pricing (paper §VIII-D).
//!
//! The paper's BlackScholes relies on CORDIC-class software subroutines
//! for `sqrt`, `exp`, and the normal CDF — exactly the operation mix that
//! makes it slow on PUM (the GPU's special-function units win) yet much
//! faster under the MPU than under Baseline (the subroutines are full of
//! control flow). Our integer rendition keeps that mix:
//!
//! 1. `σ√T` via a Newton-iteration integer square root **subroutine**
//!    (data-driven `while` loop);
//! 2. moneyness and deviation in Q16 fixed point (divisions);
//! 3. `exp` via a shift **loop** (`2^d`, dynamic trip count);
//! 4. a rational logistic CDF `(e << 8) / (e + 1)`;
//! 5. price `= S · CDF(d) >> 8`;
//! 6. the two MPUs exchange prices and aggregate (the "CDF" collective).

use super::{App, BuiltApp, Table4Row};
use crate::kernel::{gen_values, WorkProfile};
use ezpim::{Cond, EzProgram};
use mastodon::SimConfig;
use mpu_isa::RegId;

/// The BlackScholes application (2 MPUs in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlackScholes;

fn r(i: u16) -> RegId {
    RegId(i)
}

const MEMBERS: [(u16, u16); 8] = [(0, 0), (1, 0), (2, 0), (3, 0), (4, 0), (5, 0), (6, 0), (7, 0)];
const K_STRIKE: u64 = 65536;
const EXP_CAP: u64 = 20;

/// Golden per-lane price, mirroring the MPU program's integer algorithm.
fn golden_price(s: u64, var_t: u64) -> u64 {
    // Newton integer sqrt (matches the isqrt subroutine).
    let n = var_t;
    let mut x = n;
    let mut y = (x + n / x) / 2;
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    let sq = x;
    let m = (s << 16) / K_STRIKE;
    let dev = m.abs_diff(K_STRIKE);
    let d = (dev / sq.max(1)).min(EXP_CAP);
    let e = 1u64 << d;
    let cdf = (e << 8) / (e + 1);
    (s * cdf) >> 8
}

fn compute_body(ez: &mut EzProgram) {
    ez.ensemble(&MEMBERS, |b| {
        b.call("isqrt"); // r3 = isqrt(r2)
                         // m = (S << 16) / K.
        b.mov(r(0), r(4));
        b.repeat(16, |b| {
            b.lshift(r(4), r(4));
        });
        b.qdiv(r(4), r(1), r(5));
        // dev = |m - K|.
        b.max(r(5), r(1), r(4));
        b.min(r(5), r(1), r(5));
        b.sub(r(4), r(5), r(4));
        // d = dev / max(sqrt, 1), capped.
        b.init1(r(6));
        b.max(r(3), r(6), r(6));
        b.qdiv(r(4), r(6), r(5));
        b.min(r(5), r(9), r(5));
        // e = 2^d (dynamic shift loop — the "exp" step).
        b.init1(r(6));
        b.for_loop(r(4), r(5), |b| {
            b.lshift(r(6), r(6));
        });
        // cdf = (e << 8) / (e + 1) — rational logistic CDF.
        b.inc(r(6), r(5));
        b.mov(r(6), r(4));
        b.repeat(8, |b| {
            b.lshift(r(4), r(4));
        });
        b.qdiv(r(4), r(5), r(6));
        // price = (S * cdf) >> 8.
        b.mul(r(0), r(6), r(4));
        b.init1(r(5));
        b.repeat(8, |b| {
            b.lshift(r(5), r(5));
        });
        b.qdiv(r(4), r(5), r(8));
    })
    .expect("BlackScholes compute body");
}

fn isqrt_subroutine(ez: &mut EzProgram) {
    // r3 = floor(sqrt(r2)); temps r4..r6, constant 2 in r7.
    ez.subroutine("isqrt", |b| {
        b.mov(r(2), r(3));
        b.qdiv(r(2), r(3), r(4));
        b.add(r(3), r(4), r(5));
        b.qdiv(r(5), r(7), r(6));
        b.while_loop(Cond::Lt(r(6), r(3)), |b| {
            b.mov(r(6), r(3));
            b.qdiv(r(2), r(3), r(4));
            b.add(r(3), r(4), r(5));
            b.qdiv(r(5), r(7), r(6));
        });
    })
    .expect("isqrt subroutine");
}

impl App for BlackScholes {
    fn name(&self) -> &'static str {
        "BlackScholes"
    }

    fn table4(&self) -> Table4Row {
        Table4Row {
            name: "BlackScholes",
            compute_steps: "sqrt, exp, norm",
            collectives: "CDF",
            paper_mpus: 2,
        }
    }

    fn default_mpus(&self) -> usize {
        2
    }

    fn profile(&self) -> WorkProfile {
        // On a GPU this is ~30 FLOPs with hardware sqrt/exp/CDF — the
        // special-function units the paper credits for the GPU's win here.
        WorkProfile {
            ops_per_elem: 30.0,
            bytes_per_elem: 24.0,
            kernel_launches: 1,
            gpu_efficiency: 0.9,
            avg_trip_count: 1.0,
        }
    }

    fn elements(&self, config: &SimConfig, mpus: usize) -> u64 {
        (config.datapath.geometry().lanes_per_vrf * MEMBERS.len() * mpus) as u64
    }

    fn build(&self, config: &SimConfig, mpus: usize, seed: u64) -> BuiltApp {
        assert!(mpus >= 2, "BlackScholes uses two cooperating MPUs");
        let lanes = config.datapath.geometry().lanes_per_vrf;

        // MPU 0: price its options, then ship prices to MPU 1.
        let mut ez0 = EzProgram::new();
        compute_body(&mut ez0);
        ez0.send(1, |s| {
            let pairs: Vec<(u16, u16)> = MEMBERS.iter().map(|&(h, _)| (h, h)).collect();
            s.transfer(&pairs, |t| {
                t.memcpy(0, r(8), 0, r(9));
            });
        });
        isqrt_subroutine(&mut ez0);
        let p0 = ez0.assemble().expect("MPU0 program");

        // MPU 1: price its options, receive MPU 0's, aggregate.
        let mut ez1 = EzProgram::new();
        compute_body(&mut ez1);
        ez1.recv(0);
        ez1.ensemble(&MEMBERS, |b| {
            b.add(r(8), r(9), r(10));
        })
        .expect("aggregation ensemble");
        isqrt_subroutine(&mut ez1);
        let p1 = ez1.assemble().expect("MPU1 program");

        // Idle MPUs (if any) run empty programs.
        let mut programs = vec![p0, p1];
        programs.resize(mpus, mpu_isa::Program::new());

        let mut inputs = Vec::new();
        let mut expected = Vec::new();
        let mut prices: Vec<Vec<Vec<u64>>> = Vec::new(); // [mpu][member][lane]
        for mpu in 0..2usize {
            let mut per_member = Vec::new();
            for (mi, &(rfh, vrf)) in MEMBERS.iter().enumerate() {
                let s_seed = seed ^ ((mpu as u64) << 32) ^ ((mi as u64) << 16);
                let spot: Vec<u64> =
                    gen_values(s_seed, lanes, 1 << 14).iter().map(|v| v + (1 << 14)).collect();
                let var_t: Vec<u64> = gen_values(s_seed ^ 0xabcd, lanes, (1 << 20) - 1)
                    .iter()
                    .map(|v| v + 1)
                    .collect();
                inputs.push((mpu, (rfh, vrf, 0), spot.clone()));
                inputs.push((mpu, (rfh, vrf, 2), var_t.clone()));
                inputs.push((mpu, (rfh, vrf, 1), vec![K_STRIKE; lanes]));
                inputs.push((mpu, (rfh, vrf, 7), vec![2; lanes]));
                inputs.push((mpu, (rfh, vrf, 9), vec![EXP_CAP; lanes]));
                let price: Vec<u64> =
                    spot.iter().zip(&var_t).map(|(&s, &v)| golden_price(s, v)).collect();
                expected.push((mpu, (rfh, vrf, 8), price.clone()));
                per_member.push(price);
            }
            prices.push(per_member);
        }
        // MPU 1 aggregates its member-m price with MPU 0's member-m price.
        for (mi, &(rfh, vrf)) in MEMBERS.iter().enumerate() {
            let agg: Vec<u64> = prices[1][mi]
                .iter()
                .zip(&prices[0][mi])
                .map(|(&a, &b)| a.wrapping_add(b))
                .collect();
            expected.push((1, (rfh, vrf, 10), agg));
        }

        let ezpim_statements = ez0.statements() + ez1.statements();
        let isa_instructions = programs.iter().map(|p| p.len()).sum();
        BuiltApp { programs, inputs, expected, ezpim_statements, isa_instructions }
    }
}
