//! Chip-level kernel harness: simulates one scheduling wave functionally
//! and cycle-accurately, verifies it against the kernel's golden model,
//! then scales to the full iso-area chip and problem size.
//!
//! Scaling model (documented in DESIGN.md §2): a kernel over `n` elements
//! decomposes into *instances*, each one wave of
//! `active_vrfs_per_rfh × rfhs × lanes` elements on one MPU. Instances run
//! `mpus_per_chip` at a time; micro-op issue is broadcast, so wave latency
//! is independent of wave width while energy scales with it. We simulate a
//! representative subset of the wave's VRFs (sampling; data is i.i.d.) and
//! scale energy accordingly.
//!
//! Duality Cache's limited on-chip capacity (0.2 GB) is modeled by
//! streaming overflow bytes over the external bus, reproducing the paper's
//! §VIII-C observation.

use crate::kernel::Kernel;
use mastodon::{
    run_single_traced, EventLog, ExecutionMode, RecipePool, SimConfig, SimError, Stats,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// VRFs functionally simulated per wave (energy is scaled up to the full
/// wave; see module docs).
const SIM_VRFS: usize = 8;

/// Result of running one kernel on one chip configuration.
///
/// `PartialEq` lets tests assert the parallel sweep path reproduces the
/// serial path exactly, field for field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipRun {
    /// Configuration label (`MPU:RACER`, ...).
    pub label: String,
    /// Kernel name.
    pub kernel: &'static str,
    /// Problem size in elements.
    pub n: u64,
    /// Simulated single-wave statistics (one MPU).
    pub wave: Stats,
    /// Total wave instances across the problem.
    pub instances: u64,
    /// Sequential rounds per MPU (`ceil(instances / mpus)`).
    pub rounds: u64,
    /// Chip execution time, nanoseconds.
    pub time_ns: f64,
    /// Chip energy, picojoules.
    pub energy_pj: f64,
    /// External-memory streaming time added (Duality Cache overflow), ns.
    pub streaming_ns: f64,
    /// Whether every simulated lane matched the golden model.
    pub verified: bool,
    /// ezpim statement count for the kernel program.
    pub ezpim_statements: usize,
    /// Lowered ISA instruction count.
    pub isa_instructions: usize,
    /// Execution-tier split of the wave simulation: `(trace, fallback)`
    /// compute-ensemble counts (see [`mastodon::Mpu::tier_counts`]).
    /// Host-side telemetry; not an architectural counter.
    pub tiers: (u64, u64),
}

impl ChipRun {
    /// Time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.time_ns / 1000.0
    }

    /// Energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy_pj / 1.0e9
    }
}

/// Harness failure.
#[derive(Debug)]
pub enum HarnessError {
    /// The simulator rejected or failed the program.
    Sim(mastodon::SimError),
    /// A lane diverged from the golden model.
    Mismatch {
        /// Kernel name.
        kernel: &'static str,
        /// `(rfh, vrf, reg)` of the first mismatching output.
        at: (u16, u16, u8),
        /// First mismatching lane.
        lane: usize,
        /// Simulated value.
        got: u64,
        /// Golden value.
        want: u64,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Sim(e) => write!(f, "simulation failed: {e}"),
            HarnessError::Mismatch { kernel, at, lane, got, want } => {
                write!(f, "{kernel}: output {at:?} lane {lane}: got {got:#x}, want {want:#x}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<mastodon::SimError> for HarnessError {
    fn from(e: mastodon::SimError) -> Self {
        HarnessError::Sim(e)
    }
}

/// Runs `kernel` over `n` elements on the chip described by `config`.
///
/// # Errors
///
/// Fails if the simulation errors or any simulated lane mismatches the
/// kernel's golden model.
pub fn run_kernel(
    kernel: &dyn Kernel,
    config: &SimConfig,
    n: u64,
    seed: u64,
) -> Result<ChipRun, HarnessError> {
    run_kernel_pooled(kernel, config, n, seed, None)
}

/// [`run_kernel`] with an optional shared recipe-synthesis pool (see
/// [`mastodon::RecipePool`]). The pool only memoizes host-side recipe
/// lowering; simulated statistics — and therefore the returned [`ChipRun`]
/// — are bit-identical to the unpooled path.
///
/// # Errors
///
/// See [`run_kernel`].
pub fn run_kernel_pooled(
    kernel: &dyn Kernel,
    config: &SimConfig,
    n: u64,
    seed: u64,
    pool: Option<&Arc<RecipePool>>,
) -> Result<ChipRun, HarnessError> {
    run_kernel_inner(kernel, config, n, seed, pool, None)
}

/// [`run_kernel`] with an [`EventLog`] collecting the wave simulation's
/// trace (see `mastodon::Tracer`): the observability path for building
/// attribution profiles and Chrome trace exports of a kernel. The returned
/// [`ChipRun`] is bit-identical to the untraced path.
///
/// # Errors
///
/// See [`run_kernel`].
pub fn run_kernel_traced(
    kernel: &dyn Kernel,
    config: &SimConfig,
    n: u64,
    seed: u64,
    log: &EventLog,
) -> Result<ChipRun, HarnessError> {
    run_kernel_inner(kernel, config, n, seed, None, Some(Box::new(log.clone())))
}

fn run_kernel_inner(
    kernel: &dyn Kernel,
    config: &SimConfig,
    n: u64,
    seed: u64,
    pool: Option<&Arc<RecipePool>>,
    tracer: Option<Box<dyn mastodon::Tracer>>,
) -> Result<ChipRun, HarnessError> {
    let g = config.datapath.geometry();
    // Members: one VRF per RFH, up to SIM_VRFS (stencils use vrf+1 for
    // staging, which exists because vrfs_per_rfh >= 2).
    let member_count = SIM_VRFS.min(g.max_active_vrfs_per_mpu()).max(1);
    let members: Vec<(u16, u16)> = (0..member_count)
        .map(|i| {
            let rfh = (i % g.rfhs_per_mpu) as u16;
            let vrf = ((i / g.rfhs_per_mpu) * 2) as u16; // leave vrf+1 for staging
            (rfh, vrf)
        })
        .collect();

    let built = kernel.build(&g, &members, seed);
    let (wave, mut mpu) =
        run_single_traced(config.clone(), &built.program, &built.inputs, pool, tracer)?;

    // Verify every simulated lane against the golden model. Register
    // readback rides the backend's word-level lane transpose, so full-VRF
    // verification stays cheap even for 512-lane geometries.
    for (idx, &(rfh, vrf, reg)) in built.outputs.iter().enumerate() {
        let got = mpu.read_register(rfh, vrf, reg)?;
        let want = &built.expected[idx];
        for lane in 0..want.len().min(got.len()) {
            if got[lane] != want[lane] {
                return Err(HarnessError::Mismatch {
                    kernel: kernel.name(),
                    at: (rfh, vrf, reg),
                    lane,
                    got: got[lane],
                    want: want[lane],
                });
            }
        }
    }

    // --- chip scaling ---
    let wave_elems = (g.max_active_vrfs_per_mpu() * g.lanes_per_vrf) as u64;
    let footprint = match config.mode {
        ExecutionMode::Baseline => kernel.baseline_footprint(),
        ExecutionMode::Mpu => 1.0,
    };
    let effective_n = (n as f64 * footprint).ceil() as u64;
    let instances = effective_n.div_ceil(wave_elems).max(1);
    // Iso-area: the Baseline chip spends no area on MPU front ends, so it
    // fits slightly more compute units in the same 4 cm² (the paper's
    // "reduction in datapath capacity for iso-area comparisons"). Half the
    // raw area bonus is credited, as part of the front-end storage reuses
    // in-memory arrays.
    let units = match config.mode {
        ExecutionMode::Mpu => g.mpus_per_chip as f64,
        ExecutionMode::Baseline => {
            let slice_mm2 = 400.0 / g.mpus_per_chip as f64;
            let fe_mm2 = pum_backend::area::FrontEndModel::default().total_area_mm2();
            g.mpus_per_chip as f64 * (1.0 + 0.5 * fe_mm2 / slice_mm2)
        }
    };
    let rounds = instances.div_ceil(g.mpus_per_chip as u64).max(1);
    // Time: instances spread over the chip's units; fractional occupancy
    // amortizes (waves pipeline across MPUs).
    let occupancy = (instances as f64 / units).max(1.0);
    let mut time_ns = wave.cycles as f64 * occupancy;

    // Energy: the simulated wave covers `member_count` VRFs; a real wave
    // activates `max_active_vrfs_per_mpu`. The host CPU (Baseline) is one
    // shared device: its energy follows chip time, not wave count.
    let width_scale = g.max_active_vrfs_per_mpu() as f64 / member_count as f64;
    let per_wave_energy = wave.energy.datapath_pj * width_scale
        + wave.energy.frontend_pj
        + wave.energy.transfer_pj * width_scale
        + wave.energy.offload_bus_pj;
    let mut energy_pj = per_wave_energy * instances as f64 + wave.energy.cpu_pj * occupancy;

    // External streaming for data beyond on-chip capacity (Duality Cache).
    let data_bytes = n as f64 * kernel.regs_per_elem() as f64 * 8.0 * footprint;
    let capacity = (g.mpus_per_chip as u64 * g.mem_bytes_per_mpu) as f64;
    let mut streaming_ns = 0.0;
    if data_bytes > capacity {
        let overflow = data_bytes - capacity;
        streaming_ns = overflow / config.offload.bus_bytes_per_cycle;
        time_ns += streaming_ns;
        energy_pj += overflow * config.offload.bus_pj_per_byte;
    }

    Ok(ChipRun {
        label: config.label(),
        kernel: kernel.name(),
        n,
        wave,
        instances,
        rounds,
        time_ns,
        energy_pj,
        streaming_ns,
        verified: true,
        ezpim_statements: built.ezpim_statements,
        isa_instructions: built.program.len(),
        tiers: mpu.tier_counts(),
    })
}

// ----- parallel sweep engine -------------------------------------------

/// Resolves the worker-thread count for a parallel sweep.
///
/// Priority: an explicit `requested` value, then the `MPU_JOBS`
/// environment variable, then [`std::thread::available_parallelism`].
/// Zero / unparsable values are ignored; the result is always ≥ 1.
pub fn effective_jobs(requested: Option<usize>) -> usize {
    requested
        .or_else(|| std::env::var("MPU_JOBS").ok().and_then(|v| v.parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(usize::from).unwrap_or(1))
}

/// Renders a panic payload as text (`&str` and `String` payloads pass
/// through; anything else becomes a placeholder).
fn panic_payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Panic-isolated core of the sweep engine: every closure call runs under
/// `catch_unwind`, so one poisoned item cannot tear down the worker pool —
/// the worker that caught it keeps claiming items and the rest of the
/// sweep completes. `Err` carries the raw panic payload for the caller to
/// type or re-raise.
fn parallel_map_caught<T, R, F>(
    items: Vec<T>,
    jobs: usize,
    f: F,
) -> Vec<Result<R, Box<dyn std::any::Any + Send>>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let run_one = |item: T| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
    let len = items.len();
    let jobs = jobs.clamp(1, len.max(1));
    if jobs <= 1 || len <= 1 {
        return items.into_iter().map(run_one).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    type Caught<R> = Result<R, Box<dyn std::any::Any + Send>>;
    let results: Mutex<Vec<(usize, Caught<R>)>> = Mutex::new(Vec::with_capacity(len));
    crossbeam::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                // The atomic index hands each slot to exactly one worker.
                if let Some(item) = slots[i].lock().take() {
                    let r = run_one(item);
                    results.lock().push((i, r));
                }
            });
        }
    })
    .expect("sweep scope failed despite per-item isolation");
    let mut pairs = results.into_inner();
    pairs.sort_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Applies `f` to every item on up to `jobs` worker threads, returning
/// results **in input order** (deterministic regardless of which thread
/// finishes first). Workers claim items from a shared atomic index, so an
/// expensive item never stalls the queue behind it.
///
/// A panicking closure no longer aborts the pool mid-sweep: the remaining
/// items still complete, then the first panic (in input order) is resumed
/// on the calling thread. Use [`parallel_map_isolated`] to receive a typed
/// per-item error instead.
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for caught in parallel_map_caught(items, jobs, f) {
        match caught {
            Ok(r) => out.push(r),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    out
}

/// [`parallel_map`] with per-item panic isolation: an item whose closure
/// panics yields [`SimError::WorkerPanic`] carrying its input-order index
/// and the panic payload, while every other item's result is returned
/// normally. The worker pool always survives.
pub fn parallel_map_isolated<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<Result<R, SimError>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_caught(items, jobs, f)
        .into_iter()
        .enumerate()
        .map(|(item, caught)| {
            caught.map_err(|payload| SimError::WorkerPanic {
                item,
                payload: panic_payload_text(payload.as_ref()),
            })
        })
        .collect()
}

/// One unit of a chip sweep: a kernel on one configuration.
pub struct SweepTask<'a> {
    /// Kernel to run.
    pub kernel: &'a dyn Kernel,
    /// Chip configuration.
    pub config: SimConfig,
    /// Problem size in elements.
    pub n: u64,
    /// Input-data seed.
    pub seed: u64,
}

/// Runs a batch of kernel-on-configuration tasks across worker threads.
///
/// * `jobs = None` resolves via [`effective_jobs`] (`MPU_JOBS`, then the
///   machine's core count).
/// * Results come back **in task order** and are bit-identical to running
///   [`run_kernel`] on each task serially: worker threads share only a
///   [`RecipePool`], which memoizes host-side recipe synthesis without
///   touching simulated statistics.
/// * A task whose worker closure panics yields
///   `HarnessError::Sim(SimError::WorkerPanic { .. })` for that task only;
///   the rest of the sweep completes (see [`parallel_map_isolated`]).
pub fn run_sweep_parallel(
    tasks: Vec<SweepTask<'_>>,
    jobs: Option<usize>,
) -> Vec<Result<ChipRun, HarnessError>> {
    let pool = Arc::new(RecipePool::new());
    let jobs = effective_jobs(jobs);
    parallel_map_isolated(tasks, jobs, |task| {
        run_kernel_pooled(task.kernel, &task.config, task.n, task.seed, Some(&pool))
    })
    .into_iter()
    .map(|caught| caught.unwrap_or_else(|panic| Err(HarnessError::Sim(panic))))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_kernels;
    use pum_backend::DatapathKind;

    #[test]
    fn vecadd_runs_verified_on_racer() {
        let kernels = all_kernels();
        let vecadd = kernels.iter().find(|k| k.name() == "vecadd").unwrap();
        let run =
            run_kernel(vecadd.as_ref(), &SimConfig::mpu(DatapathKind::Racer), 1 << 16, 42).unwrap();
        assert!(run.verified);
        assert!(run.time_ns > 0.0);
        assert!(run.energy_pj > 0.0);
        assert!(run.instances >= 1);
    }

    #[test]
    fn baseline_stencils_pay_footprint_inflation() {
        let kernels = all_kernels();
        let jacobi = kernels.iter().find(|k| k.name() == "jacobi1d").unwrap();
        let n = 1 << 20;
        let mpu = run_kernel(jacobi.as_ref(), &SimConfig::mpu(DatapathKind::Racer), n, 1).unwrap();
        let base =
            run_kernel(jacobi.as_ref(), &SimConfig::baseline(DatapathKind::Racer), n, 1).unwrap();
        assert!(base.instances >= 4 * mpu.instances - 4, "Toeplitz inflation");
    }

    #[test]
    fn a_panicking_item_is_typed_and_the_sweep_completes() {
        let out = parallel_map_isolated((0..32).collect::<Vec<u64>>(), 4, |v| {
            assert!(v != 13, "poisoned item");
            v * 2
        });
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                match r {
                    Err(SimError::WorkerPanic { item, payload }) => {
                        assert_eq!(*item, 13);
                        assert!(payload.contains("poisoned item"), "payload: {payload}");
                    }
                    other => panic!("expected WorkerPanic, got {other:?}"),
                }
            } else {
                assert_eq!(*r, Ok(i as u64 * 2), "healthy items must complete");
            }
        }
        // The serial path isolates identically.
        let serial = parallel_map_isolated(vec![0u64, 13, 2], 1, |v| {
            assert!(v != 13, "poisoned item");
            v
        });
        assert!(serial[0].is_ok() && serial[2].is_ok());
        assert!(matches!(serial[1], Err(SimError::WorkerPanic { item: 1, .. })));
    }

    #[test]
    fn parallel_map_resumes_the_first_panic_after_finishing() {
        let finished = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map((0..16).collect::<Vec<usize>>(), 4, |v| {
                if v == 3 || v == 7 {
                    panic!("item {v} down");
                }
                finished.fetch_add(1, Ordering::Relaxed);
                v
            })
        }));
        let payload = caught.expect_err("the panic must still surface");
        let text = super::panic_payload_text(payload.as_ref());
        assert_eq!(text, "item 3 down", "first panic in input order wins");
        assert_eq!(finished.load(Ordering::Relaxed), 14, "every healthy item completed");
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let out = parallel_map((0..64).collect::<Vec<u64>>(), 8, |v| v * 3);
        assert_eq!(out, (0..64).map(|v| v * 3).collect::<Vec<u64>>());
        // Degenerate pools: serial path and oversubscribed path agree.
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |v| v + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(vec![5], 16, |v| v + 1), vec![6]);
        assert_eq!(parallel_map(Vec::<u8>::new(), 4, |v| v), Vec::<u8>::new());
    }

    #[test]
    fn effective_jobs_prefers_explicit_over_env() {
        assert_eq!(effective_jobs(Some(3)), 3);
        assert!(effective_jobs(None) >= 1);
    }

    #[test]
    fn parallel_sweep_matches_serial_exactly() {
        // Every kernel on two datapaths × two modes, small n: the parallel
        // engine must reproduce the serial results bit for bit, in order.
        let kernels = all_kernels();
        let configs = [
            SimConfig::mpu(DatapathKind::Racer),
            SimConfig::baseline(DatapathKind::Racer),
            SimConfig::mpu(DatapathKind::Mimdram),
        ];
        let n = 1 << 10;
        let tasks: Vec<SweepTask<'_>> = kernels
            .iter()
            .flat_map(|k| {
                configs.iter().map(move |c| SweepTask {
                    kernel: k.as_ref(),
                    config: c.clone(),
                    n,
                    seed: 9,
                })
            })
            .collect();
        let serial: Vec<ChipRun> = kernels
            .iter()
            .flat_map(|k| configs.iter().map(move |c| run_kernel(k.as_ref(), c, n, 9).unwrap()))
            .collect();
        let parallel: Vec<ChipRun> =
            run_sweep_parallel(tasks, Some(4)).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s, p, "{} on {} diverged across the parallel path", s.kernel, s.label);
        }
    }

    #[test]
    fn traced_kernel_run_is_transparent_and_conserves() {
        let kernels = all_kernels();
        let dot = kernels.iter().find(|k| k.name() == "dot").unwrap();
        let config = SimConfig::mpu(DatapathKind::Racer);
        let log = EventLog::new();
        let traced = run_kernel_traced(dot.as_ref(), &config, 1 << 12, 42, &log).unwrap();
        let untraced = run_kernel(dot.as_ref(), &config, 1 << 12, 42).unwrap();
        // An armed tracer forces per-instruction fallback so every retired
        // instruction is observable, so the (host-side, non-architectural)
        // tier split legitimately differs; everything architectural must
        // still be bit-identical.
        assert_eq!(traced.tiers.0, 0, "an armed tracer must force per-instruction fallback");
        let mut normalized = traced.clone();
        normalized.tiers = untraced.tiers;
        assert_eq!(normalized, untraced, "tracing must not perturb the architectural ChipRun");
        let events = log.take();
        assert!(!events.is_empty());
        let profile = mastodon::Profile::build(&events);
        assert_eq!(profile.merged(), traced.wave, "profile must conserve the wave stats");
    }

    #[test]
    fn pool_counters_reconcile_under_parallel_sweeps() {
        // Satellite fix check: the shared RecipePool's template traffic is
        // observable and self-consistent across a parallel sweep — every
        // lookup is either a hit or a miss, none are lost to races, and
        // repeating the sweep over a warm pool turns all lookups into hits.
        let kernels = all_kernels();
        let pool = Arc::new(RecipePool::new());
        let config = SimConfig::mpu(DatapathKind::Racer);
        let run_all = || {
            let tasks: Vec<&dyn Kernel> = kernels.iter().map(|k| k.as_ref()).collect();
            for r in
                parallel_map(tasks, 4, |k| run_kernel_pooled(k, &config, 1 << 10, 5, Some(&pool)))
            {
                r.unwrap();
            }
        };
        run_all();
        let cold = pool.stats();
        assert!(cold.lookups > 0, "sweep must consult the pool");
        assert_eq!(cold.hits + cold.misses, cold.lookups, "no lookup may go unaccounted");
        assert!(cold.misses > 0, "a cold pool must synthesize templates");
        run_all();
        let warm = pool.stats();
        assert_eq!(warm.hits + warm.misses, warm.lookups);
        assert_eq!(
            warm.misses, cold.misses,
            "a warm pool must serve the repeat sweep entirely from memoized templates"
        );
        assert_eq!(warm.lookups, 2 * cold.lookups, "identical sweeps issue identical lookups");
    }

    #[test]
    fn duality_cache_streams_when_data_exceeds_capacity() {
        let kernels = all_kernels();
        let vecadd = kernels.iter().find(|k| k.name() == "vecadd").unwrap();
        // 3 regs × 8B × n > 12 × 16 MB when n = 1 << 24.
        let run =
            run_kernel(vecadd.as_ref(), &SimConfig::mpu(DatapathKind::DualityCache), 1 << 24, 7)
                .unwrap();
        assert!(run.streaming_ns > 0.0, "DC must stream overflow data");
        let racer =
            run_kernel(vecadd.as_ref(), &SimConfig::mpu(DatapathKind::Racer), 1 << 24, 7).unwrap();
        assert_eq!(racer.streaming_ns, 0.0, "RACER capacity suffices");
    }
}
