//! `LaneKernel`: a declarative description of a per-lane kernel, from
//! which programs, inputs, and golden expectations are derived.
//!
//! Every one of the sweep's per-lane kernels is data-parallel per lane (stencils
//! become per-lane once their shifted neighbor vectors are staged, which is
//! exactly how PUM lays out stencil data). A [`LaneKernel`] couples an
//! ezpim body with a per-lane reference function over the 16-register
//! file; the harness checks that the simulated bit-plane execution matches
//! the reference on every lane.

use crate::kernel::{gen_values, BuiltKernel, Kernel, KernelGroup, WorkProfile};
use ezpim::{Body, EzProgram};
use mpu_isa::RegId;
use pum_backend::Geometry;

/// Number of architectural registers a lane reference models.
pub const REGS: usize = 16;

/// Per-member generated inputs: `(reg, lane values)` pairs.
pub type MemberInputs = Vec<(u8, Vec<u64>)>;

/// A per-lane kernel specification. See module docs.
pub struct LaneKernel {
    /// Kernel name (figure x-axis label).
    pub name: &'static str,
    /// Kernel group.
    pub group: KernelGroup,
    /// Analytical-platform work profile.
    pub profile: WorkProfile,
    /// True for stencils: inputs are loaded into the staging VRF
    /// (`vrf + 1`) and copied in-program via a transfer ensemble.
    pub staged: bool,
    /// Generates `(reg, lane values)` inputs for one member.
    pub gen: fn(seed: u64, lanes: usize) -> MemberInputs,
    /// Emits the compute body.
    pub body: fn(&mut Body<'_>),
    /// Per-lane golden semantics over the register file.
    pub reference: fn(&mut [u64; REGS]),
    /// Registers holding the results to verify.
    pub outputs: &'static [u8],
    /// Input registers per element (footprint estimation).
    pub regs_per_elem: u32,
}

impl Kernel for LaneKernel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn group(&self) -> KernelGroup {
        self.group
    }

    fn regs_per_elem(&self) -> u32 {
        self.regs_per_elem
    }

    fn profile(&self) -> WorkProfile {
        self.profile
    }

    fn build(&self, geometry: &Geometry, members: &[(u16, u16)], seed: u64) -> BuiltKernel {
        let lanes = geometry.lanes_per_vrf;
        let mut ez = EzProgram::new();
        if self.staged {
            // Stage shifted/neighbor data from the staging VRF (vrf+1 of
            // the same RFH) into the compute VRF — the DTC work a PUM
            // stencil performs before computing.
            let pairs: Vec<(u16, u16)> = members.iter().map(|&(rfh, _)| (rfh, rfh)).collect();
            let sample = (self.gen)(seed, lanes);
            ez.transfer(&pairs, |t| {
                for (reg, _) in &sample {
                    // All members share vrf indices (harness convention).
                    let (_, vrf) = members[0];
                    t.memcpy(vrf + 1, RegId(*reg as u16), vrf, RegId(*reg as u16));
                }
            });
        }
        ez.ensemble(members, |b| (self.body)(b)).expect("kernel body must build");
        let program = ez.assemble().expect("kernel must assemble");

        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut expected = Vec::new();
        for (mi, &(rfh, vrf)) in members.iter().enumerate() {
            let data = (self.gen)(member_seed(seed, mi), lanes);
            // Golden model: per lane, run the reference over the register
            // file initialized with this member's inputs.
            let mut final_regs: Vec<[u64; REGS]> = Vec::with_capacity(lanes);
            for lane in 0..lanes {
                let mut regs = [0u64; REGS];
                for (reg, values) in &data {
                    regs[*reg as usize] = values[lane];
                }
                (self.reference)(&mut regs);
                final_regs.push(regs);
            }
            for &out in self.outputs {
                outputs.push((rfh, vrf, out));
                expected.push(final_regs.iter().map(|r| r[out as usize]).collect());
            }
            let input_vrf = if self.staged { vrf + 1 } else { vrf };
            for (reg, values) in data {
                inputs.push(((rfh, input_vrf, reg), values));
            }
        }
        BuiltKernel {
            program,
            members: members.to_vec(),
            inputs,
            outputs,
            expected,
            ezpim_statements: ez.statements(),
        }
    }
}

/// Derives the per-member data seed from the wave seed (golden-ratio
/// stream split, shared by every kernel so tests can reconstruct inputs).
pub fn member_seed(seed: u64, mi: usize) -> u64 {
    seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(mi as u64 + 1))
}

/// Helper for `gen` functions: a constant register (same value per lane).
pub fn const_reg(reg: u8, value: u64, lanes: usize) -> (u8, Vec<u64>) {
    (reg, vec![value; lanes])
}

/// Helper for `gen` functions: a random register with values in `0..max`.
pub fn rand_reg(reg: u8, seed: u64, lanes: usize, max: u64) -> (u8, Vec<u64>) {
    (reg, gen_values(seed ^ (reg as u64) << 56, lanes, max))
}

/// Helper for stencil `gen` functions: shifted views of one padded array.
/// Returns registers `base_reg + k` holding `x[i + offsets[k]]` where `x`
/// is a shared random array with halo padding.
pub fn shifted_regs(
    base_reg: u8,
    seed: u64,
    lanes: usize,
    offsets: &[i64],
    max: u64,
) -> Vec<(u8, Vec<u64>)> {
    let halo = offsets.iter().map(|o| o.unsigned_abs() as usize).max().unwrap_or(0);
    let padded = gen_values(seed, lanes + 2 * halo, max);
    offsets
        .iter()
        .enumerate()
        .map(|(k, &off)| {
            let values =
                (0..lanes).map(|i| padded[(i as i64 + halo as i64 + off) as usize]).collect();
            (base_reg + k as u8, values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifted_regs_are_views_of_one_array() {
        let regs = shifted_regs(0, 42, 10, &[-1, 0, 1], 100);
        assert_eq!(regs.len(), 3);
        let left = &regs[0].1;
        let center = &regs[1].1;
        let right = &regs[2].1;
        for i in 0..9 {
            assert_eq!(center[i + 1], right[i], "right shift aligns");
            assert_eq!(center[i], left[i + 1], "left shift aligns");
        }
    }

    #[test]
    fn const_and_rand_helpers() {
        let (r, v) = const_reg(3, 7, 5);
        assert_eq!(r, 3);
        assert_eq!(v, vec![7; 5]);
        let (_, v1) = rand_reg(0, 1, 50, 10);
        let (_, v2) = rand_reg(1, 1, 50, 10);
        assert!(v1.iter().all(|&x| x < 10));
        assert_ne!(v1, v2, "different registers draw different streams");
    }
}
