//! The five *complex* kernels — the group the paper names explicitly
//! (`manhattan`, `euclidean`, `ibert-sqrt`, `softmax`, `crc32`): dynamic
//! data-driven loops, heavy divisions, and per-bit branching that prior
//! PUM datapaths cannot execute without a host CPU.

use crate::kernel::{KernelGroup, WorkProfile};
use crate::lane::{const_reg, rand_reg, LaneKernel};
use ezpim::Cond;
use mpu_isa::RegId;
use pum_backend::semantics;

fn r(i: u16) -> RegId {
    RegId(i)
}

/// `manhattan`: L1 distance between two 4-component vectors per lane.
pub fn manhattan() -> LaneKernel {
    LaneKernel {
        name: "manhattan",
        group: KernelGroup::Complex,
        profile: WorkProfile {
            ops_per_elem: 12.0,
            bytes_per_elem: 72.0,
            kernel_launches: 1,
            gpu_efficiency: 0.45,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            (0..8u8).map(|i| rand_reg(i, seed ^ (i as u64 + 20), lanes, 1 << 31)).collect()
        },
        body: |b| {
            b.init0(r(8));
            for i in 0..4u16 {
                b.max(r(i), r(4 + i), r(9));
                b.min(r(i), r(4 + i), r(i));
                b.sub(r(9), r(i), r(9));
                b.add(r(8), r(9), r(8));
            }
        },
        reference: |regs| {
            let mut acc = 0u64;
            for i in 0..4 {
                acc = acc.wrapping_add(regs[i].abs_diff(regs[4 + i]));
            }
            regs[8] = acc;
        },
        outputs: &[8],
        regs_per_elem: 9,
    }
}

/// `euclidean`: squared L2 distance between two 3-component vectors.
pub fn euclidean() -> LaneKernel {
    LaneKernel {
        name: "euclidean",
        group: KernelGroup::Complex,
        profile: WorkProfile {
            ops_per_elem: 12.0,
            bytes_per_elem: 56.0,
            kernel_launches: 1,
            gpu_efficiency: 0.5,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            (0..6u8).map(|i| rand_reg(i, seed ^ (i as u64 + 30), lanes, 1 << 15)).collect()
        },
        body: |b| {
            b.init0(r(8));
            for i in 0..3u16 {
                b.max(r(i), r(3 + i), r(9));
                b.min(r(i), r(3 + i), r(i));
                b.sub(r(9), r(i), r(9));
                b.mac(r(9), r(9), r(8));
            }
        },
        reference: |regs| {
            let mut acc = 0u64;
            for i in 0..3 {
                let d = regs[i].abs_diff(regs[3 + i]);
                acc = acc.wrapping_add(semantics::mul32(d, d));
            }
            regs[8] = acc;
        },
        outputs: &[8],
        regs_per_elem: 7,
    }
}

/// `ibert-sqrt`: integer Newton square root with a data-driven `while`
/// loop (the paper's canonical dynamic-loop kernel).
pub fn ibert_sqrt() -> LaneKernel {
    LaneKernel {
        name: "ibert-sqrt",
        group: KernelGroup::Complex,
        profile: WorkProfile {
            ops_per_elem: 180.0, // several division-dominated iterations
            bytes_per_elem: 16.0,
            kernel_launches: 1,
            gpu_efficiency: 0.15,
            avg_trip_count: 16.0,
        },
        staged: false,
        gen: |seed, lanes| {
            let (reg, mut values) = rand_reg(0, seed, lanes, 1 << 30);
            for v in &mut values {
                *v = (*v).max(1); // sqrt of a positive integer
            }
            vec![(reg, values), const_reg(7, 2, lanes)]
        },
        body: |b| {
            // x = n; y = (x + n/x)/2; while (y < x) { x = y; recompute y }
            b.mov(r(0), r(1));
            b.qdiv(r(0), r(1), r(2));
            b.add(r(1), r(2), r(3));
            b.qdiv(r(3), r(7), r(4));
            b.while_loop(Cond::Lt(r(4), r(1)), |b| {
                b.mov(r(4), r(1));
                b.qdiv(r(0), r(1), r(2));
                b.add(r(1), r(2), r(3));
                b.qdiv(r(3), r(7), r(4));
            });
            b.mov(r(1), r(8));
        },
        reference: |regs| {
            let n = regs[0];
            let mut x = n;
            let mut y = (x + n / x) / 2;
            while y < x {
                x = y;
                y = (x + n / x) / 2;
            }
            regs[8] = x;
        },
        outputs: &[8],
        regs_per_elem: 2,
    }
}

/// `softmax`: fixed-point softmax over 4 logits per lane, with `2^x`
/// exponentials computed by per-lane dynamic loops.
pub fn softmax4() -> LaneKernel {
    LaneKernel {
        name: "softmax",
        group: KernelGroup::Complex,
        profile: WorkProfile {
            ops_per_elem: 60.0,
            bytes_per_elem: 64.0,
            kernel_launches: 2,
            gpu_efficiency: 0.25,
            avg_trip_count: 6.0,
        },
        staged: false,
        gen: |seed, lanes| {
            (0..4u8).map(|i| rand_reg(i, seed ^ (i as u64 + 40), lanes, 12)).collect()
        },
        body: |b| {
            // e_i = 2^{x_i} via counted loops; s = Σ e_i;
            // out_i = (e_i << 8) / s (Q8 fixed point).
            for i in 0..4u16 {
                b.init1(r(4 + i));
                b.for_loop(r(9), r(i), |b| {
                    b.lshift(r(4 + i), r(4 + i));
                });
            }
            b.init0(r(8));
            for i in 0..4u16 {
                b.add(r(8), r(4 + i), r(8));
            }
            for i in 0..4u16 {
                b.repeat(8, |b| {
                    b.lshift(r(4 + i), r(4 + i));
                });
                b.qdiv(r(4 + i), r(8), r(i));
            }
        },
        reference: |regs| {
            let e: Vec<u64> = (0..4).map(|i| 1u64 << regs[i]).collect();
            let s: u64 = e.iter().sum();
            for i in 0..4 {
                regs[i] = (e[i] << 8) / s;
            }
        },
        outputs: &[0, 1, 2, 3],
        regs_per_elem: 5,
    }
}

/// `crc32`: MSB-first CRC-32 (poly `0x04C11DB7`) of a 32-bit message per
/// lane — a branch per processed bit.
pub fn crc32() -> LaneKernel {
    LaneKernel {
        name: "crc32",
        group: KernelGroup::Complex,
        profile: WorkProfile {
            ops_per_elem: 96.0,
            bytes_per_elem: 16.0,
            kernel_launches: 1,
            gpu_efficiency: 0.05,
            avg_trip_count: 1.0,
        },
        staged: false,
        gen: |seed, lanes| {
            let (reg, mut values) = rand_reg(1, seed, lanes, 1 << 32);
            for v in &mut values {
                *v <<= 32; // message in the high half of the CRC register
            }
            vec![
                (reg, values),
                const_reg(2, 1 << 63, lanes),              // MSB mask
                const_reg(3, 0x04C1_1DB7u64 << 32, lanes), // polynomial
            ]
        },
        body: |b| {
            b.repeat(32, |b| {
                b.and(r(1), r(2), r(9));
                b.lshift(r(1), r(1));
                b.if_then(Cond::Eq(r(9), r(2)), |b| {
                    b.xor(r(1), r(3), r(1));
                });
            });
        },
        reference: |regs| {
            let mut crc = regs[1];
            for _ in 0..32 {
                let msb = crc & (1 << 63);
                crc <<= 1;
                if msb != 0 {
                    crc ^= 0x04C1_1DB7u64 << 32;
                }
            }
            regs[1] = crc;
        },
        outputs: &[1],
        regs_per_elem: 2,
    }
}
