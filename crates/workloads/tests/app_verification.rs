//! End-to-end application verification: the three §VIII-D applications
//! run on multi-MPU systems and match their golden models exactly.

use mastodon::SimConfig;
use pum_backend::DatapathKind;
use workloads::apps::{all_apps, run_app, App, BlackScholes, EditDistance, LlmEncode};

#[test]
fn black_scholes_verifies_on_racer() {
    let app = BlackScholes;
    let run = run_app(&app, &SimConfig::mpu(DatapathKind::Racer), app.default_mpus(), 3)
        .expect("BlackScholes");
    assert!(run.verified);
    assert!(run.stats.messages_sent >= 1, "CDF aggregation exchange");
    assert!(run.ezpim_statements < run.isa_instructions, "ezpim is terser (Table IV)");
}

#[test]
fn edit_distance_verifies_on_racer() {
    let app = EditDistance;
    let run = run_app(&app, &SimConfig::mpu(DatapathKind::Racer), app.default_mpus(), 4)
        .expect("EditDistance");
    assert!(run.verified);
    // 3×3 grid, 2 steps: plenty of systolic messages.
    assert!(run.stats.messages_sent >= 8, "systolic streaming");
}

#[test]
fn llm_encode_verifies_on_racer() {
    let app = LlmEncode;
    let run = run_app(&app, &SimConfig::mpu(DatapathKind::Racer), app.default_mpus(), 5)
        .expect("LLMEncode");
    assert!(run.verified);
    // broadcast + scatter + P2P + gather all send messages.
    let workers = app.default_mpus() - 1;
    assert!(run.stats.messages_sent as usize >= 3 * workers);
}

#[test]
fn apps_verify_on_mimdram() {
    for app in all_apps() {
        let run =
            run_app(app.as_ref(), &SimConfig::mpu(DatapathKind::Mimdram), app.default_mpus(), 6)
                .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        assert!(run.verified, "{}", app.name());
    }
}

#[test]
fn apps_verify_in_baseline_mode_and_pay_offloads() {
    for app in all_apps() {
        let base =
            run_app(app.as_ref(), &SimConfig::baseline(DatapathKind::Racer), app.default_mpus(), 7)
                .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        assert!(base.verified, "{}", app.name());
        let mpu =
            run_app(app.as_ref(), &SimConfig::mpu(DatapathKind::Racer), app.default_mpus(), 7)
                .unwrap();
        assert!(
            base.stats.cycles >= mpu.stats.cycles,
            "{}: Baseline ({}) should not beat MPU ({})",
            app.name(),
            base.stats.cycles,
            mpu.stats.cycles
        );
    }
}

#[test]
fn table4_rows_match_paper() {
    let rows: Vec<_> = all_apps().iter().map(|a| a.table4()).collect();
    assert_eq!(rows[0].paper_mpus, 130);
    assert_eq!(rows[1].paper_mpus, 2);
    assert_eq!(rows[2].paper_mpus, 23);
    assert!(rows[0].collectives.contains("broadcast"));
    assert!(rows[2].collectives.contains("systolic"));
}
