//! Full-matrix verification: all 28 kernels × {RACER, MIMDRAM, Duality
//! Cache} × {MPU, Baseline}, each executed gate-exactly on the bit-plane
//! substrate and checked lane-by-lane against golden references.

use mastodon::SimConfig;
use pum_backend::DatapathKind;
use workloads::{all_kernels, run_kernel, KernelGroup};

#[test]
fn all_kernels_verify_on_racer_mpu() {
    for kernel in all_kernels() {
        let run = run_kernel(kernel.as_ref(), &SimConfig::mpu(DatapathKind::Racer), 4096, 11)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
        assert!(run.verified, "{}", kernel.name());
        assert!(run.time_ns > 0.0, "{}", kernel.name());
    }
}

#[test]
fn all_kernels_verify_on_mimdram_mpu() {
    for kernel in all_kernels() {
        let run = run_kernel(kernel.as_ref(), &SimConfig::mpu(DatapathKind::Mimdram), 4096, 12)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
        assert!(run.verified, "{}", kernel.name());
    }
}

#[test]
fn all_kernels_verify_on_duality_cache_mpu() {
    for kernel in all_kernels() {
        let run =
            run_kernel(kernel.as_ref(), &SimConfig::mpu(DatapathKind::DualityCache), 4096, 13)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
        assert!(run.verified, "{}", kernel.name());
    }
}

#[test]
fn all_kernels_verify_on_racer_baseline() {
    for kernel in all_kernels() {
        let run = run_kernel(kernel.as_ref(), &SimConfig::baseline(DatapathKind::Racer), 4096, 14)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
        assert!(run.verified, "{}", kernel.name());
        // Kernels with data-driven control flow must have triggered host
        // offloads (mux-blend, manhattan and euclidean are in divergent
        // groups but lower to straight-line MUX/MAX/MIN code).
        let control_flow =
            ["threshold", "clamp", "absdiff", "quantize", "ibert-sqrt", "softmax", "crc32"];
        if control_flow.contains(&kernel.name()) {
            assert!(
                run.wave.offload_events > 0,
                "{} should offload in Baseline mode",
                kernel.name()
            );
        }
    }
}

#[test]
fn mpu_beats_baseline_on_control_heavy_kernels() {
    for kernel in all_kernels() {
        if kernel.group() != KernelGroup::Complex {
            continue;
        }
        let n = 1 << 16;
        let mpu = run_kernel(kernel.as_ref(), &SimConfig::mpu(DatapathKind::Racer), n, 15).unwrap();
        let base =
            run_kernel(kernel.as_ref(), &SimConfig::baseline(DatapathKind::Racer), n, 15).unwrap();
        assert!(
            base.time_ns > mpu.time_ns,
            "{}: baseline {} ns should exceed MPU {} ns",
            kernel.name(),
            base.time_ns,
            mpu.time_ns
        );
    }
}
