//! Differential verification of the PrIM kernel group: every kernel ×
//! 5 substrates × 3 execution tiers × optimizer-{on,off} must match the
//! plain-Rust oracle lane-exact (the harness compares every declared
//! output register on every lane against the golden reference).
//!
//! On top of the full matrix, proptest drives random seeds and problem
//! shapes (singleton, non-multiple-of-64, harness-minimum sizes), and
//! dedicated cases pin down the documented edge semantics: the all-false
//! `select` filter and duplicate `scatter` indices resolved
//! last-writer-wins.

use mastodon::SimConfig;
use proptest::prelude::*;
use pum_backend::{DatapathKind, OptConfig};
use workloads::{prim, run_kernel, Kernel};

/// The three execution tiers, pinned the same way the conformance
/// differential suite pins them.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Tier {
    Compiled,
    Interpreted,
    Trace,
}

const TIERS: [Tier; 3] = [Tier::Compiled, Tier::Interpreted, Tier::Trace];

fn config(kind: DatapathKind, tier: Tier, optimize: bool) -> SimConfig {
    let mut config = SimConfig::mpu(kind);
    config.interpret_recipes = tier == Tier::Interpreted;
    config.trace_ensembles = tier == Tier::Trace;
    if !optimize {
        config.datapath = config.datapath.clone().with_opt_config(OptConfig::disabled());
    }
    config
}

fn prim_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(prim::histogram()),
        Box::new(prim::spmv()),
        Box::new(prim::gather()),
        Box::new(prim::scatter()),
        Box::new(prim::select()),
        Box::new(prim::hashjoin()),
        Box::new(prim::prefixscan()),
    ]
}

fn check(kernel: &dyn Kernel, config: &SimConfig, n: u64, seed: u64, label: &str) {
    let run = run_kernel(kernel, config, n, seed)
        .unwrap_or_else(|e| panic!("{} [{label}]: {e}", kernel.name()));
    assert!(run.verified, "{} [{label}]: lane mismatch vs oracle", kernel.name());
}

/// The full matrix: 7 kernels × 5 backends × 3 tiers × optimizer on/off.
#[test]
fn full_matrix_matches_oracle() {
    let n = 256;
    for kernel in prim_kernels() {
        for kind in DatapathKind::ALL {
            for tier in TIERS {
                for optimize in [true, false] {
                    let label = format!("{kind:?}/{tier:?}/opt={optimize}");
                    check(kernel.as_ref(), &config(kind, tier, optimize), n, 7, &label);
                }
            }
        }
    }
}

/// Singleton and non-multiple-of-64 problem sizes exercise the harness's
/// ragged chunking on every kernel.
#[test]
fn odd_shapes_match_oracle() {
    for kernel in prim_kernels() {
        for n in [1, 63, 65, 4097] {
            check(kernel.as_ref(), &SimConfig::mpu(DatapathKind::Racer), n, 21, &format!("n={n}"));
        }
    }
}

/// An all-false filter must yield an all-zero flag and value column.
#[test]
fn all_false_select_matches_oracle() {
    for kind in DatapathKind::ALL {
        check(&prim::select_none(), &SimConfig::mpu(kind), 256, 3, "select-none");
    }
}

/// Duplicate scatter indices on every lane: the documented
/// last-writer-wins resolution (pair 1 overwrites pair 0) must hold on
/// every substrate and tier.
#[test]
fn duplicate_scatter_indices_are_last_writer_wins() {
    for kind in DatapathKind::ALL {
        for tier in TIERS {
            let label = format!("scatter-dup/{kind:?}/{tier:?}");
            check(&prim::scatter_dup(), &config(kind, tier, true), 256, 9, &label);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random seeds and shapes on the cheapest substrate, optimizer on
    /// and off: the oracle must hold for arbitrary input data.
    #[test]
    fn random_shapes_and_seeds_match_oracle(
        seed in any::<u64>(),
        n in 1u64..2048,
        optimize in any::<bool>(),
    ) {
        for kernel in prim_kernels() {
            let config = config(DatapathKind::Racer, Tier::Compiled, optimize);
            check(kernel.as_ref(), &config, n, seed, "proptest");
        }
    }
}
