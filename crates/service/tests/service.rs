//! Integration tests for the resilient service: admission, deadlines,
//! cancellation, retry exhaustion, panic isolation, checkpoint
//! preemption, chaos worker kills, and the Unix-socket protocol.

use pum_backend::DatapathKind;
use service::{
    server, AdmitError, FaultRequest, JobError, JobPhase, JobSpec, Priority, ProgramSource,
    Service, ServiceConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ADD: &str = "ensemble h0.v0 {\n  add r0 r1 r2\n}";

/// A program of `ensembles` top-level compute ensembles, each running a
/// dynamic `for` loop of `r1` (lane 0) iterations that accumulates +1
/// into r2. Crosses a RunControl boundary per ensemble, so it is
/// cancellable/preemptible mid-run; total work scales with
/// `ensembles * iters` and the final r2 lane-0 value is exactly
/// `ensembles * iters` — a resume-correctness oracle.
fn slow_text(ensembles: usize) -> String {
    let mut s = String::new();
    for _ in 0..ensembles {
        s.push_str("ensemble h0.v0 {\n  for r0 < r1 {\n    add r2 r3 r2\n  }\n}\n");
    }
    s
}

/// A service config whose submission ceilings admit the deliberately
/// oversized slow programs used by the cancellation/preemption tests.
fn roomy_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        limits: service::SubmissionLimits {
            max_program_instructions: 1 << 16,
            max_statements: 1 << 14,
            max_dynamic_loops: 1 << 12,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn slow_spec(tenant: &str, ensembles: usize, iters: u64) -> JobSpec {
    let mut spec = JobSpec::ez(tenant, DatapathKind::Racer, &slow_text(ensembles));
    spec.inputs.push(service::RegInit { rfh: 0, vrf: 0, reg: 1, values: vec![iters] });
    spec.inputs.push(service::RegInit { rfh: 0, vrf: 0, reg: 3, values: vec![1] });
    spec.outputs.push(service::RegRef { rfh: 0, vrf: 0, reg: 2 });
    spec
}

fn add_spec(tenant: &str) -> JobSpec {
    let mut spec = JobSpec::ez(tenant, DatapathKind::Racer, ADD);
    spec.inputs.push(service::RegInit { rfh: 0, vrf: 0, reg: 0, values: vec![20] });
    spec.inputs.push(service::RegInit { rfh: 0, vrf: 0, reg: 1, values: vec![22] });
    spec.outputs.push(service::RegRef { rfh: 0, vrf: 0, reg: 2 });
    spec
}

#[test]
fn happy_path_computes_and_reports_stats() {
    let service = Service::start(ServiceConfig { workers: 2, ..Default::default() });
    let id = service.submit(add_spec("alice")).unwrap();
    let outcome = service.wait(id).unwrap();
    let result = outcome.result.expect("job succeeds");
    assert_eq!(result.outputs[0].values[0], 42);
    assert!(result.cycles > 0);
    assert!(result.instructions > 0);
    assert_eq!(outcome.attempts, 1);
    assert_eq!(outcome.tenant, "alice");
    let health = service.health();
    assert_eq!(health.completed, 1);
    assert_eq!(health.failed, 0);
    service.shutdown();
}

#[test]
fn wait_on_unknown_job_returns_none() {
    let service = Service::start(ServiceConfig { workers: 1, ..Default::default() });
    assert!(service.wait(999).is_none());
    assert!(service.status(999).is_none());
    service.shutdown();
}

#[test]
fn parse_errors_are_rejected_at_admission() {
    let service = Service::start(ServiceConfig { workers: 1, ..Default::default() });
    let err = service
        .submit(JobSpec::ez("alice", DatapathKind::Racer, "ensemble h0.v0 {\n  frobnicate\n}"))
        .unwrap_err();
    assert!(matches!(err, AdmitError::ParseError { .. }), "got {err:?}");
    service.shutdown();
}

#[test]
fn quota_queue_and_shed_ladder() {
    // No workers: nothing drains, so admission pressure is deterministic.
    let config =
        ServiceConfig { workers: 0, queue_capacity: 4, tenant_quota: 2, ..Default::default() };
    let service = Service::start(config);

    service.submit(add_spec("a")).unwrap();
    service.submit(add_spec("a")).unwrap();
    let err = service.submit(add_spec("a")).unwrap_err();
    assert!(
        matches!(&err, AdmitError::TenantQuotaExceeded { tenant, quota: 2 } if tenant == "a"),
        "got {err:?}"
    );

    // Occupancy 2/4 = 50%: still healthy, a third tenant fits.
    service.submit(add_spec("b")).unwrap();
    // 3/4 = 75%: degraded — Low is shed, Normal still passes.
    let err = service.submit(JobSpec { priority: Priority::Low, ..add_spec("c") }).unwrap_err();
    assert!(matches!(err, AdmitError::LoadShed { .. }), "got {err:?}");
    assert!(service.health().shed >= 1);
    service.submit(add_spec("c")).unwrap();
    // 4/4: critical — even High is admitted past the shed gate but hits
    // the hard capacity wall.
    let err = service.submit(JobSpec { priority: Priority::High, ..add_spec("d") }).unwrap_err();
    assert!(matches!(err, AdmitError::QueueFull { capacity: 4 }), "got {err:?}");

    // Graceful shutdown drains the queue as typed cancellations.
    let ids: Vec<_> = (1..=4).collect();
    service.shutdown();
    for id in ids {
        let outcome = service.wait(id).unwrap();
        assert!(matches!(outcome.result, Err(JobError::Cancelled)), "job {id}");
    }
    let err = service.submit(add_spec("e")).unwrap_err();
    assert!(matches!(err, AdmitError::ShuttingDown));
}

#[test]
fn queued_deadline_expires_without_a_worker() {
    let service = Service::start(ServiceConfig { workers: 0, ..Default::default() });
    let mut spec = add_spec("alice");
    spec.deadline_ms = Some(10);
    let id = service.submit(spec).unwrap();
    let outcome = service.wait(id).unwrap();
    assert!(matches!(outcome.result, Err(JobError::DeadlineExceeded)), "got {outcome:?}");
    service.shutdown();
}

#[test]
fn running_deadline_cancels_at_a_boundary() {
    let service = Service::start(roomy_config(1));
    let mut spec = slow_spec("alice", 400, 400);
    spec.deadline_ms = Some(30);
    let started = Instant::now();
    let id = service.submit(spec).unwrap();
    let outcome = service.wait(id).unwrap();
    assert!(matches!(outcome.result, Err(JobError::DeadlineExceeded)), "got {outcome:?}");
    // Cooperative cancellation, not a hang: terminates well before the
    // program would have finished.
    assert!(started.elapsed() < Duration::from_secs(20));
    service.shutdown();
}

#[test]
fn cancel_stops_a_running_job() {
    let service = Service::start(roomy_config(1));
    let id = service.submit(slow_spec("alice", 400, 400)).unwrap();
    // Wait until it is actually claimed.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.status(id) != Some(JobPhase::Running) {
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(service.cancel(id));
    let outcome = service.wait(id).unwrap();
    assert!(matches!(outcome.result, Err(JobError::Cancelled)), "got {outcome:?}");
    // Cancelling a terminal job is a no-op.
    assert!(!service.cancel(id));
    service.shutdown();
}

#[test]
fn runaway_program_is_fenced_by_the_watchdog() {
    let service = Service::start(ServiceConfig { workers: 1, ..Default::default() });
    // r1 never satisfied: `while r0 < r1` with r1 = lane count ceiling —
    // loop body does not touch r0, so the EFI spins until the in-ensemble
    // instruction watchdog trips.
    let text = "ensemble h0.v0 {\n  while r0 < r1 {\n    add r2 r3 r2\n  }\n}";
    let mut spec = JobSpec::ez("alice", DatapathKind::Racer, text);
    spec.inputs.push(service::RegInit { rfh: 0, vrf: 0, reg: 1, values: vec![5] });
    spec.inputs.push(service::RegInit { rfh: 0, vrf: 0, reg: 3, values: vec![1] });
    let id = service.submit(spec).unwrap();
    let outcome = service.wait(id).unwrap();
    assert!(matches!(outcome.result, Err(JobError::RunawayProgram)), "got {outcome:?}");
    service.shutdown();
}

#[test]
fn fault_storm_exhausts_the_retry_budget() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        retry_budget: 2,
        backoff_base_ms: 1,
        backoff_max_ms: 4,
        ..Default::default()
    });
    let mut spec = add_spec("alice");
    // Saturating fault rate: every machine-level retry and restart also
    // faults, so every service-level attempt fails.
    spec.fault = Some(FaultRequest { seed: 7, transient_rate: 1.0 });
    let id = service.submit(spec).unwrap();
    let outcome = service.wait(id).unwrap();
    match outcome.result {
        Err(JobError::FaultBudgetExhausted { attempts, ref last }) => {
            assert_eq!(attempts, 3, "1 initial + 2 retries");
            assert!(!last.is_empty());
        }
        other => panic!("got {other:?}"),
    }
    assert_eq!(outcome.attempts, 3);
    let health = service.health();
    assert!(health.fault_retries >= 3);
    service.shutdown();
}

#[test]
fn poison_job_is_isolated_and_the_worker_survives() {
    let service = Service::start(ServiceConfig { workers: 1, ..Default::default() });
    let mut poison = JobSpec::ez("mallory", DatapathKind::Racer, ADD);
    poison.program = ProgramSource::PoisonPanic;
    let id = service.submit(poison).unwrap();
    let outcome = service.wait(id).unwrap();
    match outcome.result {
        Err(JobError::WorkerPanic { ref payload }) => {
            assert!(payload.contains("detonated"), "payload: {payload}");
        }
        other => panic!("got {other:?}"),
    }
    // The worker that caught the panic still serves the next tenant.
    let id = service.submit(add_spec("alice")).unwrap();
    let outcome = service.wait(id).unwrap();
    assert_eq!(outcome.result.unwrap().outputs[0].values[0], 42);
    let health = service.health();
    assert_eq!(health.workers_alive, 1);
    assert_eq!(health.worker_deaths, 0);
    service.shutdown();
}

#[test]
fn high_priority_preempts_and_the_victim_resumes_exactly() {
    let service = Service::start(roomy_config(1));
    let ensembles = 300;
    let iters = 300;
    let mut low = slow_spec("batch", ensembles, iters);
    low.priority = Priority::Low;
    let low_id = service.submit(low).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.status(low_id) != Some(JobPhase::Running) {
        assert!(Instant::now() < deadline, "low job never started");
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut high = add_spec("interactive");
    high.priority = Priority::High;
    let high_id = service.submit(high).unwrap();
    let high_out = service.wait(high_id).unwrap();
    assert_eq!(high_out.result.unwrap().outputs[0].values[0], 42);

    let low_out = service.wait(low_id).unwrap();
    assert!(low_out.preemptions >= 1, "low job was never preempted");
    // Byte-identical resume: the accumulator is exact despite the
    // checkpoint round-trip.
    let result = low_out.result.expect("victim completes after resume");
    assert_eq!(result.outputs[0].values[0], ensembles as u64 * iters);
    assert!(service.health().preemptions >= 1);
    service.shutdown();
}

#[test]
fn chaos_kill_is_survived_and_the_worker_respawns() {
    let service = Service::start(roomy_config(1));
    let id = service.submit(slow_spec("alice", 50, 100)).unwrap();
    std::thread::sleep(Duration::from_millis(2));
    service.chaos_kill_worker();
    // Whether the kill lands idle, at claim, or after the claim (orphaning
    // the job for the watchdog), the job must still reach its outcome and
    // the pool must heal.
    let outcome = service.wait(id).unwrap();
    let result = outcome.result.expect("job completes despite the kill");
    assert_eq!(result.outputs[0].values[0], 50 * 100);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = service.health();
        if health.worker_deaths == 1 && health.workers_alive == 1 {
            assert_eq!(health.workers_spawned, 2);
            break;
        }
        assert!(Instant::now() < deadline, "worker never respawned: {health:?}");
        std::thread::sleep(Duration::from_millis(2));
    }
    service.shutdown();
}

#[test]
fn socket_end_to_end() {
    let path = std::env::temp_dir().join(format!("mpud-test-{}.sock", std::process::id()));
    let service = Arc::new(Service::start(ServiceConfig { workers: 1, ..Default::default() }));
    let handle = server::serve_unix(&path, Arc::clone(&service)).unwrap();

    let mut client = server::ServiceClient::connect(&path).unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.workers_alive, 1);

    let id = client.submit(&add_spec("remote")).unwrap();
    let outcome = client.wait(id).unwrap();
    assert_eq!(outcome.result.unwrap().outputs[0].values[0], 42);
    assert_eq!(client.status(id).unwrap(), JobPhase::Done);

    // Typed admission rejection crosses the wire.
    let err = client
        .submit(&JobSpec::ez("remote", DatapathKind::Racer, "ensemble h0.v0 {\n  frobnicate\n}"))
        .unwrap_err();
    assert_eq!(err.kind, "parse_error");

    // A second connection sees the same service.
    let mut other = server::ServiceClient::connect(&path).unwrap();
    assert!(other.wait(id).unwrap().result.is_ok());

    client.shutdown().unwrap();
    handle.join();
    let err = service.submit(add_spec("late")).unwrap_err();
    assert!(matches!(err, AdmitError::ShuttingDown));
}
