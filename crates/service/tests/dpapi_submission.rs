//! Frontend-built programs as service submissions: dpapi pipelines are
//! lowered to ezpim text, submitted to `mpud` as ordinary jobs (program
//! text + register inits + output refs), and the read-back registers
//! reproduce the pipeline's plain-Rust oracle — the client workflow the
//! data-parallel frontend exists to serve.

use dpapi::{MapOp, Pipeline, Pred, ReduceOp};
use pum_backend::DatapathKind;
use service::{JobSpec, RegInit, RegRef, Service, ServiceConfig};

const LANES: usize = 64;

/// Builds the submission for a lowered single-member (h0.v0) pipeline:
/// ezpim program text, the frontend's register layout as inputs, and its
/// output registers as read-back refs. `data` must fill the 64-lane VRF
/// exactly (one element per lane, the SEG=1 flag-path layout).
fn pipeline_spec(tenant: &str, pipeline: &Pipeline, data: &[u64]) -> JobSpec {
    let lowered = pipeline.lower().expect("pipeline lowers");
    assert_eq!(lowered.seg, 1, "flag-path pipelines hold one element per lane");
    assert_eq!(data.len(), LANES, "data must fill the member's lanes");
    let members = [(0u16, 0u16)];
    let mut spec = JobSpec::ez(tenant, DatapathKind::Racer, &lowered.ezpim_text(&members));
    spec.inputs.push(RegInit {
        rfh: 0,
        vrf: 0,
        reg: lowered.data[0].0 as u8,
        values: data.to_vec(),
    });
    for &(c, v) in &lowered.consts {
        spec.inputs.push(RegInit { rfh: 0, vrf: 0, reg: c.0 as u8, values: vec![v; LANES] });
    }
    if let Some(v) = lowered.valid {
        spec.inputs.push(RegInit { rfh: 0, vrf: 0, reg: v.0 as u8, values: vec![1; LANES] });
    }
    for (rfh, vrf, reg) in lowered.output_regs(&members) {
        spec.outputs.push(RegRef { rfh, vrf, reg });
    }
    spec
}

#[test]
fn filter_pipeline_submission_reproduces_the_oracle() {
    let pipeline = Pipeline::new().map(MapOp::And(7)).filter(Pred::Gt(3));
    let data: Vec<u64> = (0..LANES as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
    let spec = pipeline_spec("dpapi", &pipeline, &data);

    let service = Service::start(ServiceConfig { workers: 1, ..Default::default() });
    let id = service.submit(spec).unwrap();
    let outcome = service.wait(id).unwrap();
    service.shutdown();
    let result = outcome.result.expect("pipeline job succeeds");

    // output_regs order: the data segment (d0), then the keep flag.
    let d0 = &result.outputs[0].values;
    let flag = &result.outputs[1].values;
    let survivors: Vec<u64> =
        flag.iter().zip(d0).filter(|(f, _)| **f == 1).map(|(_, v)| *v).collect();
    assert_eq!(survivors, pipeline.oracle(&data, &[]).unwrap().values);
}

#[test]
fn count_pipeline_submission_reproduces_the_oracle() {
    // The doc-example histogram bin, submitted over the wire: how many
    // values land in bin 3?
    let pipeline = Pipeline::new().map(MapOp::And(3)).filter(Pred::Eq(3)).reduce(ReduceOp::Count);
    let data: Vec<u64> = (0..LANES as u64).map(|i| i.rotate_left(11) ^ 0x5bd1_e995).collect();
    let spec = pipeline_spec("dpapi", &pipeline, &data);

    let service = Service::start(ServiceConfig { workers: 1, ..Default::default() });
    let id = service.submit(spec).unwrap();
    let outcome = service.wait(id).unwrap();
    service.shutdown();
    let result = outcome.result.expect("pipeline job succeeds");

    // Flagged Count leaves the 0/1 keep flag in d0; the host folds lanes.
    let count: u64 = result.outputs[0].values.iter().sum();
    assert_eq!(Some(count), pipeline.oracle(&data, &[]).unwrap().reduced);
}
