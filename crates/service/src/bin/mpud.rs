//! `mpud` — the MPU simulation daemon.
//!
//! Serves the resilient multi-tenant simulation service on a Unix
//! socket. Clients speak the length-prefixed `microjson` protocol (see
//! `service::proto`); `service::server::ServiceClient` is a ready-made
//! blocking client.
//!
//! ```text
//! mpud --socket /tmp/mpud.sock --workers 4
//! ```

use service::{server, Service, ServiceConfig};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

const USAGE: &str = "usage: mpud [--socket PATH] [--workers N] [--queue-capacity N] \
[--tenant-quota N] [--retry-budget N] [--no-preemption]";

fn parse_num(flag: &str, value: Option<String>) -> usize {
    match value.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("mpud: {flag} needs a number\n{USAGE}");
            exit(2);
        }
    }
}

fn main() {
    let mut socket = PathBuf::from("/tmp/mpud.sock");
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(p) => socket = PathBuf::from(p),
                None => {
                    eprintln!("mpud: --socket needs a path\n{USAGE}");
                    exit(2);
                }
            },
            "--workers" => config.workers = parse_num("--workers", args.next()),
            "--queue-capacity" => {
                config.queue_capacity = parse_num("--queue-capacity", args.next());
            }
            "--tenant-quota" => config.tenant_quota = parse_num("--tenant-quota", args.next()),
            "--retry-budget" => {
                config.retry_budget = parse_num("--retry-budget", args.next()) as u32;
            }
            "--no-preemption" => config.preemption = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("mpud: unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
    }

    let service = Arc::new(Service::start(config.clone()));
    let handle = match server::serve_unix(&socket, Arc::clone(&service)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("mpud: cannot bind {}: {e}", socket.display());
            exit(1);
        }
    };
    eprintln!(
        "mpud: serving on {} ({} workers, queue {}, quota {}/tenant)",
        socket.display(),
        config.workers,
        config.queue_capacity,
        config.tenant_quota
    );
    // A `shutdown` request stops the service and the accept loop.
    handle.join();
    eprintln!("mpud: shut down");
}
