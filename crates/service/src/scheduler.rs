//! The resilient multi-tenant scheduler: worker pool, admission,
//! deadlines, retry/backoff, checkpoint preemption, and chaos hooks.
//!
//! ## Structure
//!
//! One [`Service`] owns a worker-thread pool sharing a warm
//! [`mastodon::RecipePool`] (recipe synthesis is paid once per
//! instruction shape across all tenants) and a watchdog thread. All
//! mutable state lives behind a single mutex — workers hold it only to
//! claim and publish jobs, never while simulating — with two condvars:
//! `work_cv` wakes workers, `done_cv` wakes outcome waiters.
//!
//! ## Resilience invariants
//!
//! * Every admitted job reaches exactly one terminal [`JobOutcome`] —
//!   through completion, typed failure, deadline cancellation, retry
//!   exhaustion, worker panic, or worker loss. Nothing is dropped.
//! * A panicking job (`catch_unwind`) costs the service one typed
//!   outcome, never a worker.
//! * A chaos-killed worker is detected by the watchdog, its orphaned job
//!   requeued (bounded by the retry budget), and a replacement thread
//!   spawned.
//! * Deadlines and cancellation are cooperative: a
//!   [`mastodon::RunControl`] is polled at compute-ensemble boundaries,
//!   so cancellation never corrupts in-flight ensemble state.
//! * Preemption is checkpoint-based: the preempted job resumes
//!   byte-identically (VRFs, statistics, recipe-cache state) in whatever
//!   worker picks it up next.

use crate::health::{HealthReport, HealthState};
use crate::job::{
    FaultRequest, JobError, JobId, JobOutcome, JobPhase, JobResult, JobSpec, Priority,
    ProgramSource, RegInit, RegRef,
};
use crate::limits::{build_program, AdmitError, SubmissionLimits};
use crate::queue::AdmissionQueue;
use mastodon::{MpuCheckpoint, Redundancy, RunControl, SimConfig, SimError, StepEvent};
use mpu_isa::{MpuId, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Maximum live (queued + running + backoff) jobs per tenant.
    pub tenant_quota: usize,
    /// Per-job resource ceilings.
    pub limits: SubmissionLimits,
    /// Extra runs allowed after the first (fault retries and worker-loss
    /// reruns each consume one).
    pub retry_budget: u32,
    /// Base retry backoff, milliseconds (doubles per retry).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds (jitter is added on top).
    pub backoff_max_ms: u64,
    /// Allow high-priority submissions to checkpoint-preempt running
    /// lower-priority jobs when no worker is idle.
    pub preemption: bool,
    /// Recent-fault-retry pressure at which health degrades.
    pub degrade_threshold: u32,
    /// Recent-fault-retry pressure at which health turns critical.
    pub critical_threshold: u32,
    /// Seed for backoff jitter (determinism under test).
    pub seed: u64,
    /// Watchdog poll interval, milliseconds.
    pub watchdog_poll_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            tenant_quota: 16,
            limits: SubmissionLimits::default(),
            retry_budget: 3,
            backoff_base_ms: 2,
            backoff_max_ms: 50,
            preemption: true,
            degrade_threshold: 4,
            critical_threshold: 12,
            seed: 0x5EED,
            watchdog_poll_ms: 2,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    completed: u64,
    failed: u64,
    preemptions: u64,
    shed: u64,
    fault_retries: u64,
    worker_deaths: u64,
    workers_spawned: u64,
}

#[derive(Debug)]
struct JobRecord {
    tenant: String,
    priority: Priority,
    program: Arc<Program>,
    inputs: Vec<RegInit>,
    outputs: Vec<RegRef>,
    poison: bool,
    fault: Option<FaultRequest>,
    /// Pinned at admission (including any degradation-tier fallback) so
    /// checkpoints taken under it always import back into an equal
    /// configuration.
    base_config: SimConfig,
    submitted: Instant,
    deadline: Option<Instant>,
    phase: JobPhase,
    /// Runs started (incremented on each fresh claim, not on resume).
    attempts: u32,
    /// Worker-loss reruns (bounded by the retry budget).
    losses: u32,
    preemptions: u32,
    ctrl: Option<Arc<RunControl>>,
    checkpoint: Option<Box<MpuCheckpoint>>,
    cancel_requested: bool,
    deadline_fired: bool,
    worker: Option<usize>,
    outcome: Option<JobOutcome>,
}

struct State {
    queue: AdmissionQueue,
    jobs: HashMap<JobId, JobRecord>,
    next_job: JobId,
    tenants: HashMap<String, usize>,
    rng: StdRng,
    running: usize,
    workers_alive: usize,
    dead_workers: Vec<usize>,
    counters: Counters,
    recent_fault_retries: u32,
    last_decay: Instant,
    shutting_down: bool,
}

struct Shared {
    config: ServiceConfig,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    kill_requests: AtomicUsize,
    shutdown: AtomicBool,
    pool: Arc<mastodon::RecipePool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    next_worker: AtomicUsize,
}

/// Handle to a running service. Clone-free: share via [`Arc`].
pub struct Service {
    shared: Arc<Shared>,
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl Service {
    /// Starts the worker pool and watchdog.
    pub fn start(config: ServiceConfig) -> Self {
        let workers = config.workers;
        let seed = config.seed;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: AdmissionQueue::new(config.queue_capacity),
                jobs: HashMap::new(),
                next_job: 1,
                tenants: HashMap::new(),
                rng: StdRng::seed_from_u64(seed ^ 0xBACC0FF),
                running: 0,
                workers_alive: 0,
                dead_workers: Vec::new(),
                counters: Counters::default(),
                recent_fault_retries: 0,
                last_decay: Instant::now(),
                shutting_down: false,
            }),
            config,
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            kill_requests: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            pool: Arc::new(mastodon::RecipePool::new()),
            threads: Mutex::new(Vec::new()),
            next_worker: AtomicUsize::new(0),
        });
        for _ in 0..workers {
            spawn_worker(&shared);
        }
        {
            let for_thread = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("service-watchdog".into())
                .spawn(move || watchdog_loop(&for_thread))
                .expect("spawn watchdog");
            shared.threads.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
        }
        Service { shared }
    }

    /// Validates and admits a job; returns its id or a typed rejection.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, AdmitError> {
        let cfg = &self.shared.config;
        let geometry = SimConfig::mpu(spec.backend).datapath.geometry();
        let program = Arc::new(build_program(&spec, &cfg.limits, &geometry)?);

        let mut st = lock(&self.shared);
        if st.shutting_down {
            return Err(AdmitError::ShuttingDown);
        }
        let health = health_state(&st, cfg);
        let min_priority = match health {
            HealthState::Healthy => Priority::Low,
            HealthState::Degraded => Priority::Normal,
            HealthState::Critical => Priority::High,
        };
        if spec.priority < min_priority {
            st.counters.shed += 1;
            return Err(AdmitError::LoadShed { health, min_priority });
        }
        let live = st.tenants.get(&spec.tenant).copied().unwrap_or(0);
        if live >= cfg.tenant_quota {
            return Err(AdmitError::TenantQuotaExceeded {
                tenant: spec.tenant,
                quota: cfg.tenant_quota,
            });
        }
        if st.queue.is_full() {
            return Err(AdmitError::QueueFull { capacity: st.queue.capacity() });
        }

        let id = st.next_job;
        st.next_job += 1;
        let now = Instant::now();
        let base_config = job_config(&spec, &cfg.limits, health != HealthState::Healthy);
        let record = JobRecord {
            tenant: spec.tenant.clone(),
            priority: spec.priority,
            program,
            inputs: spec.inputs,
            outputs: spec.outputs,
            poison: matches!(spec.program, ProgramSource::PoisonPanic),
            fault: spec.fault,
            base_config,
            submitted: now,
            deadline: spec.deadline_ms.map(|ms| now + Duration::from_millis(ms)),
            phase: JobPhase::Queued,
            attempts: 0,
            losses: 0,
            preemptions: 0,
            ctrl: None,
            checkpoint: None,
            cancel_requested: false,
            deadline_fired: false,
            worker: None,
            outcome: None,
        };
        let priority = record.priority;
        st.jobs.insert(id, record);
        *st.tenants.entry(spec.tenant).or_insert(0) += 1;
        st.queue.push(id, priority, None);

        if cfg.preemption && st.workers_alive.saturating_sub(st.running) == 0 {
            // No idle worker: preempt the lowest-priority running job
            // strictly below the new one (newest such victim first, so
            // older work keeps its progress).
            let victim = st
                .jobs
                .iter()
                .filter(|(_, r)| {
                    r.phase == JobPhase::Running
                        && r.priority < priority
                        && !r.cancel_requested
                        && r.ctrl.is_some()
                })
                .max_by_key(|(vid, r)| (std::cmp::Reverse(r.priority), **vid))
                .map(|(vid, _)| *vid);
            if let Some(vid) = victim {
                if let Some(ctrl) = st.jobs[&vid].ctrl.as_ref() {
                    ctrl.request_preempt();
                }
            }
        }

        self.shared.work_cv.notify_all();
        Ok(id)
    }

    /// Current lifecycle phase, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobPhase> {
        lock(&self.shared).jobs.get(&id).map(|r| r.phase)
    }

    /// The outcome if the job is terminal, without blocking.
    pub fn try_outcome(&self, id: JobId) -> Option<JobOutcome> {
        lock(&self.shared).jobs.get(&id).and_then(|r| r.outcome.clone())
    }

    /// Blocks until the job is terminal; `None` for an unknown id.
    pub fn wait(&self, id: JobId) -> Option<JobOutcome> {
        let mut st = lock(&self.shared);
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(rec) => {
                    if let Some(out) = &rec.outcome {
                        return Some(out.clone());
                    }
                }
            }
            let (g, _) = self
                .shared
                .done_cv
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
    }

    /// Cancels a live job. Queued jobs terminate immediately; running
    /// jobs terminate at their next compute-ensemble boundary. Returns
    /// `false` for unknown or already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = lock(&self.shared);
        let st_ref = &mut *st;
        let Some(rec) = st_ref.jobs.get_mut(&id) else { return false };
        if rec.outcome.is_some() {
            return false;
        }
        rec.cancel_requested = true;
        match rec.phase {
            JobPhase::Queued | JobPhase::Backoff => {
                st_ref.queue.remove(id);
                publish(
                    &mut st_ref.counters,
                    &mut st_ref.tenants,
                    rec,
                    id,
                    Err(JobError::Cancelled),
                );
                self.shared.done_cv.notify_all();
            }
            JobPhase::Running => {
                if let Some(ctrl) = rec.ctrl.as_ref() {
                    ctrl.request_cancel();
                }
            }
            JobPhase::Done => return false,
        }
        true
    }

    /// Operator health snapshot.
    pub fn health(&self) -> HealthReport {
        let st = lock(&self.shared);
        let cfg = &self.shared.config;
        HealthReport {
            state: health_state(&st, cfg),
            queued: st.queue.len(),
            capacity: st.queue.capacity(),
            running: st.running,
            workers_alive: st.workers_alive,
            workers_spawned: st.counters.workers_spawned,
            worker_deaths: st.counters.worker_deaths,
            fault_retries: st.counters.fault_retries,
            recent_fault_retries: st.recent_fault_retries,
            preemptions: st.counters.preemptions,
            shed: st.counters.shed,
            completed: st.counters.completed,
            failed: st.counters.failed,
        }
    }

    /// Chaos hook: the next worker to observe the request dies (thread
    /// exit) — possibly with a claimed job, which the watchdog must then
    /// recover. The watchdog also respawns the worker.
    pub fn chaos_kill_worker(&self) {
        self.shared.kill_requests.fetch_add(1, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
    }

    /// Graceful shutdown: stop admitting, fail queued jobs as
    /// [`JobError::Cancelled`], let running jobs finish, join every
    /// thread. Idempotent; safe to call through a shared [`Arc`].
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.shared);
            st.shutting_down = true;
            let State { queue, jobs, counters, tenants, .. } = &mut *st;
            let queued: Vec<JobId> = jobs
                .iter()
                .filter(|(_, r)| matches!(r.phase, JobPhase::Queued | JobPhase::Backoff))
                .map(|(id, _)| *id)
                .collect();
            for id in queued {
                queue.remove(id);
                let rec = jobs.get_mut(&id).expect("queued job has a record");
                publish(counters, tenants, rec, id, Err(JobError::Cancelled));
            }
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
        let handles: Vec<JoinHandle<()>> =
            self.shared.threads.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Builds the pinned per-job simulator configuration. The fault seed is
/// perturbed per attempt by [`attempt_config`]; everything else is
/// attempt-invariant so checkpoints import cleanly within an attempt.
fn job_config(spec: &JobSpec, limits: &SubmissionLimits, degraded: bool) -> SimConfig {
    let mut cfg = SimConfig::mpu(spec.backend);
    cfg.recovery.watchdog_instructions = Some(limits.watchdog_instructions);
    if degraded {
        // Graceful degradation: fall back from the trace tier to the
        // compiled tier (lane-identical by the conformance guarantee,
        // conservative on host-side trace state).
        cfg.trace_ensembles = false;
    }
    if spec.fault.is_some() {
        // Armed fault layer: give the machine its own recovery ladder
        // before errors escalate to the service's retry loop.
        cfg.recovery.redundancy = Redundancy::Dmr;
        cfg.recovery.max_retries = 2;
        cfg.recovery.checkpoint_restart = true;
        cfg.recovery.max_restarts = 2;
    }
    cfg
}

/// Derives the configuration for run number `attempt` (1-based): same as
/// the base except the fault seed, so retries draw fresh fault sites.
fn attempt_config(rec: &JobRecord, attempt: u32) -> SimConfig {
    let mut cfg = rec.base_config.clone();
    if let Some(f) = &rec.fault {
        cfg.fault.seed =
            Some(f.seed.wrapping_add(u64::from(attempt - 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        cfg.fault.transient_rate = f.transient_rate;
    }
    cfg
}

fn health_state(st: &State, cfg: &ServiceConfig) -> HealthState {
    let q = st.queue.len();
    let cap = st.queue.capacity().max(1);
    if st.recent_fault_retries >= cfg.critical_threshold || q * 10 >= cap * 9 {
        HealthState::Critical
    } else if st.recent_fault_retries >= cfg.degrade_threshold
        || q * 4 >= cap * 3
        || st.workers_alive < cfg.workers.min(1)
    {
        HealthState::Degraded
    } else {
        HealthState::Healthy
    }
}

/// Records a terminal outcome and releases the tenant's quota slot.
fn publish(
    counters: &mut Counters,
    tenants: &mut HashMap<String, usize>,
    rec: &mut JobRecord,
    id: JobId,
    result: Result<JobResult, JobError>,
) {
    debug_assert!(rec.outcome.is_none(), "job {id} published twice");
    rec.phase = JobPhase::Done;
    rec.ctrl = None;
    rec.worker = None;
    rec.checkpoint = None;
    match &result {
        Ok(_) => counters.completed += 1,
        Err(_) => counters.failed += 1,
    }
    if let Some(live) = tenants.get_mut(&rec.tenant) {
        *live = live.saturating_sub(1);
        if *live == 0 {
            tenants.remove(&rec.tenant);
        }
    }
    rec.outcome = Some(JobOutcome {
        job: id,
        tenant: rec.tenant.clone(),
        result,
        attempts: rec.attempts.max(1),
        preemptions: rec.preemptions,
        wall_ms: rec.submitted.elapsed().as_millis() as u64,
    });
}

fn spawn_worker(shared: &Arc<Shared>) {
    let id = shared.next_worker.fetch_add(1, Ordering::SeqCst);
    {
        let mut st = lock(shared);
        st.workers_alive += 1;
        st.counters.workers_spawned += 1;
    }
    let cloned = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("service-worker-{id}"))
        .spawn(move || worker_loop(&cloned, id))
        .expect("spawn worker");
    shared.threads.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
}

/// Takes one pending chaos-kill request, if any.
fn take_kill(shared: &Shared) -> bool {
    shared
        .kill_requests
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// What one execution attempt produced.
enum Attempt {
    Done { outputs: Vec<RegInit>, cycles: u64, instructions: u64 },
    Preempted(Box<MpuCheckpoint>),
    Failed(SimError),
}

struct AttemptCtx {
    job: JobId,
    program: Arc<Program>,
    inputs: Vec<RegInit>,
    outputs: Vec<RegRef>,
    config: SimConfig,
    checkpoint: Option<Box<MpuCheckpoint>>,
    poison: bool,
}

fn worker_loop(shared: &Arc<Shared>, worker_id: usize) {
    loop {
        // --- Claim ---
        let (ctx, ctrl) = {
            let mut st = lock(shared);
            let job = loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    st.workers_alive -= 1;
                    return;
                }
                if take_kill(shared) {
                    die(shared, &mut st, worker_id);
                    return;
                }
                let now = Instant::now();
                if let Some(job) = st.queue.pop_eligible(now) {
                    break job;
                }
                let timeout = st.queue.next_wakeup(now).unwrap_or(Duration::from_millis(25));
                let (g, _) = shared
                    .work_cv
                    .wait_timeout(st, timeout.max(Duration::from_millis(1)))
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
            };

            let st_ref = &mut *st;
            let rec = st_ref.jobs.get_mut(&job).expect("queued job has a record");
            let now = Instant::now();
            if rec.cancel_requested || rec.deadline.is_some_and(|d| d <= now) {
                let err = if rec.cancel_requested && !rec.deadline_fired {
                    JobError::Cancelled
                } else {
                    JobError::DeadlineExceeded
                };
                publish(&mut st_ref.counters, &mut st_ref.tenants, rec, job, Err(err));
                shared.done_cv.notify_all();
                continue;
            }
            if rec.checkpoint.is_none() {
                rec.attempts += 1;
            }
            let ctrl = Arc::new(RunControl::new());
            rec.ctrl = Some(Arc::clone(&ctrl));
            rec.phase = JobPhase::Running;
            rec.worker = Some(worker_id);
            st_ref.running += 1;
            let ctx = AttemptCtx {
                job,
                program: Arc::clone(&rec.program),
                inputs: rec.inputs.clone(),
                outputs: rec.outputs.clone(),
                config: attempt_config(rec, rec.attempts),
                checkpoint: rec.checkpoint.take(),
                poison: rec.poison,
            };
            (ctx, ctrl)
        };

        // Mid-flight chaos kill: die while holding a claimed job so the
        // watchdog has an orphan to recover.
        if take_kill(shared) {
            let mut st = lock(shared);
            die(shared, &mut st, worker_id);
            return;
        }

        // --- Execute (no lock held) ---
        let job = ctx.job;
        let pool = Arc::clone(&shared.pool);
        let attempt = catch_unwind(AssertUnwindSafe(|| run_attempt(&pool, ctx, &ctrl)));

        // --- Publish ---
        let mut st = lock(shared);
        let st_ref = &mut *st;
        st_ref.running -= 1;
        let rec = st_ref.jobs.get_mut(&job).expect("running job has a record");
        rec.ctrl = None;
        rec.worker = None;
        match attempt {
            Err(payload) => {
                let payload = panic_text(payload.as_ref());
                publish(
                    &mut st_ref.counters,
                    &mut st_ref.tenants,
                    rec,
                    job,
                    Err(JobError::WorkerPanic { payload }),
                );
                shared.done_cv.notify_all();
            }
            Ok(Attempt::Done { outputs, cycles, instructions }) => {
                publish(
                    &mut st_ref.counters,
                    &mut st_ref.tenants,
                    rec,
                    job,
                    Ok(JobResult { outputs, cycles, instructions }),
                );
                shared.done_cv.notify_all();
            }
            Ok(Attempt::Preempted(cp)) => {
                if rec.cancel_requested {
                    let err = if rec.deadline_fired {
                        JobError::DeadlineExceeded
                    } else {
                        JobError::Cancelled
                    };
                    publish(&mut st_ref.counters, &mut st_ref.tenants, rec, job, Err(err));
                    shared.done_cv.notify_all();
                } else {
                    rec.checkpoint = Some(cp);
                    rec.preemptions += 1;
                    rec.phase = JobPhase::Queued;
                    st_ref.counters.preemptions += 1;
                    st_ref.queue.push(job, rec.priority, None);
                    shared.work_cv.notify_all();
                }
            }
            Ok(Attempt::Failed(e)) => {
                classify_failure(shared, st_ref, job, e);
            }
        }
    }
}

/// Marks this worker dead (chaos kill). Any claimed job stays `Running`
/// with `worker == worker_id`; the watchdog recovers it.
fn die(shared: &Shared, st: &mut State, worker_id: usize) {
    st.workers_alive -= 1;
    st.counters.worker_deaths += 1;
    st.dead_workers.push(worker_id);
    shared.work_cv.notify_all();
}

/// Routes a simulator failure: transient faults retry with backoff until
/// the budget runs out; everything else terminates with a typed error.
fn classify_failure(shared: &Shared, st: &mut State, job: JobId, e: SimError) {
    let cfg = &shared.config;
    let rec = st.jobs.get_mut(&job).expect("failed job has a record");
    let transient = match e.root_cause() {
        SimError::Cancelled { .. } => {
            let err =
                if rec.deadline_fired { JobError::DeadlineExceeded } else { JobError::Cancelled };
            publish(&mut st.counters, &mut st.tenants, rec, job, Err(err));
            shared.done_cv.notify_all();
            return;
        }
        SimError::WatchdogTriggered { .. } if rec.fault.is_none() => {
            // No fault layer armed: the program itself spins.
            publish(&mut st.counters, &mut st.tenants, rec, job, Err(JobError::RunawayProgram));
            shared.done_cv.notify_all();
            return;
        }
        SimError::UncorrectedFault { .. } | SimError::WatchdogTriggered { .. } => true,
        _ => false,
    };
    if !transient {
        let message = e.to_string();
        publish(&mut st.counters, &mut st.tenants, rec, job, Err(JobError::Sim { message }));
        shared.done_cv.notify_all();
        return;
    }

    st.counters.fault_retries += 1;
    st.recent_fault_retries = st.recent_fault_retries.saturating_add(1);
    if rec.attempts > cfg.retry_budget {
        let last = e.root_cause().to_string();
        let attempts = rec.attempts;
        publish(
            &mut st.counters,
            &mut st.tenants,
            rec,
            job,
            Err(JobError::FaultBudgetExhausted { attempts, last }),
        );
        shared.done_cv.notify_all();
        return;
    }
    // Exponential backoff with seeded jitter; the retry re-runs from
    // scratch (attempt_config perturbs the fault seed).
    let retries_done = rec.attempts.saturating_sub(1).min(16);
    let base = cfg.backoff_base_ms.saturating_mul(1u64 << retries_done).min(cfg.backoff_max_ms);
    let jitter = st.rng.random_range(0..=cfg.backoff_base_ms.max(1));
    let rec = st.jobs.get_mut(&job).expect("failed job has a record");
    rec.phase = JobPhase::Backoff;
    let priority = rec.priority;
    st.queue.push(job, priority, Some(Instant::now() + Duration::from_millis(base + jitter)));
    shared.work_cv.notify_all();
}

/// Executes one attempt on a fresh machine (or resumes a checkpoint).
/// Runs with no service lock held; panics are caught by the caller.
fn run_attempt(
    pool: &Arc<mastodon::RecipePool>,
    ctx: AttemptCtx,
    ctrl: &Arc<RunControl>,
) -> Attempt {
    if ctx.poison {
        panic!("poison job {} detonated", ctx.job);
    }
    let mut mpu = mastodon::Mpu::with_pool(ctx.config, MpuId(0), Arc::clone(pool));
    mpu.set_run_control(Arc::clone(ctrl));
    if let Some(cp) = &ctx.checkpoint {
        if let Err(e) = mpu.import_checkpoint(cp) {
            return Attempt::Failed(e);
        }
    } else {
        for init in &ctx.inputs {
            if let Err(e) = mpu.write_register(init.rfh, init.vrf, init.reg, &init.values) {
                return Attempt::Failed(e);
            }
        }
        mpu.reset_pc();
    }
    match mpu.step(&ctx.program) {
        Ok(StepEvent::Completed) => {
            let stats = mpu.finish();
            let mut outputs = Vec::with_capacity(ctx.outputs.len());
            for out in &ctx.outputs {
                match mpu.read_register(out.rfh, out.vrf, out.reg) {
                    Ok(values) => {
                        outputs.push(RegInit { rfh: out.rfh, vrf: out.vrf, reg: out.reg, values })
                    }
                    Err(e) => return Attempt::Failed(e),
                }
            }
            Attempt::Done { outputs, cycles: stats.cycles, instructions: stats.instructions }
        }
        Ok(StepEvent::Preempted) => Attempt::Preempted(Box::new(mpu.export_checkpoint())),
        // Admission rejects SEND/RECV, so these are unreachable; surface
        // them as a typed error rather than asserting.
        Ok(StepEvent::Sent(_)) | Ok(StepEvent::AwaitingRecv { .. }) => {
            Attempt::Failed(SimError::CommOutsideSystem { line: mpu.pc() })
        }
        Err(e) => Attempt::Failed(e),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

fn watchdog_loop(shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(shared.config.watchdog_poll_ms.max(1)));

        let mut st = lock(shared);
        let now = Instant::now();

        // Decay the fault-storm pressure signal (~1 unit / 100 ms) so a
        // calm service climbs back down the health ladder.
        if now.duration_since(st.last_decay) >= Duration::from_millis(100) {
            st.last_decay = now;
            st.recent_fault_retries = st.recent_fault_retries.saturating_sub(1);
        }

        // Deadlines.
        let mut expired_queued = Vec::new();
        for (id, rec) in st.jobs.iter_mut() {
            if rec.outcome.is_some() || rec.deadline_fired {
                continue;
            }
            let Some(deadline) = rec.deadline else { continue };
            if deadline > now {
                continue;
            }
            rec.deadline_fired = true;
            match rec.phase {
                JobPhase::Running => {
                    rec.cancel_requested = true;
                    if let Some(ctrl) = rec.ctrl.as_ref() {
                        ctrl.request_cancel();
                    }
                }
                JobPhase::Queued | JobPhase::Backoff => expired_queued.push(*id),
                JobPhase::Done => {}
            }
        }
        for id in expired_queued {
            let st_ref = &mut *st;
            st_ref.queue.remove(id);
            let rec = st_ref.jobs.get_mut(&id).expect("expired job has a record");
            publish(
                &mut st_ref.counters,
                &mut st_ref.tenants,
                rec,
                id,
                Err(JobError::DeadlineExceeded),
            );
            shared.done_cv.notify_all();
        }

        // Dead workers: recover orphaned jobs, respawn the pool.
        let dead: Vec<usize> = st.dead_workers.drain(..).collect();
        for w in dead {
            let orphans: Vec<JobId> = st
                .jobs
                .iter()
                .filter(|(_, r)| r.phase == JobPhase::Running && r.worker == Some(w))
                .map(|(id, _)| *id)
                .collect();
            for id in orphans {
                let st_ref = &mut *st;
                st_ref.running -= 1;
                let rec = st_ref.jobs.get_mut(&id).expect("orphaned job has a record");
                rec.ctrl = None;
                rec.worker = None;
                // Any in-worker checkpoint died with the worker: the
                // rerun starts from scratch and counts against the
                // retry budget.
                rec.checkpoint = None;
                rec.losses += 1;
                if rec.cancel_requested {
                    let err = if rec.deadline_fired {
                        JobError::DeadlineExceeded
                    } else {
                        JobError::Cancelled
                    };
                    publish(&mut st_ref.counters, &mut st_ref.tenants, rec, id, Err(err));
                    shared.done_cv.notify_all();
                } else if rec.losses > shared.config.retry_budget {
                    let attempts = rec.attempts;
                    publish(
                        &mut st_ref.counters,
                        &mut st_ref.tenants,
                        rec,
                        id,
                        Err(JobError::WorkerLost { attempts }),
                    );
                    shared.done_cv.notify_all();
                } else {
                    rec.phase = JobPhase::Queued;
                    let priority = rec.priority;
                    st_ref.queue.push(id, priority, None);
                }
            }
            if !st.shutting_down {
                drop(st);
                spawn_worker(shared);
                st = lock(shared);
            }
            shared.work_cv.notify_all();
        }
    }
}
