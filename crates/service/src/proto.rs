//! Wire protocol: length-prefixed `microjson` frames and the JSON
//! encodings of job specs, outcomes, and health reports.
//!
//! ## Framing
//!
//! Every message is one JSON document prefixed by its byte length as a
//! little-endian `u32`. Frames above [`MAX_FRAME`] are rejected before
//! allocation — a malformed or hostile peer cannot make the daemon
//! balloon.
//!
//! ## Numbers
//!
//! `microjson` numbers are `f64`, which loses u64 lane values above
//! 2^53. All 64-bit quantities (lane values, cycle counts, seeds) are
//! therefore encoded as `"0x..."` hex *strings*; [`parse_u64`] accepts
//! both forms so hand-written clients can still send small decimals.

use crate::health::{HealthReport, HealthState};
use crate::job::{
    FaultRequest, JobError, JobId, JobOutcome, JobResult, JobSpec, Priority, ProgramSource,
    RegInit, RegRef,
};
use crate::limits::AdmitError;
use microjson::Value;
use pum_backend::DatapathKind;
use std::io::{Read, Write};

/// Frame size ceiling, bytes.
pub const MAX_FRAME: usize = 8 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects documents above [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, v: &Value) -> std::io::Result<()> {
    let body = v.to_string();
    if body.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {MAX_FRAME}-byte ceiling", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` on clean EOF at a frame boundary;
/// oversized or unparseable frames surface as `InvalidData`.
///
/// # Errors
///
/// Propagates I/O errors and typed protocol violations.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Value>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte ceiling"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Value::parse(&text)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Encodes a u64 losslessly (hex string).
pub fn hex(v: u64) -> Value {
    Value::Str(format!("{v:#x}"))
}

/// Decodes a u64 from a hex/decimal string or a small JSON number.
pub fn parse_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Str(s) => {
            if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(h, 16).ok()
            } else {
                s.parse::<u64>().ok()
            }
        }
        Value::Num(_) => v.as_u64(),
        _ => None,
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(parse_u64).ok_or_else(|| format!("missing u64 field `{key}`"))
}

/// Wire tag for a backend.
pub fn backend_to_str(kind: DatapathKind) -> &'static str {
    match kind {
        DatapathKind::Racer => "racer",
        DatapathKind::Mimdram => "mimdram",
        DatapathKind::DualityCache => "duality-cache",
        DatapathKind::Pluto => "pluto",
        DatapathKind::Dpu => "dpu",
        DatapathKind::Custom => "custom",
    }
}

/// Parses a backend wire tag (`Custom` is not wire-constructible).
pub fn backend_from_str(s: &str) -> Option<DatapathKind> {
    match s {
        "racer" => Some(DatapathKind::Racer),
        "mimdram" => Some(DatapathKind::Mimdram),
        "duality-cache" => Some(DatapathKind::DualityCache),
        "pluto" => Some(DatapathKind::Pluto),
        "dpu" => Some(DatapathKind::Dpu),
        _ => None,
    }
}

fn reg_init_to_json(r: &RegInit) -> Value {
    obj(vec![
        ("rfh", Value::Num(f64::from(r.rfh))),
        ("vrf", Value::Num(f64::from(r.vrf))),
        ("reg", Value::Num(f64::from(r.reg))),
        ("values", Value::Arr(r.values.iter().map(|&v| hex(v)).collect())),
    ])
}

fn reg_init_from_json(v: &Value) -> Result<RegInit, String> {
    let values = v
        .get("values")
        .and_then(Value::as_arr)
        .ok_or("register init missing `values`")?
        .iter()
        .map(|e| parse_u64(e).ok_or("bad lane value"))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RegInit {
        rfh: u64_field(v, "rfh")? as u16,
        vrf: u64_field(v, "vrf")? as u16,
        reg: u64_field(v, "reg")? as u8,
        values,
    })
}

/// Serializes a job spec.
pub fn spec_to_json(spec: &JobSpec) -> Value {
    let program = match &spec.program {
        ProgramSource::EzText(text) => {
            obj(vec![("kind", Value::Str("ezpim".into())), ("text", Value::Str(text.clone()))])
        }
        ProgramSource::Asm(text) => {
            obj(vec![("kind", Value::Str("asm".into())), ("text", Value::Str(text.clone()))])
        }
        ProgramSource::PoisonPanic => obj(vec![("kind", Value::Str("poison_panic".into()))]),
    };
    let mut fields = vec![
        ("tenant", Value::Str(spec.tenant.clone())),
        ("priority", Value::Str(spec.priority.as_str().into())),
        ("backend", Value::Str(backend_to_str(spec.backend).into())),
        ("program", program),
        ("inputs", Value::Arr(spec.inputs.iter().map(reg_init_to_json).collect())),
        (
            "outputs",
            Value::Arr(
                spec.outputs
                    .iter()
                    .map(|o| {
                        obj(vec![
                            ("rfh", Value::Num(f64::from(o.rfh))),
                            ("vrf", Value::Num(f64::from(o.vrf))),
                            ("reg", Value::Num(f64::from(o.reg))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(ms) = spec.deadline_ms {
        fields.push(("deadline_ms", hex(ms)));
    }
    if let Some(f) = &spec.fault {
        fields.push((
            "fault",
            obj(vec![("seed", hex(f.seed)), ("transient_rate", Value::Num(f.transient_rate))]),
        ));
    }
    obj(fields)
}

/// Deserializes a job spec.
///
/// # Errors
///
/// Returns a diagnostic naming the first malformed field.
pub fn spec_from_json(v: &Value) -> Result<JobSpec, String> {
    let tenant = str_field(v, "tenant")?;
    let priority = Priority::from_str_tag(&str_field(v, "priority")?)
        .ok_or("bad `priority` (low/normal/high)")?;
    let backend = backend_from_str(&str_field(v, "backend")?)
        .ok_or("bad `backend` (racer/mimdram/duality-cache/pluto/dpu)")?;
    let pv = v.get("program").ok_or("missing `program`")?;
    let program = match str_field(pv, "kind")?.as_str() {
        "ezpim" => ProgramSource::EzText(str_field(pv, "text")?),
        "asm" => ProgramSource::Asm(str_field(pv, "text")?),
        "poison_panic" => ProgramSource::PoisonPanic,
        other => return Err(format!("unknown program kind `{other}`")),
    };
    let inputs = match v.get("inputs").and_then(Value::as_arr) {
        Some(arr) => arr.iter().map(reg_init_from_json).collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };
    let outputs = match v.get("outputs").and_then(Value::as_arr) {
        Some(arr) => arr
            .iter()
            .map(|o| {
                Ok(RegRef {
                    rfh: u64_field(o, "rfh")? as u16,
                    vrf: u64_field(o, "vrf")? as u16,
                    reg: u64_field(o, "reg")? as u8,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        None => Vec::new(),
    };
    let deadline_ms =
        v.get("deadline_ms").map(|d| parse_u64(d).ok_or("bad `deadline_ms`")).transpose()?;
    let fault = v
        .get("fault")
        .map(|f| {
            Ok::<FaultRequest, String>(FaultRequest {
                seed: u64_field(f, "seed")?,
                transient_rate: f
                    .get("transient_rate")
                    .and_then(Value::as_f64)
                    .ok_or("missing `transient_rate`")?,
            })
        })
        .transpose()?;
    Ok(JobSpec { tenant, priority, backend, program, inputs, outputs, deadline_ms, fault })
}

/// Serializes a typed admission rejection as `{kind, message}` plus any
/// structured fields a client might branch on.
pub fn admit_error_to_json(e: &AdmitError) -> Value {
    let mut fields =
        vec![("kind", Value::Str(e.kind().into())), ("message", Value::Str(e.to_string()))];
    match e {
        AdmitError::QueueFull { capacity } => {
            fields.push(("capacity", Value::Num(*capacity as f64)));
        }
        AdmitError::TenantQuotaExceeded { tenant, quota } => {
            fields.push(("tenant", Value::Str(tenant.clone())));
            fields.push(("quota", Value::Num(*quota as f64)));
        }
        AdmitError::LoadShed { health, min_priority } => {
            fields.push(("health", Value::Str(health.as_str().into())));
            fields.push(("min_priority", Value::Str(min_priority.as_str().into())));
        }
        _ => {}
    }
    obj(fields)
}

fn job_error_to_json(e: &JobError) -> Value {
    let mut fields =
        vec![("kind", Value::Str(e.kind().into())), ("message", Value::Str(e.to_string()))];
    match e {
        JobError::FaultBudgetExhausted { attempts, last } => {
            fields.push(("attempts", Value::Num(f64::from(*attempts))));
            fields.push(("last", Value::Str(last.clone())));
        }
        JobError::WorkerPanic { payload } => {
            fields.push(("payload", Value::Str(payload.clone())));
        }
        JobError::WorkerLost { attempts } => {
            fields.push(("attempts", Value::Num(f64::from(*attempts))));
        }
        JobError::Sim { message } => {
            fields.push(("sim_message", Value::Str(message.clone())));
        }
        _ => {}
    }
    obj(fields)
}

fn job_error_from_json(v: &Value) -> Result<JobError, String> {
    let kind = str_field(v, "kind")?;
    Ok(match kind.as_str() {
        "deadline_exceeded" => JobError::DeadlineExceeded,
        "cancelled" => JobError::Cancelled,
        "runaway_program" => JobError::RunawayProgram,
        "fault_budget_exhausted" => JobError::FaultBudgetExhausted {
            attempts: u64_field(v, "attempts")? as u32,
            last: str_field(v, "last")?,
        },
        "worker_panic" => JobError::WorkerPanic { payload: str_field(v, "payload")? },
        "worker_lost" => JobError::WorkerLost { attempts: u64_field(v, "attempts")? as u32 },
        "sim" => JobError::Sim { message: str_field(v, "sim_message")? },
        other => return Err(format!("unknown job error kind `{other}`")),
    })
}

/// Serializes a terminal job outcome.
pub fn outcome_to_json(o: &JobOutcome) -> Value {
    let result = match &o.result {
        Ok(r) => obj(vec![
            ("ok", Value::Bool(true)),
            ("outputs", Value::Arr(r.outputs.iter().map(reg_init_to_json).collect())),
            ("cycles", hex(r.cycles)),
            ("instructions", hex(r.instructions)),
        ]),
        Err(e) => obj(vec![("ok", Value::Bool(false)), ("error", job_error_to_json(e))]),
    };
    obj(vec![
        ("job", hex(o.job)),
        ("tenant", Value::Str(o.tenant.clone())),
        ("result", result),
        ("attempts", Value::Num(f64::from(o.attempts))),
        ("preemptions", Value::Num(f64::from(o.preemptions))),
        ("wall_ms", hex(o.wall_ms)),
    ])
}

/// Deserializes a terminal job outcome.
///
/// # Errors
///
/// Returns a diagnostic naming the first malformed field.
pub fn outcome_from_json(v: &Value) -> Result<JobOutcome, String> {
    let rv = v.get("result").ok_or("missing `result`")?;
    let result = if rv.get("ok").and_then(Value::as_bool).ok_or("missing `result.ok`")? {
        let outputs = rv
            .get("outputs")
            .and_then(Value::as_arr)
            .ok_or("missing `result.outputs`")?
            .iter()
            .map(reg_init_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JobResult {
            outputs,
            cycles: u64_field(rv, "cycles")?,
            instructions: u64_field(rv, "instructions")?,
        })
    } else {
        Err(job_error_from_json(rv.get("error").ok_or("missing `result.error`")?)?)
    };
    Ok(JobOutcome {
        job: u64_field(v, "job")?,
        tenant: str_field(v, "tenant")?,
        result,
        attempts: u64_field(v, "attempts")? as u32,
        preemptions: u64_field(v, "preemptions")? as u32,
        wall_ms: u64_field(v, "wall_ms")?,
    })
}

/// Serializes a health report.
pub fn health_to_json(h: &HealthReport) -> Value {
    obj(vec![
        ("state", Value::Str(h.state.as_str().into())),
        ("queued", Value::Num(h.queued as f64)),
        ("capacity", Value::Num(h.capacity as f64)),
        ("running", Value::Num(h.running as f64)),
        ("workers_alive", Value::Num(h.workers_alive as f64)),
        ("workers_spawned", hex(h.workers_spawned)),
        ("worker_deaths", hex(h.worker_deaths)),
        ("fault_retries", hex(h.fault_retries)),
        ("recent_fault_retries", Value::Num(f64::from(h.recent_fault_retries))),
        ("preemptions", hex(h.preemptions)),
        ("shed", hex(h.shed)),
        ("completed", hex(h.completed)),
        ("failed", hex(h.failed)),
    ])
}

/// Deserializes a health report.
///
/// # Errors
///
/// Returns a diagnostic naming the first malformed field.
pub fn health_from_json(v: &Value) -> Result<HealthReport, String> {
    Ok(HealthReport {
        state: HealthState::from_str_tag(&str_field(v, "state")?).ok_or("bad `state`")?,
        queued: u64_field(v, "queued")? as usize,
        capacity: u64_field(v, "capacity")? as usize,
        running: u64_field(v, "running")? as usize,
        workers_alive: u64_field(v, "workers_alive")? as usize,
        workers_spawned: u64_field(v, "workers_spawned")?,
        worker_deaths: u64_field(v, "worker_deaths")?,
        fault_retries: u64_field(v, "fault_retries")?,
        recent_fault_retries: u64_field(v, "recent_fault_retries")? as u32,
        preemptions: u64_field(v, "preemptions")?,
        shed: u64_field(v, "shed")?,
        completed: u64_field(v, "completed")?,
        failed: u64_field(v, "failed")?,
    })
}

/// A client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Admit a job.
    Submit(Box<JobSpec>),
    /// Report a job's lifecycle phase.
    Status(JobId),
    /// Block until a job is terminal, then return its outcome.
    Wait(JobId),
    /// Cancel a live job.
    Cancel(JobId),
    /// Report service health.
    Health,
    /// Gracefully stop the daemon.
    Shutdown,
}

/// Serializes a request.
pub fn request_to_json(r: &Request) -> Value {
    match r {
        Request::Submit(spec) => {
            obj(vec![("op", Value::Str("submit".into())), ("spec", spec_to_json(spec))])
        }
        Request::Status(id) => obj(vec![("op", Value::Str("status".into())), ("id", hex(*id))]),
        Request::Wait(id) => obj(vec![("op", Value::Str("wait".into())), ("id", hex(*id))]),
        Request::Cancel(id) => obj(vec![("op", Value::Str("cancel".into())), ("id", hex(*id))]),
        Request::Health => obj(vec![("op", Value::Str("health".into()))]),
        Request::Shutdown => obj(vec![("op", Value::Str("shutdown".into()))]),
    }
}

/// Deserializes a request.
///
/// # Errors
///
/// Returns a diagnostic naming the first malformed field.
pub fn request_from_json(v: &Value) -> Result<Request, String> {
    match str_field(v, "op")?.as_str() {
        "submit" => {
            Ok(Request::Submit(Box::new(spec_from_json(v.get("spec").ok_or("missing `spec`")?)?)))
        }
        "status" => Ok(Request::Status(u64_field(v, "id")?)),
        "wait" => Ok(Request::Wait(u64_field(v, "id")?)),
        "cancel" => Ok(Request::Cancel(u64_field(v, "id")?)),
        "health" => Ok(Request::Health),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Wraps a payload as a success response.
pub fn ok_response(fields: Vec<(&str, Value)>) -> Value {
    let mut all = vec![("ok", Value::Bool(true))];
    all.extend(fields);
    obj(all)
}

/// Wraps a typed error payload as a failure response.
pub fn err_response(error: Value) -> Value {
    obj(vec![("ok", Value::Bool(false)), ("error", error)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        let mut spec =
            JobSpec::ez("tenant-a", DatapathKind::Pluto, "ensemble h0.v0 {\n add r0 r1 r2\n}");
        spec.priority = Priority::High;
        spec.inputs.push(RegInit { rfh: 0, vrf: 1, reg: 3, values: vec![u64::MAX, 0, 12345] });
        spec.outputs.push(RegRef { rfh: 1, vrf: 0, reg: 7 });
        spec.deadline_ms = Some(1500);
        spec.fault = Some(FaultRequest { seed: 0xDEAD_BEEF_CAFE_F00D, transient_rate: 1e-4 });
        spec
    }

    #[test]
    fn spec_round_trips_through_text() {
        let spec = sample_spec();
        let text = spec_to_json(&spec).to_string();
        let back = spec_from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back.tenant, spec.tenant);
        assert_eq!(back.priority, spec.priority);
        assert_eq!(back.backend, spec.backend);
        assert_eq!(back.program, spec.program);
        assert_eq!(back.inputs, spec.inputs);
        assert_eq!(back.outputs, spec.outputs);
        assert_eq!(back.deadline_ms, spec.deadline_ms);
        assert_eq!(back.fault.unwrap().seed, spec.fault.unwrap().seed);
    }

    #[test]
    fn u64_lane_values_survive_above_2_53() {
        let v = hex(u64::MAX);
        assert_eq!(parse_u64(&v), Some(u64::MAX));
        let text = v.to_string();
        assert_eq!(parse_u64(&Value::parse(&text).unwrap()), Some(u64::MAX));
    }

    #[test]
    fn outcomes_round_trip_both_arms() {
        let ok = JobOutcome {
            job: 9,
            tenant: "t".into(),
            result: Ok(JobResult {
                outputs: vec![RegInit { rfh: 0, vrf: 0, reg: 2, values: vec![1 << 60] }],
                cycles: u64::MAX / 3,
                instructions: 42,
            }),
            attempts: 2,
            preemptions: 1,
            wall_ms: 17,
        };
        let back =
            outcome_from_json(&Value::parse(&outcome_to_json(&ok).to_string()).unwrap()).unwrap();
        assert_eq!(back.result.unwrap(), ok.result.unwrap());

        for err in [
            JobError::DeadlineExceeded,
            JobError::FaultBudgetExhausted { attempts: 4, last: "line 3: fault".into() },
            JobError::WorkerPanic { payload: "poison job 5 detonated".into() },
        ] {
            let o = JobOutcome {
                job: 1,
                tenant: "t".into(),
                result: Err(err.clone()),
                attempts: 4,
                preemptions: 0,
                wall_ms: 1,
            };
            let back = outcome_from_json(&Value::parse(&outcome_to_json(&o).to_string()).unwrap())
                .unwrap();
            assert_eq!(back.result.unwrap_err(), err);
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        let v = spec_to_json(&sample_spec());
        write_frame(&mut buf, &v).unwrap();
        write_frame(&mut buf, &Value::Bool(true)).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap().to_string(), v.to_string());
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), Value::Bool(true));
        assert!(read_frame(&mut r).unwrap().is_none());

        let mut bogus: &[u8] = &[0xff, 0xff, 0xff, 0xff];
        assert_eq!(read_frame(&mut bogus).unwrap_err().kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Submit(Box::new(sample_spec())),
            Request::Status(3),
            Request::Wait(4),
            Request::Cancel(5),
            Request::Health,
            Request::Shutdown,
        ] {
            let text = request_to_json(&req).to_string();
            let back = request_from_json(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(
                request_to_json(&back).to_string(),
                text,
                "request did not survive the round trip"
            );
        }
    }

    #[test]
    fn health_round_trips() {
        let h = HealthReport {
            state: HealthState::Degraded,
            queued: 3,
            capacity: 64,
            running: 2,
            workers_alive: 2,
            workers_spawned: 5,
            worker_deaths: 3,
            fault_retries: 100,
            recent_fault_retries: 6,
            preemptions: 9,
            shed: 4,
            completed: 400,
            failed: 20,
        };
        let back =
            health_from_json(&Value::parse(&health_to_json(&h).to_string()).unwrap()).unwrap();
        assert_eq!(back, h);
    }
}
