//! Job model: submission specifications, lifecycle phases, results, and
//! the typed terminal-error taxonomy.
//!
//! Every way a job can end is a *typed* outcome — the service never
//! surfaces a panic, a deadlock, or an untyped string where a caller has
//! to guess what happened. [`JobError`] enumerates the terminal failure
//! modes; admission-time rejections live in
//! [`crate::limits::AdmitError`] because they happen before a job exists.

use pum_backend::DatapathKind;
use std::fmt;

/// Service-assigned job identifier, unique for the life of the service.
pub type JobId = u64;

/// Scheduling priority. Higher priorities pop first, may preempt lower
/// ones, and survive load shedding longer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort: first to be shed when the service degrades.
    Low,
    /// Default.
    Normal,
    /// Latency-sensitive: may preempt running lower-priority jobs.
    High,
}

impl Priority {
    /// Wire tag (`"low"` / `"normal"` / `"high"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses a wire tag back into a priority.
    pub fn from_str_tag(s: &str) -> Option<Self> {
        match s {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

/// One register's worth of input (or returned output) data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegInit {
    /// RF holder.
    pub rfh: u16,
    /// VRF within the holder.
    pub vrf: u16,
    /// Register within the VRF.
    pub reg: u8,
    /// Per-lane element values (broadcast/truncated to the logical width
    /// by the simulator's host-DMA path).
    pub values: Vec<u64>,
}

/// A register the caller wants read back after the job completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegRef {
    /// RF holder.
    pub rfh: u16,
    /// VRF within the holder.
    pub vrf: u16,
    /// Register within the VRF.
    pub reg: u8,
}

/// How the job's program is supplied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSource {
    /// ezpim assembler text, parsed and assembled at admission.
    EzText(String),
    /// Raw ISA assembly, parsed with [`mpu_isa::Program::parse_asm`].
    Asm(String),
    /// Chaos-engineering poison pill: panics inside the worker at
    /// execution time. Exists to prove worker isolation
    /// (`catch_unwind`) keeps one bad job from taking the service down;
    /// it always terminates as [`JobError::WorkerPanic`].
    PoisonPanic,
}

/// Opt-in seeded fault injection for one job (exercises the retry path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRequest {
    /// Master fault seed; the service perturbs it per attempt so retries
    /// draw fresh fault sites.
    pub seed: u64,
    /// Per-micro-op transient flip probability.
    pub transient_rate: f64,
}

/// A complete job submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Tenant name for quota accounting.
    pub tenant: String,
    /// Scheduling priority.
    pub priority: Priority,
    /// Which PUM substrate to simulate on.
    pub backend: DatapathKind,
    /// The program to run.
    pub program: ProgramSource,
    /// Registers to load before the run.
    pub inputs: Vec<RegInit>,
    /// Registers to read back after the run.
    pub outputs: Vec<RegRef>,
    /// Wall-clock deadline in milliseconds from admission; `None` means
    /// unbounded (the per-ensemble instruction watchdog still applies).
    pub deadline_ms: Option<u64>,
    /// Optional fault injection.
    pub fault: Option<FaultRequest>,
}

impl JobSpec {
    /// Convenience constructor: a normal-priority ezpim-text job with no
    /// deadline and no fault injection.
    pub fn ez(tenant: &str, backend: DatapathKind, text: &str) -> Self {
        JobSpec {
            tenant: tenant.to_string(),
            priority: Priority::Normal,
            backend,
            program: ProgramSource::EzText(text.to_string()),
            inputs: Vec::new(),
            outputs: Vec::new(),
            deadline_ms: None,
            fault: None,
        }
    }
}

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Failed transiently; waiting out its retry backoff.
    Backoff,
    /// Terminal: an outcome is available.
    Done,
}

impl JobPhase {
    /// Wire tag.
    pub fn as_str(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Backoff => "backoff",
            JobPhase::Done => "done",
        }
    }
}

/// Typed terminal failure of an admitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The wall-clock deadline passed; the run was cancelled at the next
    /// compute-ensemble boundary (or while queued).
    DeadlineExceeded,
    /// The caller cancelled the job.
    Cancelled,
    /// The per-ensemble instruction watchdog fired with no fault layer
    /// armed: the program itself spins (a runaway data-dependent loop).
    RunawayProgram,
    /// Every retry attempt ended in an uncorrected hardware fault.
    FaultBudgetExhausted {
        /// Total attempts made (first run + retries).
        attempts: u32,
        /// Display of the last attempt's root-cause fault.
        last: String,
    },
    /// The job's worker panicked; the payload is preserved and the
    /// worker pool keeps serving.
    WorkerPanic {
        /// Stringified panic payload.
        payload: String,
    },
    /// The worker executing the job died (chaos kill) more times than
    /// the retry budget allows.
    WorkerLost {
        /// Runs started before the service gave up.
        attempts: u32,
    },
    /// The simulator rejected the job permanently (geometry violation,
    /// malformed block structure, ...).
    Sim {
        /// Display of the simulator error.
        message: String,
    },
}

impl JobError {
    /// Stable snake_case wire tag for this error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::DeadlineExceeded => "deadline_exceeded",
            JobError::Cancelled => "cancelled",
            JobError::RunawayProgram => "runaway_program",
            JobError::FaultBudgetExhausted { .. } => "fault_budget_exhausted",
            JobError::WorkerPanic { .. } => "worker_panic",
            JobError::WorkerLost { .. } => "worker_lost",
            JobError::Sim { .. } => "sim",
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::DeadlineExceeded => write!(f, "deadline exceeded"),
            JobError::Cancelled => write!(f, "cancelled by caller"),
            JobError::RunawayProgram => {
                write!(f, "runaway program: ensemble instruction watchdog fired")
            }
            JobError::FaultBudgetExhausted { attempts, last } => {
                write!(f, "fault budget exhausted after {attempts} attempts (last: {last})")
            }
            JobError::WorkerPanic { payload } => write!(f, "worker panicked: {payload}"),
            JobError::WorkerLost { attempts } => {
                write!(f, "worker lost {attempts} times; retry budget exhausted")
            }
            JobError::Sim { message } => write!(f, "simulator error: {message}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Successful job result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The requested output registers with their final lane values.
    pub outputs: Vec<RegInit>,
    /// Simulated cycles of the successful attempt.
    pub cycles: u64,
    /// ISA instructions executed by the successful attempt.
    pub instructions: u64,
}

/// Terminal record of a job, successful or not.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job.
    pub job: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Result or typed failure.
    pub result: Result<JobResult, JobError>,
    /// Runs started (first attempt + fault retries + worker-loss reruns;
    /// checkpoint resumes do not count — they continue an attempt).
    pub attempts: u32,
    /// Times the job was checkpoint-preempted and later resumed.
    pub preemptions: u32,
    /// Wall-clock milliseconds from admission to the terminal outcome.
    pub wall_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
    }

    #[test]
    fn priority_tags_round_trip() {
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(Priority::from_str_tag(p.as_str()), Some(p));
        }
        assert_eq!(Priority::from_str_tag("urgent"), None);
    }

    #[test]
    fn error_kinds_are_distinct() {
        use std::collections::HashSet;
        let errs = [
            JobError::DeadlineExceeded,
            JobError::Cancelled,
            JobError::RunawayProgram,
            JobError::FaultBudgetExhausted { attempts: 1, last: String::new() },
            JobError::WorkerPanic { payload: String::new() },
            JobError::WorkerLost { attempts: 1 },
            JobError::Sim { message: String::new() },
        ];
        let kinds: HashSet<_> = errs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), errs.len());
    }
}
