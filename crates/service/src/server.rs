//! Unix-socket daemon front end and a blocking client.
//!
//! Thread-per-connection server speaking the [`crate::proto`] framed
//! protocol. Protocol violations (bad frames, unknown ops, malformed
//! specs) are answered with typed `invalid_request` errors where a
//! response is still possible, and otherwise drop only the offending
//! connection — never the daemon. A `shutdown` request gracefully stops
//! the service (running jobs finish, queued jobs are cancelled) and
//! then the accept loop.

use crate::job::{JobId, JobOutcome, JobPhase};
use crate::proto::{
    self, err_response, health_from_json, health_to_json, hex, ok_response, outcome_from_json,
    outcome_to_json, read_frame, request_from_json, request_to_json, write_frame, Request,
};
use crate::{HealthReport, JobSpec, Service};
use microjson::Value;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A typed error relayed over the wire (`kind` is the originating
/// [`crate::AdmitError::kind`]/[`crate::JobError::kind`] tag, or
/// `invalid_request`/`io` for transport-level failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// snake_case error tag.
    pub kind: String,
    /// Human-readable diagnostic.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    fn io(e: &io::Error) -> Self {
        WireError { kind: "io".into(), message: e.to_string() }
    }

    fn protocol(message: impl Into<String>) -> Self {
        WireError { kind: "invalid_request".into(), message: message.into() }
    }
}

/// Handle to a running socket server.
pub struct ServerHandle {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket path being served.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Blocks until the accept loop exits (a `shutdown` request or
    /// [`ServerHandle::stop`]).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }

    /// Stops the accept loop without shutting the service down.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call.
        let _ = UnixStream::connect(&self.path);
        self.join();
    }
}

/// Serves `service` on a Unix socket at `path` (any stale socket file is
/// replaced). Connections are handled on their own threads.
///
/// # Errors
///
/// Fails if the socket cannot be bound.
pub fn serve_unix(path: &Path, service: Arc<Service>) -> io::Result<ServerHandle> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_path = path.to_path_buf();
    let accept = std::thread::Builder::new().name("service-accept".into()).spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&service);
            let stop = Arc::clone(&accept_stop);
            let path = accept_path.clone();
            // Connection threads are detached: they exit on client
            // EOF, and service shutdown unblocks any in-flight wait.
            let _ = std::thread::Builder::new().name("service-conn".into()).spawn(move || {
                let _ = handle_connection(stream, &service, &stop, &path);
            });
        }
    })?;
    Ok(ServerHandle { path: path.to_path_buf(), stop, accept: Some(accept) })
}

fn unknown_job(id: JobId) -> Value {
    err_response(proto::admit_error_to_json(&crate::AdmitError::InvalidRequest {
        message: format!("unknown job {id}"),
    }))
}

fn handle_connection(
    stream: UnixStream,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    path: &Path,
) -> io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    while let Some(frame) = read_frame(&mut reader)? {
        let response = match request_from_json(&frame) {
            Err(message) => {
                err_response(proto::admit_error_to_json(&crate::AdmitError::InvalidRequest {
                    message,
                }))
            }
            Ok(Request::Submit(spec)) => match service.submit(*spec) {
                Ok(id) => ok_response(vec![("id", hex(id))]),
                Err(e) => err_response(proto::admit_error_to_json(&e)),
            },
            Ok(Request::Status(id)) => match service.status(id) {
                Some(phase) => ok_response(vec![("phase", Value::Str(phase.as_str().into()))]),
                None => unknown_job(id),
            },
            Ok(Request::Wait(id)) => match service.wait(id) {
                Some(outcome) => ok_response(vec![("outcome", outcome_to_json(&outcome))]),
                None => unknown_job(id),
            },
            Ok(Request::Cancel(id)) => {
                ok_response(vec![("cancelled", Value::Bool(service.cancel(id)))])
            }
            Ok(Request::Health) => ok_response(vec![("health", health_to_json(&service.health()))]),
            Ok(Request::Shutdown) => {
                write_frame(&mut writer, &ok_response(vec![]))?;
                service.shutdown();
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept call so the server can exit.
                let _ = UnixStream::connect(path);
                return Ok(());
            }
        };
        write_frame(&mut writer, &response)?;
    }
    Ok(())
}

/// Blocking client for the framed Unix-socket protocol.
pub struct ServiceClient {
    stream: UnixStream,
}

impl ServiceClient {
    /// Connects to a daemon at `path`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(path: &Path) -> io::Result<Self> {
        Ok(ServiceClient { stream: UnixStream::connect(path)? })
    }

    fn call(&mut self, req: &Request) -> Result<Value, WireError> {
        write_frame(&mut self.stream, &request_to_json(req)).map_err(|e| WireError::io(&e))?;
        let response = read_frame(&mut self.stream)
            .map_err(|e| WireError::io(&e))?
            .ok_or_else(|| WireError::protocol("connection closed mid-request"))?;
        if response.get("ok").and_then(Value::as_bool) == Some(true) {
            Ok(response)
        } else {
            let err = response
                .get("error")
                .ok_or_else(|| WireError::protocol("failure response carried no `error`"))?;
            Err(WireError {
                kind: err
                    .get("kind")
                    .and_then(Value::as_str)
                    .unwrap_or("invalid_request")
                    .to_string(),
                message: err.get("message").and_then(Value::as_str).unwrap_or("").to_string(),
            })
        }
    }

    /// Submits a job; returns its id or the typed rejection tag.
    ///
    /// # Errors
    ///
    /// Typed admission rejections and transport failures.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JobId, WireError> {
        let v = self.call(&Request::Submit(Box::new(spec.clone())))?;
        v.get("id")
            .and_then(proto::parse_u64)
            .ok_or_else(|| WireError::protocol("submit response carried no `id`"))
    }

    /// Blocks until the job is terminal and returns its outcome.
    ///
    /// # Errors
    ///
    /// Unknown-job rejections and transport failures.
    pub fn wait(&mut self, id: JobId) -> Result<JobOutcome, WireError> {
        let v = self.call(&Request::Wait(id))?;
        let outcome =
            v.get("outcome").ok_or_else(|| WireError::protocol("wait response missing outcome"))?;
        outcome_from_json(outcome).map_err(WireError::protocol)
    }

    /// Reports a job's lifecycle phase.
    ///
    /// # Errors
    ///
    /// Unknown-job rejections and transport failures.
    pub fn status(&mut self, id: JobId) -> Result<JobPhase, WireError> {
        let v = self.call(&Request::Status(id))?;
        match v.get("phase").and_then(Value::as_str) {
            Some("queued") => Ok(JobPhase::Queued),
            Some("running") => Ok(JobPhase::Running),
            Some("backoff") => Ok(JobPhase::Backoff),
            Some("done") => Ok(JobPhase::Done),
            _ => Err(WireError::protocol("status response carried no phase")),
        }
    }

    /// Cancels a live job; `true` if it was live.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn cancel(&mut self, id: JobId) -> Result<bool, WireError> {
        let v = self.call(&Request::Cancel(id))?;
        v.get("cancelled")
            .and_then(Value::as_bool)
            .ok_or_else(|| WireError::protocol("cancel response carried no flag"))
    }

    /// Fetches the service health report.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn health(&mut self) -> Result<HealthReport, WireError> {
        let v = self.call(&Request::Health)?;
        let h =
            v.get("health").ok_or_else(|| WireError::protocol("health response missing body"))?;
        health_from_json(h).map_err(WireError::protocol)
    }

    /// Gracefully shuts the daemon down.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        self.call(&Request::Shutdown).map(|_| ())
    }
}
