//! Bounded priority admission queue with backoff holds.
//!
//! A small linear-scan queue: the service's queue capacity is tens of
//! entries, so O(n) pops beat heap bookkeeping and keep the eligibility
//! rule (`not_before`) trivial to express. Ordering is strict priority,
//! FIFO within a priority (admission sequence breaks ties), and entries
//! in retry backoff are invisible until their `not_before` passes.

use crate::job::{JobId, Priority};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct QueueEntry {
    job: JobId,
    priority: Priority,
    seq: u64,
    not_before: Option<Instant>,
}

/// The bounded admission queue.
#[derive(Debug)]
pub(crate) struct AdmissionQueue {
    entries: Vec<QueueEntry>,
    capacity: usize,
    next_seq: u64,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        AdmissionQueue { entries: Vec::new(), capacity, next_seq: 0 }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Enqueues a job. Callers check [`AdmissionQueue::is_full`] first
    /// (requeues after preemption/backoff bypass the capacity check — a
    /// job readmitted mid-flight must not be lost to a full queue).
    pub(crate) fn push(&mut self, job: JobId, priority: Priority, not_before: Option<Instant>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(QueueEntry { job, priority, seq, not_before });
    }

    /// Pops the highest-priority eligible entry (FIFO within priority).
    pub(crate) fn pop_eligible(&mut self, now: Instant) -> Option<JobId> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.not_before.is_none_or(|t| t <= now))
            .max_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
            .map(|(i, _)| i)?;
        Some(self.entries.swap_remove(idx).job)
    }

    /// Time until the earliest backoff hold becomes eligible, if every
    /// queued entry is currently held.
    pub(crate) fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        if self.entries.iter().any(|e| e.not_before.is_none_or(|t| t <= now)) {
            return None;
        }
        self.entries
            .iter()
            .filter_map(|e| e.not_before)
            .min()
            .map(|t| t.saturating_duration_since(now))
    }

    /// Removes a queued job (cancellation, queued-deadline expiry).
    pub(crate) fn remove(&mut self, job: JobId) -> bool {
        match self.entries.iter().position(|e| e.job == job) {
            Some(i) => {
                self.entries.swap_remove(i);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_beats_fifo_and_fifo_breaks_ties() {
        let mut q = AdmissionQueue::new(8);
        let now = Instant::now();
        q.push(1, Priority::Normal, None);
        q.push(2, Priority::High, None);
        q.push(3, Priority::Normal, None);
        q.push(4, Priority::Low, None);
        assert_eq!(q.pop_eligible(now), Some(2));
        assert_eq!(q.pop_eligible(now), Some(1));
        assert_eq!(q.pop_eligible(now), Some(3));
        assert_eq!(q.pop_eligible(now), Some(4));
        assert_eq!(q.pop_eligible(now), None);
    }

    #[test]
    fn backoff_holds_hide_entries_until_due() {
        let mut q = AdmissionQueue::new(8);
        let now = Instant::now();
        let due = now + Duration::from_millis(10);
        q.push(1, Priority::High, Some(due));
        q.push(2, Priority::Low, None);
        assert_eq!(q.pop_eligible(now), Some(2));
        assert_eq!(q.pop_eligible(now), None);
        let wake = q.next_wakeup(now).unwrap();
        assert!(wake <= Duration::from_millis(10));
        assert_eq!(q.pop_eligible(due), Some(1));
    }

    #[test]
    fn remove_pulls_a_queued_job() {
        let mut q = AdmissionQueue::new(8);
        q.push(1, Priority::Normal, None);
        assert!(q.remove(1));
        assert!(!q.remove(1));
        assert_eq!(q.pop_eligible(Instant::now()), None);
    }

    #[test]
    fn capacity_is_visible() {
        let mut q = AdmissionQueue::new(2);
        q.push(1, Priority::Normal, None);
        assert!(!q.is_full());
        q.push(2, Priority::Normal, None);
        assert!(q.is_full());
        assert_eq!(q.len(), 2);
        assert_eq!(q.capacity(), 2);
    }
}
