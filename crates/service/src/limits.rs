//! Admission control: submission-time resource validation and the typed
//! rejection taxonomy.
//!
//! Every job is validated *before* it can occupy a queue slot: the
//! program must parse, fit the instruction/statement ceilings, stay
//! within the backend's geometry, avoid inter-MPU communication (the
//! service schedules single-MPU jobs), and carry a bounded number of
//! data-dependent loops (each of which is fenced at runtime by the
//! per-ensemble instruction watchdog). A rejected submission costs the
//! service nothing but the validation itself.

use crate::health::HealthState;
use crate::job::{JobSpec, Priority, ProgramSource};
use mpu_isa::{Instruction, Program};
use pum_backend::Geometry;
use std::fmt;

/// Per-job resource ceilings enforced at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmissionLimits {
    /// Maximum assembled program length, instructions.
    pub max_program_instructions: usize,
    /// Maximum ezpim statements (pre-assembly size proxy).
    pub max_statements: usize,
    /// Maximum data-dependent (`while`/`for`) loops per program.
    pub max_dynamic_loops: usize,
    /// Maximum total input words across all input registers.
    pub max_input_words: usize,
    /// Runtime instruction budget per ensemble-body pass, armed on every
    /// job via [`mastodon::RecoveryPolicy::watchdog_instructions`] so an
    /// admitted dynamic loop can spin at most this long.
    pub watchdog_instructions: u64,
}

impl Default for SubmissionLimits {
    fn default() -> Self {
        SubmissionLimits {
            max_program_instructions: 4096,
            max_statements: 1024,
            max_dynamic_loops: 4,
            max_input_words: 1 << 16,
            watchdog_instructions: 200_000,
        }
    }
}

/// Typed admission rejection. Jobs rejected here were never admitted:
/// they hold no queue slot, no tenant quota, and no job id.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The service is shutting down.
    ShuttingDown,
    /// The bounded admission queue is full.
    QueueFull {
        /// Queue capacity.
        capacity: usize,
    },
    /// The tenant already has its quota of live (queued + running) jobs.
    TenantQuotaExceeded {
        /// Offending tenant.
        tenant: String,
        /// Per-tenant live-job quota.
        quota: usize,
    },
    /// Load shedding: the service health admits only `min_priority` and
    /// above right now.
    LoadShed {
        /// Health state that triggered the shed.
        health: HealthState,
        /// Lowest priority currently admitted.
        min_priority: Priority,
    },
    /// The program text failed to parse or assemble.
    ParseError {
        /// Parser/assembler diagnostic.
        message: String,
    },
    /// The assembled program exceeds the instruction ceiling.
    ProgramTooLarge {
        /// Assembled length.
        instructions: usize,
        /// Ceiling.
        limit: usize,
    },
    /// The ezpim source exceeds the statement ceiling.
    TooManyStatements {
        /// Statement count.
        statements: usize,
        /// Ceiling.
        limit: usize,
    },
    /// The program carries more data-dependent loops than allowed.
    TooManyDynamicLoops {
        /// Dynamic-loop count.
        loops: usize,
        /// Ceiling.
        limit: usize,
    },
    /// The program uses `SEND`/`RECV`; the service runs single-MPU jobs.
    CommNotSupported {
        /// Offending instruction index.
        line: usize,
    },
    /// A program header or an input/output register is outside the
    /// backend's geometry.
    GeometryExceeded {
        /// What went out of range.
        what: String,
    },
    /// Total input words exceed the ceiling.
    TooManyInputWords {
        /// Requested words.
        words: usize,
        /// Ceiling.
        limit: usize,
    },
    /// The request itself is malformed (bad wire fields, unknown
    /// backend, ...).
    InvalidRequest {
        /// Diagnostic.
        message: String,
    },
}

impl AdmitError {
    /// Stable snake_case wire tag for this rejection kind.
    pub fn kind(&self) -> &'static str {
        match self {
            AdmitError::ShuttingDown => "shutting_down",
            AdmitError::QueueFull { .. } => "queue_full",
            AdmitError::TenantQuotaExceeded { .. } => "tenant_quota_exceeded",
            AdmitError::LoadShed { .. } => "load_shed",
            AdmitError::ParseError { .. } => "parse_error",
            AdmitError::ProgramTooLarge { .. } => "program_too_large",
            AdmitError::TooManyStatements { .. } => "too_many_statements",
            AdmitError::TooManyDynamicLoops { .. } => "too_many_dynamic_loops",
            AdmitError::CommNotSupported { .. } => "comm_not_supported",
            AdmitError::GeometryExceeded { .. } => "geometry_exceeded",
            AdmitError::TooManyInputWords { .. } => "too_many_input_words",
            AdmitError::InvalidRequest { .. } => "invalid_request",
        }
    }
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::ShuttingDown => write!(f, "service is shutting down"),
            AdmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} slots)")
            }
            AdmitError::TenantQuotaExceeded { tenant, quota } => {
                write!(f, "tenant {tenant} at its live-job quota ({quota})")
            }
            AdmitError::LoadShed { health, min_priority } => write!(
                f,
                "load shed: service is {health}, admitting {} priority and above",
                min_priority.as_str()
            ),
            AdmitError::ParseError { message } => write!(f, "parse error: {message}"),
            AdmitError::ProgramTooLarge { instructions, limit } => {
                write!(f, "program too large: {instructions} instructions (limit {limit})")
            }
            AdmitError::TooManyStatements { statements, limit } => {
                write!(f, "too many statements: {statements} (limit {limit})")
            }
            AdmitError::TooManyDynamicLoops { loops, limit } => {
                write!(f, "too many dynamic loops: {loops} (limit {limit})")
            }
            AdmitError::CommNotSupported { line } => {
                write!(f, "instruction {line}: SEND/RECV not supported by the service")
            }
            AdmitError::GeometryExceeded { what } => write!(f, "geometry exceeded: {what}"),
            AdmitError::TooManyInputWords { words, limit } => {
                write!(f, "too many input words: {words} (limit {limit})")
            }
            AdmitError::InvalidRequest { message } => write!(f, "invalid request: {message}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Parses, assembles, and resource-validates a submission's program.
/// Returns the assembled program on success.
pub(crate) fn build_program(
    spec: &JobSpec,
    limits: &SubmissionLimits,
    geometry: &Geometry,
) -> Result<Program, AdmitError> {
    let program = match &spec.program {
        ProgramSource::EzText(text) => {
            let ez = ezpim::parse(text)
                .map_err(|e| AdmitError::ParseError { message: e.to_string() })?;
            if ez.statements() > limits.max_statements {
                return Err(AdmitError::TooManyStatements {
                    statements: ez.statements(),
                    limit: limits.max_statements,
                });
            }
            if ez.dynamic_loops() > limits.max_dynamic_loops {
                return Err(AdmitError::TooManyDynamicLoops {
                    loops: ez.dynamic_loops(),
                    limit: limits.max_dynamic_loops,
                });
            }
            ez.assemble().map_err(|e| AdmitError::ParseError { message: e.to_string() })?
        }
        ProgramSource::Asm(text) => {
            let program = Program::parse_asm(text)
                .map_err(|e| AdmitError::ParseError { message: e.to_string() })?;
            program.validate().map_err(|e| AdmitError::ParseError { message: e.to_string() })?;
            program
        }
        // Never executed: the worker detonates before touching the
        // simulator. An empty program keeps the record well-formed.
        ProgramSource::PoisonPanic => Program::new(),
    };

    if program.len() > limits.max_program_instructions {
        return Err(AdmitError::ProgramTooLarge {
            instructions: program.len(),
            limit: limits.max_program_instructions,
        });
    }

    for (line, instr) in program.instructions().iter().enumerate() {
        match instr {
            Instruction::Send { .. } | Instruction::SendDone | Instruction::Recv { .. } => {
                return Err(AdmitError::CommNotSupported { line });
            }
            Instruction::Compute { rfh, vrf } => {
                check_vrf(geometry, rfh.index(), vrf.index(), format!("instruction {line}"))?;
            }
            Instruction::Move { src, dst } => {
                check_rfh(geometry, src.index(), format!("instruction {line} MOVE src"))?;
                check_rfh(geometry, dst.index(), format!("instruction {line} MOVE dst"))?;
            }
            _ => {}
        }
    }

    let mut words = 0usize;
    for init in &spec.inputs {
        check_reg(geometry, init.rfh, init.vrf, init.reg, "input")?;
        words += init.values.len();
    }
    if words > limits.max_input_words {
        return Err(AdmitError::TooManyInputWords { words, limit: limits.max_input_words });
    }
    for out in &spec.outputs {
        check_reg(geometry, out.rfh, out.vrf, out.reg, "output")?;
    }

    Ok(program)
}

fn check_rfh(g: &Geometry, rfh: usize, what: String) -> Result<(), AdmitError> {
    if rfh >= g.rfhs_per_mpu {
        return Err(AdmitError::GeometryExceeded {
            what: format!("{what}: rfh {rfh} >= {}", g.rfhs_per_mpu),
        });
    }
    Ok(())
}

fn check_vrf(g: &Geometry, rfh: usize, vrf: usize, what: String) -> Result<(), AdmitError> {
    check_rfh(g, rfh, what.clone())?;
    if vrf >= g.vrfs_per_rfh {
        return Err(AdmitError::GeometryExceeded {
            what: format!("{what}: vrf {vrf} >= {}", g.vrfs_per_rfh),
        });
    }
    Ok(())
}

fn check_reg(g: &Geometry, rfh: u16, vrf: u16, reg: u8, role: &str) -> Result<(), AdmitError> {
    check_vrf(g, rfh as usize, vrf as usize, format!("{role} r{reg}"))?;
    if (reg as usize) >= g.regs_per_vrf {
        return Err(AdmitError::GeometryExceeded {
            what: format!("{role}: reg {reg} >= {}", g.regs_per_vrf),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::RegInit;
    use pum_backend::{DatapathKind, DatapathModel};

    fn geo() -> Geometry {
        DatapathModel::for_kind(DatapathKind::Racer).geometry()
    }

    fn spec(text: &str) -> JobSpec {
        JobSpec::ez("t", DatapathKind::Racer, text)
    }

    const ADD: &str = "ensemble h0.v0 {\n  add r0 r1 r2\n}";

    #[test]
    fn a_plain_program_is_admitted() {
        let p = build_program(&spec(ADD), &SubmissionLimits::default(), &geo()).unwrap();
        assert!(p.len() >= 3);
    }

    #[test]
    fn parse_errors_are_typed() {
        let err = build_program(&spec("ensemble h0.v0 {"), &SubmissionLimits::default(), &geo())
            .unwrap_err();
        assert_eq!(err.kind(), "parse_error");
    }

    #[test]
    fn dynamic_loop_ceiling_is_enforced() {
        let text = "ensemble h0.v0 {\n  while r0 < r1 {\n    add r0 r2 r0\n  }\n}";
        let limits = SubmissionLimits { max_dynamic_loops: 0, ..Default::default() };
        let err = build_program(&spec(text), &limits, &geo()).unwrap_err();
        assert!(matches!(err, AdmitError::TooManyDynamicLoops { loops: 1, limit: 0 }));
    }

    #[test]
    fn oversized_programs_are_rejected() {
        let limits = SubmissionLimits { max_program_instructions: 2, ..Default::default() };
        let err = build_program(&spec(ADD), &limits, &geo()).unwrap_err();
        assert_eq!(err.kind(), "program_too_large");
    }

    #[test]
    fn comm_programs_are_rejected() {
        let mut s = spec("");
        s.program = ProgramSource::Asm(
            "SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r1\nMOVE_DONE\nSEND_DONE".into(),
        );
        let err = build_program(&s, &SubmissionLimits::default(), &geo()).unwrap_err();
        assert!(matches!(err, AdmitError::CommNotSupported { line: 0 }));
    }

    #[test]
    fn out_of_geometry_inputs_are_rejected() {
        let mut s = spec(ADD);
        s.inputs.push(RegInit { rfh: 999, vrf: 0, reg: 0, values: vec![1] });
        let err = build_program(&s, &SubmissionLimits::default(), &geo()).unwrap_err();
        assert_eq!(err.kind(), "geometry_exceeded");
    }

    #[test]
    fn input_word_budget_is_enforced() {
        let mut s = spec(ADD);
        s.inputs.push(RegInit { rfh: 0, vrf: 0, reg: 0, values: vec![0; 64] });
        let limits = SubmissionLimits { max_input_words: 63, ..Default::default() };
        let err = build_program(&s, &limits, &geo()).unwrap_err();
        assert!(matches!(err, AdmitError::TooManyInputWords { words: 64, limit: 63 }));
    }
}
