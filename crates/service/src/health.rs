//! Service health ladder and the operator-facing health report.
//!
//! Health is derived, not stored: the scheduler computes it from queue
//! occupancy, worker liveness, and a decaying count of recent fault
//! retries. Degradation is graceful and reversible:
//!
//! * **Degraded** — low-priority submissions are shed at admission and
//!   newly admitted jobs run with the trace tier disabled (the compiled
//!   tier is the conservative fallback; lane results are identical by
//!   the conformance suite's tier-equivalence guarantee).
//! * **Critical** — everything below high priority is shed.
//!
//! When the pressure signal decays, the service returns to **Healthy**
//! with no operator action.

use std::fmt;

/// The three-state health ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Normal operation: all priorities admitted, trace tier on.
    Healthy,
    /// Under pressure: shed `Low`, disable the trace tier for new jobs.
    Degraded,
    /// Overloaded or storm-struck: shed everything below `High`.
    Critical,
}

impl HealthState {
    /// Wire tag.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
        }
    }

    /// Parses a wire tag.
    pub fn from_str_tag(s: &str) -> Option<Self> {
        match s {
            "healthy" => Some(HealthState::Healthy),
            "degraded" => Some(HealthState::Degraded),
            "critical" => Some(HealthState::Critical),
            _ => None,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Point-in-time operator view of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Current ladder state.
    pub state: HealthState,
    /// Jobs waiting in the admission queue (including backoff holds).
    pub queued: usize,
    /// Admission queue capacity.
    pub capacity: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Live worker threads.
    pub workers_alive: usize,
    /// Worker threads ever spawned (initial pool + respawns).
    pub workers_spawned: u64,
    /// Worker deaths observed (chaos kills).
    pub worker_deaths: u64,
    /// Cumulative transient-fault retries across all jobs.
    pub fault_retries: u64,
    /// Decaying recent fault-retry pressure (drives the ladder).
    pub recent_fault_retries: u32,
    /// Cumulative checkpoint preemptions.
    pub preemptions: u64,
    /// Submissions rejected by load shedding.
    pub shed: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with a typed error.
    pub failed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_orders_and_tags_round_trip() {
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Critical);
        for s in [HealthState::Healthy, HealthState::Degraded, HealthState::Critical] {
            assert_eq!(HealthState::from_str_tag(s.as_str()), Some(s));
        }
    }
}
