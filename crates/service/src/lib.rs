//! # service — resilient multi-tenant simulation service
//!
//! A persistent daemon (or in-process handle) that accepts MPU
//! simulation jobs from many tenants and schedules them across a worker
//! pool sharing one warm recipe pool. The design goal is *robustness*:
//! every admitted job reaches exactly one typed outcome, and no single
//! job — however hostile — can take the service down.
//!
//! * **Admission control** ([`limits`]): bounded queue, per-tenant
//!   quotas, and submission-time resource validation (program size,
//!   geometry, dynamic-loop ceilings, no inter-MPU communication) with a
//!   typed rejection taxonomy ([`AdmitError`]).
//! * **Deadlines & cancellation**: cooperative, via
//!   [`mastodon::RunControl`] polled at compute-ensemble boundaries plus
//!   a watchdog thread; in-ensemble runaways are fenced by the
//!   simulator's per-ensemble instruction watchdog.
//! * **Retry with backoff**: transient `UncorrectedFault` aborts retry
//!   with exponential backoff and seeded jitter, bounded by a budget;
//!   exhaustion is a typed [`JobError::FaultBudgetExhausted`].
//! * **Checkpoint preemption**: high-priority jobs preempt running
//!   lower-priority ones at ensemble boundaries; the victim resumes
//!   byte-identically from an [`mastodon::MpuCheckpoint`].
//! * **Worker isolation**: each attempt runs under `catch_unwind`; a
//!   poison job costs one typed [`JobError::WorkerPanic`], never a
//!   worker. Chaos-killed workers are detected, their jobs recovered,
//!   and replacements spawned.
//! * **Graceful degradation** ([`health`]): under queue pressure or
//!   fault storms the service sheds low-priority work and falls back
//!   from the trace tier to the compiled tier, then recovers on its own.
//! * **Wire protocol** ([`proto`], [`server`]): length-prefixed
//!   `microjson` frames over a Unix socket, with a blocking client.
//!
//! ```
//! use pum_backend::DatapathKind;
//! use service::{JobSpec, RegInit, RegRef, Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig { workers: 1, ..Default::default() });
//! let mut spec = JobSpec::ez("docs", DatapathKind::Racer, "ensemble h0.v0 {\n add r0 r1 r2\n}");
//! spec.inputs.push(RegInit { rfh: 0, vrf: 0, reg: 0, values: vec![2] });
//! spec.inputs.push(RegInit { rfh: 0, vrf: 0, reg: 1, values: vec![3] });
//! spec.outputs.push(RegRef { rfh: 0, vrf: 0, reg: 2 });
//! let id = service.submit(spec).unwrap();
//! let outcome = service.wait(id).unwrap();
//! let result = outcome.result.unwrap();
//! assert_eq!(result.outputs[0].values[0], 2 + 3);
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod health;
mod job;
mod limits;
pub mod proto;
mod queue;
mod scheduler;
pub mod server;

pub use health::{HealthReport, HealthState};
pub use job::{
    FaultRequest, JobError, JobId, JobOutcome, JobPhase, JobResult, JobSpec, Priority,
    ProgramSource, RegInit, RegRef,
};
pub use limits::{AdmitError, SubmissionLimits};
pub use scheduler::{Service, ServiceConfig};
