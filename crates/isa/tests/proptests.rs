//! Property-based tests for the MPU ISA: encode/decode and text round-trips
//! over arbitrary instructions, and decoder totality over arbitrary words.

use mpu_isa::{
    BinaryOp, CompareOp, InitValue, Instruction, LineNum, MpuId, Program, RegId, RfhId, VrfId,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = RegId> {
    (0..=RegId::MAX).prop_map(RegId)
}
fn arb_vrf() -> impl Strategy<Value = VrfId> {
    (0..=VrfId::MAX).prop_map(VrfId)
}
fn arb_rfh() -> impl Strategy<Value = RfhId> {
    (0..=RfhId::MAX).prop_map(RfhId)
}
fn arb_mpu() -> impl Strategy<Value = MpuId> {
    (0..=MpuId::MAX).prop_map(MpuId)
}
fn arb_line() -> impl Strategy<Value = LineNum> {
    (0..=LineNum::MAX).prop_map(LineNum)
}

fn arb_binary_op() -> impl Strategy<Value = BinaryOp> {
    prop::sample::select(BinaryOp::ALL.to_vec())
}
fn arb_unary_op() -> impl Strategy<Value = mpu_isa::UnaryOp> {
    prop::sample::select(mpu_isa::UnaryOp::ALL.to_vec())
}
fn arb_compare_op() -> impl Strategy<Value = CompareOp> {
    prop::sample::select(CompareOp::ALL.to_vec())
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_rfh(), arb_vrf()).prop_map(|(rfh, vrf)| Instruction::Compute { rfh, vrf }),
        Just(Instruction::ComputeDone),
        Just(Instruction::MpuSync),
        (arb_rfh(), arb_rfh()).prop_map(|(src, dst)| Instruction::Move { src, dst }),
        Just(Instruction::MoveDone),
        arb_mpu().prop_map(|dst| Instruction::Send { dst }),
        Just(Instruction::SendDone),
        arb_mpu().prop_map(|src| Instruction::Recv { src }),
        arb_reg().prop_map(|rd| Instruction::GetMask { rd }),
        arb_reg().prop_map(|rs| Instruction::SetMask { rs }),
        Just(Instruction::Unmask),
        arb_line().prop_map(|target| Instruction::JumpCond { target }),
        arb_line().prop_map(|target| Instruction::Jump { target }),
        Just(Instruction::Return),
        Just(Instruction::Nop),
        (arb_binary_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rs, rt, rd)| Instruction::Binary { op, rs, rt, rd }),
        (arb_unary_op(), arb_reg(), arb_reg()).prop_map(|(op, rs, rd)| Instruction::Unary {
            op,
            rs,
            rd
        }),
        (arb_compare_op(), arb_reg(), arb_reg()).prop_map(|(op, rs, rt)| Instruction::Compare {
            op,
            rs,
            rt
        }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rs, rt, rd)| Instruction::Fuzzy {
            rs,
            rt,
            rd
        }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rt)| Instruction::Cas { rs, rt }),
        (prop::bool::ANY, arb_reg()).prop_map(|(one, rd)| Instruction::Init {
            value: if one { InitValue::One } else { InitValue::Zero },
            rd
        }),
        (arb_vrf(), arb_reg(), arb_vrf(), arb_reg()).prop_map(|(src_vrf, rs, dst_vrf, rd)| {
            Instruction::Memcpy { src_vrf, rs, dst_vrf, rd }
        }),
    ]
}

proptest! {
    /// Binary encoding is lossless and canonical for every instruction.
    #[test]
    fn encode_decode_roundtrip(instr in arb_instruction()) {
        let word = instr.encode();
        let back = Instruction::decode(word).expect("decode of encoded word");
        prop_assert_eq!(instr, back);
        prop_assert_eq!(back.encode(), word);
    }

    /// Textual assembly round-trips through Display + parse.
    #[test]
    fn text_roundtrip(instr in arb_instruction()) {
        let text = instr.to_string();
        let back: Instruction = text.parse().map_err(|e: String| {
            TestCaseError::fail(format!("parse of `{text}` failed: {e}"))
        })?;
        prop_assert_eq!(instr, back);
    }

    /// The decoder never panics: every 32-bit word either decodes or
    /// produces a structured error.
    #[test]
    fn decoder_is_total(word in any::<u32>()) {
        let _ = Instruction::decode(word);
    }

    /// Program-level encode/decode round-trips for arbitrary instruction
    /// sequences (structure not required for codec correctness).
    #[test]
    fn program_roundtrip(instrs in prop::collection::vec(arb_instruction(), 0..64)) {
        let p = Program::from_instructions(instrs);
        let words = p.encode();
        prop_assert_eq!(Program::decode(&words).expect("decode"), p);
    }

    /// Program text round-trips through Display + parse_asm.
    #[test]
    fn program_text_roundtrip(instrs in prop::collection::vec(arb_instruction(), 0..32)) {
        let p = Program::from_instructions(instrs);
        let text = p.to_string();
        let back = Program::parse_asm(&text).expect("parse_asm");
        prop_assert_eq!(p, back);
    }
}
