//! Newtype identifiers for MPU architectural resources.
//!
//! The MPU ISA names four kinds of hardware resource: vector registers
//! within a VRF ([`RegId`]), vector register files within an RF holder
//! ([`VrfId`]), RF holders within an MPU ([`RfhId`]), and MPUs within a chip
//! ([`MpuId`]). Jump targets are [`LineNum`]s (instruction indices within a
//! binary). Each is a distinct type so that e.g. a register index can never
//! be passed where a VRF index is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum encodable vector-register index (6-bit field).
pub(crate) const REG_MAX: u16 = (1 << 6) - 1;
/// Maximum encodable VRF index within an RF holder (6-bit field).
pub(crate) const VRF_MAX: u16 = (1 << 6) - 1;
/// Maximum encodable RF-holder index within an MPU (5-bit field).
pub(crate) const RFH_MAX: u16 = (1 << 5) - 1;
/// Maximum encodable MPU index within a chip (10-bit field).
pub(crate) const MPU_MAX: u16 = (1 << 10) - 1;
/// Maximum encodable jump target (20-bit field).
pub(crate) const LINE_MAX: u32 = (1 << 20) - 1;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $max:expr, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Largest index representable in the instruction encoding.
            pub const MAX: $inner = $max;

            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns `true` if this index fits in the encoded bitfield.
            #[inline]
            pub fn is_encodable(self) -> bool {
                self.0 <= $max
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl From<$name> for $inner {
            fn from(v: $name) -> $inner {
                v.0
            }
        }
    };
}

id_type!(
    /// Index of a vector register within a VRF.
    ///
    /// In a bitwise PUM datapath a vector register is one or more physical
    /// columns of a memory array; e.g. in RACER, register *i* maps to column
    /// *i* across all tiles of a pipeline.
    RegId, u16, REG_MAX, "r"
);

id_type!(
    /// Index of a vector register file within an RF holder.
    ///
    /// A VRF corresponds to the smallest collection of physical memory
    /// arrays capable of vector register access (a RACER pipeline, a
    /// MIMDRAM mat, a Duality Cache SRAM subarray).
    VrfId, u16, VRF_MAX, "v"
);

id_type!(
    /// Index of a register-file holder within an MPU.
    ///
    /// An RF holder groups VRFs that share physical constraints (thermal
    /// activation limits, local interconnect, shared control units). The
    /// runtime enforces per-RFH active-VRF limits.
    RfhId, u16, RFH_MAX, "h"
);

id_type!(
    /// Index of an MPU on a chip. Used by `SEND`/`RECV` message passing.
    MpuId, u16, MPU_MAX, "mpu"
);

/// A jump target: the index of an instruction within a program binary.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineNum(pub u32);

impl LineNum {
    /// Largest line number representable in the 20-bit encoded field.
    pub const MAX: u32 = LINE_MAX;

    /// Returns the raw instruction index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this target fits in the encoded bitfield.
    #[inline]
    pub fn is_encodable(self) -> bool {
        self.0 <= LINE_MAX
    }
}

impl fmt::Display for LineNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<u32> for LineNum {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl From<usize> for LineNum {
    fn from(v: usize) -> Self {
        Self(v as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_conventional_prefixes() {
        assert_eq!(RegId(3).to_string(), "r3");
        assert_eq!(VrfId(1).to_string(), "v1");
        assert_eq!(RfhId(7).to_string(), "h7");
        assert_eq!(MpuId(12).to_string(), "mpu12");
        assert_eq!(LineNum(99).to_string(), "@99");
    }

    #[test]
    fn encodable_bounds() {
        assert!(RegId(63).is_encodable());
        assert!(!RegId(64).is_encodable());
        assert!(VrfId(63).is_encodable());
        assert!(!VrfId(64).is_encodable());
        assert!(RfhId(31).is_encodable());
        assert!(!RfhId(32).is_encodable());
        assert!(MpuId(1023).is_encodable());
        assert!(!MpuId(1024).is_encodable());
        assert!(LineNum(LineNum::MAX).is_encodable());
        assert!(!LineNum(LineNum::MAX + 1).is_encodable());
    }

    #[test]
    fn conversions_roundtrip() {
        let r: RegId = 5u16.into();
        let raw: u16 = r.into();
        assert_eq!(raw, 5);
        assert_eq!(r.index(), 5);
        let l: LineNum = 17usize.into();
        assert_eq!(l.index(), 17);
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(RegId(1) < RegId(2));
        assert!(MpuId(0) < MpuId(1023));
    }
}
