//! Program container: an ordered list of MPU instructions plus helpers.

use crate::encode::DecodeError;
use crate::instr::Instruction;
use crate::validate::ValidateError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// An MPU program binary: an ordered sequence of [`Instruction`]s.
///
/// A program is what the precoder's instruction storage unit (ISU) holds
/// on chip. Construct one with [`Program::from_instructions`] or via the
/// `ezpim` assembler, check it with [`Program::validate`], and serialize it
/// with [`Program::encode`] / [`Program::decode`].
///
/// # Example
///
/// ```
/// use mpu_isa::{Instruction, Program, RfhId, VrfId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Program::from_instructions(vec![
///     Instruction::Compute { rfh: RfhId(0), vrf: VrfId(0) },
///     Instruction::Nop,
///     Instruction::ComputeDone,
/// ]);
/// assert_eq!(p.len(), 3);
/// p.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a list of instructions as a program.
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        Self { instructions }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True if the program holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instructions, in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The instruction at `index`, or `None` past the end — the
    /// non-panicking counterpart of indexing, for interpreter fetch paths
    /// that must reject truncated programs gracefully.
    pub fn get(&self, index: usize) -> Option<&Instruction> {
        self.instructions.get(index)
    }

    /// Appends one instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Size of the encoded binary in bytes (4 bytes per instruction). The
    /// paper's instruction storage unit holds 2 MB, so programs beyond
    /// 524,288 instructions must borrow nearby ISUs.
    pub fn binary_size_bytes(&self) -> usize {
        self.instructions.len() * 4
    }

    /// Encodes the whole program as 32-bit words.
    ///
    /// # Panics
    ///
    /// Panics if any operand exceeds its encodable range; run
    /// [`Program::validate`] first to get an error instead.
    pub fn encode(&self) -> Vec<u32> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Decodes a program from 32-bit words.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] encountered.
    pub fn decode(words: &[u32]) -> Result<Self, DecodeError> {
        let instructions =
            words.iter().map(|&w| Instruction::decode(w)).collect::<Result<Vec<_>, _>>()?;
        Ok(Self { instructions })
    }

    /// Checks structural well-formedness (ensemble nesting, jump targets,
    /// operand ranges, move-block membership). See [`crate::ValidateError`].
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found, with its line number.
    pub fn validate(&self) -> Result<(), ValidateError> {
        crate::validate::validate(self)
    }

    /// Counts instructions for which [`Instruction::requires_control_path`]
    /// holds — the instructions a *Baseline* datapath must offload to a
    /// host CPU.
    pub fn control_instruction_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.requires_control_path()).count()
    }
}

impl Index<usize> for Program {
    type Output = Instruction;

    fn index(&self, index: usize) -> &Instruction {
        &self.instructions[index]
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Self { instructions: iter.into_iter().collect() }
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl IntoIterator for Program {
    type Item = Instruction;
    type IntoIter = std::vec::IntoIter<Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.into_iter()
    }
}

impl fmt::Display for Program {
    /// Formats the program as Table II-style assembly text, one numbered
    /// instruction per line (parseable back with [`Program::parse_asm`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, instr) in self.instructions.iter().enumerate() {
            writeln!(f, "{i:4}: {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryOp, RegId, RfhId, VrfId};

    fn tiny() -> Program {
        Program::from_instructions(vec![
            Instruction::Compute { rfh: RfhId(0), vrf: VrfId(1) },
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            Instruction::ComputeDone,
        ])
    }

    #[test]
    fn basic_container_behaviour() {
        let p = tiny();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.binary_size_bytes(), 12);
        assert_eq!(p[2], Instruction::ComputeDone);
        assert_eq!(p.iter().count(), 3);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = tiny();
        let words = p.encode();
        assert_eq!(words.len(), 3);
        assert_eq!(Program::decode(&words).unwrap(), p);
    }

    #[test]
    fn collect_and_extend() {
        let mut p: Program = tiny().into_iter().collect();
        p.extend([Instruction::Nop]);
        assert_eq!(p.len(), 4);
        let borrowed: Vec<_> = (&p).into_iter().collect();
        assert_eq!(borrowed.len(), 4);
    }

    #[test]
    fn control_instruction_count_counts_only_control_flow() {
        let mut p = tiny();
        assert_eq!(p.control_instruction_count(), 0);
        p.push(Instruction::Unmask);
        p.push(Instruction::Return);
        p.push(Instruction::Nop);
        assert_eq!(p.control_instruction_count(), 2);
    }

    #[test]
    fn display_is_line_numbered() {
        let text = tiny().to_string();
        assert!(text.contains("0: COMPUTE"));
        assert!(text.contains("1: ADD"));
        assert!(text.contains("2: COMPUTE_DONE"));
    }
}
