//! # mpu-isa — The Memory Processing Unit instruction set architecture
//!
//! This crate defines the microarchitecture-agnostic MPU ISA from
//! *"The Memory Processing Unit: A Generalized Interface for End-to-End
//! In-Memory Execution"* (HPCA 2026), Table II: 32-bit instructions over
//! 64-bit vector data.
//!
//! The ISA has six instruction families:
//!
//! * **Ensemble deployment** — [`Instruction::Compute`], [`Instruction::ComputeDone`],
//!   [`Instruction::MpuSync`], [`Instruction::Move`], [`Instruction::MoveDone`]
//!   demarcate *compute ensembles* (groups of VRFs executing the same body)
//!   and *transfer ensembles* (memory-consistent data movement).
//! * **Inter-MPU communication** — [`Instruction::Send`], [`Instruction::SendDone`],
//!   [`Instruction::Recv`] implement explicit message passing between MPUs.
//! * **Control flow** — mask manipulation ([`Instruction::GetMask`],
//!   [`Instruction::SetMask`], [`Instruction::Unmask`]) and jumps
//!   ([`Instruction::JumpCond`], [`Instruction::Jump`], [`Instruction::Return`])
//!   enable data-driven loops, branches, and subroutine calls *inside* the
//!   PUM datapath, with no host-CPU round trips.
//! * **Arithmetic / comparison / Boolean** — bit-serial vector operations
//!   ([`BinaryOp`], [`UnaryOp`], [`CompareOp`]) executed by every lane of the
//!   active VRFs.
//! * **Data movement** — [`Instruction::Memcpy`] (across VRFs, inside a move
//!   block) and [`UnaryOp::Mov`] (within a VRF).
//!
//! # Example
//!
//! ```
//! use mpu_isa::{Instruction, BinaryOp, Program, RegId, RfhId, VrfId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Program::from_instructions(vec![
//!     Instruction::Compute { rfh: RfhId(1), vrf: VrfId(1) },
//!     Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
//!     Instruction::ComputeDone,
//! ]);
//! program.validate()?;
//! let words = program.encode();
//! let back = Program::decode(&words)?;
//! assert_eq!(program, back);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod ids;
mod instr;
mod program;
mod text;
mod validate;

pub use encode::DecodeError;
pub use ids::{LineNum, MpuId, RegId, RfhId, VrfId};
pub use instr::{BinaryOp, CompareOp, InitValue, Instruction, UnaryOp};
pub use program::Program;
pub use text::ParseAsmError;
pub use validate::{ValidateError, ValidateErrorKind};

/// Width, in bits, of every vector data element in the MPU (the paper's
/// "32-bit instructions, 64-bit data").
pub const DATA_BITS: u32 = 64;

/// Conventional register alias for the *conditional register*: `SETMASK
/// r63` loads the per-lane comparison result produced by `CMPEQ`/`CMPGT`/
/// `CMPLT`/`FUZZY` into the mask register, rather than bit 0 of a data
/// register. (The conditional register is control-path state, not a VRF
/// column; the alias keeps Table II's one-operand `SETMASK` encoding.)
pub const COND_REG: RegId = RegId(63);

/// Width, in bits, of an encoded MPU instruction.
pub const INSTRUCTION_BITS: u32 = 32;
