//! Structural validation of MPU programs.
//!
//! The MPU ISA organizes instructions into blocks: compute ensembles
//! (`COMPUTE`+ header, body, `COMPUTE_DONE` footer), move blocks (`MOVE`+
//! header, `MEMCPY` body, `MOVE_DONE` footer) and send blocks (`SEND`,
//! move blocks, `SEND_DONE`). The validator checks block nesting, header
//! contiguity, jump-target bounds, and operand encodability — exactly the
//! properties the control path's fetcher relies on when distributing
//! ensemble subsequences to controllers.

use crate::ids::LineNum;
use crate::instr::Instruction;
use crate::program::Program;
use std::fmt;

/// Where the validator currently is within the block structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Context {
    /// Outside any block (subroutine bodies may live here).
    TopLevel,
    /// Inside a compute ensemble's `COMPUTE` header run.
    ComputeHeader,
    /// Inside a compute ensemble's body.
    ComputeBody,
    /// Inside a move block's `MOVE` header run.
    MoveHeader,
    /// Inside a move block's body (only `MEMCPY` allowed).
    MoveBody,
    /// Inside a `SEND` block (only move blocks allowed).
    SendBlock,
}

impl Context {
    fn name(self) -> &'static str {
        match self {
            Context::TopLevel => "top level",
            Context::ComputeHeader | Context::ComputeBody => "compute ensemble",
            Context::MoveHeader | Context::MoveBody => "move block",
            Context::SendBlock => "send block",
        }
    }
}

/// The specific structural rule an instruction violated.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateErrorKind {
    /// Instruction not allowed in the enclosing block kind (e.g. `MEMCPY`
    /// outside a move block, nested `COMPUTE` ensembles).
    MisplacedInstruction {
        /// The offending mnemonic.
        mnemonic: &'static str,
        /// The context in which it appeared.
        context: &'static str,
    },
    /// A block header instruction appeared after its block's body started.
    HeaderNotContiguous {
        /// The offending mnemonic (`COMPUTE` or `MOVE`).
        mnemonic: &'static str,
    },
    /// Program ended with an unterminated block.
    UnterminatedBlock {
        /// The block kind left open.
        context: &'static str,
    },
    /// A jump target points past the end of the program.
    JumpOutOfBounds {
        /// The offending target.
        target: LineNum,
        /// Program length.
        len: usize,
    },
    /// An operand exceeds its encodable bitfield.
    OperandOutOfRange {
        /// The offending mnemonic.
        mnemonic: &'static str,
    },
}

impl fmt::Display for ValidateErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateErrorKind::MisplacedInstruction { mnemonic, context } => {
                write!(f, "{mnemonic} is not allowed in {context}")
            }
            ValidateErrorKind::HeaderNotContiguous { mnemonic } => {
                write!(f, "{mnemonic} header instruction appears after the block body started")
            }
            ValidateErrorKind::UnterminatedBlock { context } => {
                write!(f, "program ends inside an unterminated {context}")
            }
            ValidateErrorKind::JumpOutOfBounds { target, len } => {
                write!(f, "jump target {target} is out of bounds for a {len}-instruction program")
            }
            ValidateErrorKind::OperandOutOfRange { mnemonic } => {
                write!(f, "{mnemonic} has an operand outside its encodable range")
            }
        }
    }
}

/// A structural violation, located at an instruction index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Instruction index of the violation (program length for
    /// end-of-program errors).
    pub line: usize,
    /// What went wrong.
    pub kind: ValidateErrorKind,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for ValidateError {}

fn operands_encodable(instr: &Instruction) -> bool {
    match *instr {
        Instruction::Compute { rfh, vrf } => rfh.is_encodable() && vrf.is_encodable(),
        Instruction::Move { src, dst } => src.is_encodable() && dst.is_encodable(),
        Instruction::Send { dst } => dst.is_encodable(),
        Instruction::Recv { src } => src.is_encodable(),
        Instruction::GetMask { rd } => rd.is_encodable(),
        Instruction::SetMask { rs } => rs.is_encodable(),
        Instruction::JumpCond { target } | Instruction::Jump { target } => target.is_encodable(),
        Instruction::Binary { rs, rt, rd, .. } | Instruction::Fuzzy { rs, rt, rd } => {
            rs.is_encodable() && rt.is_encodable() && rd.is_encodable()
        }
        Instruction::Unary { rs, rd, .. } => rs.is_encodable() && rd.is_encodable(),
        Instruction::Compare { rs, rt, .. } | Instruction::Cas { rs, rt } => {
            rs.is_encodable() && rt.is_encodable()
        }
        Instruction::Init { rd, .. } => rd.is_encodable(),
        Instruction::Memcpy { src_vrf, rs, dst_vrf, rd } => {
            src_vrf.is_encodable()
                && rs.is_encodable()
                && dst_vrf.is_encodable()
                && rd.is_encodable()
        }
        Instruction::ComputeDone
        | Instruction::MoveDone
        | Instruction::SendDone
        | Instruction::MpuSync
        | Instruction::Unmask
        | Instruction::Return
        | Instruction::Nop => true,
    }
}

/// Validates a program's block structure. See module docs for the rules.
pub(crate) fn validate(program: &Program) -> Result<(), ValidateError> {
    let len = program.len();
    let err = |line: usize, kind: ValidateErrorKind| Err(ValidateError { line, kind });
    let misplaced = |line: usize, instr: &Instruction, ctx: Context| {
        err(
            line,
            ValidateErrorKind::MisplacedInstruction {
                mnemonic: instr.mnemonic(),
                context: ctx.name(),
            },
        )
    };

    // `stack` tracks enclosing blocks; only [Send, Move*] nests, so depth<=2.
    let mut stack: Vec<Context> = Vec::new();
    let mut was_in_move_body_of_current_block = false;
    let mut was_in_compute_body_of_current_block = false;

    for (line, instr) in program.iter().enumerate() {
        if !operands_encodable(instr) {
            return err(line, ValidateErrorKind::OperandOutOfRange { mnemonic: instr.mnemonic() });
        }
        if let Instruction::JumpCond { target } | Instruction::Jump { target } = instr {
            if target.index() >= len {
                return err(line, ValidateErrorKind::JumpOutOfBounds { target: *target, len });
            }
        }

        let ctx = stack.last().copied().unwrap_or(Context::TopLevel);
        match instr {
            Instruction::Compute { .. } => match ctx {
                Context::TopLevel => {
                    stack.push(Context::ComputeHeader);
                    was_in_compute_body_of_current_block = false;
                }
                Context::ComputeHeader => {}
                Context::ComputeBody => {
                    return err(
                        line,
                        ValidateErrorKind::HeaderNotContiguous { mnemonic: "COMPUTE" },
                    );
                }
                _ => return misplaced(line, instr, ctx),
            },
            Instruction::ComputeDone => match ctx {
                Context::ComputeHeader | Context::ComputeBody => {
                    stack.pop();
                }
                _ => return misplaced(line, instr, ctx),
            },
            Instruction::Move { .. } => match ctx {
                Context::TopLevel | Context::SendBlock => {
                    stack.push(Context::MoveHeader);
                    was_in_move_body_of_current_block = false;
                }
                Context::MoveHeader => {}
                Context::MoveBody => {
                    return err(line, ValidateErrorKind::HeaderNotContiguous { mnemonic: "MOVE" });
                }
                _ => return misplaced(line, instr, ctx),
            },
            Instruction::MoveDone => match ctx {
                Context::MoveHeader | Context::MoveBody => {
                    stack.pop();
                }
                _ => return misplaced(line, instr, ctx),
            },
            Instruction::Memcpy { .. } => match ctx {
                Context::MoveHeader => {
                    *stack.last_mut().expect("nonempty") = Context::MoveBody;
                    was_in_move_body_of_current_block = true;
                }
                Context::MoveBody => {}
                _ => return misplaced(line, instr, ctx),
            },
            Instruction::Send { .. } => match ctx {
                Context::TopLevel => stack.push(Context::SendBlock),
                _ => return misplaced(line, instr, ctx),
            },
            Instruction::SendDone => match ctx {
                Context::SendBlock => {
                    stack.pop();
                }
                _ => return misplaced(line, instr, ctx),
            },
            Instruction::Recv { .. } | Instruction::MpuSync => match ctx {
                Context::TopLevel => {}
                _ => return misplaced(line, instr, ctx),
            },
            // Compute-body instructions: allowed inside compute ensembles
            // and at top level (subroutine bodies reached via JUMP).
            body if body.is_compute_body() => match ctx {
                Context::ComputeHeader => {
                    *stack.last_mut().expect("nonempty") = Context::ComputeBody;
                    was_in_compute_body_of_current_block = true;
                }
                Context::ComputeBody | Context::TopLevel => {}
                _ => return misplaced(line, instr, ctx),
            },
            other => return misplaced(line, other, ctx),
        }
    }

    if let Some(ctx) = stack.last() {
        return err(len, ValidateErrorKind::UnterminatedBlock { context: ctx.name() });
    }
    // Suppress "unused assignment" analyses; the flags exist for future
    // diagnostics (empty-body warnings) and tests assert current behaviour.
    let _ = (was_in_move_body_of_current_block, was_in_compute_body_of_current_block);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryOp, CompareOp, MpuId, RegId, RfhId, VrfId};

    fn add() -> Instruction {
        Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) }
    }

    fn compute(rfh: u16, vrf: u16) -> Instruction {
        Instruction::Compute { rfh: RfhId(rfh), vrf: VrfId(vrf) }
    }

    fn memcpy() -> Instruction {
        Instruction::Memcpy { src_vrf: VrfId(0), rs: RegId(0), dst_vrf: VrfId(0), rd: RegId(0) }
    }

    #[test]
    fn figure6_style_program_validates() {
        // Mirrors the paper's Fig. 6: two compute ensembles, a transfer
        // ensemble, and an inter-MPU send block.
        let p = Program::from_instructions(vec![
            compute(1, 1),
            compute(3, 1),
            compute(3, 2),
            add(),
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(2), rt: RegId(3), rd: RegId(4) },
            Instruction::ComputeDone,
            compute(2, 1),
            Instruction::Binary { op: BinaryOp::Mul, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            Instruction::Binary { op: BinaryOp::Mac, rs: RegId(0), rt: RegId(3), rd: RegId(4) },
            Instruction::ComputeDone,
            Instruction::Move { src: RfhId(1), dst: RfhId(2) },
            Instruction::Move { src: RfhId(2), dst: RfhId(3) },
            memcpy(),
            memcpy(),
            Instruction::MoveDone,
            Instruction::Send { dst: MpuId(4) },
            Instruction::Move { src: RfhId(1), dst: RfhId(4) },
            memcpy(),
            memcpy(),
            Instruction::MoveDone,
            Instruction::SendDone,
        ]);
        p.validate().unwrap();
    }

    #[test]
    fn memcpy_outside_move_block_rejected() {
        let p = Program::from_instructions(vec![memcpy()]);
        let e = p.validate().unwrap_err();
        assert_eq!(e.line, 0);
        assert!(matches!(
            e.kind,
            ValidateErrorKind::MisplacedInstruction { mnemonic: "MEMCPY", .. }
        ));
    }

    #[test]
    fn nested_compute_ensembles_rejected() {
        let p = Program::from_instructions(vec![
            compute(0, 0),
            add(),
            compute(0, 1), // header after body started
            Instruction::ComputeDone,
            Instruction::ComputeDone,
        ]);
        let e = p.validate().unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ValidateErrorKind::HeaderNotContiguous { mnemonic: "COMPUTE" }));
    }

    #[test]
    fn unterminated_ensemble_rejected() {
        let p = Program::from_instructions(vec![compute(0, 0), add()]);
        let e = p.validate().unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ValidateErrorKind::UnterminatedBlock { .. }));
    }

    #[test]
    fn jump_out_of_bounds_rejected() {
        let p = Program::from_instructions(vec![Instruction::Jump { target: LineNum(5) }]);
        let e = p.validate().unwrap_err();
        assert!(matches!(e.kind, ValidateErrorKind::JumpOutOfBounds { .. }));
    }

    #[test]
    fn arithmetic_inside_move_block_rejected() {
        let p = Program::from_instructions(vec![
            Instruction::Move { src: RfhId(0), dst: RfhId(1) },
            add(),
            Instruction::MoveDone,
        ]);
        let e = p.validate().unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn compute_inside_send_block_rejected() {
        let p = Program::from_instructions(vec![
            Instruction::Send { dst: MpuId(1) },
            compute(0, 0),
            Instruction::ComputeDone,
            Instruction::SendDone,
        ]);
        let e = p.validate().unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn operand_out_of_range_rejected() {
        let p = Program::from_instructions(vec![Instruction::SetMask { rs: RegId(200) }]);
        let e = p.validate().unwrap_err();
        assert!(matches!(e.kind, ValidateErrorKind::OperandOutOfRange { mnemonic: "SETMASK" }));
    }

    #[test]
    fn top_level_subroutine_body_allowed() {
        // Subroutines live outside ensembles and are reached via JUMP.
        let p = Program::from_instructions(vec![
            compute(0, 0),
            Instruction::Jump { target: LineNum(3) },
            Instruction::ComputeDone,
            Instruction::Compare { op: CompareOp::Eq, rs: RegId(0), rt: RegId(1) },
            Instruction::Return,
        ]);
        p.validate().unwrap();
    }

    #[test]
    fn move_done_at_top_level_rejected() {
        let p = Program::from_instructions(vec![Instruction::MoveDone]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn error_display_mentions_line() {
        let p = Program::from_instructions(vec![memcpy()]);
        let e = p.validate().unwrap_err();
        assert!(e.to_string().starts_with("line 0:"));
    }
}
