//! Textual assembly: `Display` for instructions and a line-oriented parser.
//!
//! The format follows Table II: mnemonic followed by whitespace-separated
//! operands with conventional prefixes (`r` registers, `v` VRFs, `h` RF
//! holders, `mpu` MPUs, `@` line targets). `#` starts a comment. This is
//! the *basic* assembler; the `ezpim` crate layers loops, branches and
//! subroutine syntax on top.

use crate::ids::{LineNum, MpuId, RegId, RfhId, VrfId};
use crate::instr::{BinaryOp, CompareOp, InitValue, Instruction, UnaryOp};
use crate::program::Program;
use std::fmt;
use std::str::FromStr;

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Compute { rfh, vrf } => write!(f, "COMPUTE {rfh} {vrf}"),
            Instruction::ComputeDone => f.write_str("COMPUTE_DONE"),
            Instruction::MpuSync => f.write_str("MPU_SYNC"),
            Instruction::Move { src, dst } => write!(f, "MOVE {src} {dst}"),
            Instruction::MoveDone => f.write_str("MOVE_DONE"),
            Instruction::Send { dst } => write!(f, "SEND {dst}"),
            Instruction::SendDone => f.write_str("SEND_DONE"),
            Instruction::Recv { src } => write!(f, "RECV {src}"),
            Instruction::GetMask { rd } => write!(f, "GETMASK {rd}"),
            Instruction::SetMask { rs } => write!(f, "SETMASK {rs}"),
            Instruction::Unmask => f.write_str("UNMASK"),
            Instruction::JumpCond { target } => write!(f, "JUMP_COND {target}"),
            Instruction::Jump { target } => write!(f, "JUMP {target}"),
            Instruction::Return => f.write_str("RETURN"),
            Instruction::Nop => f.write_str("NOP"),
            Instruction::Binary { op, rs, rt, rd } => write!(f, "{op} {rs} {rt} {rd}"),
            Instruction::Unary { op, rs, rd } => write!(f, "{op} {rs} {rd}"),
            Instruction::Compare { op, rs, rt } => write!(f, "{op} {rs} {rt}"),
            Instruction::Fuzzy { rs, rt, rd } => write!(f, "FUZZY {rs} {rt} {rd}"),
            Instruction::Cas { rs, rt } => write!(f, "CAS {rs} {rt}"),
            Instruction::Init { value, rd } => match value {
                InitValue::Zero => write!(f, "INIT0 {rd}"),
                InitValue::One => write!(f, "INIT1 {rd}"),
            },
            Instruction::Memcpy { src_vrf, rs, dst_vrf, rd } => {
                write!(f, "MEMCPY {src_vrf} {rs} {dst_vrf} {rd}")
            }
        }
    }
}

/// Error parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// One-based source line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn parse_prefixed(tok: &str, prefix: &str, what: &str) -> Result<u32, String> {
    let digits = tok
        .strip_prefix(prefix)
        .ok_or_else(|| format!("expected {what} like `{prefix}0`, found `{tok}`"))?;
    digits.parse::<u32>().map_err(|_| format!("invalid {what} index in `{tok}`"))
}

fn reg(tok: &str) -> Result<RegId, String> {
    parse_prefixed(tok, "r", "register").map(|v| RegId(v as u16))
}
fn vrf(tok: &str) -> Result<VrfId, String> {
    parse_prefixed(tok, "v", "VRF").map(|v| VrfId(v as u16))
}
fn rfh(tok: &str) -> Result<RfhId, String> {
    parse_prefixed(tok, "h", "RF holder").map(|v| RfhId(v as u16))
}
fn mpu(tok: &str) -> Result<MpuId, String> {
    parse_prefixed(tok, "mpu", "MPU").map(|v| MpuId(v as u16))
}
fn line_num(tok: &str) -> Result<LineNum, String> {
    // Accept both `@5` and bare `5` (Table II shows bare line numbers).
    let digits = tok.strip_prefix('@').unwrap_or(tok);
    digits.parse::<u32>().map(LineNum).map_err(|_| format!("invalid line number in `{tok}`"))
}

impl FromStr for Instruction {
    type Err = String;

    /// Parses a single Table II-style instruction line (no comments).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut toks = s.split_whitespace();
        let mnemonic = toks.next().ok_or_else(|| "empty instruction".to_string())?;
        let mn = mnemonic.to_ascii_uppercase();
        let rest: Vec<&str> = toks.collect();
        let argc = |n: usize| -> Result<(), String> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(format!("{mn} expects {n} operand(s), found {}", rest.len()))
            }
        };

        if let Some(op) = BinaryOp::ALL.iter().find(|o| o.mnemonic() == mn) {
            argc(3)?;
            return Ok(Instruction::Binary {
                op: *op,
                rs: reg(rest[0])?,
                rt: reg(rest[1])?,
                rd: reg(rest[2])?,
            });
        }
        if let Some(op) = UnaryOp::ALL.iter().find(|o| o.mnemonic() == mn) {
            argc(2)?;
            return Ok(Instruction::Unary { op: *op, rs: reg(rest[0])?, rd: reg(rest[1])? });
        }
        if let Some(op) = CompareOp::ALL.iter().find(|o| o.mnemonic() == mn) {
            argc(2)?;
            return Ok(Instruction::Compare { op: *op, rs: reg(rest[0])?, rt: reg(rest[1])? });
        }

        match mn.as_str() {
            "COMPUTE" => {
                argc(2)?;
                Ok(Instruction::Compute { rfh: rfh(rest[0])?, vrf: vrf(rest[1])? })
            }
            "COMPUTE_DONE" => {
                argc(0)?;
                Ok(Instruction::ComputeDone)
            }
            "MPU_SYNC" => {
                argc(0)?;
                Ok(Instruction::MpuSync)
            }
            "MOVE" => {
                argc(2)?;
                Ok(Instruction::Move { src: rfh(rest[0])?, dst: rfh(rest[1])? })
            }
            "MOVE_DONE" => {
                argc(0)?;
                Ok(Instruction::MoveDone)
            }
            "SEND" => {
                argc(1)?;
                Ok(Instruction::Send { dst: mpu(rest[0])? })
            }
            "SEND_DONE" => {
                argc(0)?;
                Ok(Instruction::SendDone)
            }
            "RECV" => {
                argc(1)?;
                Ok(Instruction::Recv { src: mpu(rest[0])? })
            }
            "GETMASK" => {
                argc(1)?;
                Ok(Instruction::GetMask { rd: reg(rest[0])? })
            }
            "SETMASK" => {
                argc(1)?;
                Ok(Instruction::SetMask { rs: reg(rest[0])? })
            }
            "UNMASK" => {
                argc(0)?;
                Ok(Instruction::Unmask)
            }
            "JUMP_COND" => {
                argc(1)?;
                Ok(Instruction::JumpCond { target: line_num(rest[0])? })
            }
            "JUMP" => {
                argc(1)?;
                Ok(Instruction::Jump { target: line_num(rest[0])? })
            }
            "RETURN" => {
                argc(0)?;
                Ok(Instruction::Return)
            }
            "NOP" => {
                argc(0)?;
                Ok(Instruction::Nop)
            }
            "FUZZY" => {
                argc(3)?;
                Ok(Instruction::Fuzzy { rs: reg(rest[0])?, rt: reg(rest[1])?, rd: reg(rest[2])? })
            }
            "CAS" => {
                argc(2)?;
                Ok(Instruction::Cas { rs: reg(rest[0])?, rt: reg(rest[1])? })
            }
            "INIT0" => {
                argc(1)?;
                Ok(Instruction::Init { value: InitValue::Zero, rd: reg(rest[0])? })
            }
            "INIT1" => {
                argc(1)?;
                Ok(Instruction::Init { value: InitValue::One, rd: reg(rest[0])? })
            }
            "MEMCPY" => {
                argc(4)?;
                Ok(Instruction::Memcpy {
                    src_vrf: vrf(rest[0])?,
                    rs: reg(rest[1])?,
                    dst_vrf: vrf(rest[2])?,
                    rd: reg(rest[3])?,
                })
            }
            other => Err(format!("unknown mnemonic `{other}`")),
        }
    }
}

impl Program {
    /// Parses Table II-style assembly text into a program.
    ///
    /// Blank lines and `#` comments are skipped; an optional leading
    /// `N:` line-number label (as printed by [`Program`]'s `Display`) is
    /// ignored, so `parse_asm(p.to_string())` round-trips.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseAsmError`] locating the first malformed line.
    ///
    /// # Example
    ///
    /// ```
    /// use mpu_isa::Program;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let p = Program::parse_asm(
    ///     "COMPUTE h0 v0\n\
    ///      ADD r0 r1 r2   # body\n\
    ///      COMPUTE_DONE",
    /// )?;
    /// assert_eq!(p.len(), 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse_asm(text: &str) -> Result<Program, ParseAsmError> {
        let mut instructions = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let no_comment = raw.split('#').next().unwrap_or("");
            let mut body = no_comment.trim();
            // Strip a leading `N:` label if present.
            if let Some(colon) = body.find(':') {
                if body[..colon].chars().all(|c| c.is_ascii_digit()) && colon > 0 {
                    body = body[colon + 1..].trim_start();
                }
            }
            if body.is_empty() {
                continue;
            }
            let instr = body
                .parse::<Instruction>()
                .map_err(|message| ParseAsmError { line: line_no, message })?;
            instructions.push(instr);
        }
        Ok(Program::from_instructions(instructions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_table_ii_syntax() {
        let i = Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
        assert_eq!(i.to_string(), "ADD r0 r1 r2");
        assert_eq!(
            Instruction::Compute { rfh: RfhId(1), vrf: VrfId(1) }.to_string(),
            "COMPUTE h1 v1"
        );
        assert_eq!(
            Instruction::Memcpy {
                src_vrf: VrfId(0),
                rs: RegId(1),
                dst_vrf: VrfId(2),
                rd: RegId(3)
            }
            .to_string(),
            "MEMCPY v0 r1 v2 r3"
        );
        assert_eq!(Instruction::JumpCond { target: LineNum(4) }.to_string(), "JUMP_COND @4");
    }

    #[test]
    fn parse_accepts_comments_blanks_and_labels() {
        let p = Program::parse_asm(
            "# a program\n\
             \n\
             0: COMPUTE h0 v1\n\
             ADD r0 r1 r2 # add\n\
             COMPUTE_DONE\n",
        )
        .unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn display_parse_roundtrip() {
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: RfhId(2), vrf: VrfId(5) },
            Instruction::Init { value: InitValue::One, rd: RegId(1) },
            Instruction::Compare { op: CompareOp::Lt, rs: RegId(1), rt: RegId(2) },
            Instruction::SetMask { rs: RegId(63) },
            Instruction::JumpCond { target: LineNum(1) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let text = p.to_string();
        let back = Program::parse_asm(&text).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn parse_rejects_bad_operand_counts() {
        let e = Program::parse_asm("ADD r0 r1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn parse_rejects_unknown_mnemonic() {
        let e = Program::parse_asm("FROB r0").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
    }

    #[test]
    fn parse_rejects_wrong_prefix() {
        let e = Program::parse_asm("ADD v0 r1 r2").unwrap_err();
        assert!(e.message.contains("expected register"));
    }

    #[test]
    fn parse_is_case_insensitive_on_mnemonics() {
        let p = Program::parse_asm("nop\nmpu_sync").unwrap();
        assert_eq!(p[0], Instruction::Nop);
        assert_eq!(p[1], Instruction::MpuSync);
    }

    #[test]
    fn bare_line_numbers_accepted_for_jumps() {
        let p = Program::parse_asm("JUMP 0").unwrap();
        assert_eq!(p[0], Instruction::Jump { target: LineNum(0) });
    }
}
