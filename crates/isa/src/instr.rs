//! The MPU instruction set (paper Table II).

use crate::ids::{LineNum, MpuId, RegId, RfhId, VrfId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Three-operand vector operations (`rd = rs OP rt`, except where noted).
///
/// All of these execute bit-serially across every enabled lane of the active
/// VRFs; the backend datapath expands each into a technology-specific
/// micro-op *recipe* (NOR sequences for ReRAM, triple-row activations for
/// DRAM, bitline ops for SRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Two's complement add (`rd = rs + rt`).
    Add,
    /// Two's complement subtract (`rd = rs - rt`).
    Sub,
    /// Multiply; the ISA restricts inputs to 8-/16-/32-bit values.
    Mul,
    /// Multiply-accumulate (`rd += rs * rt`).
    Mac,
    /// Division returning the quotient.
    QDiv,
    /// Division returning quotient in `rd` and remainder in `rt`
    /// (overwriting the register, per Table II).
    QRDiv,
    /// Division returning the remainder.
    RDiv,
    /// Bitwise AND.
    And,
    /// Bitwise NAND.
    Nand,
    /// Bitwise NOR.
    Nor,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise XNOR.
    Xnor,
    /// Multiplex: choose `rs` or `rt` per-bit based on the bitmask in `rd`.
    Mux,
    /// Returns the larger of `rs`, `rt`.
    Max,
    /// Returns the smaller of `rs`, `rt`.
    Min,
}

impl BinaryOp {
    /// All binary ops, in opcode order.
    pub const ALL: [BinaryOp; 16] = [
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Mac,
        BinaryOp::QDiv,
        BinaryOp::QRDiv,
        BinaryOp::RDiv,
        BinaryOp::And,
        BinaryOp::Nand,
        BinaryOp::Nor,
        BinaryOp::Or,
        BinaryOp::Xor,
        BinaryOp::Xnor,
        BinaryOp::Mux,
        BinaryOp::Max,
        BinaryOp::Min,
    ];

    /// The Table II mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinaryOp::Add => "ADD",
            BinaryOp::Sub => "SUB",
            BinaryOp::Mul => "MUL",
            BinaryOp::Mac => "MAC",
            BinaryOp::QDiv => "QDIV",
            BinaryOp::QRDiv => "QRDIV",
            BinaryOp::RDiv => "RDIV",
            BinaryOp::And => "AND",
            BinaryOp::Nand => "NAND",
            BinaryOp::Nor => "NOR",
            BinaryOp::Or => "OR",
            BinaryOp::Xor => "XOR",
            BinaryOp::Xnor => "XNOR",
            BinaryOp::Mux => "MUX",
            BinaryOp::Max => "MAX",
            BinaryOp::Min => "MIN",
        }
    }

    /// True for the pure Boolean ops whose recipes touch each bit once.
    pub fn is_bitwise(self) -> bool {
        matches!(
            self,
            BinaryOp::And
                | BinaryOp::Nand
                | BinaryOp::Nor
                | BinaryOp::Or
                | BinaryOp::Xor
                | BinaryOp::Xnor
                | BinaryOp::Mux
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Two-operand vector operations (`rd = OP rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Increment by one (`rd = rs + 1`).
    Inc,
    /// Population count.
    Popc,
    /// Rectified linear unit (`rd = max(rs, 0)`, two's complement).
    Relu,
    /// Bitwise NOT.
    Inv,
    /// Reverse the order of bits.
    BFlip,
    /// Left shift by 1.
    LShift,
    /// Copy vector register contents within a VRF.
    Mov,
}

impl UnaryOp {
    /// All unary ops, in opcode order.
    pub const ALL: [UnaryOp; 7] = [
        UnaryOp::Inc,
        UnaryOp::Popc,
        UnaryOp::Relu,
        UnaryOp::Inv,
        UnaryOp::BFlip,
        UnaryOp::LShift,
        UnaryOp::Mov,
    ];

    /// The Table II mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Inc => "INC",
            UnaryOp::Popc => "POPC",
            UnaryOp::Relu => "RELU",
            UnaryOp::Inv => "INV",
            UnaryOp::BFlip => "BFLIP",
            UnaryOp::LShift => "LSHIFT",
            UnaryOp::Mov => "MOV",
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison operations; the per-lane result lands in the *conditional
/// register* (one bit per lane), from which `SETMASK` can load the lane mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// Check equality.
    Eq,
    /// Check `rs > rt` (unsigned).
    Gt,
    /// Check `rs < rt` (unsigned).
    Lt,
}

impl CompareOp {
    /// All compare ops, in opcode order.
    pub const ALL: [CompareOp; 3] = [CompareOp::Eq, CompareOp::Gt, CompareOp::Lt];

    /// The Table II mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CompareOp::Eq => "CMPEQ",
            CompareOp::Gt => "CMPGT",
            CompareOp::Lt => "CMPLT",
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The constant written by an `INIT0`/`INIT1` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitValue {
    /// All lanes set to 0.
    Zero,
    /// All lanes set to 1.
    One,
}

impl InitValue {
    /// The 64-bit element value this initializer writes to each lane.
    pub fn value(self) -> u64 {
        match self {
            InitValue::Zero => 0,
            InitValue::One => 1,
        }
    }
}

/// One MPU instruction (paper Table II).
///
/// Each variant corresponds to one Table II row (with the register-to-
/// register families grouped by operand format). See the crate-level docs
/// for the family overview and [`crate::Program`] for container semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    // --- Ensemble deployment ---
    /// Demarcate the start of a compute ensemble (or extend its header):
    /// activate VRF `vrf` of RF holder `rfh`.
    Compute {
        /// RF holder containing the VRF.
        rfh: RfhId,
        /// VRF within the holder to add to the ensemble.
        vrf: VrfId,
    },
    /// Demarcate the end of a compute ensemble.
    ComputeDone,
    /// Fence: wait for all deployed ensembles to complete before proceeding.
    MpuSync,
    /// Demarcate the start of a move (transfer-ensemble) block with a
    /// source/destination RF-holder pair. Multiple `MOVE` headers add
    /// multiple pairs; each body `MEMCPY` applies to every pair.
    Move {
        /// Source RF holder.
        src: RfhId,
        /// Destination RF holder.
        dst: RfhId,
    },
    /// Demarcate the end of a move block.
    MoveDone,

    // --- Inter-MPU communication ---
    /// Send an execution block (the following move block) to MPU `dst`.
    Send {
        /// Destination MPU.
        dst: MpuId,
    },
    /// Demarcate the end of a `SEND` block.
    SendDone,
    /// Service an ensemble arriving from MPU `src`.
    Recv {
        /// Source MPU.
        src: MpuId,
    },

    // --- Control flow ---
    /// Copy the mask register into data register `rd` (disabling lane
    /// control so all mask bits copy), enabling arbitrary mask computation.
    GetMask {
        /// Destination data register.
        rd: RegId,
    },
    /// Copy `rs` (or the conditional register, by convention register
    /// `r63`) into the mask register and start predicated execution.
    SetMask {
        /// Source register holding the new per-lane mask.
        rs: RegId,
    },
    /// Stop predicated execution: set all mask bits to 1.
    Unmask,
    /// Jump to `target` if the mask register has **any** enabled lane;
    /// fall through when all lanes are disabled (loop exit). This is the
    /// hardware dynamic-loop support evaluated by the EFI.
    JumpCond {
        /// Loop-head instruction index.
        target: LineNum,
    },
    /// Unconditional jump (subroutine call): pushes the return address onto
    /// the control path's return-address stack.
    Jump {
        /// Subroutine entry instruction index.
        target: LineNum,
    },
    /// Pop the return-address stack and resume after the matching `JUMP`.
    Return,
    /// Do nothing (insert a pipeline bubble).
    Nop,

    // --- Arithmetic / Boolean (three-register) ---
    /// `rd = rs OP rt` (see [`BinaryOp`]; `MAC` accumulates, `MUX` selects).
    Binary {
        /// Operation.
        op: BinaryOp,
        /// First source register.
        rs: RegId,
        /// Second source register.
        rt: RegId,
        /// Destination register.
        rd: RegId,
    },
    /// `rd = OP rs` (see [`UnaryOp`]).
    Unary {
        /// Operation.
        op: UnaryOp,
        /// Source register.
        rs: RegId,
        /// Destination register.
        rd: RegId,
    },
    /// Per-lane comparison; result bit per lane goes to the conditional
    /// register.
    Compare {
        /// Operation.
        op: CompareOp,
        /// First source register.
        rs: RegId,
        /// Second source register.
        rt: RegId,
    },
    /// Fuzzy comparison of `rs` and `rt`, skipping bit positions set in
    /// `rd`; result goes to the conditional register.
    Fuzzy {
        /// First source register.
        rs: RegId,
        /// Second source register.
        rt: RegId,
        /// Register holding the skip-bit mask.
        rd: RegId,
    },
    /// Compare and swap: after execution `rs` holds the smaller and `rt`
    /// the larger value, per lane (the conditional sorting primitive).
    Cas {
        /// First register (receives the smaller value).
        rs: RegId,
        /// Second register (receives the larger value).
        rt: RegId,
    },
    /// Initialize `rd` with the constant 0 or 1 in every lane.
    Init {
        /// Which constant to write.
        value: InitValue,
        /// Destination register.
        rd: RegId,
    },

    // --- Data movement ---
    /// Copy register `rs` of the source VRF to register `rd` of the
    /// destination VRF, for every RFH pair of the enclosing move block.
    /// Only legal inside a move block.
    Memcpy {
        /// VRF index (within the source RFH of each pair).
        src_vrf: VrfId,
        /// Source register.
        rs: RegId,
        /// VRF index (within the destination RFH of each pair).
        dst_vrf: VrfId,
        /// Destination register.
        rd: RegId,
    },
}

impl Instruction {
    /// The Table II mnemonic for this instruction.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Compute { .. } => "COMPUTE",
            Instruction::ComputeDone => "COMPUTE_DONE",
            Instruction::MpuSync => "MPU_SYNC",
            Instruction::Move { .. } => "MOVE",
            Instruction::MoveDone => "MOVE_DONE",
            Instruction::Send { .. } => "SEND",
            Instruction::SendDone => "SEND_DONE",
            Instruction::Recv { .. } => "RECV",
            Instruction::GetMask { .. } => "GETMASK",
            Instruction::SetMask { .. } => "SETMASK",
            Instruction::Unmask => "UNMASK",
            Instruction::JumpCond { .. } => "JUMP_COND",
            Instruction::Jump { .. } => "JUMP",
            Instruction::Return => "RETURN",
            Instruction::Nop => "NOP",
            Instruction::Binary { op, .. } => op.mnemonic(),
            Instruction::Unary { op, .. } => op.mnemonic(),
            Instruction::Compare { op, .. } => op.mnemonic(),
            Instruction::Fuzzy { .. } => "FUZZY",
            Instruction::Cas { .. } => "CAS",
            Instruction::Init { value, .. } => match value {
                InitValue::Zero => "INIT0",
                InitValue::One => "INIT1",
            },
            Instruction::Memcpy { .. } => "MEMCPY",
        }
    }

    /// True for instructions legal in a compute-ensemble body (vector
    /// arithmetic, comparisons, intra-VRF moves, control flow, `NOP`).
    pub fn is_compute_body(&self) -> bool {
        matches!(
            self,
            Instruction::Binary { .. }
                | Instruction::Unary { .. }
                | Instruction::Compare { .. }
                | Instruction::Fuzzy { .. }
                | Instruction::Cas { .. }
                | Instruction::Init { .. }
                | Instruction::GetMask { .. }
                | Instruction::SetMask { .. }
                | Instruction::Unmask
                | Instruction::JumpCond { .. }
                | Instruction::Jump { .. }
                | Instruction::Return
                | Instruction::Nop
        )
    }

    /// True for the control-flow instructions that *Baseline* datapaths
    /// cannot execute without a host CPU (used by the offload model).
    pub fn requires_control_path(&self) -> bool {
        matches!(
            self,
            Instruction::GetMask { .. }
                | Instruction::SetMask { .. }
                | Instruction::Unmask
                | Instruction::JumpCond { .. }
                | Instruction::Jump { .. }
                | Instruction::Return
        )
    }

    /// True for comparison-class instructions that write the conditional
    /// register.
    pub fn writes_conditional(&self) -> bool {
        matches!(self, Instruction::Compare { .. } | Instruction::Fuzzy { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_match_table_ii() {
        assert_eq!(Instruction::MpuSync.mnemonic(), "MPU_SYNC");
        assert_eq!(Instruction::Init { value: InitValue::Zero, rd: RegId(0) }.mnemonic(), "INIT0");
        assert_eq!(Instruction::Init { value: InitValue::One, rd: RegId(0) }.mnemonic(), "INIT1");
        assert_eq!(
            Instruction::Binary { op: BinaryOp::QRDiv, rs: RegId(0), rt: RegId(1), rd: RegId(2) }
                .mnemonic(),
            "QRDIV"
        );
        assert_eq!(
            Instruction::Compare { op: CompareOp::Eq, rs: RegId(0), rt: RegId(1) }.mnemonic(),
            "CMPEQ"
        );
    }

    #[test]
    fn control_path_classification() {
        assert!(Instruction::JumpCond { target: LineNum(0) }.requires_control_path());
        assert!(Instruction::SetMask { rs: RegId(0) }.requires_control_path());
        assert!(!Instruction::Nop.requires_control_path());
        assert!(!Instruction::Binary {
            op: BinaryOp::Add,
            rs: RegId(0),
            rt: RegId(1),
            rd: RegId(2)
        }
        .requires_control_path());
    }

    #[test]
    fn compute_body_classification() {
        assert!(Instruction::Nop.is_compute_body());
        assert!(Instruction::Unmask.is_compute_body());
        assert!(!Instruction::ComputeDone.is_compute_body());
        assert!(!Instruction::Memcpy {
            src_vrf: VrfId(0),
            rs: RegId(0),
            dst_vrf: VrfId(0),
            rd: RegId(0)
        }
        .is_compute_body());
    }

    #[test]
    fn conditional_writers() {
        assert!(Instruction::Compare { op: CompareOp::Lt, rs: RegId(0), rt: RegId(1) }
            .writes_conditional());
        assert!(
            Instruction::Fuzzy { rs: RegId(0), rt: RegId(1), rd: RegId(2) }.writes_conditional()
        );
        assert!(!Instruction::Cas { rs: RegId(0), rt: RegId(1) }.writes_conditional());
    }

    #[test]
    fn all_arrays_are_exhaustive_and_distinct() {
        use std::collections::HashSet;
        let b: HashSet<_> = BinaryOp::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(b.len(), BinaryOp::ALL.len());
        let u: HashSet<_> = UnaryOp::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(u.len(), UnaryOp::ALL.len());
        let c: HashSet<_> = CompareOp::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(c.len(), CompareOp::ALL.len());
    }
}
