//! 32-bit binary encoding of MPU instructions.
//!
//! Layout: the opcode occupies the top 7 bits (`[25..32)`); the remaining
//! 25 bits hold format-specific fields. Reserved bits must be zero, which
//! makes the encoding canonical: `decode(encode(i)) == i` and
//! `encode(decode(w)) == w` for every valid word `w`.
//!
//! | Format        | Fields (bit positions)                                  |
//! |---------------|---------------------------------------------------------|
//! | 3-register    | `rs[18..24)`, `rt[12..18)`, `rd[6..12)`                 |
//! | 2-register    | `rs[18..24)`, `rd[6..12)`                               |
//! | COMPUTE       | `rfh[20..25)`, `vrf[14..20)`                            |
//! | MOVE          | `src[20..25)`, `dst[15..20)`                            |
//! | SEND/RECV     | `mpu[15..25)`                                           |
//! | JUMP*         | `target[0..20)`                                         |
//! | MEMCPY        | `src_vrf[19..25)`, `rs[13..19)`, `dst_vrf[7..13)`, `rd[1..7)` |

use crate::ids::{LineNum, MpuId, RegId, RfhId, VrfId};
use crate::instr::{BinaryOp, CompareOp, InitValue, Instruction, UnaryOp};
use std::fmt;

/// Opcode values (7-bit). Stable across versions of this crate; treat as ABI.
mod op {
    pub const COMPUTE: u8 = 0;
    pub const COMPUTE_DONE: u8 = 1;
    pub const MPU_SYNC: u8 = 2;
    pub const MOVE: u8 = 3;
    pub const MOVE_DONE: u8 = 4;
    pub const SEND: u8 = 5;
    pub const SEND_DONE: u8 = 6;
    pub const RECV: u8 = 7;
    pub const GETMASK: u8 = 8;
    pub const SETMASK: u8 = 9;
    pub const UNMASK: u8 = 10;
    pub const JUMP_COND: u8 = 11;
    pub const JUMP: u8 = 12;
    pub const RETURN: u8 = 13;
    pub const NOP: u8 = 14;
    pub const FUZZY: u8 = 15;
    pub const CAS: u8 = 16;
    pub const INIT0: u8 = 17;
    pub const INIT1: u8 = 18;
    pub const MEMCPY: u8 = 19;
    /// Binary ops occupy `[BINARY_BASE, BINARY_BASE + 16)`.
    pub const BINARY_BASE: u8 = 32;
    /// Unary ops occupy `[UNARY_BASE, UNARY_BASE + 7)`.
    pub const UNARY_BASE: u8 = 56;
    /// Compare ops occupy `[COMPARE_BASE, COMPARE_BASE + 3)`.
    pub const COMPARE_BASE: u8 = 64;
}

/// Error decoding a 32-bit word into an [`Instruction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field does not name any MPU instruction.
    UnknownOpcode {
        /// The offending 7-bit opcode.
        opcode: u8,
        /// The full word, for diagnostics.
        word: u32,
    },
    /// Bits that must be zero for this format were set.
    ReservedBits {
        /// The offending word.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode { opcode, word } => {
                write!(f, "unknown opcode {opcode:#x} in word {word:#010x}")
            }
            DecodeError::ReservedBits { word } => {
                write!(f, "reserved bits set in word {word:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const fn mask(bits: u32) -> u32 {
    (1u32 << bits) - 1
}

fn binary_op_index(op: BinaryOp) -> u8 {
    BinaryOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u8
}

fn unary_op_index(op: UnaryOp) -> u8 {
    UnaryOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u8
}

fn compare_op_index(op: CompareOp) -> u8 {
    CompareOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u8
}

impl Instruction {
    /// Encodes this instruction as a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if any operand exceeds its encodable range (see
    /// [`RegId::MAX`] etc.). [`crate::Program::validate`] checks ranges
    /// without panicking.
    pub fn encode(&self) -> u32 {
        fn reg(r: RegId) -> u32 {
            assert!(r.is_encodable(), "register index {} exceeds encodable range", r.0);
            r.0 as u32
        }
        fn vrf(v: VrfId) -> u32 {
            assert!(v.is_encodable(), "VRF index {} exceeds encodable range", v.0);
            v.0 as u32
        }
        fn rfh(h: RfhId) -> u32 {
            assert!(h.is_encodable(), "RFH index {} exceeds encodable range", h.0);
            h.0 as u32
        }
        fn mpu(m: MpuId) -> u32 {
            assert!(m.is_encodable(), "MPU index {} exceeds encodable range", m.0);
            m.0 as u32
        }
        fn line(l: LineNum) -> u32 {
            assert!(l.is_encodable(), "jump target {} exceeds encodable range", l.0);
            l.0
        }
        fn three(opc: u8, rs: RegId, rt: RegId, rd: RegId) -> u32 {
            ((opc as u32) << 25) | (reg(rs) << 18) | (reg(rt) << 12) | (reg(rd) << 6)
        }
        fn two(opc: u8, rs: RegId, rd: RegId) -> u32 {
            ((opc as u32) << 25) | (reg(rs) << 18) | (reg(rd) << 6)
        }

        match *self {
            Instruction::Compute { rfh: h, vrf: v } => {
                ((op::COMPUTE as u32) << 25) | (rfh(h) << 20) | (vrf(v) << 14)
            }
            Instruction::ComputeDone => (op::COMPUTE_DONE as u32) << 25,
            Instruction::MpuSync => (op::MPU_SYNC as u32) << 25,
            Instruction::Move { src, dst } => {
                ((op::MOVE as u32) << 25) | (rfh(src) << 20) | (rfh(dst) << 15)
            }
            Instruction::MoveDone => (op::MOVE_DONE as u32) << 25,
            Instruction::Send { dst } => ((op::SEND as u32) << 25) | (mpu(dst) << 15),
            Instruction::SendDone => (op::SEND_DONE as u32) << 25,
            Instruction::Recv { src } => ((op::RECV as u32) << 25) | (mpu(src) << 15),
            Instruction::GetMask { rd } => ((op::GETMASK as u32) << 25) | (reg(rd) << 6),
            Instruction::SetMask { rs } => ((op::SETMASK as u32) << 25) | (reg(rs) << 18),
            Instruction::Unmask => (op::UNMASK as u32) << 25,
            Instruction::JumpCond { target } => ((op::JUMP_COND as u32) << 25) | line(target),
            Instruction::Jump { target } => ((op::JUMP as u32) << 25) | line(target),
            Instruction::Return => (op::RETURN as u32) << 25,
            Instruction::Nop => (op::NOP as u32) << 25,
            Instruction::Binary { op: o, rs, rt, rd } => {
                three(op::BINARY_BASE + binary_op_index(o), rs, rt, rd)
            }
            Instruction::Unary { op: o, rs, rd } => two(op::UNARY_BASE + unary_op_index(o), rs, rd),
            Instruction::Compare { op: o, rs, rt } => {
                ((op::COMPARE_BASE + compare_op_index(o)) as u32) << 25
                    | (reg(rs) << 18)
                    | (reg(rt) << 12)
            }
            Instruction::Fuzzy { rs, rt, rd } => three(op::FUZZY, rs, rt, rd),
            Instruction::Cas { rs, rt } => {
                ((op::CAS as u32) << 25) | (reg(rs) << 18) | (reg(rt) << 12)
            }
            Instruction::Init { value, rd } => {
                let opc = match value {
                    InitValue::Zero => op::INIT0,
                    InitValue::One => op::INIT1,
                };
                ((opc as u32) << 25) | (reg(rd) << 6)
            }
            Instruction::Memcpy { src_vrf, rs, dst_vrf, rd } => {
                ((op::MEMCPY as u32) << 25)
                    | (vrf(src_vrf) << 19)
                    | (reg(rs) << 13)
                    | (vrf(dst_vrf) << 7)
                    | (reg(rd) << 1)
            }
        }
    }

    /// Decodes a 32-bit word into an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnknownOpcode`] for unassigned opcodes and
    /// [`DecodeError::ReservedBits`] if must-be-zero bits are set.
    pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
        let opcode = (word >> 25) as u8;
        let body = word & mask(25);
        let reserved = |expected_bits: u32| -> Result<(), DecodeError> {
            if body & !expected_bits != 0 {
                Err(DecodeError::ReservedBits { word })
            } else {
                Ok(())
            }
        };
        let reg_rs = RegId(((word >> 18) & mask(6)) as u16);
        let reg_rt = RegId(((word >> 12) & mask(6)) as u16);
        let reg_rd = RegId(((word >> 6) & mask(6)) as u16);

        const THREE_BITS: u32 = (mask(6) << 18) | (mask(6) << 12) | (mask(6) << 6);
        const TWO_BITS: u32 = (mask(6) << 18) | (mask(6) << 6);
        const CMP_BITS: u32 = (mask(6) << 18) | (mask(6) << 12);

        if (op::BINARY_BASE..op::BINARY_BASE + BinaryOp::ALL.len() as u8).contains(&opcode) {
            reserved(THREE_BITS)?;
            let o = BinaryOp::ALL[(opcode - op::BINARY_BASE) as usize];
            return Ok(Instruction::Binary { op: o, rs: reg_rs, rt: reg_rt, rd: reg_rd });
        }
        if (op::UNARY_BASE..op::UNARY_BASE + UnaryOp::ALL.len() as u8).contains(&opcode) {
            reserved(TWO_BITS)?;
            let o = UnaryOp::ALL[(opcode - op::UNARY_BASE) as usize];
            return Ok(Instruction::Unary { op: o, rs: reg_rs, rd: reg_rd });
        }
        if (op::COMPARE_BASE..op::COMPARE_BASE + CompareOp::ALL.len() as u8).contains(&opcode) {
            reserved(CMP_BITS)?;
            let o = CompareOp::ALL[(opcode - op::COMPARE_BASE) as usize];
            return Ok(Instruction::Compare { op: o, rs: reg_rs, rt: reg_rt });
        }

        match opcode {
            op::COMPUTE => {
                reserved((mask(5) << 20) | (mask(6) << 14))?;
                Ok(Instruction::Compute {
                    rfh: RfhId(((word >> 20) & mask(5)) as u16),
                    vrf: VrfId(((word >> 14) & mask(6)) as u16),
                })
            }
            op::COMPUTE_DONE => {
                reserved(0)?;
                Ok(Instruction::ComputeDone)
            }
            op::MPU_SYNC => {
                reserved(0)?;
                Ok(Instruction::MpuSync)
            }
            op::MOVE => {
                reserved((mask(5) << 20) | (mask(5) << 15))?;
                Ok(Instruction::Move {
                    src: RfhId(((word >> 20) & mask(5)) as u16),
                    dst: RfhId(((word >> 15) & mask(5)) as u16),
                })
            }
            op::MOVE_DONE => {
                reserved(0)?;
                Ok(Instruction::MoveDone)
            }
            op::SEND => {
                reserved(mask(10) << 15)?;
                Ok(Instruction::Send { dst: MpuId(((word >> 15) & mask(10)) as u16) })
            }
            op::SEND_DONE => {
                reserved(0)?;
                Ok(Instruction::SendDone)
            }
            op::RECV => {
                reserved(mask(10) << 15)?;
                Ok(Instruction::Recv { src: MpuId(((word >> 15) & mask(10)) as u16) })
            }
            op::GETMASK => {
                reserved(mask(6) << 6)?;
                Ok(Instruction::GetMask { rd: reg_rd })
            }
            op::SETMASK => {
                reserved(mask(6) << 18)?;
                Ok(Instruction::SetMask { rs: reg_rs })
            }
            op::UNMASK => {
                reserved(0)?;
                Ok(Instruction::Unmask)
            }
            op::JUMP_COND => {
                reserved(mask(20))?;
                Ok(Instruction::JumpCond { target: LineNum(word & mask(20)) })
            }
            op::JUMP => {
                reserved(mask(20))?;
                Ok(Instruction::Jump { target: LineNum(word & mask(20)) })
            }
            op::RETURN => {
                reserved(0)?;
                Ok(Instruction::Return)
            }
            op::NOP => {
                reserved(0)?;
                Ok(Instruction::Nop)
            }
            op::FUZZY => {
                reserved(THREE_BITS)?;
                Ok(Instruction::Fuzzy { rs: reg_rs, rt: reg_rt, rd: reg_rd })
            }
            op::CAS => {
                reserved(CMP_BITS)?;
                Ok(Instruction::Cas { rs: reg_rs, rt: reg_rt })
            }
            op::INIT0 => {
                reserved(mask(6) << 6)?;
                Ok(Instruction::Init { value: InitValue::Zero, rd: reg_rd })
            }
            op::INIT1 => {
                reserved(mask(6) << 6)?;
                Ok(Instruction::Init { value: InitValue::One, rd: reg_rd })
            }
            op::MEMCPY => {
                reserved((mask(6) << 19) | (mask(6) << 13) | (mask(6) << 7) | (mask(6) << 1))?;
                Ok(Instruction::Memcpy {
                    src_vrf: VrfId(((word >> 19) & mask(6)) as u16),
                    rs: RegId(((word >> 13) & mask(6)) as u16),
                    dst_vrf: VrfId(((word >> 7) & mask(6)) as u16),
                    rd: RegId(((word >> 1) & mask(6)) as u16),
                })
            }
            other => Err(DecodeError::UnknownOpcode { opcode: other, word }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Instruction> {
        let mut v = vec![
            Instruction::Compute { rfh: RfhId(31), vrf: VrfId(63) },
            Instruction::ComputeDone,
            Instruction::MpuSync,
            Instruction::Move { src: RfhId(0), dst: RfhId(31) },
            Instruction::MoveDone,
            Instruction::Send { dst: MpuId(1023) },
            Instruction::SendDone,
            Instruction::Recv { src: MpuId(0) },
            Instruction::GetMask { rd: RegId(63) },
            Instruction::SetMask { rs: RegId(63) },
            Instruction::Unmask,
            Instruction::JumpCond { target: LineNum(LineNum::MAX) },
            Instruction::Jump { target: LineNum(0) },
            Instruction::Return,
            Instruction::Nop,
            Instruction::Fuzzy { rs: RegId(1), rt: RegId(2), rd: RegId(3) },
            Instruction::Cas { rs: RegId(4), rt: RegId(5) },
            Instruction::Init { value: InitValue::Zero, rd: RegId(7) },
            Instruction::Init { value: InitValue::One, rd: RegId(8) },
            Instruction::Memcpy {
                src_vrf: VrfId(63),
                rs: RegId(62),
                dst_vrf: VrfId(61),
                rd: RegId(60),
            },
        ];
        for &o in &BinaryOp::ALL {
            v.push(Instruction::Binary { op: o, rs: RegId(10), rt: RegId(20), rd: RegId(30) });
        }
        for &o in &UnaryOp::ALL {
            v.push(Instruction::Unary { op: o, rs: RegId(11), rd: RegId(22) });
        }
        for &o in &CompareOp::ALL {
            v.push(Instruction::Compare { op: o, rs: RegId(33), rt: RegId(44) });
        }
        v
    }

    #[test]
    fn roundtrip_every_instruction_kind() {
        for instr in sample_instructions() {
            let word = instr.encode();
            let back = Instruction::decode(word).expect("decode");
            assert_eq!(instr, back, "word {word:#010x}");
            // Canonical: re-encoding the decoded form yields the same word.
            assert_eq!(back.encode(), word);
        }
    }

    #[test]
    fn opcodes_are_unique() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for instr in sample_instructions() {
            let opc = instr.encode() >> 25;
            // Only the per-op families share an opcode across samples of the
            // same op; distinct instructions must never collide.
            if !seen.insert((opc, instr.mnemonic())) {
                panic!("duplicate opcode/mnemonic pair {opc} {}", instr.mnemonic());
            }
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let word = 120u32 << 25;
        assert_eq!(
            Instruction::decode(word),
            Err(DecodeError::UnknownOpcode { opcode: 120, word })
        );
    }

    #[test]
    fn reserved_bits_rejected() {
        // COMPUTE_DONE with stray low bit.
        let word = (1u32 << 25) | 1;
        assert_eq!(Instruction::decode(word), Err(DecodeError::ReservedBits { word }));
    }

    #[test]
    #[should_panic(expected = "exceeds encodable range")]
    fn encode_panics_on_out_of_range_register() {
        Instruction::GetMask { rd: RegId(64) }.encode();
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::UnknownOpcode { opcode: 99, word: 0xdead_beef };
        assert!(e.to_string().contains("unknown opcode"));
        let e = DecodeError::ReservedBits { word: 0x1 };
        assert!(e.to_string().contains("reserved bits"));
    }
}
