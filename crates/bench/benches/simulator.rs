//! Simulator-throughput benchmarks: micro-op application on the bit-plane
//! substrate, single-wave kernel execution per backend, and multi-MPU
//! system runs.

use bench::BENCH_N;
use criterion::{criterion_group, criterion_main, Criterion};
use ezpim::{Cond, EzProgram};
use mastodon::{run_single, SimConfig};
use mpu_isa::RegId;
use pum_backend::{BitPlaneVrf, DatapathKind, DatapathModel, MicroOp, Plane};
use std::hint::black_box;
use workloads::{all_kernels, run_kernel};

fn bench_microops(c: &mut Criterion) {
    let mut group = c.benchmark_group("microops");
    for lanes in [64usize, 512] {
        let mut vrf = BitPlaneVrf::new(lanes, 16);
        let op = MicroOp::Nor {
            a: Plane::Reg { reg: 0, bit: 0 },
            b: Plane::Reg { reg: 1, bit: 0 },
            out: Plane::Scratch(0),
        };
        group.bench_function(format!("nor_{lanes}_lanes"), |b| {
            b.iter(|| op.apply(black_box(&mut vrf)));
        });
    }
    group.finish();
}

fn bench_recipe_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("recipe_exec");
    group.sample_size(20);
    for kind in DatapathKind::ALL {
        let dp = DatapathModel::for_kind(kind);
        let add = dp
            .recipe(&mpu_isa::Instruction::Binary {
                op: mpu_isa::BinaryOp::Add,
                rs: RegId(0),
                rt: RegId(1),
                rd: RegId(2),
            })
            .unwrap();
        let mut vrf = BitPlaneVrf::new(dp.geometry().lanes_per_vrf, 16);
        group.bench_function(format!("add_{}", dp.name()), |b| {
            b.iter(|| {
                for op in add.ops() {
                    op.apply(black_box(&mut vrf));
                }
            });
        });
    }
    group.finish();
}

fn bench_kernel_waves(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_wave");
    group.sample_size(10);
    let kernels = all_kernels();
    for name in ["vecadd", "crc32", "jacobi1d"] {
        let kernel = kernels.iter().find(|k| k.name() == name).unwrap();
        let cfg = SimConfig::mpu(DatapathKind::Racer);
        group.bench_function(format!("{name}_racer"), |b| {
            b.iter(|| run_kernel(kernel.as_ref(), black_box(&cfg), BENCH_N, 1).unwrap());
        });
    }
    group.finish();
}

fn bench_dynamic_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_loop");
    group.sample_size(20);
    let mut ez = EzProgram::new();
    ez.ensemble(&[(0, 0)], |b| {
        b.while_loop(Cond::Gt(RegId(0), RegId(1)), |b| {
            b.sub(RegId(0), RegId(2), RegId(0));
        });
    })
    .unwrap();
    let program = ez.assemble().unwrap();
    let cfg = SimConfig::mpu(DatapathKind::Racer);
    group.bench_function("countdown_racer", |b| {
        b.iter(|| {
            run_single(
                black_box(cfg.clone()),
                &program,
                &[((0, 0, 0), vec![16; 64]), ((0, 0, 1), vec![0; 64]), ((0, 0, 2), vec![1; 64])],
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_microops,
    bench_recipe_execution,
    bench_kernel_waves,
    bench_dynamic_loop
);
criterion_main!(benches);
