//! Micro-op inner-loop benchmarks: the functional substrate's hot path.
//!
//! A 32-bit MUL expands into thousands of micro-ops replayed per VRF per
//! wave, so host-side throughput of `MicroOp::apply` (and the compiled
//! recipe path) bounds overall simulation speed. The lane transpose sits
//! on every host data load, transfer block, message application, and
//! kernel verification. Snapshots of these numbers live in
//! `BENCH_microops.json` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use mpu_isa::{BinaryOp, Instruction, RegId};
use pum_backend::{BitPlaneVrf, DatapathModel, MicroOp, Plane};
use std::hint::black_box;

fn mul_recipe() -> pum_backend::Recipe {
    let racer = DatapathModel::racer();
    racer
        .recipe(&Instruction::Binary {
            op: BinaryOp::Mul,
            rs: RegId(0),
            rt: RegId(1),
            rd: RegId(2),
        })
        .expect("MUL is a compute instruction")
}

fn seeded_vrf(lanes: usize) -> BitPlaneVrf {
    let mut vrf = BitPlaneVrf::new(lanes, 16);
    let a: Vec<u64> = (0..lanes as u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
    let b: Vec<u64> = (0..lanes as u64).map(|i| i.wrapping_mul(0xc2b2_ae35_87c6_e5bd)).collect();
    vrf.write_lane_values(0, &a);
    vrf.write_lane_values(1, &b);
    vrf
}

/// One column-parallel micro-op: the smallest unit of simulated work.
fn bench_single_microop(c: &mut Criterion) {
    let mut group = c.benchmark_group("microop_single");
    for lanes in [64usize, 512] {
        let mut vrf = seeded_vrf(lanes);
        let nor = MicroOp::Nor {
            a: Plane::Reg { reg: 0, bit: 0 },
            b: Plane::Reg { reg: 1, bit: 0 },
            out: Plane::Scratch(0),
        };
        group.bench_function(format!("nor_{lanes}lane"), |b| {
            b.iter(|| nor.apply(black_box(&mut vrf)));
        });
        let fa = MicroOp::FullAdd {
            a: Plane::Reg { reg: 0, bit: 0 },
            b: Plane::Reg { reg: 1, bit: 0 },
            carry: Plane::Scratch(1),
            sum: Plane::Scratch(2),
        };
        group.bench_function(format!("fulladd_{lanes}lane"), |b| {
            b.iter(|| fa.apply(black_box(&mut vrf)));
        });
    }
    group.finish();
}

/// A full 32-bit MUL recipe (~19k micro-ops on RACER), replayed the way
/// `exec_compute_instr` replays it per wave member.
fn bench_full_recipe(c: &mut Criterion) {
    let recipe = mul_recipe();
    let mut group = c.benchmark_group("recipe_full");
    group.sample_size(10);
    let mut vrf = seeded_vrf(64);
    group.bench_function("mul_interpreted", |b| {
        b.iter(|| {
            for op in recipe.ops() {
                op.apply(black_box(&mut vrf));
            }
        });
    });
    let compiled = recipe.compile(64, 16);
    group.bench_function("mul_compiled", |b| {
        b.iter(|| black_box(&mut vrf).run_compiled(black_box(&compiled)));
    });
    group.finish();
}

/// Host data-load path: packing element values into bit-planes and back.
fn bench_lane_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("lane_transpose");
    for lanes in [64usize, 512] {
        let values: Vec<u64> =
            (0..lanes as u64).map(|i| i.wrapping_mul(0x1234_5678_9abc_def1)).collect();
        let mut vrf = BitPlaneVrf::new(lanes, 16);
        group.bench_function(format!("write_{lanes}lane"), |b| {
            b.iter(|| black_box(&mut vrf).write_lane_values(3, black_box(&values)));
        });
        vrf.write_lane_values(3, &values);
        group.bench_function(format!("read_{lanes}lane"), |b| {
            b.iter(|| black_box(vrf.read_lane_values(3)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_microop, bench_full_recipe, bench_lane_transpose);
criterion_main!(benches);
