//! Chip-sweep throughput: the full 28-kernel sweep run serially vs. fanned
//! across worker threads with [`workloads::run_sweep_parallel`].
//!
//! The acceptance target for the parallel engine is a >= 2x speedup at
//! 4 jobs over the serial sweep on a 4-core host; compare the reported
//! medians for `serial` and `jobs4`.

use bench::BENCH_N;
use criterion::{criterion_group, criterion_main, Criterion};
use mastodon::SimConfig;
use pum_backend::DatapathKind;
use std::hint::black_box;
use workloads::{all_kernels, run_kernel, run_sweep_parallel, SweepTask};

const SWEEP_SEED: u64 = 1;

fn sweep_tasks(kernels: &[Box<dyn workloads::Kernel>]) -> Vec<SweepTask<'_>> {
    kernels
        .iter()
        .map(|k| SweepTask {
            kernel: k.as_ref(),
            config: SimConfig::mpu(DatapathKind::Racer),
            n: BENCH_N,
            seed: SWEEP_SEED,
        })
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep21");
    group.sample_size(10);
    let kernels = all_kernels();

    group.bench_function("serial", |b| {
        b.iter(|| {
            kernels
                .iter()
                .map(|k| {
                    run_kernel(
                        k.as_ref(),
                        black_box(&SimConfig::mpu(DatapathKind::Racer)),
                        BENCH_N,
                        SWEEP_SEED,
                    )
                    .unwrap()
                })
                .collect::<Vec<_>>()
        });
    });

    for jobs in [2usize, 4] {
        group.bench_function(format!("jobs{jobs}"), |b| {
            b.iter(|| {
                run_sweep_parallel(black_box(sweep_tasks(&kernels)), Some(jobs))
                    .into_iter()
                    .map(|r| r.unwrap())
                    .collect::<Vec<_>>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
