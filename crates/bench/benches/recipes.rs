//! Recipe-synthesis and ISA-toolchain benchmarks: how fast the I2M
//! template path, the ezpim assembler, and the binary codec run on the
//! host.

use criterion::{criterion_group, criterion_main, Criterion};
use ezpim::{Cond, EzProgram};
use mastodon::RecipeCache;
use mpu_isa::{BinaryOp, Instruction, Program, RegId};
use pum_backend::{DatapathKind, DatapathModel};
use std::hint::black_box;

fn bench_recipe_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("recipe_synthesis");
    for kind in DatapathKind::ALL {
        let dp = DatapathModel::for_kind(kind);
        for (label, op) in
            [("add", BinaryOp::Add), ("mul", BinaryOp::Mul), ("qdiv", BinaryOp::QDiv)]
        {
            let instr = Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
            group.bench_function(format!("{label}_{}", dp.name()), |b| {
                b.iter(|| black_box(dp.recipe(&instr)));
            });
        }
    }
    group.finish();
}

fn bench_recipe_cache(c: &mut Criterion) {
    let dp = DatapathModel::racer();
    let instr =
        Instruction::Binary { op: BinaryOp::QDiv, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
    c.bench_function("recipe_cache_hit_path", |b| {
        let mut cache = RecipeCache::new(1024);
        cache.lookup(&dp, &instr);
        b.iter(|| black_box(cache.lookup(&dp, &instr)));
    });
}

fn bench_ezpim_assembly(c: &mut Criterion) {
    c.bench_function("ezpim_assemble_nested_program", |b| {
        b.iter(|| {
            let mut ez = EzProgram::new();
            ez.ensemble(&[(0, 0), (1, 0)], |body| {
                body.while_loop(Cond::Gt(RegId(0), RegId(1)), |body| {
                    body.if_else(
                        Cond::Eq(RegId(2), RegId(3)),
                        |body| {
                            body.add(RegId(0), RegId(4), RegId(0));
                        },
                        |body| {
                            body.sub(RegId(0), RegId(4), RegId(0));
                        },
                    );
                });
            })
            .unwrap();
            black_box(ez.assemble().unwrap())
        });
    });
}

fn bench_binary_codec(c: &mut Criterion) {
    let program = Program::from_instructions(
        (0..1024)
            .map(|i| Instruction::Binary {
                op: BinaryOp::ALL[i % BinaryOp::ALL.len()],
                rs: RegId((i % 10) as u16),
                rt: RegId(((i + 1) % 10) as u16),
                rd: RegId(((i + 2) % 10) as u16),
            })
            .collect(),
    );
    let words = program.encode();
    c.bench_function("encode_1k_instructions", |b| {
        b.iter(|| black_box(program.encode()));
    });
    c.bench_function("decode_1k_instructions", |b| {
        b.iter(|| black_box(Program::decode(&words).unwrap()));
    });
}

criterion_group!(
    benches,
    bench_recipe_synthesis,
    bench_recipe_cache,
    bench_ezpim_assembly,
    bench_binary_codec
);
criterion_main!(benches);
