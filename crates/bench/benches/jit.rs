//! Execution-tier wall-clock: the full 28-kernel sweep on the compiled
//! (per-instruction) tier vs. the fused ensemble-trace tier.
//!
//! Both tiers run steady-state: each keeps a warmed [`RecipePool`] across
//! iterations, exactly like the chip-sweep and figure harnesses do, so the
//! timing isolates per-run execution cost rather than one-time template
//! synthesis. Two groups are reported: `sweep21` covers the whole kernel
//! suite (kernels with data-dependent bodies fall back to the compiled
//! tier and are a wash, so the aggregate understates the gain), while
//! `eligible` restricts to the kernels whose ensembles actually fuse —
//! that group carries the acceptance target of a >= 2x median speedup of
//! `eligible/trace` over `eligible/compiled`. Architectural statistics
//! are bit-identical either way — asserted here on every warm-up run, and
//! pinned by the conformance matrix and the perf gate's golden counters.

use bench::BENCH_N;
use criterion::{criterion_group, criterion_main, Criterion};
use mastodon::{RecipePool, SimConfig};
use pum_backend::DatapathKind;
use std::hint::black_box;
use std::sync::Arc;
use workloads::{all_kernels, run_kernel_pooled};

const SWEEP_SEED: u64 = 1;

fn config(trace: bool) -> SimConfig {
    let mut config = SimConfig::mpu(DatapathKind::Racer);
    config.trace_ensembles = trace;
    config
}

fn bench_tiers(c: &mut Criterion) {
    let kernels = all_kernels();
    let pools = [Arc::new(RecipePool::new()), Arc::new(RecipePool::new())];

    // One full sweep per tier warms its pool and proves the tiers agree
    // bit-for-bit — times mean nothing without that. The traced run's tier
    // split also tells us which kernels fuse, for the `eligible` group.
    let mut eligible = Vec::new();
    for k in &kernels {
        let run = |trace: bool| {
            run_kernel_pooled(
                k.as_ref(),
                &config(trace),
                BENCH_N,
                SWEEP_SEED,
                Some(&pools[trace as usize]),
            )
            .unwrap()
        };
        let traced = run(true);
        assert_eq!(run(false).wave, traced.wave, "{}: tiers disagree on statistics", k.name());
        if traced.tiers.0 > 0 {
            eligible.push(k);
        }
    }
    assert!(!eligible.is_empty(), "no kernel fused; the trace tier is dead");

    for (name, subset) in [("sweep21", kernels.iter().collect::<Vec<_>>()), ("eligible", eligible)]
    {
        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        for trace in [false, true] {
            let label = if trace { "trace" } else { "compiled" };
            let pool = &pools[trace as usize];
            group.bench_function(label, |b| {
                b.iter(|| {
                    subset
                        .iter()
                        .map(|k| {
                            run_kernel_pooled(
                                k.as_ref(),
                                black_box(&config(trace)),
                                BENCH_N,
                                SWEEP_SEED,
                                Some(pool),
                            )
                            .unwrap()
                            .wave
                            .cycles
                        })
                        .sum::<u64>()
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_tiers);
criterion_main!(benches);
