//! Ablation benchmarks for the design choices DESIGN.md §6 lists. Each
//! bench also *prints* the simulated-cycle effect once (the architectural
//! result), then measures host wall time of the ablated simulation.

use bench::BENCH_N;
use criterion::{criterion_group, criterion_main, Criterion};
use mastodon::SimConfig;
use pum_backend::{DatapathBuilder, DatapathKind, LogicFamily, MicroOpKind};
use std::hint::black_box;
use workloads::{all_kernels, run_kernel};

/// RACER with bit-pipelining disabled (strictly serial bit-serial issue).
fn racer_unpipelined() -> SimConfig {
    let dp = DatapathBuilder::new("RACER-nopipe", LogicFamily::Nor)
        .lanes_per_vrf(64)
        .active_vrfs_per_rfh(1)
        .mpus_per_chip(497)
        .uop(MicroOpKind::Nor, 2, 0.020)
        .uop(MicroOpKind::Copy, 2, 0.025)
        .uop(MicroOpKind::Set, 2, 0.012)
        .build();
    SimConfig::new(dp, mastodon::ExecutionMode::Mpu)
}

/// RACER with the footnote-2 relaxed thermal limit (2 active VRFs/RFH).
fn racer_thermal2() -> SimConfig {
    let dp = DatapathBuilder::new("RACER-2active", LogicFamily::Nor)
        .lanes_per_vrf(64)
        .active_vrfs_per_rfh(2)
        .mpus_per_chip(497)
        .uop(MicroOpKind::Nor, 2, 0.020)
        .uop(MicroOpKind::Copy, 2, 0.025)
        .uop(MicroOpKind::Set, 2, 0.012)
        .bit_pipelined(64)
        .build();
    SimConfig::new(dp, mastodon::ExecutionMode::Mpu)
}

fn ablation_pipelining(c: &mut Criterion) {
    // Pipelining pays off on back-to-back instruction streams, so use the
    // 20-instruction sobel body rather than a single ADD.
    let kernels = all_kernels();
    let vecadd = kernels.iter().find(|k| k.name() == "sobel").unwrap();
    let base = SimConfig::mpu(DatapathKind::Racer);
    let nopipe = racer_unpipelined();
    let with_pipe = run_kernel(vecadd.as_ref(), &base, BENCH_N, 1).unwrap();
    let without = run_kernel(vecadd.as_ref(), &nopipe, BENCH_N, 1).unwrap();
    println!(
        "[ablation] bit-pipelining: {} vs {} simulated wave cycles ({}x)",
        with_pipe.wave.cycles,
        without.wave.cycles,
        without.wave.cycles as f64 / with_pipe.wave.cycles as f64
    );
    let mut group = c.benchmark_group("ablation_pipelining");
    group.sample_size(10);
    group.bench_function("racer_pipelined", |b| {
        b.iter(|| run_kernel(vecadd.as_ref(), black_box(&base), BENCH_N, 1).unwrap());
    });
    group.bench_function("racer_unpipelined", |b| {
        b.iter(|| run_kernel(vecadd.as_ref(), black_box(&nopipe), BENCH_N, 1).unwrap());
    });
    group.finish();
}

fn ablation_thermal_limit(c: &mut Criterion) {
    let kernels = all_kernels();
    let vecadd = kernels.iter().find(|k| k.name() == "vecadd").unwrap();
    let one = SimConfig::mpu(DatapathKind::Racer);
    let two = racer_thermal2();
    let r1 = run_kernel(vecadd.as_ref(), &one, 1 << 20, 1).unwrap();
    let r2 = run_kernel(vecadd.as_ref(), &two, 1 << 20, 1).unwrap();
    println!(
        "[ablation] thermal limit 1 -> 2 active VRFs/RFH: chip time {:.0} -> {:.0} ns \
         ({:.2}x, paper footnote 2 reports ~2x)",
        r1.time_ns,
        r2.time_ns,
        r1.time_ns / r2.time_ns
    );
    let mut group = c.benchmark_group("ablation_thermal");
    group.sample_size(10);
    group.bench_function("active1", |b| {
        b.iter(|| run_kernel(vecadd.as_ref(), black_box(&one), BENCH_N, 1).unwrap());
    });
    group.bench_function("active2", |b| {
        b.iter(|| run_kernel(vecadd.as_ref(), black_box(&two), BENCH_N, 1).unwrap());
    });
    group.finish();
}

fn ablation_recipe_cache(c: &mut Criterion) {
    // Template-lookup capacity 1 (decode-per-issue) vs 1024 (Table III).
    let kernels = all_kernels();
    let crc = kernels.iter().find(|k| k.name() == "crc32").unwrap();
    let cached = SimConfig::mpu(DatapathKind::Racer);
    let mut uncached = SimConfig::mpu(DatapathKind::Racer);
    uncached.template_entries = 1;
    let hit = run_kernel(crc.as_ref(), &cached, BENCH_N, 1).unwrap();
    let miss = run_kernel(crc.as_ref(), &uncached, BENCH_N, 1).unwrap();
    println!(
        "[ablation] recipe cache 1024 vs 1 entries on crc32: hit rate {:.2} vs {:.2}, \
         wave cycles {} vs {}",
        hit.wave.recipe_hit_rate(),
        miss.wave.recipe_hit_rate(),
        hit.wave.cycles,
        miss.wave.cycles
    );
    let mut group = c.benchmark_group("ablation_recipe_cache");
    group.sample_size(10);
    group.bench_function("cache1024", |b| {
        b.iter(|| run_kernel(crc.as_ref(), black_box(&cached), BENCH_N, 1).unwrap());
    });
    group.bench_function("cache1", |b| {
        b.iter(|| run_kernel(crc.as_ref(), black_box(&uncached), BENCH_N, 1).unwrap());
    });
    group.finish();
}

criterion_group!(benches, ablation_pipelining, ablation_thermal_limit, ablation_recipe_cache);
criterion_main!(benches);
