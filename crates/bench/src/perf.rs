//! Deterministic performance-regression gate.
//!
//! Wall-clock benchmarks (the Criterion suites in `benches/`) measure how
//! fast the simulator runs on the host; this module instead pins down what
//! the simulator *computes*: the architectural counters (simulated cycles,
//! waves, micro-ops, NoC bytes, cache traffic) of the full 28-kernel sweep.
//! Those are bit-exact functions of the code, so the gate needs no noise
//! margins, no repeated runs, and no quiet machine — any drift is a real
//! behavior change, caught on the first CI run.
//!
//! The blessed baseline lives in `BENCH_kernels.json` at the repository
//! root. `cargo test -p bench` compares the current sweep against it and
//! fails on any counter moving beyond the tolerance (exact by default;
//! `MPU_PERF_TOL=0.02` allows ±2%). After an *intentional* performance
//! change, re-bless with `MPU_BLESS=1 cargo test -p bench`.

use microjson::Value;
use std::fmt::Write as _;
use workloads::{all_kernels, run_sweep_parallel, ChipRun, SweepTask};

/// The architectural counters pinned per kernel. Every field is an exact
/// integer — nothing here depends on the host machine or wall clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRecord {
    /// Kernel name.
    pub kernel: String,
    /// Configuration label (`MPU:RACER`, ...).
    pub config: String,
    /// Simulated wave cycles.
    pub cycles: u64,
    /// ... split by pipeline stage.
    pub compute_cycles: u64,
    /// Control-path cycles.
    pub control_cycles: u64,
    /// Transfer cycles.
    pub transfer_cycles: u64,
    /// Retired ISA instructions.
    pub instructions: u64,
    /// Issued micro-ops.
    pub uops: u64,
    /// Thermal scheduler waves.
    pub scheduler_waves: u64,
    /// Recipe-cache hits.
    pub recipe_hits: u64,
    /// Recipe-cache misses.
    pub recipe_misses: u64,
    /// NoC messages sent.
    pub messages_sent: u64,
    /// NoC payload bytes.
    pub noc_bytes: u64,
    /// Chip-scaling instances for the standard problem size.
    pub instances: u64,
    /// Lowered ISA program length.
    pub isa_instructions: u64,
}

impl KernelRecord {
    /// Extracts the pinned counters from a harness run.
    pub fn from_run(run: &ChipRun) -> KernelRecord {
        KernelRecord {
            kernel: run.kernel.to_string(),
            config: run.label.clone(),
            cycles: run.wave.cycles,
            compute_cycles: run.wave.compute_cycles,
            control_cycles: run.wave.control_cycles,
            transfer_cycles: run.wave.transfer_cycles,
            instructions: run.wave.instructions,
            uops: run.wave.uops,
            scheduler_waves: run.wave.scheduler_waves,
            recipe_hits: run.wave.recipe_hits,
            recipe_misses: run.wave.recipe_misses,
            messages_sent: run.wave.messages_sent,
            noc_bytes: run.wave.noc_bytes,
            instances: run.instances,
            isa_instructions: run.isa_instructions as u64,
        }
    }

    fn counters(&self) -> [(&'static str, u64); 12] {
        [
            ("cycles", self.cycles),
            ("compute_cycles", self.compute_cycles),
            ("control_cycles", self.control_cycles),
            ("transfer_cycles", self.transfer_cycles),
            ("instructions", self.instructions),
            ("uops", self.uops),
            ("scheduler_waves", self.scheduler_waves),
            ("recipe_hits", self.recipe_hits),
            ("recipe_misses", self.recipe_misses),
            ("messages_sent", self.messages_sent),
            ("noc_bytes", self.noc_bytes),
            ("instances", self.instances),
        ]
    }
}

/// Problem size pinned by the gate (small: counters, not throughput).
pub const GATE_N: u64 = 1 << 12;
/// Input-data seed pinned by the gate.
pub const GATE_SEED: u64 = 42;

/// Runs the full kernel sweep on every shipped substrate and extracts one
/// record per kernel × backend, deterministically ordered by kernel name
/// then config label.
pub fn collect_records() -> Vec<KernelRecord> {
    let kernels = all_kernels();
    let configs: Vec<mastodon::SimConfig> =
        pum_backend::DatapathKind::ALL.iter().map(|&k| mastodon::SimConfig::mpu(k)).collect();
    let tasks: Vec<SweepTask<'_>> = kernels
        .iter()
        .flat_map(|k| {
            configs.iter().map(|config| SweepTask {
                kernel: k.as_ref(),
                config: config.clone(),
                n: GATE_N,
                seed: GATE_SEED,
            })
        })
        .collect();
    let mut records: Vec<KernelRecord> = run_sweep_parallel(tasks, None)
        .into_iter()
        .map(|r| KernelRecord::from_run(&r.expect("gate kernel must run verified")))
        .collect();
    records.sort_by(|a, b| (&a.kernel, &a.config).cmp(&(&b.kernel, &b.config)));
    records
}

/// Serializes records to the baseline JSON document (stable field order).
pub fn to_json(records: &[KernelRecord]) -> String {
    let arr = records
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("kernel".to_string(), Value::Str(r.kernel.clone())),
                ("config".to_string(), Value::Str(r.config.clone())),
            ];
            fields.extend(
                r.counters().into_iter().map(|(k, v)| (k.to_string(), Value::Num(v as f64))),
            );
            fields.push(("isa_instructions".to_string(), Value::Num(r.isa_instructions as f64)));
            Value::Obj(fields)
        })
        .collect();
    let doc = Value::Obj(vec![
        ("n".to_string(), Value::Num(GATE_N as f64)),
        ("seed".to_string(), Value::Num(GATE_SEED as f64)),
        ("kernels".to_string(), Value::Arr(arr)),
    ]);
    format!("{doc}\n")
}

/// Parses a baseline document written by [`to_json`].
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn from_json(text: &str) -> Result<Vec<KernelRecord>, String> {
    let doc = Value::parse(text).map_err(|e| e.to_string())?;
    let kernels = doc
        .get("kernels")
        .and_then(Value::as_arr)
        .ok_or("baseline is missing the kernels array")?;
    let field = |v: &Value, key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("kernel entry is missing counter {key:?}"))
    };
    kernels
        .iter()
        .map(|k| {
            Ok(KernelRecord {
                kernel: k
                    .get("kernel")
                    .and_then(Value::as_str)
                    .ok_or("kernel entry is missing its name")?
                    .to_string(),
                config: k
                    .get("config")
                    .and_then(Value::as_str)
                    .ok_or("kernel entry is missing its config label")?
                    .to_string(),
                cycles: field(k, "cycles")?,
                compute_cycles: field(k, "compute_cycles")?,
                control_cycles: field(k, "control_cycles")?,
                transfer_cycles: field(k, "transfer_cycles")?,
                instructions: field(k, "instructions")?,
                uops: field(k, "uops")?,
                scheduler_waves: field(k, "scheduler_waves")?,
                recipe_hits: field(k, "recipe_hits")?,
                recipe_misses: field(k, "recipe_misses")?,
                messages_sent: field(k, "messages_sent")?,
                noc_bytes: field(k, "noc_bytes")?,
                instances: field(k, "instances")?,
                isa_instructions: field(k, "isa_instructions")?,
            })
        })
        .collect()
}

/// Compares a sweep against the blessed baseline. Returns one line per
/// violation: a counter moving beyond `tol` (relative, 0.0 = exact), a
/// kernel missing from either side, or a changed config label.
pub fn compare(baseline: &[KernelRecord], current: &[KernelRecord], tol: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.kernel == b.kernel && c.config == b.config) else {
            violations.push(format!("{} [{}]: missing from the current sweep", b.kernel, b.config));
            continue;
        };
        for ((name, was), (_, now)) in b.counters().into_iter().zip(c.counters()) {
            let drift = if was == now {
                0.0
            } else if was == 0 {
                f64::INFINITY
            } else {
                (now as f64 - was as f64).abs() / was as f64
            };
            if drift > tol {
                violations.push(format!(
                    "{} [{}]: {name} {was} -> {now} ({:+.2}%, tol ±{:.2}%)",
                    b.kernel,
                    b.config,
                    (now as f64 - was as f64) / was.max(1) as f64 * 100.0,
                    tol * 100.0
                ));
            }
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.kernel == c.kernel && b.config == c.config) {
            violations.push(format!(
                "{} [{}]: not in the baseline (bless with MPU_BLESS=1)",
                c.kernel, c.config
            ));
        }
    }
    violations
}

/// Renders the failure report written alongside a gate failure.
pub fn render_report(violations: &[String], tol: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "MPU perf-regression gate: {} violation(s)", violations.len());
    let _ = writeln!(out, "sweep: n={GATE_N} seed={GATE_SEED} tol=±{:.2}%", tol * 100.0);
    let _ = writeln!(out);
    for v in violations {
        let _ = writeln!(out, "  {v}");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "These are simulated architectural counters, not wall clock: any drift\n\
         is a behavior change. If intentional, re-bless the baseline with\n\
         MPU_BLESS=1 cargo test -p bench, and include BENCH_kernels.json in\n\
         the change."
    );
    out
}

/// Absolute path of the blessed baseline (`BENCH_kernels.json` at the
/// repository root).
pub fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json")
}

/// Gate tolerance: `MPU_PERF_TOL` (relative, e.g. `0.02`), default exact.
pub fn tolerance() -> f64 {
    std::env::var("MPU_PERF_TOL").ok().and_then(|v| v.parse().ok()).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kernel: &str, cycles: u64) -> KernelRecord {
        KernelRecord {
            kernel: kernel.to_string(),
            config: "MPU:RACER".to_string(),
            cycles,
            compute_cycles: cycles / 2,
            control_cycles: cycles / 4,
            transfer_cycles: 0,
            instructions: 10,
            uops: 100,
            scheduler_waves: 1,
            recipe_hits: 3,
            recipe_misses: 2,
            messages_sent: 0,
            noc_bytes: 0,
            instances: 4,
            isa_instructions: 12,
        }
    }

    #[test]
    fn json_round_trips() {
        let records = vec![record("vecadd", 1000), record("dot", 2000)];
        let parsed = from_json(&to_json(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn exact_match_passes_and_drift_fails() {
        let base = vec![record("vecadd", 1000)];
        assert!(compare(&base, &base, 0.0).is_empty());
        let mut drifted = base.clone();
        drifted[0].cycles = 1100;
        let violations = compare(&base, &drifted, 0.0);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("cycles 1000 -> 1100"), "{violations:?}");
        assert!(compare(&base, &drifted, 0.2).is_empty(), "10% drift within ±20% tol");
    }

    #[test]
    fn missing_and_extra_kernels_are_violations() {
        let base = vec![record("vecadd", 1000)];
        let other = vec![record("dot", 500)];
        let violations = compare(&base, &other, 0.5);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.contains("missing from the current sweep")));
        assert!(violations.iter().any(|v| v.contains("not in the baseline")));
    }

    #[test]
    fn report_names_every_violation() {
        let report = render_report(&["a: cycles 1 -> 2".to_string()], 0.0);
        assert!(report.contains("1 violation"));
        assert!(report.contains("a: cycles 1 -> 2"));
        assert!(report.contains("MPU_BLESS=1"));
    }
}
