//! # bench — Criterion benchmarks for the MPU reproduction
//!
//! Wall-clock benchmarks of the simulator itself (how fast MASTODON
//! executes micro-ops and kernels on the host) plus ablation measurements
//! of the design choices DESIGN.md §6 calls out (recipe caching,
//! bit-pipelining, thermal limits), reported via Criterion.
//!
//! The [`perf`] module is different in kind: a *deterministic* regression
//! gate over simulated architectural counters (never wall clock), run as a
//! normal test via `cargo test -p bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use mastodon::SimConfig;
use pum_backend::DatapathKind;

/// A small problem size that keeps individual bench iterations fast.
pub const BENCH_N: u64 = 1 << 12;

/// Every shipped MPU configuration (the three paper substrates plus the
/// pLUTo and DPU models).
pub fn mpu_configs() -> Vec<SimConfig> {
    DatapathKind::ALL.iter().map(|&k| SimConfig::mpu(k)).collect()
}
