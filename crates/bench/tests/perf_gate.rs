//! The perf-regression gate: compares the current 28-kernel sweep's
//! architectural counters against the blessed `BENCH_kernels.json`.
//!
//! * `cargo test -p bench` — runs the gate; fails on any counter drifting
//!   beyond tolerance and writes `perf-regression-report.txt` next to the
//!   baseline for CI to upload.
//! * `MPU_BLESS=1 cargo test -p bench` — re-blesses the baseline after an
//!   intentional performance change.
//! * `MPU_PERF_TOL=0.02 cargo test -p bench` — allows ±2% drift.

use bench::perf::{
    baseline_path, collect_records, compare, from_json, render_report, to_json, tolerance,
};

#[test]
fn kernel_counters_match_blessed_baseline() {
    let current = collect_records();
    assert_eq!(current.len(), 28 * 5, "the 28-kernel suite must run on all five substrates");
    let path = baseline_path();

    if std::env::var("MPU_BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, to_json(&current)).expect("write blessed baseline");
        eprintln!("blessed {} kernel records into {}", current.len(), path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing perf baseline {} ({e}); generate it with MPU_BLESS=1 cargo test -p bench",
            path.display()
        )
    });
    let baseline = from_json(&text).expect("baseline parses");
    let tol = tolerance();
    let violations = compare(&baseline, &current, tol);
    if !violations.is_empty() {
        let report = render_report(&violations, tol);
        let report_path = path.with_file_name("perf-regression-report.txt");
        std::fs::write(&report_path, &report).ok();
        panic!("{report}\n(report written to {})", report_path.display());
    }
}

#[test]
fn gate_catches_injected_drift() {
    // End-to-end dry run of the failure path: perturb one counter of the
    // real sweep by 10% and check the gate reports exactly that counter.
    let records = collect_records();
    let mut drifted = records.clone();
    drifted[0].cycles += drifted[0].cycles.div_ceil(10);
    let violations = compare(&records, &drifted, 0.0);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations[0].contains("cycles"), "{violations:?}");
    assert!(violations[0].contains(&drifted[0].kernel), "{violations:?}");
    assert!(
        compare(&records, &records, 0.0).is_empty(),
        "the unperturbed sweep must pass its own gate"
    );
}

#[test]
fn sweep_records_round_trip_through_json() {
    let records = collect_records();
    let parsed = from_json(&to_json(&records)).expect("round trip parses");
    assert_eq!(parsed, records, "baseline serialization must be lossless");
}
