//! NoC delivery-order properties, extending the deadlock unit tests in
//! `system.rs`: across random topologies and random SEND/RECV schedules,
//! every message is delivered exactly once, each link behaves as a FIFO,
//! and removing a message's send turns the schedule into a detected
//! deadlock rather than a hang or a misdelivery.

use mastodon::{SimConfig, System, SystemError};
use mpu_isa::Program;
use proptest::prelude::*;
use pum_backend::DatapathKind;

/// One inter-MPU message: `(src, dst)` with `src != dst`.
#[derive(Debug, Clone, Copy)]
struct Event {
    src: usize,
    dst: usize,
}

/// Per-MPU assembly for a global event schedule. Sender `s`'s `k`-th send
/// ships a unique tag staged in `r{k}`; receiver `d`'s `j`-th receive
/// lands in `r6` and is archived to `r{8+j}` before the next receive can
/// overwrite it.
struct Schedule {
    programs: Vec<String>,
    /// `(mpu, staging reg, tag)` registers to preload.
    stage: Vec<(usize, u8, u64)>,
    /// Expected archive per receiver: `(mpu, archive reg, tag)`.
    expect: Vec<(usize, u8, u64)>,
}

fn tag_of(event_index: usize) -> u64 {
    1000 + event_index as u64
}

fn build_schedule(n: usize, events: &[Event]) -> Schedule {
    let mut programs = vec![String::from("NOP\n"); n];
    let mut stage = Vec::new();
    let mut expect = Vec::new();
    let mut outs = vec![0u8; n];
    let mut ins = vec![0u8; n];
    for (i, ev) in events.iter().enumerate() {
        let out = outs[ev.src];
        outs[ev.src] += 1;
        stage.push((ev.src, out, tag_of(i)));
        programs[ev.src].push_str(&format!(
            "SEND mpu{}\nMOVE h0 h0\nMEMCPY v0 r{out} v0 r6\nMOVE_DONE\nSEND_DONE\n",
            ev.dst
        ));
        let slot = 8 + ins[ev.dst];
        ins[ev.dst] += 1;
        expect.push((ev.dst, slot, tag_of(i)));
        programs[ev.dst].push_str(&format!(
            "RECV mpu{}\nCOMPUTE h0 v0\nMOV r6 r{slot}\nCOMPUTE_DONE\n",
            ev.src
        ));
    }
    Schedule { programs, stage, expect }
}

fn run_schedule(schedule: &Schedule) -> (System, Result<mastodon::Stats, SystemError>) {
    let n = schedule.programs.len();
    let mut sys = System::new(SimConfig::mpu(DatapathKind::Racer), n);
    for (id, text) in schedule.programs.iter().enumerate() {
        sys.set_program(id, Program::parse_asm(text).expect("valid schedule asm"));
    }
    for &(mpu, reg, tag) in &schedule.stage {
        sys.mpu_mut(mpu).write_register(0, 0, reg, &vec![tag; 64]).expect("stage tag");
    }
    let result = sys.run();
    (sys, result)
}

/// Random `(n, events)` with `2 <= n <= 5` and at most 6 messages. Each
/// sender stays within its 6 staging registers and each receiver within
/// its 6 archive registers because the whole schedule has at most 6 events.
fn schedules() -> impl Strategy<Value = (usize, Vec<Event>)> {
    (2..=5usize, prop::collection::vec((any::<u16>(), any::<u16>()), 0..7)).prop_map(|(n, raw)| {
        let events = raw
            .into_iter()
            .map(|(a, b)| {
                let src = a as usize % n;
                let mut dst = b as usize % n;
                if dst == src {
                    dst = (src + 1) % n;
                }
                Event { src, dst }
            })
            .collect();
        (n, events)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly-once, per-link-FIFO delivery: each receiver archives the
    /// tags of the messages targeting it, in the global schedule order.
    #[test]
    fn messages_deliver_exactly_once_in_fifo_order((n, events) in schedules()) {
        let schedule = build_schedule(n, &events);
        let (mut sys, result) = run_schedule(&schedule);
        let stats = result.expect("schedule is deadlock-free by construction");
        prop_assert_eq!(stats.messages_sent, events.len() as u64);
        for &(mpu, reg, tag) in &schedule.expect {
            let lanes = sys.mpu_mut(mpu).read_register(0, 0, reg).expect("archive reg");
            prop_assert!(
                lanes.iter().all(|&v| v == tag),
                "mpu{} r{} expected tag {} got {:?} (events {:?})",
                mpu, reg, tag, &lanes[..4.min(lanes.len())], events
            );
        }
    }

    /// Dropping one send (keeping its receive) starves that receiver: the
    /// run must end in a detected deadlock naming it, never a wrong-tag
    /// delivery or a hang.
    #[test]
    fn orphaned_recv_is_reported_as_deadlock((n, events) in schedules()) {
        if events.is_empty() {
            return Ok(());
        }
        let mut schedule = build_schedule(n, &events);
        // Re-derive the last event's send text and remove exactly it.
        let last = events.len() - 1;
        let ev = events[last];
        let out = events[..last].iter().filter(|e| e.src == ev.src).count();
        let send_text = format!(
            "SEND mpu{}\nMOVE h0 h0\nMEMCPY v0 r{out} v0 r6\nMOVE_DONE\nSEND_DONE\n",
            ev.dst
        );
        let program = &mut schedule.programs[ev.src];
        let pos = program.rfind(&send_text).expect("send text present");
        prop_assert_eq!(pos + send_text.len(), program.len(), "last send is the suffix");
        program.truncate(pos);
        let (_, result) = run_schedule(&schedule);
        match result {
            Err(SystemError::Deadlock { waiting }) => {
                prop_assert!(
                    waiting
                        .iter()
                        .any(|&(blocked, on)| blocked as usize == ev.dst && on as usize == ev.src),
                    "deadlock report {:?} must name mpu{} waiting on mpu{}",
                    waiting, ev.dst, ev.src
                );
            }
            other => prop_assert!(false, "expected deadlock, got {:?}", other.map(|_| ())),
        }
    }
}
