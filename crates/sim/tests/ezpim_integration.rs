//! End-to-end tests: ezpim's structured control flow, lowered to MPU ISA,
//! executes correctly on the simulated control path across every shipped
//! backend — the paper's core "end-to-end execution without a CPU" claim.

use ezpim::{Cond, EzProgram};
use mastodon::{run_single, SimConfig};
use mpu_isa::RegId;
use pum_backend::DatapathKind;

fn r(i: u16) -> RegId {
    RegId(i)
}

const BACKENDS: [DatapathKind; 5] = DatapathKind::ALL;

fn lanes_for(kind: DatapathKind) -> usize {
    SimConfig::mpu(kind).datapath.geometry().lanes_per_vrf
}

#[test]
fn while_loop_collatz_style_countdown() {
    // r0 -= r2 while r0 > r1; with per-lane iteration counts.
    for kind in BACKENDS {
        let lanes = lanes_for(kind);
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.while_loop(Cond::Gt(r(0), r(1)), |b| {
                b.sub(r(0), r(2), r(0));
            });
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        let init: Vec<u64> = (0..lanes as u64).map(|i| i % 9).collect();
        let (_, mut mpu) = run_single(
            SimConfig::mpu(kind),
            &p,
            &[((0, 0, 0), init.clone()), ((0, 0, 1), vec![0; lanes]), ((0, 0, 2), vec![1; lanes])],
        )
        .unwrap();
        assert_eq!(mpu.read_register(0, 0, 0).unwrap(), vec![0; lanes], "{kind:?}");
    }
}

#[test]
fn nested_if_inside_while_diverges_per_lane() {
    // while (r0 > r1) { if (r3 == r4) { r0 -= r2 } else { r0 -= r5 } }
    // Even lanes (r3==r4) step by 1, odd lanes by 2.
    for kind in [DatapathKind::Racer] {
        let lanes = lanes_for(kind);
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.while_loop(Cond::Gt(r(0), r(1)), |b| {
                b.if_else(
                    Cond::Eq(r(3), r(4)),
                    |b| {
                        b.sub(r(0), r(2), r(0));
                    },
                    |b| {
                        b.sub(r(0), r(5), r(0));
                    },
                );
            });
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        let init: Vec<u64> = vec![6; lanes];
        let parity: Vec<u64> = (0..lanes as u64).map(|i| i % 2).collect();
        let (_, mut mpu) = run_single(
            SimConfig::mpu(kind),
            &p,
            &[
                ((0, 0, 0), init),
                ((0, 0, 1), vec![0; lanes]),
                ((0, 0, 2), vec![1; lanes]),
                ((0, 0, 3), parity.clone()),
                ((0, 0, 4), vec![0; lanes]),
                ((0, 0, 5), vec![2; lanes]),
            ],
        )
        .unwrap();
        let got = mpu.read_register(0, 0, 0).unwrap();
        for (lane, &v) in got.iter().enumerate() {
            assert_eq!(v, 0, "{kind:?} lane {lane}: 6 steps to 0 by 1 or 2");
        }
    }
}

#[test]
fn for_loop_accumulates_fixed_count() {
    // for (r5 = 0; r5 < r6; r5++) r0 += r1, with r6 = 10, r1 = 3.
    for kind in BACKENDS {
        let lanes = lanes_for(kind);
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.for_loop(r(5), r(6), |b| {
                b.add(r(0), r(1), r(0));
            });
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        let (_, mut mpu) = run_single(
            SimConfig::mpu(kind),
            &p,
            &[
                ((0, 0, 0), vec![0; lanes]),
                ((0, 0, 1), vec![3; lanes]),
                ((0, 0, 6), vec![10; lanes]),
            ],
        )
        .unwrap();
        assert_eq!(mpu.read_register(0, 0, 0).unwrap(), vec![30; lanes], "{kind:?}");
    }
}

#[test]
fn subroutines_compose_with_control_flow() {
    // main: if (r0 > r1) call square;  square: r2 = r0 * r0.
    let kind = DatapathKind::Racer;
    let lanes = lanes_for(kind);
    let mut ez = EzProgram::new();
    ez.ensemble(&[(0, 0)], |b| {
        b.init0(r(2));
        b.if_then(Cond::Gt(r(0), r(1)), |b| {
            b.call("square");
        });
    })
    .unwrap();
    ez.subroutine("square", |b| {
        b.mul(r(0), r(0), r(2));
    })
    .unwrap();
    let p = ez.assemble().unwrap();
    let vals: Vec<u64> = (0..lanes as u64).collect();
    let (_, mut mpu) = run_single(
        SimConfig::mpu(kind),
        &p,
        &[((0, 0, 0), vals.clone()), ((0, 0, 1), vec![3; lanes])],
    )
    .unwrap();
    let got = mpu.read_register(0, 0, 2).unwrap();
    for lane in 0..lanes {
        let expect = if vals[lane] > 3 { vals[lane] * vals[lane] } else { 0 };
        assert_eq!(got[lane], expect, "lane {lane}");
    }
}

#[test]
fn textual_ezpim_runs_on_the_simulator() {
    let src = "\
ensemble h0.v0 {
    while r0 > r1 {
        SUB r0 r2 r0
    }
}
";
    let ez = ezpim::parse(src).unwrap();
    let p = ez.assemble().unwrap();
    let (_, mut mpu) = run_single(
        SimConfig::mpu(DatapathKind::Racer),
        &p,
        &[((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![0; 64]), ((0, 0, 2), vec![1; 64])],
    )
    .unwrap();
    assert_eq!(mpu.read_register(0, 0, 0).unwrap(), vec![0; 64]);
}

#[test]
fn baseline_and_mpu_agree_functionally_on_nested_control() {
    let mut ez = EzProgram::new();
    ez.ensemble(&[(0, 0)], |b| {
        b.while_loop(Cond::Gt(r(0), r(1)), |b| {
            b.if_then(Cond::Lt(r(0), r(3)), |b| {
                b.add(r(4), r(2), r(4));
            });
            b.sub(r(0), r(2), r(0));
        });
    })
    .unwrap();
    let p = ez.assemble().unwrap();
    let inputs: Vec<((u16, u16, u8), Vec<u64>)> = vec![
        ((0, 0, 0), (0..64).map(|i| i % 7).collect()),
        ((0, 0, 1), vec![0; 64]),
        ((0, 0, 2), vec![1; 64]),
        ((0, 0, 3), vec![4; 64]),
        ((0, 0, 4), vec![0; 64]),
    ];
    let (s_mpu, mut m1) = run_single(SimConfig::mpu(DatapathKind::Racer), &p, &inputs).unwrap();
    let (s_base, mut m2) =
        run_single(SimConfig::baseline(DatapathKind::Racer), &p, &inputs).unwrap();
    assert_eq!(
        m1.read_register(0, 0, 4).unwrap(),
        m2.read_register(0, 0, 4).unwrap(),
        "modes agree on results"
    );
    assert!(s_base.offload_events > 0);
    assert!(s_base.cycles > s_mpu.cycles, "Baseline pays for every mask/jump");
}
