//! Differential testing: random MPU programs must produce identical
//! architectural results on all three backends (the portability guarantee
//! the MPU ISA makes), and identical results between MPU and Baseline
//! modes (offloading changes cost, never semantics).

use mastodon::{run_single, SimConfig};
use mpu_isa::{BinaryOp, CompareOp, Instruction, Program, RegId, UnaryOp, COND_REG};
use proptest::prelude::*;
use pum_backend::DatapathKind;

/// Registers r0..r7 are data; multi-step ops write r8/r9 to avoid aliasing.
fn arb_body_instr() -> impl Strategy<Value = Instruction> {
    let data_reg = || (0u16..8).prop_map(RegId);
    let safe_dst = || (8u16..10).prop_map(RegId);
    prop_oneof![
        // Single-step binaries: any operands.
        (
            prop::sample::select(vec![
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::And,
                BinaryOp::Or,
                BinaryOp::Xor,
                BinaryOp::Xnor,
                BinaryOp::Nand,
                BinaryOp::Nor,
                BinaryOp::Max,
                BinaryOp::Min,
            ]),
            data_reg(),
            data_reg(),
            data_reg()
        )
            .prop_map(|(op, rs, rt, rd)| Instruction::Binary { op, rs, rt, rd }),
        // Multi-step binaries: destination outside the source range.
        (
            prop::sample::select(vec![
                BinaryOp::Mul,
                BinaryOp::Mac,
                BinaryOp::QDiv,
                BinaryOp::RDiv,
            ]),
            data_reg(),
            data_reg(),
            safe_dst()
        )
            .prop_map(|(op, rs, rt, rd)| Instruction::Binary { op, rs, rt, rd }),
        (prop::sample::select(UnaryOp::ALL.to_vec()), data_reg(), data_reg())
            .prop_map(|(op, rs, rd)| Instruction::Unary { op, rs, rd }),
        (prop::sample::select(CompareOp::ALL.to_vec()), data_reg(), data_reg())
            .prop_map(|(op, rs, rt)| Instruction::Compare { op, rs, rt }),
        (data_reg(), data_reg()).prop_map(|(rs, rt)| Instruction::Cas { rs, rt }),
        // Predication toggles: SETMASK from the conditional register, then
        // later UNMASK (emitted in pairs by construction below).
        Just(Instruction::SetMask { rs: COND_REG }),
        Just(Instruction::Unmask),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_body_instr(), 1..24).prop_map(|body| {
        let mut instrs = vec![Instruction::Compute { rfh: 0.into(), vrf: 0.into() }];
        instrs.extend(body);
        // Ensure the program leaves predication enabled at the end.
        instrs.push(Instruction::Unmask);
        instrs.push(Instruction::ComputeDone);
        Program::from_instructions(instrs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same binary + data produce identical register files on every
    /// shipped backend — RACER, MIMDRAM, Duality Cache, pLUTo, and the
    /// DPU model (over the 64 lanes they all share).
    #[test]
    fn backends_agree(program in arb_program(), seed in any::<u64>()) {
        let mut results: Vec<Vec<Vec<u64>>> = Vec::new();
        for kind in DatapathKind::ALL {
            let cfg = SimConfig::mpu(kind);
            let lanes = cfg.datapath.geometry().lanes_per_vrf;
            // Deterministic pseudo-random data, identical in shared lanes.
            let inputs: Vec<((u16, u16, u8), Vec<u64>)> = (0..8u8)
                .map(|r| {
                    let values = (0..lanes as u64)
                        .map(|l| {
                            (seed ^ (r as u64).wrapping_mul(0x9e3779b97f4a7c15))
                                .wrapping_mul(l.wrapping_add(3))
                        })
                        .collect();
                    ((0, 0, r), values)
                })
                .collect();
            let (_, mut mpu) = run_single(cfg, &program, &inputs).expect("run");
            let regs: Vec<Vec<u64>> = (0..10u8)
                .map(|r| mpu.read_register(0, 0, r).unwrap()[..64].to_vec())
                .collect();
            results.push(regs);
        }
        for (kind, regs) in DatapathKind::ALL.iter().zip(&results).skip(1) {
            prop_assert_eq!(&results[0], regs, "{:?} diverged from {:?}", kind, DatapathKind::ALL[0]);
        }
    }

    /// Baseline mode is slower but never changes results.
    #[test]
    fn baseline_agrees_with_mpu(program in arb_program(), seed in any::<u64>()) {
        let inputs: Vec<((u16, u16, u8), Vec<u64>)> = (0..8u8)
            .map(|r| {
                let values = (0..64u64)
                    .map(|l| seed.wrapping_add((r as u64) << 32).wrapping_mul(l | 1))
                    .collect();
                ((0, 0, r), values)
            })
            .collect();
        let (fast, mut m1) =
            run_single(SimConfig::mpu(DatapathKind::Racer), &program, &inputs).expect("mpu");
        let (slow, mut m2) =
            run_single(SimConfig::baseline(DatapathKind::Racer), &program, &inputs)
                .expect("baseline");
        for r in 0..10u8 {
            prop_assert_eq!(
                m1.read_register(0, 0, r).unwrap(),
                m2.read_register(0, 0, r).unwrap(),
                "register r{}", r
            );
        }
        prop_assert!(slow.cycles >= fast.cycles);
    }
}
