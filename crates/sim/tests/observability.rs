//! Observability-layer integration tests: trace determinism, conservation
//! on multi-MPU (NoC) runs, and Chrome trace-event export validity.

use mastodon::{
    chrome_trace_json, EventLog, FaultConfig, Profile, Redundancy, SimConfig, Stats, System,
    TraceEvent, TraceKind, NOC_TID,
};
use microjson::Value;
use mpu_isa::Program;
use pum_backend::DatapathKind;
use std::collections::HashMap;

/// A two-MPU schedule exercising compute ensembles, a move block, a
/// SEND/RECV exchange, and control flow.
const SENDER: &str = "COMPUTE h0 v0\nADD r0 r1 r2\nMUL r2 r1 r3\nCOMPUTE_DONE\n\
                      SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r3 v0 r6\nMOVE_DONE\nSEND_DONE\n\
                      NOP";
const RECEIVER: &str = "RECV mpu0\nCOMPUTE h0 v0\nADD r6 r6 r7\nCOMPUTE_DONE\nNOP";

fn traced_system(config: SimConfig) -> (Stats, Vec<TraceEvent>, Vec<Stats>) {
    let mut sys = System::new(config, 2);
    let log = EventLog::new();
    sys.set_event_log(&log);
    sys.set_program(0, Program::parse_asm(SENDER).expect("sender asm"));
    sys.set_program(1, Program::parse_asm(RECEIVER).expect("receiver asm"));
    sys.mpu_mut(0).write_register(0, 0, 0, &vec![5; 64]).expect("stage r0");
    sys.mpu_mut(0).write_register(0, 0, 1, &vec![3; 64]).expect("stage r1");
    let stats = sys.run().expect("schedule completes");
    let per_mpu = (0..2).map(|i| *sys.mpu_mut(i).stats()).collect();
    (stats, log.take(), per_mpu)
}

fn faulty_config() -> SimConfig {
    let mut config = SimConfig::mpu(DatapathKind::Racer);
    // Rate sized so a ~15k-uop MUL recipe draws well under one transient
    // per redundant run: DMR's bounded retries must make the schedule
    // completable, not just detectable.
    config.fault = FaultConfig { seed: Some(0xC0FFEE), transient_rate: 2e-5, ..Default::default() };
    config.recovery.redundancy = Redundancy::Dmr;
    config
}

#[test]
fn trace_streams_are_deterministic() {
    let (stats_a, events_a, _) = traced_system(SimConfig::mpu(DatapathKind::Racer));
    let (stats_b, events_b, _) = traced_system(SimConfig::mpu(DatapathKind::Racer));
    assert_eq!(stats_a, stats_b);
    assert_eq!(events_a, events_b, "same program must trace identically");
    assert!(!events_a.is_empty());
}

#[test]
fn trace_streams_are_deterministic_under_seeded_faults() {
    let (stats_a, events_a, _) = traced_system(faulty_config());
    let (stats_b, events_b, _) = traced_system(faulty_config());
    assert_eq!(stats_a, stats_b);
    assert_eq!(events_a, events_b, "seeded fault runs must trace identically");
}

#[test]
fn profile_conserves_noc_and_fault_charges() {
    let (stats, events, per_mpu) = traced_system(faulty_config());
    assert!(
        events.iter().any(|e| matches!(e.kind, TraceKind::Noc { delivered: true, .. })),
        "schedule must exercise the NoC"
    );
    let profile = Profile::build(&events);
    for m in &profile.mpus {
        assert_eq!(
            m.totals, per_mpu[m.mpu as usize],
            "mpu{} profile totals must reproduce its Stats exactly",
            m.mpu
        );
    }
    assert_eq!(profile.merged(), stats, "merged profile must equal System::run stats");
}

#[test]
fn chrome_export_is_valid_and_loadable() {
    let (_, events, _) = traced_system(faulty_config());
    let json = chrome_trace_json(&events);
    let doc = Value::parse(&json).expect("export must be well-formed JSON");
    let trace_events =
        doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array present");
    assert!(!trace_events.is_empty());

    let mut open: HashMap<u64, u64> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut named_tracks = Vec::new();
    let mut saw_noc_slice = false;
    for ev in trace_events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("every event has ph");
        let tid = ev.get("tid").and_then(Value::as_u64).expect("every event has tid");
        match ph {
            "M" => {
                assert_eq!(ev.get("name").and_then(Value::as_str), Some("thread_name"));
                let name = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .expect("thread_name metadata carries a name");
                named_tracks.push((tid, name.to_string()));
                continue;
            }
            "B" => *open.entry(tid).or_default() += 1,
            "E" => {
                let depth = open.entry(tid).or_default();
                assert!(*depth > 0, "E without a matching B on tid {tid}");
                *depth -= 1;
            }
            "X" => {
                assert!(ev.get("dur").and_then(Value::as_f64).is_some());
                if tid == u64::from(NOC_TID) {
                    saw_noc_slice = true;
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
        let ts = ev.get("ts").and_then(Value::as_f64).expect("every event has ts");
        let prev = last_ts.entry(tid).or_insert(ts);
        assert!(ts >= *prev, "timestamps must be monotonic per track (tid {tid})");
        *prev = ts;
    }
    assert!(open.values().all(|&d| d == 0), "B/E pairs must balance per track");
    assert!(saw_noc_slice, "NoC traversals must land on the NoC track");
    assert!(named_tracks.contains(&(0, "mpu0".to_string())));
    assert!(named_tracks.contains(&(1, "mpu1".to_string())));
    assert!(named_tracks.contains(&(u64::from(NOC_TID), "noc".to_string())));
}

#[test]
fn arming_a_tracer_does_not_change_execution() {
    let run = |armed: bool| {
        let mut sys = System::new(faulty_config(), 2);
        let log = EventLog::new();
        if armed {
            sys.set_event_log(&log);
        }
        sys.set_program(0, Program::parse_asm(SENDER).expect("sender asm"));
        sys.set_program(1, Program::parse_asm(RECEIVER).expect("receiver asm"));
        sys.mpu_mut(0).write_register(0, 0, 0, &vec![5; 64]).expect("stage r0");
        sys.mpu_mut(0).write_register(0, 0, 1, &vec![3; 64]).expect("stage r1");
        let stats = sys.run().expect("schedule completes");
        let lanes = sys.mpu_mut(1).read_register(0, 0, 7).expect("result reg");
        (stats, lanes)
    };
    assert_eq!(run(true), run(false), "tracing must be execution-transparent");
}
