//! On-chip network model for inter-MPU messages.
//!
//! The paper integrates MASTODON with SST's cycle-accurate network modules;
//! we substitute a 2-D mesh model: MPUs sit on a √N × √N grid, messages
//! take XY routes, and latency is per-hop router delay plus payload
//! serialization over the link width. Energy is per byte per hop.

use crate::config::NocParams;
use serde::{Deserialize, Serialize};

/// A 2-D mesh connecting `mpus` MPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshNoc {
    side: usize,
    params_hop_cycles: u64,
    params_link_bytes_per_cycle_milli: u64,
    params_pj_per_byte_hop_milli: u64,
}

impl MeshNoc {
    /// Builds a mesh big enough for `mpus` endpoints.
    pub fn new(mpus: usize, params: NocParams) -> Self {
        let side = (mpus.max(1) as f64).sqrt().ceil() as usize;
        Self {
            side: side.max(1),
            params_hop_cycles: params.hop_cycles,
            params_link_bytes_per_cycle_milli: (params.link_bytes_per_cycle * 1000.0) as u64,
            params_pj_per_byte_hop_milli: (params.pj_per_byte_hop * 1000.0) as u64,
        }
    }

    /// Mesh side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Manhattan hop count between two MPUs (minimum 1 for distinct MPUs).
    pub fn hops(&self, src: usize, dst: usize) -> u64 {
        if src == dst {
            return 0;
        }
        let (sx, sy) = (src % self.side, src / self.side);
        let (dx, dy) = (dst % self.side, dst / self.side);
        (sx.abs_diff(dx) + sy.abs_diff(dy)).max(1) as u64
    }

    /// Delivery latency in cycles for `bytes` from `src` to `dst`:
    /// per-hop router latency plus serialization of the payload.
    pub fn latency_cycles(&self, src: usize, dst: usize, bytes: u64) -> u64 {
        let hops = self.hops(src, dst);
        if hops == 0 {
            return 0;
        }
        let link = self.params_link_bytes_per_cycle_milli.max(1);
        hops * self.params_hop_cycles + (bytes * 1000).div_ceil(link)
    }

    /// Transport energy in picojoules.
    pub fn energy_pj(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        let hops = self.hops(src, dst) as f64;
        hops * bytes as f64 * self.params_pj_per_byte_hop_milli as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc(n: usize) -> MeshNoc {
        MeshNoc::new(n, NocParams::default())
    }

    #[test]
    fn mesh_side_covers_all_mpus() {
        assert_eq!(noc(1).side(), 1);
        assert_eq!(noc(4).side(), 2);
        assert_eq!(noc(497).side(), 23);
        assert!(noc(497).side() * noc(497).side() >= 497);
    }

    #[test]
    fn hops_are_manhattan() {
        let n = noc(16); // 4x4
        assert_eq!(n.hops(0, 0), 0);
        assert_eq!(n.hops(0, 1), 1);
        assert_eq!(n.hops(0, 5), 2); // (1,1)
        assert_eq!(n.hops(0, 15), 6); // (3,3)
    }

    #[test]
    fn latency_grows_with_distance_and_size() {
        let n = noc(16);
        assert!(n.latency_cycles(0, 15, 64) > n.latency_cycles(0, 1, 64));
        assert!(n.latency_cycles(0, 1, 4096) > n.latency_cycles(0, 1, 64));
        assert_eq!(n.latency_cycles(3, 3, 1 << 20), 0, "self-delivery is free");
    }

    #[test]
    fn energy_scales_with_bytes_and_hops() {
        let n = noc(16);
        let near = n.energy_pj(0, 1, 100);
        let far = n.energy_pj(0, 15, 100);
        assert!((far / near - 6.0).abs() < 1e-9);
        assert_eq!(n.energy_pj(2, 2, 100), 0.0);
    }
}
