//! The I2M decoder's template lookup: a recipe cache (paper Fig. 9).
//!
//! The recipe table can only hold a few thousand micro-op templates, so the
//! control path dynamically caches recipes as instructions are issued. We
//! model a capacity-bounded cache keyed by the encoded instruction word
//! (operands included — the template filler's work is folded into the
//! cached entry), with LRU replacement and hit/miss counters. Baseline
//! datapaths decode every instruction from scratch. Each entry carries
//! both the synthesized micro-op sequence and its geometry-specialized
//! [`CompiledRecipe`], so plane-address resolution happens once per
//! template rather than once per executed micro-op.
//!
//! Recipes are held behind [`Arc`] so an [`Mpu`](crate::Mpu) is `Send` and
//! chip sweeps can fan out across threads. Concurrent runs may also share a
//! [`RecipePool`]: a host-side synthesis memo that skips re-deriving the
//! micro-op sequence for an instruction another thread already lowered.
//! The pool is invisible to the simulated machine — per-MPU hit/miss
//! counters and the miss penalty model the *hardware* template fetch and
//! are charged identically with or without a pool, so pooled and unpooled
//! runs produce bit-identical statistics.

use mpu_isa::Instruction;
use parking_lot::RwLock;
use pum_backend::{CompiledRecipe, DatapathModel, Recipe, RecipeCtx};
use std::collections::HashMap;
use std::sync::Arc;

/// A recipe cache entry: the synthesized micro-op sequence plus its
/// pre-compiled form (plane addresses resolved for the owning datapath's
/// VRF geometry). Both are `Arc`-shared with the pool, so cloning an entry
/// is two reference bumps.
#[derive(Debug, Clone)]
pub struct CachedRecipe {
    /// The synthesized micro-op sequence (costing, histograms, display).
    pub recipe: Arc<Recipe>,
    /// The geometry-specialized compiled form executed on the hot path.
    pub compiled: Arc<CompiledRecipe>,
}

/// A process-wide memo of synthesized recipes, shared across concurrent
/// simulations.
///
/// Recipe templates are keyed by `(RecipeCtx, encoded instruction)`:
/// synthesis is a pure function of that pair, so datapaths that agree on
/// logic family and temporary registers (including ablated variants of the
/// same [`pum_backend::DatapathKind`]) reuse each other's work safely.
/// Compiled forms additionally key on the VRF geometry `(lanes, regs)`
/// they were resolved for.
#[derive(Debug, Default)]
pub struct RecipePool {
    templates: RwLock<HashMap<(RecipeCtx, u32), Arc<Recipe>>>,
    compiled: RwLock<HashMap<CompiledKey, Arc<CompiledRecipe>>>,
}

/// Memo key for a compiled form: synthesis context, encoded instruction,
/// and the VRF geometry `(lanes, regs)` it was resolved for.
type CompiledKey = (RecipeCtx, u32, usize, usize);

impl RecipePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the recipe for `instr` on `datapath`, synthesizing and
    /// memoizing it on first use. `None` for control-path instructions
    /// that have no recipe.
    pub fn get_or_build(
        &self,
        datapath: &DatapathModel,
        instr: &Instruction,
    ) -> Option<Arc<Recipe>> {
        let key = (datapath.recipe_ctx(), instr.encode());
        if let Some(recipe) = self.templates.read().get(&key) {
            return Some(Arc::clone(recipe));
        }
        // Synthesize outside the write lock; a racing thread may do the
        // same work, but the first insert wins and both get the same entry.
        let recipe = Arc::new(datapath.recipe(instr)?);
        let mut templates = self.templates.write();
        Some(Arc::clone(templates.entry(key).or_insert(recipe)))
    }

    /// Returns the recipe for `instr` together with its compiled form for
    /// `datapath`'s VRF geometry, memoizing both on first use.
    pub fn get_or_build_compiled(
        &self,
        datapath: &DatapathModel,
        instr: &Instruction,
    ) -> Option<CachedRecipe> {
        let recipe = self.get_or_build(datapath, instr)?;
        let g = datapath.geometry();
        let key = (datapath.recipe_ctx(), instr.encode(), g.lanes_per_vrf, g.regs_per_vrf);
        if let Some(compiled) = self.compiled.read().get(&key) {
            return Some(CachedRecipe { recipe, compiled: Arc::clone(compiled) });
        }
        let compiled = Arc::new(recipe.compile(g.lanes_per_vrf, g.regs_per_vrf));
        let mut map = self.compiled.write();
        let compiled = Arc::clone(map.entry(key).or_insert(compiled));
        Some(CachedRecipe { recipe, compiled })
    }

    /// Installs an explicit template for `(ctx, instr)`, replacing any
    /// memoized one and dropping stale compiled forms derived from it.
    ///
    /// This is the conformance harness's fault-injection hook: preloading a
    /// deliberately corrupted recipe (built with
    /// [`pum_backend::Recipe::from_ops`]) makes every pooled MPU execute
    /// the corrupted sequence on both the interpreted and compiled paths,
    /// which the differential suite must then catch. Preload before any
    /// simulation uses the pool.
    pub fn preload(&self, ctx: RecipeCtx, instr: &Instruction, recipe: Recipe) {
        let word = instr.encode();
        self.templates.write().insert((ctx, word), Arc::new(recipe));
        self.compiled.write().retain(|&(c, w, _, _), _| !(c == ctx && w == word));
    }

    /// Number of memoized templates.
    pub fn len(&self) -> usize {
        self.templates.read().len()
    }

    /// True if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.templates.read().is_empty()
    }
}

/// A bounded LRU cache of synthesized recipes (with their compiled forms).
#[derive(Debug)]
pub struct RecipeCache {
    capacity: usize,
    entries: HashMap<u32, (CachedRecipe, u64)>,
    pool: Option<Arc<RecipePool>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl RecipeCache {
    /// Creates a cache with room for `capacity` recipes (Table III: 1024).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            pool: None,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Attaches a shared synthesis pool; misses consult it before lowering
    /// the instruction from scratch. Purely a host-side optimization —
    /// hit/miss accounting is unchanged.
    pub fn set_pool(&mut self, pool: Arc<RecipePool>) {
        self.pool = Some(pool);
    }

    /// Looks up (or synthesizes, compiles, and caches) the recipe for
    /// `instr`, reporting whether it was a hit. Returns `None` for
    /// control-path instructions that have no recipe.
    pub fn lookup(
        &mut self,
        datapath: &DatapathModel,
        instr: &Instruction,
    ) -> Option<(CachedRecipe, bool)> {
        let key = instr.encode();
        if let Some((entry, stamp)) = self.entries.get_mut(&key) {
            // The LRU clock only advances on lookups that actually touch
            // the table; recipe-less control instructions don't age entries.
            self.tick += 1;
            *stamp = self.tick;
            self.hits += 1;
            return Some((entry.clone(), true));
        }
        let entry = match &self.pool {
            Some(pool) => pool.get_or_build_compiled(datapath, instr)?,
            None => {
                let recipe = Arc::new(datapath.recipe(instr)?);
                let g = datapath.geometry();
                let compiled = Arc::new(recipe.compile(g.lanes_per_vrf, g.regs_per_vrf));
                CachedRecipe { recipe, compiled }
            }
        };
        self.tick += 1;
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict the least recently used template.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, stamp))| *stamp) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (entry.clone(), self.tick));
        Some((entry, false))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lookups that touched the table (`hits + misses`); recipe-less
    /// control instructions are excluded.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpu_isa::{BinaryOp, RegId};

    fn add(rd: u16) -> Instruction {
        Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(rd) }
    }

    #[test]
    fn second_lookup_hits() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(!hit);
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(hit);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn different_operands_are_different_templates() {
        // The cached entry includes filled-in operands, so ADD r0 r1 r2 and
        // ADD r0 r1 r3 occupy separate slots.
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        cache.lookup(&dp, &add(2)).unwrap();
        let (_, hit) = cache.lookup(&dp, &add(3)).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(2);
        cache.lookup(&dp, &add(2)).unwrap();
        cache.lookup(&dp, &add(3)).unwrap();
        cache.lookup(&dp, &add(2)).unwrap(); // refresh r2
        cache.lookup(&dp, &add(4)).unwrap(); // evicts r3
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(hit, "recently used entry survived");
        let (_, hit) = cache.lookup(&dp, &add(3)).unwrap();
        assert!(!hit, "LRU entry was evicted");
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(2);
        for rd in 2..8 {
            cache.lookup(&dp, &add(rd)).unwrap();
            assert!(cache.len() <= 2, "len {} exceeds capacity", cache.len());
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 6);
    }

    #[test]
    fn capacity_one_thrashes_but_stays_correct() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(1);
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(!hit);
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(hit, "sole entry is retained");
        let (_, hit) = cache.lookup(&dp, &add(3)).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 1, "capacity-1 cache holds exactly one entry");
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(!hit, "previous entry was evicted by the new one");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn repeated_key_refreshes_without_growth() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        for _ in 0..10 {
            cache.lookup(&dp, &add(2)).unwrap();
        }
        assert_eq!(cache.len(), 1, "repeated key must not duplicate entries");
        assert_eq!(cache.hits(), 9);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn tick_counts_only_real_lookups() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        cache.lookup(&dp, &add(2)).unwrap();
        // Control instructions have no recipe and must not advance the
        // LRU clock (they would otherwise skew recency stamps).
        assert!(cache.lookup(&dp, &Instruction::Nop).is_none());
        assert!(cache.lookup(&dp, &Instruction::Nop).is_none());
        cache.lookup(&dp, &add(2)).unwrap();
        assert_eq!(cache.tick(), cache.hits() + cache.misses());
        assert_eq!(cache.tick(), 2);
    }

    #[test]
    fn control_instructions_have_no_recipe() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(2);
        assert!(cache.lookup(&dp, &Instruction::Nop).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn pool_is_shared_and_transparent() {
        let dp = DatapathModel::racer();
        let pool = Arc::new(RecipePool::new());

        let mut pooled = RecipeCache::new(4);
        pooled.set_pool(Arc::clone(&pool));
        let mut plain = RecipeCache::new(4);

        let (pr, ph) = pooled.lookup(&dp, &add(2)).unwrap();
        let (sr, sh) = plain.lookup(&dp, &add(2)).unwrap();
        assert_eq!(*pr.recipe, *sr.recipe, "pooled synthesis yields the same recipe");
        assert_eq!(ph, sh, "pool must not alter hit/miss behavior");
        assert_eq!(pool.len(), 1);

        // A second cache on the same pool reuses the memo but still counts
        // its own (hardware) miss.
        let mut second = RecipeCache::new(4);
        second.set_pool(Arc::clone(&pool));
        let (_, hit) = second.lookup(&dp, &add(2)).unwrap();
        assert!(!hit, "per-MPU miss is charged even on a pool hit");
        assert_eq!(pool.len(), 1, "no duplicate pool entries");
    }

    #[test]
    fn compiled_forms_are_pooled_per_geometry() {
        let dp = DatapathModel::racer();
        let pool = Arc::new(RecipePool::new());
        let a = pool.get_or_build_compiled(&dp, &add(2)).unwrap();
        let b = pool.get_or_build_compiled(&dp, &add(2)).unwrap();
        assert!(Arc::ptr_eq(&a.compiled, &b.compiled), "compiled memo is shared");
        let g = dp.geometry();
        assert_eq!(a.compiled.lanes(), g.lanes_per_vrf);
        assert_eq!(a.compiled.regs(), g.regs_per_vrf);
        assert_eq!(a.compiled.len(), a.recipe.len());
    }

    #[test]
    fn pool_is_safe_across_threads() {
        let dp = DatapathModel::racer();
        let pool = Arc::new(RecipePool::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let dp = dp.clone();
                s.spawn(move || {
                    let mut cache = RecipeCache::new(8);
                    cache.set_pool(pool);
                    for rd in 2..6 {
                        cache.lookup(&dp, &add(rd)).unwrap();
                    }
                });
            }
        });
        assert_eq!(pool.len(), 4, "one entry per distinct instruction");
    }
}
