//! The I2M decoder's template lookup: a recipe cache (paper Fig. 9).
//!
//! The recipe table can only hold a few thousand micro-op templates, so the
//! control path dynamically caches recipes as instructions are issued. We
//! model a capacity-bounded cache keyed by the encoded instruction word
//! (operands included — the template filler's work is folded into the
//! cached entry), with LRU replacement and hit/miss counters. Baseline
//! datapaths decode every instruction from scratch. Each entry carries
//! both the synthesized micro-op sequence and its geometry-specialized
//! [`CompiledRecipe`], so plane-address resolution happens once per
//! template rather than once per executed micro-op.
//!
//! Recipes are held behind [`Arc`] so an [`Mpu`](crate::Mpu) is `Send` and
//! chip sweeps can fan out across threads. Concurrent runs may also share a
//! [`RecipePool`]: a host-side synthesis memo that skips re-deriving the
//! micro-op sequence for an instruction another thread already lowered.
//! The pool is invisible to the simulated machine — per-MPU hit/miss
//! counters and the miss penalty model the *hardware* template fetch and
//! are charged identically with or without a pool, so pooled and unpooled
//! runs produce bit-identical statistics.

use mpu_isa::Instruction;
use parking_lot::RwLock;
use pum_backend::{CompiledRecipe, DatapathModel, EnsembleTrace, OptStats, Recipe, RecipeCtx};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A recipe cache entry: the synthesized micro-op sequence plus its
/// pre-compiled form (plane addresses resolved for the owning datapath's
/// VRF geometry). Both are `Arc`-shared with the pool, so cloning an entry
/// is two reference bumps.
#[derive(Debug, Clone)]
pub struct CachedRecipe {
    /// The synthesized micro-op sequence (costing, histograms, display).
    pub recipe: Arc<Recipe>,
    /// The geometry-specialized compiled form executed on the hot path.
    pub compiled: Arc<CompiledRecipe>,
}

/// A process-wide memo of synthesized recipes, shared across concurrent
/// simulations.
///
/// Recipe templates are keyed by `(RecipeCtx, encoded instruction)`:
/// synthesis is a pure function of that pair, so datapaths that agree on
/// logic family, temporary registers, *and optimizer configuration*
/// (including ablated variants of the same
/// [`pum_backend::DatapathKind`]) reuse each other's work safely — and
/// datapaths that disagree on any of them, notably an optimizer flag
/// flipped against a warm pool, can never be served each other's
/// templates. Compiled forms additionally key on the VRF geometry
/// `(lanes, regs)` they were resolved for.
#[derive(Debug, Default)]
pub struct RecipePool {
    templates: RwLock<HashMap<(RecipeCtx, u32), Arc<Recipe>>>,
    compiled: RwLock<HashMap<CompiledKey, Arc<CompiledRecipe>>>,
    traces: RwLock<HashMap<TraceKey, Arc<EnsembleTrace>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    opt: RwLock<OptStats>,
}

/// Counter snapshot for a [`RecipePool`]: host-side template-memo traffic.
///
/// These are *not* part of the simulated machine's [`crate::Stats`] — the
/// pool is invisible to the modeled hardware, and folding its counters into
/// per-MPU stats would break the pooled ≡ unpooled bit-identity guarantee.
/// They answer the engineering question "how much synthesis did the memo
/// actually save?", and `hits + misses == lookups` always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Template probes that resolved to a recipe (control-path
    /// instructions without a recipe are not counted).
    pub lookups: u64,
    /// Probes answered from the memo without synthesizing.
    pub hits: u64,
    /// Probes that synthesized a new template. Under a synthesis race both
    /// threads count a miss even though one insert wins — the counter
    /// reports work performed, not table growth.
    pub misses: u64,
    /// Per-rule recipe-optimizer attribution accumulated over every
    /// synthesis this pool performed (counted or not): each template miss
    /// pays one optimizer pass, and this records what that pass bought.
    pub opt: OptStats,
}

/// Memo key for a compiled form: synthesis context, encoded instruction,
/// and the VRF geometry `(lanes, regs)` it was resolved for.
type CompiledKey = (RecipeCtx, u32, usize, usize);

/// Memo key for a fused ensemble trace: synthesis context, the encoded
/// ensemble body (collision-proof — the words *are* the body), and the
/// VRF geometry `(lanes, regs)` it was fused for.
type TraceKey = (RecipeCtx, Vec<u32>, usize, usize);

impl RecipePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the recipe for `instr` on `datapath`, synthesizing and
    /// memoizing it on first use. `None` for control-path instructions
    /// that have no recipe.
    pub fn get_or_build(
        &self,
        datapath: &DatapathModel,
        instr: &Instruction,
    ) -> Option<Arc<Recipe>> {
        Some(self.get_or_build_inner(datapath, instr, true)?.0)
    }

    /// [`Self::get_or_build`] plus whether the template was already
    /// memoized (`true` = pool hit). When `count` is false the probe is
    /// left out of the traffic counters (used by trace fusion, whose
    /// probes are one-time and amortized behind the trace memo — counting
    /// them would make pool statistics depend on memo warmth rather than
    /// on the executed instruction stream).
    fn get_or_build_inner(
        &self,
        datapath: &DatapathModel,
        instr: &Instruction,
        count: bool,
    ) -> Option<(Arc<Recipe>, bool)> {
        let key = (datapath.recipe_ctx(), instr.encode());
        if let Some(recipe) = self.templates.read().get(&key) {
            if count {
                self.lookups.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            return Some((Arc::clone(recipe), true));
        }
        // Synthesize outside the write lock; a racing thread may do the
        // same work, but the first insert wins and both get the same entry.
        let (recipe, opt) = datapath.recipe_with_stats(instr)?;
        let recipe = Arc::new(recipe);
        self.opt.write().merge(&opt);
        if count {
            self.lookups.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let mut templates = self.templates.write();
        Some((Arc::clone(templates.entry(key).or_insert(recipe)), false))
    }

    /// Returns the recipe for `instr` together with its compiled form for
    /// `datapath`'s VRF geometry, memoizing both on first use.
    pub fn get_or_build_compiled(
        &self,
        datapath: &DatapathModel,
        instr: &Instruction,
    ) -> Option<CachedRecipe> {
        Some(self.get_or_build_compiled_inner(datapath, instr)?.0)
    }

    /// [`Self::get_or_build_compiled`] plus whether the *template* was a
    /// pool hit (compiled-form memoization is not separately counted).
    fn get_or_build_compiled_inner(
        &self,
        datapath: &DatapathModel,
        instr: &Instruction,
    ) -> Option<(CachedRecipe, bool)> {
        self.build_compiled(datapath, instr, true)
    }

    /// Shared body of the compiled-form getters; `count` selects whether
    /// the template probe enters the pool's traffic counters.
    fn build_compiled(
        &self,
        datapath: &DatapathModel,
        instr: &Instruction,
        count: bool,
    ) -> Option<(CachedRecipe, bool)> {
        let (recipe, template_hit) = self.get_or_build_inner(datapath, instr, count)?;
        let g = datapath.geometry();
        let key = (datapath.recipe_ctx(), instr.encode(), g.lanes_per_vrf, g.regs_per_vrf);
        if let Some(compiled) = self.compiled.read().get(&key) {
            let entry = CachedRecipe { recipe, compiled: Arc::clone(compiled) };
            return Some((entry, template_hit));
        }
        let compiled = Arc::new(recipe.compile(g.lanes_per_vrf, g.regs_per_vrf));
        let mut map = self.compiled.write();
        let compiled = Arc::clone(map.entry(key).or_insert(compiled));
        Some((CachedRecipe { recipe, compiled }, template_hit))
    }

    /// Returns the fused [`EnsembleTrace`] for a straight-line ensemble
    /// body on `datapath`, fusing and memoizing it on first use. Recipes
    /// are resolved through the pool's template *and* compiled memos, so
    /// fusion never re-synthesizes or re-compiles work the pool already
    /// holds — and a preloaded, possibly deliberately corrupted, template
    /// reaches the trace tier exactly as it reaches the per-instruction
    /// tiers. Fusion probes stay out of the pool's traffic counters: they
    /// are one-time (amortized behind this trace memo), so counting them
    /// would make [`Self::stats`] depend on memo warmth instead of the
    /// executed instruction stream. `None` when the body contains an
    /// instruction the trace tier cannot fuse.
    pub fn get_or_fuse_trace(
        &self,
        datapath: &DatapathModel,
        body: &[Instruction],
    ) -> Option<Arc<EnsembleTrace>> {
        let g = datapath.geometry();
        let words: Vec<u32> = body.iter().map(Instruction::encode).collect();
        let key = (datapath.recipe_ctx(), words, g.lanes_per_vrf, g.regs_per_vrf);
        if let Some(trace) = self.traces.read().get(&key) {
            return Some(Arc::clone(trace));
        }
        // Fuse outside the write lock; a racing thread may duplicate the
        // work, but the first insert wins and both get the same entry.
        let trace = Arc::new(pum_backend::fuse_ensemble_with(datapath, body, |dp, instr| {
            let (entry, _) = self.build_compiled(dp, instr, false)?;
            Some((entry.recipe, entry.compiled))
        })?);
        let mut traces = self.traces.write();
        Some(Arc::clone(traces.entry(key).or_insert(trace)))
    }

    /// Snapshot of the pool's lookup counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            opt: *self.opt.read(),
        }
    }

    /// Installs an explicit template for `(ctx, instr)`, replacing any
    /// memoized one and dropping stale compiled forms derived from it.
    ///
    /// This is the conformance harness's fault-injection hook: preloading a
    /// deliberately corrupted recipe (built with
    /// [`pum_backend::Recipe::from_ops`]) makes every pooled MPU execute
    /// the corrupted sequence on both the interpreted and compiled paths,
    /// which the differential suite must then catch. Preload before any
    /// simulation uses the pool.
    pub fn preload(&self, ctx: RecipeCtx, instr: &Instruction, recipe: Recipe) {
        let word = instr.encode();
        self.templates.write().insert((ctx, word), Arc::new(recipe));
        self.compiled.write().retain(|&(c, w, _, _), _| !(c == ctx && w == word));
        // Fused traces bake the instruction's compiled ops in; drop any
        // derived from the replaced template.
        self.traces.write().retain(|(c, words, _, _), _| !(*c == ctx && words.contains(&word)));
    }

    /// Number of memoized templates.
    pub fn len(&self) -> usize {
        self.templates.read().len()
    }

    /// True if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.templates.read().is_empty()
    }
}

/// Outcome of a [`RecipeCache::lookup`]: the architectural (per-MPU table)
/// hit flag plus, when a miss consulted a shared [`RecipePool`], whether
/// the pool already held the template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LookupOutcome {
    /// Per-MPU table hit (the flag [`RecipeCache::lookup`] reports).
    pub hit: bool,
    /// Pool-template outcome; `None` on a hit or without a pool.
    pub pool: Option<bool>,
}

/// The architectural slice of a [`RecipeCache`] captured by
/// [`RecipeCache::checkpoint`]: template entries with their LRU stamps,
/// the synthesis context, and the hit/miss/clock counters. Part of an
/// [`crate::MpuCheckpoint`] — resuming with a cold cache would change the
/// miss stream and break byte-identical resume.
#[derive(Debug, Clone)]
pub(crate) struct CacheCheckpoint {
    entries: Vec<(u32, CachedRecipe, u64)>,
    ctx: Option<RecipeCtx>,
    opt: OptStats,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A bounded LRU cache of synthesized recipes (with their compiled forms).
#[derive(Debug)]
pub struct RecipeCache {
    capacity: usize,
    entries: HashMap<u32, (CachedRecipe, u64)>,
    pool: Option<Arc<RecipePool>>,
    /// Fused ensemble traces keyed by the encoded body. Host-side only —
    /// distinct from the architectural template table above: trace lookups
    /// never advance the LRU clock or the hit/miss counters, exactly as a
    /// shared [`RecipePool`] never does. Bodies per program are few, so
    /// the memo is unbounded. `None` memoizes a body that failed to fuse.
    traces: HashMap<Vec<u32>, Option<Arc<EnsembleTrace>>>,
    /// Recipes synthesized as a by-product of pool-less fusion, kept so the
    /// trace tier's replay probes (and later architectural misses) reuse
    /// them instead of lowering the instruction a second time. Like a
    /// shared [`RecipePool`], this is purely a host-side memo: miss
    /// accounting and the LRU clock are unchanged.
    synth_memo: HashMap<u32, CachedRecipe>,
    /// The synthesis context (logic family, temp registers, optimizer
    /// config) every cached entry was lowered under. The per-MPU table is
    /// keyed by instruction word alone, so if the owning datapath's
    /// context ever changes — e.g. the recipe optimizer is toggled against
    /// a warm cache — the whole table (and both host-side memos) is
    /// flushed rather than serving templates from the stale context.
    ctx: Option<RecipeCtx>,
    /// Optimizer attribution for pool-less synthesis performed by this
    /// cache (pooled synthesis accumulates in [`PoolStats::opt`] instead).
    opt: OptStats,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl RecipeCache {
    /// Creates a cache with room for `capacity` recipes (Table III: 1024).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            pool: None,
            traces: HashMap::new(),
            synth_memo: HashMap::new(),
            ctx: None,
            opt: OptStats::default(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Attaches a shared synthesis pool; misses consult it before lowering
    /// the instruction from scratch. Purely a host-side optimization —
    /// hit/miss accounting is unchanged.
    pub fn set_pool(&mut self, pool: Arc<RecipePool>) {
        self.pool = Some(pool);
    }

    /// Looks up (or synthesizes, compiles, and caches) the recipe for
    /// `instr`, reporting whether it was a hit. Returns `None` for
    /// control-path instructions that have no recipe.
    pub fn lookup(
        &mut self,
        datapath: &DatapathModel,
        instr: &Instruction,
    ) -> Option<(CachedRecipe, bool)> {
        let (entry, outcome) = self.lookup_traced(datapath, instr)?;
        Some((entry, outcome.hit))
    }

    /// [`Self::lookup`] plus, on a per-MPU miss that consulted a shared
    /// [`RecipePool`], whether the pool already had the template. Used by
    /// the tracing layer; architectural accounting is identical.
    /// Flushes every cached entry and host-side memo if `datapath`'s
    /// synthesis context differs from the one the cache was warmed under.
    /// Hit/miss counters and the LRU clock keep running — the flush models
    /// a table invalidation, not a fresh table.
    fn refresh_ctx(&mut self, datapath: &DatapathModel) {
        let ctx = datapath.recipe_ctx();
        if self.ctx != Some(ctx) {
            if self.ctx.is_some() {
                self.entries.clear();
                self.traces.clear();
                self.synth_memo.clear();
            }
            self.ctx = Some(ctx);
        }
    }

    pub(crate) fn lookup_traced(
        &mut self,
        datapath: &DatapathModel,
        instr: &Instruction,
    ) -> Option<(CachedRecipe, LookupOutcome)> {
        self.refresh_ctx(datapath);
        let key = instr.encode();
        if let Some((entry, stamp)) = self.entries.get_mut(&key) {
            // The LRU clock only advances on lookups that actually touch
            // the table; recipe-less control instructions don't age entries.
            self.tick += 1;
            *stamp = self.tick;
            self.hits += 1;
            return Some((entry.clone(), LookupOutcome { hit: true, pool: None }));
        }
        let (entry, pool) = match &self.pool {
            Some(pool) => {
                let (entry, template_hit) = pool.get_or_build_compiled_inner(datapath, instr)?;
                (entry, Some(template_hit))
            }
            None => match self.synth_memo.get(&key) {
                Some(entry) => (entry.clone(), None),
                None => {
                    let (recipe, opt) = datapath.recipe_with_stats(instr)?;
                    self.opt.merge(&opt);
                    let recipe = Arc::new(recipe);
                    let g = datapath.geometry();
                    let compiled = Arc::new(recipe.compile(g.lanes_per_vrf, g.regs_per_vrf));
                    (CachedRecipe { recipe, compiled }, None)
                }
            },
        };
        self.tick += 1;
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict the least recently used template.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, stamp))| *stamp) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (entry.clone(), self.tick));
        Some((entry, LookupOutcome { hit: false, pool }))
    }

    /// Returns the fused [`EnsembleTrace`] for a straight-line ensemble
    /// body, fusing (through the shared pool when attached) and memoizing
    /// it on first use; `None` when the body cannot fuse. Host-side only:
    /// never touches the architectural hit/miss/LRU state — the trace
    /// tier still performs the real per-instruction [`Self::lookup_traced`]
    /// probes while replaying, so template-table statistics are
    /// bit-identical across execution tiers.
    pub(crate) fn lookup_trace(
        &mut self,
        datapath: &DatapathModel,
        body: &[Instruction],
    ) -> Option<Arc<EnsembleTrace>> {
        self.refresh_ctx(datapath);
        let words: Vec<u32> = body.iter().map(Instruction::encode).collect();
        if let Some(memo) = self.traces.get(&words) {
            return memo.clone();
        }
        let trace = match &self.pool {
            Some(pool) => pool.get_or_fuse_trace(datapath, body),
            None => {
                let synth_memo = &mut self.synth_memo;
                let opt_stats = &mut self.opt;
                pum_backend::fuse_ensemble_with(datapath, body, |dp, instr| {
                    let entry = match synth_memo.entry(instr.encode()) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(v) => {
                            let (recipe, opt) = dp.recipe_with_stats(instr)?;
                            opt_stats.merge(&opt);
                            let recipe = Arc::new(recipe);
                            let g = dp.geometry();
                            let compiled =
                                Arc::new(recipe.compile(g.lanes_per_vrf, g.regs_per_vrf));
                            v.insert(CachedRecipe { recipe, compiled })
                        }
                    };
                    Some((Arc::clone(&entry.recipe), Arc::clone(&entry.compiled)))
                })
                .map(Arc::new)
            }
        };
        self.traces.insert(words, trace.clone());
        trace
    }

    /// Optimizer attribution for pool-less synthesis this cache performed.
    /// Zero whenever a shared pool is attached — pooled synthesis reports
    /// through [`RecipePool::stats`] instead.
    pub fn opt_stats(&self) -> OptStats {
        self.opt
    }

    /// Snapshots the *architectural* cache state: the template table with
    /// its LRU stamps, the synthesis context, and the hit/miss/clock
    /// counters. The host-side memos (`traces`, `synth_memo`) are
    /// deliberately excluded — they are invisible to the modeled hardware
    /// and rebuild on demand — and so is the pool attachment, which stays
    /// with the machine, not the checkpoint. Entries are `Arc`-shared, so
    /// a snapshot is cheap.
    pub(crate) fn checkpoint(&self) -> CacheCheckpoint {
        CacheCheckpoint {
            entries: self.entries.iter().map(|(&k, (e, s))| (k, e.clone(), *s)).collect(),
            ctx: self.ctx,
            opt: self.opt,
            tick: self.tick,
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Restores the architectural state captured by [`Self::checkpoint`].
    /// A machine resumed from a checkpoint must replay the same hit/miss
    /// stream (and thus the same miss-penalty cycles) an uninterrupted run
    /// would have seen, so the table contents, LRU stamps, and counters
    /// all come back; capacity and any attached pool are left as-is.
    pub(crate) fn restore_checkpoint(&mut self, cp: &CacheCheckpoint) {
        self.entries = cp.entries.iter().map(|(k, e, s)| (*k, (e.clone(), *s))).collect();
        if self.ctx != cp.ctx {
            // Host-side memos warmed under a different synthesis context
            // must not survive the restore.
            self.traces.clear();
            self.synth_memo.clear();
        }
        self.ctx = cp.ctx;
        self.opt = cp.opt;
        self.tick = cp.tick;
        self.hits = cp.hits;
        self.misses = cp.misses;
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lookups that touched the table (`hits + misses`); recipe-less
    /// control instructions are excluded.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpu_isa::{BinaryOp, RegId};

    fn add(rd: u16) -> Instruction {
        Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(rd) }
    }

    #[test]
    fn second_lookup_hits() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(!hit);
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(hit);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn different_operands_are_different_templates() {
        // The cached entry includes filled-in operands, so ADD r0 r1 r2 and
        // ADD r0 r1 r3 occupy separate slots.
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        cache.lookup(&dp, &add(2)).unwrap();
        let (_, hit) = cache.lookup(&dp, &add(3)).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(2);
        cache.lookup(&dp, &add(2)).unwrap();
        cache.lookup(&dp, &add(3)).unwrap();
        cache.lookup(&dp, &add(2)).unwrap(); // refresh r2
        cache.lookup(&dp, &add(4)).unwrap(); // evicts r3
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(hit, "recently used entry survived");
        let (_, hit) = cache.lookup(&dp, &add(3)).unwrap();
        assert!(!hit, "LRU entry was evicted");
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(2);
        for rd in 2..8 {
            cache.lookup(&dp, &add(rd)).unwrap();
            assert!(cache.len() <= 2, "len {} exceeds capacity", cache.len());
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 6);
    }

    #[test]
    fn capacity_one_thrashes_but_stays_correct() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(1);
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(!hit);
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(hit, "sole entry is retained");
        let (_, hit) = cache.lookup(&dp, &add(3)).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 1, "capacity-1 cache holds exactly one entry");
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(!hit, "previous entry was evicted by the new one");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn repeated_key_refreshes_without_growth() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        for _ in 0..10 {
            cache.lookup(&dp, &add(2)).unwrap();
        }
        assert_eq!(cache.len(), 1, "repeated key must not duplicate entries");
        assert_eq!(cache.hits(), 9);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn tick_counts_only_real_lookups() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        cache.lookup(&dp, &add(2)).unwrap();
        // Control instructions have no recipe and must not advance the
        // LRU clock (they would otherwise skew recency stamps).
        assert!(cache.lookup(&dp, &Instruction::Nop).is_none());
        assert!(cache.lookup(&dp, &Instruction::Nop).is_none());
        cache.lookup(&dp, &add(2)).unwrap();
        assert_eq!(cache.tick(), cache.hits() + cache.misses());
        assert_eq!(cache.tick(), 2);
    }

    #[test]
    fn control_instructions_have_no_recipe() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(2);
        assert!(cache.lookup(&dp, &Instruction::Nop).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn pool_is_shared_and_transparent() {
        let dp = DatapathModel::racer();
        let pool = Arc::new(RecipePool::new());

        let mut pooled = RecipeCache::new(4);
        pooled.set_pool(Arc::clone(&pool));
        let mut plain = RecipeCache::new(4);

        let (pr, ph) = pooled.lookup(&dp, &add(2)).unwrap();
        let (sr, sh) = plain.lookup(&dp, &add(2)).unwrap();
        assert_eq!(*pr.recipe, *sr.recipe, "pooled synthesis yields the same recipe");
        assert_eq!(ph, sh, "pool must not alter hit/miss behavior");
        assert_eq!(pool.len(), 1);

        // A second cache on the same pool reuses the memo but still counts
        // its own (hardware) miss.
        let mut second = RecipeCache::new(4);
        second.set_pool(Arc::clone(&pool));
        let (_, hit) = second.lookup(&dp, &add(2)).unwrap();
        assert!(!hit, "per-MPU miss is charged even on a pool hit");
        assert_eq!(pool.len(), 1, "no duplicate pool entries");
    }

    #[test]
    fn compiled_forms_are_pooled_per_geometry() {
        let dp = DatapathModel::racer();
        let pool = Arc::new(RecipePool::new());
        let a = pool.get_or_build_compiled(&dp, &add(2)).unwrap();
        let b = pool.get_or_build_compiled(&dp, &add(2)).unwrap();
        assert!(Arc::ptr_eq(&a.compiled, &b.compiled), "compiled memo is shared");
        let g = dp.geometry();
        assert_eq!(a.compiled.lanes(), g.lanes_per_vrf);
        assert_eq!(a.compiled.regs(), g.regs_per_vrf);
        assert_eq!(a.compiled.len(), a.recipe.len());
    }

    #[test]
    fn pool_counters_track_memo_traffic() {
        let dp = DatapathModel::racer();
        let pool = Arc::new(RecipePool::new());
        assert_eq!(pool.stats(), PoolStats::default());

        pool.get_or_build(&dp, &add(2)).unwrap();
        pool.get_or_build(&dp, &add(2)).unwrap();
        pool.get_or_build_compiled(&dp, &add(3)).unwrap();
        // Control instructions never reach the memo and are not counted.
        assert!(pool.get_or_build(&dp, &Instruction::Nop).is_none());

        let s = pool.stats();
        assert_eq!(s, PoolStats { lookups: 3, hits: 1, misses: 2, opt: s.opt });
        assert_eq!(s.hits + s.misses, s.lookups);
        // Each miss paid one optimizer pass; RACER ADD is known to shrink.
        assert!(s.opt.saved_uops() > 0, "pool misses accumulate optimizer savings");
        assert!(s.opt.total_fires() > 0, "per-rule fire counts accumulate");
    }

    #[test]
    fn opt_config_is_part_of_the_pool_memo_key() {
        // Flipping the optimizer against a warm pool must synthesize a
        // fresh (unoptimized) template, never serve the optimized one.
        let on = DatapathModel::racer();
        let off = DatapathModel::racer().with_opt_config(pum_backend::OptConfig::disabled());
        let pool = Arc::new(RecipePool::new());

        let optimized = pool.get_or_build(&on, &add(2)).unwrap();
        let plain = pool.get_or_build(&off, &add(2)).unwrap();
        assert_eq!(pool.len(), 2, "distinct opt configs occupy distinct pool slots");
        assert_eq!(pool.stats().misses, 2, "the flipped config cannot hit the warm memo");
        assert!(
            optimized.len() < plain.len(),
            "optimized template ({}) should be shorter than unoptimized ({})",
            optimized.len(),
            plain.len()
        );
        assert_eq!(plain.saved_uops(), 0, "disabled optimizer records no savings");
    }

    #[test]
    fn cache_flushes_when_synthesis_context_changes() {
        // The per-MPU table is keyed by instruction word alone, so toggling
        // the optimizer against a warm cache must invalidate it.
        let on = DatapathModel::racer();
        let off = DatapathModel::racer().with_opt_config(pum_backend::OptConfig::disabled());
        let mut cache = RecipeCache::new(4);

        let (warm, hit) = cache.lookup(&on, &add(2)).unwrap();
        assert!(!hit);
        let (_, hit) = cache.lookup(&on, &add(2)).unwrap();
        assert!(hit, "same context keeps hitting");

        let (fresh, hit) = cache.lookup(&off, &add(2)).unwrap();
        assert!(!hit, "context change flushes the warm entry");
        assert!(
            warm.recipe.len() < fresh.recipe.len(),
            "the flushed lookup resynthesizes under the new context"
        );

        let (back, hit) = cache.lookup(&on, &add(2)).unwrap();
        assert!(!hit, "flipping back flushes again");
        assert_eq!(back.recipe.len(), warm.recipe.len());
    }

    #[test]
    fn pool_less_cache_accumulates_opt_stats() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        cache.lookup(&dp, &add(2)).unwrap();
        cache.lookup(&dp, &add(2)).unwrap();
        let s = cache.opt_stats();
        assert!(s.saved_uops() > 0, "pool-less synthesis reports optimizer savings");

        // With a pool attached, attribution flows to the pool instead.
        let pool = Arc::new(RecipePool::new());
        let mut pooled = RecipeCache::new(4);
        pooled.set_pool(Arc::clone(&pool));
        pooled.lookup(&dp, &add(3)).unwrap();
        assert_eq!(pooled.opt_stats(), OptStats::default());
        assert!(pool.stats().opt.saved_uops() > 0);
    }

    #[test]
    fn traced_lookup_reports_pool_outcome() {
        let dp = DatapathModel::racer();
        let pool = Arc::new(RecipePool::new());
        let mut first = RecipeCache::new(4);
        first.set_pool(Arc::clone(&pool));

        let (_, o) = first.lookup_traced(&dp, &add(2)).unwrap();
        assert_eq!(o, LookupOutcome { hit: false, pool: Some(false) });
        let (_, o) = first.lookup_traced(&dp, &add(2)).unwrap();
        assert_eq!(o, LookupOutcome { hit: true, pool: None });

        // A second MPU on the same pool misses locally but hits the memo.
        let mut second = RecipeCache::new(4);
        second.set_pool(Arc::clone(&pool));
        let (_, o) = second.lookup_traced(&dp, &add(2)).unwrap();
        assert_eq!(o, LookupOutcome { hit: false, pool: Some(true) });

        // Without a pool there is no pool outcome to report.
        let mut plain = RecipeCache::new(4);
        let (_, o) = plain.lookup_traced(&dp, &add(2)).unwrap();
        assert_eq!(o, LookupOutcome { hit: false, pool: None });
    }

    #[test]
    fn pool_is_safe_across_threads() {
        let dp = DatapathModel::racer();
        let pool = Arc::new(RecipePool::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let dp = dp.clone();
                s.spawn(move || {
                    let mut cache = RecipeCache::new(8);
                    cache.set_pool(pool);
                    for rd in 2..6 {
                        cache.lookup(&dp, &add(rd)).unwrap();
                    }
                });
            }
        });
        assert_eq!(pool.len(), 4, "one entry per distinct instruction");
        let s = pool.stats();
        assert_eq!(s.lookups, 16, "4 threads x 4 instructions");
        assert_eq!(s.hits + s.misses, s.lookups, "counters are conserved under races");
        assert!(s.misses >= 4, "each distinct template was synthesized at least once");
    }
}
