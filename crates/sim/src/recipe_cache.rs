//! The I2M decoder's template lookup: a recipe cache (paper Fig. 9).
//!
//! The recipe table can only hold a few thousand micro-op templates, so the
//! control path dynamically caches recipes as instructions are issued. We
//! model a capacity-bounded cache keyed by the encoded instruction word
//! (operands included — the template filler's work is folded into the
//! cached entry), with LRU replacement and hit/miss counters. Baseline
//! datapaths decode every instruction from scratch.

use mpu_isa::Instruction;
use pum_backend::{DatapathModel, Recipe};
use std::collections::HashMap;
use std::rc::Rc;

/// A bounded LRU cache of synthesized recipes.
#[derive(Debug)]
pub struct RecipeCache {
    capacity: usize,
    entries: HashMap<u32, (Rc<Recipe>, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl RecipeCache {
    /// Creates a cache with room for `capacity` recipes (Table III: 1024).
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), entries: HashMap::new(), tick: 0, hits: 0, misses: 0 }
    }

    /// Looks up (or synthesizes and caches) the recipe for `instr`,
    /// reporting whether it was a hit. Returns `None` for control-path
    /// instructions that have no recipe.
    pub fn lookup(
        &mut self,
        datapath: &DatapathModel,
        instr: &Instruction,
    ) -> Option<(Rc<Recipe>, bool)> {
        self.tick += 1;
        let key = instr.encode();
        if let Some((recipe, stamp)) = self.entries.get_mut(&key) {
            *stamp = self.tick;
            self.hits += 1;
            return Some((Rc::clone(recipe), true));
        }
        let recipe = Rc::new(datapath.recipe(instr)?);
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict the least recently used template.
            if let Some((&victim, _)) =
                self.entries.iter().min_by_key(|(_, (_, stamp))| *stamp)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (Rc::clone(&recipe), self.tick));
        Some((recipe, false))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpu_isa::{BinaryOp, RegId};

    fn add(rd: u16) -> Instruction {
        Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(rd) }
    }

    #[test]
    fn second_lookup_hits() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(!hit);
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(hit);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn different_operands_are_different_templates() {
        // The cached entry includes filled-in operands, so ADD r0 r1 r2 and
        // ADD r0 r1 r3 occupy separate slots.
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(4);
        cache.lookup(&dp, &add(2)).unwrap();
        let (_, hit) = cache.lookup(&dp, &add(3)).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(2);
        cache.lookup(&dp, &add(2)).unwrap();
        cache.lookup(&dp, &add(3)).unwrap();
        cache.lookup(&dp, &add(2)).unwrap(); // refresh r2
        cache.lookup(&dp, &add(4)).unwrap(); // evicts r3
        let (_, hit) = cache.lookup(&dp, &add(2)).unwrap();
        assert!(hit, "recently used entry survived");
        let (_, hit) = cache.lookup(&dp, &add(3)).unwrap();
        assert!(!hit, "LRU entry was evicted");
    }

    #[test]
    fn control_instructions_have_no_recipe() {
        let dp = DatapathModel::racer();
        let mut cache = RecipeCache::new(2);
        assert!(cache.lookup(&dp, &Instruction::Nop).is_none());
        assert!(cache.is_empty());
    }
}
