//! Multi-MPU system simulation: per-MPU programs, `SEND`/`RECV` message
//! passing over the mesh NoC, and deadlock-free rendezvous scheduling.
//!
//! The paper avoids deadlock by forcing lower-ID MPUs to `SEND` first
//! (§V-B); our driver executes MPUs in ID order, re-running any that were
//! blocked on `RECV` whenever new messages arrive, and reports a deadlock
//! error if no progress is possible.

use crate::config::SimConfig;
use crate::machine::{Message, Mpu, SimError, StepEvent};
use crate::noc::MeshNoc;
use crate::stats::Stats;
use crate::trace::{EventLog, TraceKind};
use mpu_isa::{MpuId, Program};
use pum_backend::fault::{rate_to_threshold, FaultPrng};

/// Seeded drop/corruption state for the NoC (its own PRNG stream, derived
/// from the chip's fault seed so it is independent of every VRF's).
#[derive(Debug)]
struct NocFaultState {
    prng: FaultPrng,
    drop_threshold: u64,
    corrupt_threshold: u64,
    retry: bool,
    max_retries: u32,
}

/// A chip-level simulation of multiple MPUs running coupled programs.
///
/// # Example
///
/// ```
/// use mastodon::{SimConfig, System};
/// use mpu_isa::Program;
/// use pum_backend::DatapathKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut system = System::new(SimConfig::mpu(DatapathKind::Racer), 2);
/// system.set_program(0, Program::parse_asm(
///     "SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE")?);
/// system.set_program(1, Program::parse_asm("RECV mpu0")?);
/// system.mpu_mut(0).write_register(0, 0, 0, &vec![99; 64])?;
/// let stats = system.run()?;
/// assert_eq!(system.mpu_mut(1).read_register(0, 0, 0)?[0], 99);
/// assert!(stats.messages_sent == 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct System {
    mpus: Vec<Mpu>,
    programs: Vec<Program>,
    noc: MeshNoc,
    noc_faults: Option<NocFaultState>,
}

/// A deadlock or per-MPU failure in a system run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// One MPU's execution failed.
    Mpu {
        /// Which MPU failed.
        id: u16,
        /// The underlying error.
        error: SimError,
    },
    /// No MPU can make progress (all blocked on `RECV`).
    Deadlock {
        /// IDs of the blocked MPUs and the sender each is waiting on.
        waiting: Vec<(u16, u16)>,
    },
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Mpu { id, error } => write!(f, "MPU {id}: {error}"),
            SystemError::Deadlock { waiting } => {
                write!(f, "deadlock: blocked RECVs {waiting:?}")
            }
        }
    }
}

impl std::error::Error for SystemError {}

impl System {
    /// Creates a system of `count` MPUs sharing one configuration.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the chip's MPU budget.
    pub fn new(config: SimConfig, count: usize) -> Self {
        assert!(count > 0, "a system needs at least one MPU");
        let budget = config.datapath.geometry().mpus_per_chip;
        assert!(count <= budget, "{count} MPUs exceed the iso-area chip budget of {budget}");
        let noc = MeshNoc::new(count, config.noc);
        let noc_faults = config.fault.noc_seed().map(|seed| NocFaultState {
            prng: FaultPrng::new(seed),
            drop_threshold: rate_to_threshold(config.fault.noc_drop_rate),
            corrupt_threshold: rate_to_threshold(config.fault.noc_corruption_rate),
            retry: config.recovery.noc_retry,
            max_retries: config.recovery.max_retries,
        });
        let mpus = (0..count).map(|i| Mpu::new(config.clone(), MpuId(i as u16))).collect();
        Self { mpus, programs: vec![Program::new(); count], noc, noc_faults }
    }

    /// Like [`System::new`], but every MPU shares `pool` for host-side
    /// recipe synthesis (statistics are unaffected; see
    /// [`crate::RecipePool`]).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the chip's MPU budget.
    pub fn new_pooled(
        config: SimConfig,
        count: usize,
        pool: &std::sync::Arc<crate::RecipePool>,
    ) -> Self {
        let mut system = Self::new(config, count);
        for mpu in &mut system.mpus {
            mpu.set_recipe_pool(std::sync::Arc::clone(pool));
        }
        system
    }

    /// Number of MPUs.
    pub fn len(&self) -> usize {
        self.mpus.len()
    }

    /// True if the system has no MPUs (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.mpus.is_empty()
    }

    /// Assigns the program MPU `id` will run.
    pub fn set_program(&mut self, id: usize, program: Program) {
        self.programs[id] = program;
    }

    /// Mutable access to one MPU (data setup / result readout).
    pub fn mpu_mut(&mut self, id: usize) -> &mut Mpu {
        &mut self.mpus[id]
    }

    /// Arms every MPU with a shared handle to `log`: the log receives one
    /// [`crate::TraceEvent`] per stats charge across the whole system —
    /// including NoC message traversals, which are attributed to the
    /// receiving MPU — in scheduler order. Tracing is observational only;
    /// see [`crate::trace`] for the contract.
    pub fn set_event_log(&mut self, log: &EventLog) {
        for mpu in &mut self.mpus {
            mpu.set_tracer(Box::new(log.clone()));
        }
    }

    /// Runs all programs to completion.
    ///
    /// Elapsed time is the maximum across MPUs (they run in parallel);
    /// work counters and energy sum.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Deadlock`] if every unfinished MPU is blocked
    /// on a `RECV` with no matching message in flight.
    pub fn run(&mut self) -> Result<Stats, SystemError> {
        let n = self.mpus.len();
        let mut done = vec![false; n];
        let mut blocked: Vec<Option<u16>> = vec![None; n];
        for mpu in &mut self.mpus {
            mpu.reset_pc();
        }
        loop {
            let mut progressed = false;
            for i in 0..n {
                if done[i] {
                    continue;
                }
                // Disjoint field borrows: stepping MPU i reads only its own
                // program, so no clone per scheduler iteration.
                let event = self.mpus[i]
                    .step(&self.programs[i])
                    .map_err(|error| SystemError::Mpu { id: i as u16, error })?;
                match event {
                    StepEvent::Completed => {
                        done[i] = true;
                        blocked[i] = None;
                        progressed = true;
                    }
                    StepEvent::Sent(msg) => {
                        self.route(*msg);
                        blocked[i] = None;
                        progressed = true;
                    }
                    StepEvent::AwaitingRecv { src } => {
                        // Progress only counts if this is a new blockage.
                        if blocked[i] != Some(src.0) {
                            progressed = true;
                        }
                        blocked[i] = Some(src.0);
                    }
                    StepEvent::Preempted => {
                        // The system loop has no resume surface: a preempt
                        // request against a member MPU surfaces as a
                        // cancellation of the whole collective run.
                        let line = self.mpus[i].pc();
                        return Err(SystemError::Mpu {
                            id: i as u16,
                            error: SimError::Cancelled { line },
                        });
                    }
                }
            }
            if done.iter().all(|&d| d) {
                break;
            }
            if !progressed {
                // A blocked RECV whose sender already finished can never be
                // served (the message was lost or never sent): under a
                // recv-timeout policy the lowest-ID such victim burns its
                // cycle budget and surfaces a timeout. Cyclic waits among
                // live MPUs remain a deadlock — every member could still be
                // served, so no timeout can soundly pick a victim.
                for i in 0..n {
                    if done[i] {
                        continue;
                    }
                    let (Some(from), Some(budget)) =
                        (blocked[i], self.mpus[i].config().recovery.recv_timeout)
                    else {
                        continue;
                    };
                    let sender_finished = (from as usize) >= n || done[from as usize];
                    if sender_finished {
                        let waited = budget;
                        let local = self.mpus[i].local_cycles();
                        self.mpus[i].advance_to(local + waited);
                        return Err(SystemError::Mpu {
                            id: i as u16,
                            error: SimError::RecvTimeout { mpu: i as u16, from, waited },
                        });
                    }
                }
                let waiting = (0..n)
                    .filter(|&i| !done[i])
                    .map(|i| (i as u16, blocked[i].unwrap_or(u16::MAX)))
                    .collect();
                return Err(SystemError::Deadlock { waiting });
            }
        }
        let mut total = Stats::default();
        for mpu in &mut self.mpus {
            total.merge_parallel(&mpu.finish());
        }
        Ok(total)
    }

    /// Routes a message through the NoC to its destination's inbox,
    /// applying seeded drop/corruption faults in flight. Under the
    /// `noc_retry` policy a lost or corrupted traversal is detected
    /// (timeout / checksum) and retransmitted — costing one extra
    /// traversal's latency and energy each time — up to the retry budget;
    /// without it, drops lose the message and corruptions deliver a
    /// payload with one bit flipped.
    fn route(&mut self, msg: Message) {
        let src = msg.src.index();
        let dst = msg.dst.index();
        let bytes = msg.bytes;
        let latency = self.noc.latency_cycles(src, dst, bytes);
        let energy = self.noc.energy_pj(src, dst, bytes);
        let mut msg = msg;
        let mut traversals = 1u64;
        // Fault-counter mirror for the (single, aggregated) Noc event.
        let mut delta = Stats::default();
        if let Some(f) = self.noc_faults.as_mut() {
            let stats = self.mpus[dst].stats_mut();
            // Drop faults: each traversal can lose the message.
            let mut retransmits = 0u32;
            while f.drop_threshold > 0 && f.prng.next_draw() < f.drop_threshold {
                stats.faults.messages_dropped += 1;
                delta.faults.messages_dropped += 1;
                if !f.retry || retransmits >= f.max_retries {
                    // Lost for good: the wire time was still spent.
                    let wire_cycles = traversals * latency;
                    let wire_pj = traversals as f64 * energy;
                    stats.transfer_cycles += wire_cycles;
                    stats.energy.transfer_pj += wire_pj;
                    delta.transfer_cycles = wire_cycles;
                    delta.energy.transfer_pj = wire_pj;
                    let kind = TraceKind::Noc {
                        src: src as u16,
                        dst: dst as u16,
                        bytes,
                        delivered: false,
                    };
                    self.mpus[dst].trace_system(kind, delta);
                    return;
                }
                retransmits += 1;
                traversals += 1;
                stats.faults.retransmissions += 1;
                delta.faults.retransmissions += 1;
            }
            // Corruption faults: one bit of one payload word flips.
            if f.corrupt_threshold > 0 && f.prng.next_draw() < f.corrupt_threshold {
                if f.retry {
                    // Checksum catches it; one clean retransmission (the
                    // seeded stream moves on, so the retry delivers clean).
                    traversals += 1;
                    stats.faults.retransmissions += 1;
                    delta.faults.retransmissions += 1;
                } else if !msg.writes.is_empty() {
                    let wi = (f.prng.next_draw() % msg.writes.len() as u64) as usize;
                    let values = &mut msg.writes[wi].values;
                    if !values.is_empty() {
                        let vi = (f.prng.next_draw() % values.len() as u64) as usize;
                        let bit = f.prng.next_draw() % 64;
                        values[vi] ^= 1 << bit;
                        stats.faults.messages_corrupted += 1;
                        delta.faults.messages_corrupted += 1;
                    }
                }
            }
        }
        let arrival = msg.departure_cycle + traversals * latency;
        let dst_mpu = &mut self.mpus[dst];
        dst_mpu.deliver(msg, arrival);
        // Receiver pays the wire time & energy (avoids double counting).
        let wire_cycles = traversals * latency;
        let wire_pj = traversals as f64 * energy;
        let s = dst_mpu.stats_mut();
        s.transfer_cycles += wire_cycles;
        s.energy.transfer_pj += wire_pj;
        delta.transfer_cycles = wire_cycles;
        delta.energy.transfer_pj = wire_pj;
        let kind = TraceKind::Noc { src: src as u16, dst: dst as u16, bytes, delivered: true };
        dst_mpu.trace_system(kind, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pum_backend::DatapathKind;

    fn asm(text: &str) -> Program {
        Program::parse_asm(text).expect("valid asm")
    }

    fn two_mpu_system() -> System {
        System::new(SimConfig::mpu(DatapathKind::Racer), 2)
    }

    #[test]
    fn point_to_point_message_delivers_data() {
        let mut sys = two_mpu_system();
        sys.set_program(0, asm("SEND mpu1\nMOVE h0 h2\nMEMCPY v0 r0 v1 r3\nMOVE_DONE\nSEND_DONE"));
        sys.set_program(1, asm("RECV mpu0"));
        sys.mpu_mut(0).write_register(0, 0, 0, &vec![123; 64]).unwrap();
        let stats = sys.run().unwrap();
        assert_eq!(sys.mpu_mut(1).read_register(2, 1, 3).unwrap()[0], 123);
        assert_eq!(stats.messages_sent, 1);
        assert!(stats.noc_bytes >= 64 * 8);
        assert!(stats.transfer_cycles > 0);
    }

    #[test]
    fn receiver_computes_on_received_data() {
        let mut sys = two_mpu_system();
        sys.set_program(0, asm("SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE"));
        sys.set_program(1, asm("RECV mpu0\nCOMPUTE h0 v0\nINC r0 r1\nCOMPUTE_DONE"));
        sys.mpu_mut(0).write_register(0, 0, 0, &vec![41; 64]).unwrap();
        sys.run().unwrap();
        assert_eq!(sys.mpu_mut(1).read_register(0, 0, 1).unwrap()[0], 42);
    }

    #[test]
    fn lower_id_sends_first_avoids_deadlock() {
        // Exchange: 0 sends to 1 and receives from 1; 1 receives then sends.
        let mut sys = two_mpu_system();
        sys.set_program(
            0,
            asm("SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE\nRECV mpu1"),
        );
        sys.set_program(
            1,
            asm("RECV mpu0\nSEND mpu0\nMOVE h1 h1\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE"),
        );
        sys.mpu_mut(0).write_register(0, 0, 0, &vec![7; 64]).unwrap();
        sys.mpu_mut(1).write_register(1, 0, 0, &vec![9; 64]).unwrap();
        sys.run().unwrap();
        assert_eq!(sys.mpu_mut(1).read_register(0, 0, 0).unwrap()[0], 7);
        assert_eq!(sys.mpu_mut(0).read_register(1, 0, 0).unwrap()[0], 9);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut sys = two_mpu_system();
        sys.set_program(0, asm("RECV mpu1"));
        sys.set_program(1, asm("RECV mpu0"));
        let err = sys.run().unwrap_err();
        assert!(matches!(err, SystemError::Deadlock { .. }));
    }

    #[test]
    fn cyclic_recv_deadlock_reports_complete_waiting_list() {
        // 0 waits on 1, 1 waits on 2, 2 waits on 0: a RECV cycle no
        // scheduler order can break. The report must name every blocked
        // MPU with the sender it waits on, in MPU-ID order.
        let mut sys = System::new(SimConfig::mpu(DatapathKind::Racer), 3);
        sys.set_program(0, asm("RECV mpu1"));
        sys.set_program(1, asm("RECV mpu2"));
        sys.set_program(2, asm("RECV mpu0"));
        let err = sys.run().unwrap_err();
        assert_eq!(err, SystemError::Deadlock { waiting: vec![(0, 1), (1, 2), (2, 0)] });
        // Determinism: a fresh identical system reports the same list.
        let mut again = System::new(SimConfig::mpu(DatapathKind::Racer), 3);
        again.set_program(0, asm("RECV mpu1"));
        again.set_program(1, asm("RECV mpu2"));
        again.set_program(2, asm("RECV mpu0"));
        assert_eq!(again.run().unwrap_err(), err);
    }

    #[test]
    fn blocked_recv_is_restepped_and_delivers_late_message_exactly_once() {
        // MPU 0 blocks on RECV immediately; MPU 1 (stepped after it) does
        // compute work before sending, so the message arrives only after
        // MPU 0 has already reported AwaitingRecv at least once. The
        // scheduler must re-step MPU 0 and deliver the message exactly
        // once — the received value is incremented once, not twice.
        let mut sys = two_mpu_system();
        sys.set_program(0, asm("RECV mpu1\nCOMPUTE h1 v0\nINC r0 r1\nCOMPUTE_DONE"));
        sys.set_program(
            1,
            asm("COMPUTE h1 v0\nINC r0 r0\nCOMPUTE_DONE\n\
                 COMPUTE h1 v0\nINC r0 r0\nCOMPUTE_DONE\n\
                 SEND mpu0\nMOVE h1 h1\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE"),
        );
        sys.mpu_mut(1).write_register(1, 0, 0, &vec![40; 64]).unwrap();
        let stats = sys.run().unwrap();
        // 40 incremented twice by the sender, transferred once, then
        // incremented once by the receiver.
        assert_eq!(sys.mpu_mut(0).read_register(1, 0, 1).unwrap()[0], 43);
        assert_eq!(stats.messages_sent, 1);
    }

    #[test]
    fn broadcast_to_many_receivers() {
        let mut sys = System::new(SimConfig::mpu(DatapathKind::Racer), 4);
        sys.set_program(
            0,
            asm("SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE\n\
                 SEND mpu2\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE\n\
                 SEND mpu3\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE"),
        );
        for i in 1..4 {
            sys.set_program(i, asm("RECV mpu0"));
        }
        sys.mpu_mut(0).write_register(0, 0, 0, &vec![5; 64]).unwrap();
        let stats = sys.run().unwrap();
        for i in 1..4 {
            assert_eq!(sys.mpu_mut(i).read_register(0, 0, 0).unwrap()[0], 5);
        }
        assert_eq!(stats.messages_sent, 3);
    }

    #[test]
    fn parallel_time_is_max_not_sum() {
        let mut sys = two_mpu_system();
        sys.set_program(0, asm("COMPUTE h0 v0\nADD r0 r1 r2\nCOMPUTE_DONE"));
        sys.set_program(
            1,
            asm("COMPUTE h0 v0\nADD r0 r1 r2\nADD r2 r1 r3\nADD r3 r1 r4\nCOMPUTE_DONE"),
        );
        let stats = sys.run().unwrap();
        let t1 = {
            let mut solo = System::new(SimConfig::mpu(DatapathKind::Racer), 1);
            solo.set_program(
                0,
                asm("COMPUTE h0 v0\nADD r0 r1 r2\nADD r2 r1 r3\nADD r3 r1 r4\nCOMPUTE_DONE"),
            );
            solo.run().unwrap().cycles
        };
        assert_eq!(stats.cycles, t1, "system time equals the slowest MPU");
    }

    #[test]
    #[should_panic(expected = "exceed the iso-area chip budget")]
    fn chip_budget_is_enforced() {
        System::new(SimConfig::mpu(DatapathKind::DualityCache), 500);
    }

    // ----- NoC faults & RECV timeout ----------------------------------

    use crate::fault::FaultConfig;

    fn send_recv_programs(sys: &mut System) {
        sys.set_program(0, asm("SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE"));
        sys.set_program(1, asm("RECV mpu0"));
    }

    #[test]
    fn dropped_message_with_recv_timeout_surfaces_not_deadlocks() {
        let mut cfg = SimConfig::mpu(DatapathKind::Racer);
        cfg.fault = FaultConfig { seed: Some(5), noc_drop_rate: 1.0, ..Default::default() };
        cfg.recovery.recv_timeout = Some(10_000);
        let mut sys = System::new(cfg, 2);
        send_recv_programs(&mut sys);
        let err = sys.run().unwrap_err();
        match err {
            SystemError::Mpu { id, error } => {
                assert_eq!(id, 1);
                assert_eq!(error, SimError::RecvTimeout { mpu: 1, from: 0, waited: 10_000 });
            }
            other => panic!("expected a RECV timeout, got {other:?}"),
        }
    }

    #[test]
    fn dropped_message_without_timeout_is_a_deadlock() {
        let mut cfg = SimConfig::mpu(DatapathKind::Racer);
        cfg.fault = FaultConfig { seed: Some(5), noc_drop_rate: 1.0, ..Default::default() };
        let mut sys = System::new(cfg, 2);
        send_recv_programs(&mut sys);
        let err = sys.run().unwrap_err();
        assert_eq!(err, SystemError::Deadlock { waiting: vec![(1, 0)] });
    }

    #[test]
    fn cyclic_wait_stays_a_deadlock_even_with_recv_timeout() {
        // Every member of the cycle is still alive, so no timeout may
        // soundly pick a victim: the detector must still call it deadlock.
        let mut cfg = SimConfig::mpu(DatapathKind::Racer);
        cfg.recovery.recv_timeout = Some(1_000);
        let mut sys = System::new(cfg, 3);
        sys.set_program(0, asm("RECV mpu1"));
        sys.set_program(1, asm("RECV mpu2"));
        sys.set_program(2, asm("RECV mpu0"));
        let err = sys.run().unwrap_err();
        assert_eq!(err, SystemError::Deadlock { waiting: vec![(0, 1), (1, 2), (2, 0)] });
    }

    #[test]
    fn noc_retry_retransmits_dropped_messages() {
        let mut cfg = SimConfig::mpu(DatapathKind::Racer);
        cfg.fault = FaultConfig { seed: Some(9), noc_drop_rate: 0.5, ..Default::default() };
        cfg.recovery.noc_retry = true;
        cfg.recovery.max_retries = 16;
        let mut sys = System::new(cfg, 2);
        // Several messages so the seeded stream hits at least one drop.
        sys.set_program(
            0,
            asm("SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE\n\
                 SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r1\nMOVE_DONE\nSEND_DONE\n\
                 SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r2\nMOVE_DONE\nSEND_DONE\n\
                 SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r3\nMOVE_DONE\nSEND_DONE"),
        );
        sys.set_program(1, asm("RECV mpu0\nRECV mpu0\nRECV mpu0\nRECV mpu0"));
        sys.mpu_mut(0).write_register(0, 0, 0, &vec![77; 64]).unwrap();
        let stats = sys.run().unwrap();
        for reg in 0..4 {
            assert_eq!(sys.mpu_mut(1).read_register(0, 0, reg).unwrap()[0], 77);
        }
        assert!(stats.faults.retransmissions > 0, "rate 0.5 over 4 sends must drop at least once");
        assert_eq!(stats.faults.messages_dropped, stats.faults.retransmissions);
    }

    #[test]
    fn noc_corruption_flips_a_payload_bit_and_retry_cleans_it() {
        let mut cfg = SimConfig::mpu(DatapathKind::Racer);
        cfg.fault = FaultConfig { seed: Some(3), noc_corruption_rate: 1.0, ..Default::default() };
        let mut sys = System::new(cfg.clone(), 2);
        send_recv_programs(&mut sys);
        sys.mpu_mut(0).write_register(0, 0, 0, &vec![42; 64]).unwrap();
        let stats = sys.run().unwrap();
        assert_eq!(stats.faults.messages_corrupted, 1);
        let got = sys.mpu_mut(1).read_register(0, 0, 0).unwrap();
        let wrong = got.iter().filter(|&&v| v != 42).count();
        assert_eq!(wrong, 1, "exactly one element carries the flipped bit");

        cfg.recovery.noc_retry = true;
        let mut sys = System::new(cfg, 2);
        send_recv_programs(&mut sys);
        sys.mpu_mut(0).write_register(0, 0, 0, &vec![42; 64]).unwrap();
        let stats = sys.run().unwrap();
        assert_eq!(stats.faults.messages_corrupted, 0);
        assert_eq!(stats.faults.retransmissions, 1);
        assert_eq!(sys.mpu_mut(1).read_register(0, 0, 0).unwrap(), vec![42; 64]);
    }

    #[test]
    fn fault_free_system_matches_armed_zero_rate_system() {
        let clean_cfg = SimConfig::mpu(DatapathKind::Racer);
        let mut armed_cfg = clean_cfg.clone();
        armed_cfg.fault.seed = Some(0xFEED);
        let run = |cfg: SimConfig| {
            let mut sys = System::new(cfg, 2);
            send_recv_programs(&mut sys);
            sys.mpu_mut(0).write_register(0, 0, 0, &vec![7; 64]).unwrap();
            let stats = sys.run().unwrap();
            (stats, sys.mpu_mut(1).read_register(0, 0, 0).unwrap())
        };
        assert_eq!(run(clean_cfg), run(armed_cfg));
    }
}
