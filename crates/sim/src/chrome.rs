//! Chrome trace-event (Perfetto-loadable) export of a trace stream.
//!
//! The exporter emits the JSON object format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one track
//! (`tid`) per MPU plus a dedicated NoC track, timestamps in simulated
//! cycles. Ensemble spans become `B`/`E` pairs; every other event becomes
//! a complete (`X`) slice whose duration is the cycle charge it carried,
//! so zooming into a track shows exactly where the cycles went.
//!
//! The output is deterministic: the same event stream always serializes to
//! the identical string.

use crate::trace::{TraceEvent, TraceKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The `tid` carrying NoC traversals (kept clear of real MPU ids).
pub const NOC_TID: u32 = 65535;

/// Serializes a trace-event stream (as collected by [`crate::EventLog`])
/// into Chrome trace-event JSON.
///
/// Guarantees, relied on by the observability tests:
/// * well-formed JSON with a `traceEvents` array;
/// * `B`/`E` events are balanced per track (unclosed spans at the end of
///   the stream are closed at that track's last timestamp);
/// * timestamps are monotonically non-decreasing within each track.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut records: Vec<String> = Vec::new();

    // Metadata: name each MPU track, in id order, plus the NoC track.
    let mut mpu_ids: Vec<u16> = events.iter().map(|e| e.mpu).collect();
    mpu_ids.sort_unstable();
    mpu_ids.dedup();
    let has_noc = events.iter().any(|e| matches!(e.kind, TraceKind::Noc { .. }));
    for id in &mpu_ids {
        records.push(meta_thread_name(u32::from(*id), &format!("mpu{id}")));
    }
    if has_noc {
        records.push(meta_thread_name(NOC_TID, "noc"));
    }

    // NoC slices land on a shared track but are stamped by the receiving
    // MPU's clock, so they must be re-sorted to keep the track monotonic.
    let mut noc: Vec<(u64, String)> = Vec::new();
    // Open B spans per track (name, for diagnostics) and last timestamp.
    let mut open: HashMap<u32, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u32, u64> = HashMap::new();

    for ev in events {
        let tid = u32::from(ev.mpu);
        let cycles = ev.delta.cycles;
        let ts = ev.cycle.saturating_sub(cycles);
        match &ev.kind {
            TraceKind::EnsembleBegin { kind } => {
                let name = format!("{kind} @{}", ev.line);
                records.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{}}}",
                    esc(&name),
                    ev.cycle
                ));
                open.entry(tid).or_default().push(name);
                last_ts.insert(tid, ev.cycle);
            }
            TraceKind::EnsembleEnd { .. } => {
                if open.entry(tid).or_default().pop().is_some() {
                    records.push(format!(
                        "{{\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{}}}",
                        ev.cycle
                    ));
                    last_ts.insert(tid, ev.cycle);
                }
            }
            TraceKind::Noc { src, dst, bytes, delivered } => {
                let name = format!("mpu{src} -> mpu{dst}");
                let mut args = format!("\"bytes\":{bytes},\"delivered\":{delivered}");
                push_energy(&mut args, ev);
                noc.push((ts, complete_event(&name, NOC_TID, ts, cycles, &args)));
            }
            kind => {
                let name = slice_name(kind, ev.line);
                let mut args = format!("\"line\":{}", ev.line);
                if ev.delta.uops > 0 {
                    let _ = write!(args, ",\"uops\":{}", ev.delta.uops);
                }
                push_energy(&mut args, ev);
                records.push(complete_event(&name, tid, ts, cycles, &args));
                last_ts.insert(tid, ev.cycle);
            }
        }
    }

    // Close any span left open (e.g. a run that errored mid-ensemble).
    let mut dangling: Vec<u32> =
        open.iter().filter(|(_, v)| !v.is_empty()).map(|(t, _)| *t).collect();
    dangling.sort_unstable();
    for tid in dangling {
        let ts = last_ts.get(&tid).copied().unwrap_or(0);
        for _ in 0..open[&tid].len() {
            records.push(format!("{{\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}"));
        }
    }

    noc.sort_by_key(|(ts, _)| *ts);
    records.extend(noc.into_iter().map(|(_, r)| r));

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(rec);
    }
    out.push_str("]}");
    out
}

fn slice_name(kind: &TraceKind, line: usize) -> String {
    match kind {
        TraceKind::Wave { index, vrfs } => format!("wave {index} ({vrfs} vrfs)"),
        TraceKind::Instr { mnemonic, .. } => format!("{line}: {mnemonic}"),
        TraceKind::Exec { vrfs, .. } => format!("exec ({vrfs} vrfs)"),
        TraceKind::RecipeLookup { hit: true, .. } => "recipe hit".to_string(),
        TraceKind::RecipeLookup { hit: false, pool } => match pool {
            Some(true) => "recipe miss (pool hit)".to_string(),
            Some(false) => "recipe miss (pool miss)".to_string(),
            None => "recipe miss".to_string(),
        },
        TraceKind::PlaybackRefill => "playback refill".to_string(),
        TraceKind::Offload { batched: true } => "offload (batched)".to_string(),
        TraceKind::Offload { batched: false } => "offload round trip".to_string(),
        TraceKind::Memcpy { src_rfh, dst_rfh } => format!("memcpy h{src_rfh} -> h{dst_rfh}"),
        TraceKind::Checkpoint => "checkpoint".to_string(),
        TraceKind::Restart => "restart".to_string(),
        TraceKind::SelfTest { dead, remapped, lost } => {
            format!("self-test ({dead} dead, {remapped} remapped, {lost} lost)")
        }
        TraceKind::Fault(action) => format!("fault: {action:?}"),
        TraceKind::Finish => "finish".to_string(),
        TraceKind::EnsembleBegin { .. } | TraceKind::EnsembleEnd { .. } | TraceKind::Noc { .. } => {
            unreachable!("handled by the caller")
        }
    }
}

fn complete_event(name: &str, tid: u32, ts: u64, dur: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}",
        esc(name)
    )
}

fn meta_thread_name(tid: u32, name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
        esc(name)
    )
}

fn push_energy(args: &mut String, ev: &TraceEvent) {
    let pj = ev.delta.energy.total_pj();
    if pj > 0.0 {
        let _ = write!(args, ",\"energy_pj\":{pj}");
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    fn ev(mpu: u16, line: usize, cycle: u64, kind: TraceKind, cycles: u64) -> TraceEvent {
        let delta = Stats { cycles, ..Stats::default() };
        TraceEvent { mpu, line, cycle, kind, delta }
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn closes_dangling_spans() {
        use crate::machine::EnsembleKind;
        let events = vec![
            ev(0, 0, 10, TraceKind::EnsembleBegin { kind: EnsembleKind::Compute }, 0),
            ev(
                0,
                1,
                20,
                TraceKind::Instr { mnemonic: "NOP", class: crate::trace::InstrClass::Control },
                10,
            ),
        ];
        let json = chrome_trace_json(&events);
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 1);
        assert_eq!(e, 1, "unclosed span must be auto-closed: {json}");
    }

    #[test]
    fn noc_track_is_sorted_by_timestamp() {
        let events = vec![
            ev(1, 0, 50, TraceKind::Noc { src: 0, dst: 1, bytes: 8, delivered: true }, 0),
            ev(2, 0, 30, TraceKind::Noc { src: 0, dst: 2, bytes: 8, delivered: true }, 0),
        ];
        let json = chrome_trace_json(&events);
        let first = json.find("mpu0 -> mpu2").expect("earlier noc slice present");
        let second = json.find("mpu0 -> mpu1").expect("later noc slice present");
        assert!(first < second, "noc slices must be time-ordered: {json}");
    }
}
