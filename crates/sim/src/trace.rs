//! Structured execution tracing: the [`Tracer`] contract and the event
//! vocabulary every stats charge in the simulator is mirrored onto.
//!
//! # Contract
//!
//! A [`Tracer`] attached to an [`Mpu`](crate::Mpu) (or a
//! [`System`](crate::System), which also covers NoC routing) receives one
//! [`TraceEvent`] for every mutation of the machine's [`Stats`] ledger,
//! carrying the exact delta that mutation applied. Three invariants hold:
//!
//! * **Zero overhead disarmed.** With no tracer attached (the default),
//!   no event is constructed — every emission site is a single
//!   `Option` check — and simulated statistics are byte-identical to a
//!   build without the tracing layer.
//! * **Transparency armed.** Attaching a tracer never changes execution:
//!   lane values and [`Stats`] are byte-identical armed vs disarmed
//!   (enforced by the conformance observability suite).
//! * **Conservation.** Folding every event's `delta` in emission order
//!   per MPU reproduces that MPU's final [`Stats`] exactly — including
//!   the floating-point energy fields bit for bit, because deltas are
//!   emitted at the same granularity (one event per `+=`) and folded in
//!   the same order as the live accumulation. Elapsed `cycles` is the
//!   one non-summable field (message delivery advances it with a `max`),
//!   so it is recovered from the last event's [`TraceEvent::cycle`]
//!   stamp instead. See [`crate::Profile`].
//!
//! Events are deterministic: the same program, inputs, configuration, and
//! fault seed produce the identical event stream on every run.

use crate::machine::EnsembleKind;
use crate::stats::Stats;
use parking_lot::Mutex;
use pum_backend::MicroOpKind;
use std::fmt;
use std::sync::Arc;

/// Per-micro-op-kind counts for one recipe execution, indexed by
/// [`MicroOpKind::index`]. The attribution profile expands these into the
/// micro-op-class level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UopMix(pub [u32; MicroOpKind::ALL.len()]);

impl UopMix {
    /// Iterates the non-zero `(kind, count)` pairs.
    pub fn counts(&self) -> impl Iterator<Item = (MicroOpKind, u32)> + '_ {
        MicroOpKind::ALL.into_iter().zip(self.0).filter(|&(_, n)| n > 0)
    }

    /// Total micro-ops across all kinds.
    pub fn total(&self) -> u64 {
        self.0.iter().map(|&n| n as u64).sum()
    }
}

impl fmt::Display for UopMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (kind, n) in self.counts() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{kind}:{n}")?;
            first = false;
        }
        Ok(())
    }
}

/// Coarse classification of a traced instruction, used by the attribution
/// profile to group charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrClass {
    /// A datapath (compute) instruction issuing a micro-op recipe.
    Compute,
    /// A control-path instruction (masks, branches, NOP, sync).
    Control,
    /// A data-movement instruction (`MEMCPY`).
    Transfer,
    /// An inter-MPU communication instruction (`RECV`).
    Comm,
    /// An ensemble header/footer marker (`COMPUTE`, `MOVE`, `SEND`, ...).
    Marker,
}

/// A redundancy/recovery action (see [`crate::RecoveryPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// An extra redundant execution beyond the first (DMR/TMR).
    RedundantRun,
    /// Redundant copies disagreed: a fault was detected.
    Detected,
    /// A detected fault was corrected (DMR retry success / TMR majority).
    Corrected,
    /// A DMR retry round was issued after a mismatch.
    Retry,
}

/// What a [`TraceEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// An ensemble span opens (`line` is its first header instruction).
    EnsembleBegin {
        /// Which ensemble kind.
        kind: EnsembleKind,
    },
    /// The matching ensemble span closes.
    EnsembleEnd {
        /// Which ensemble kind.
        kind: EnsembleKind,
    },
    /// One thermal-aware scheduler wave starts replaying the body.
    Wave {
        /// Wave ordinal within the ensemble (0-based).
        index: usize,
        /// VRFs activated by this wave.
        vrfs: usize,
    },
    /// One ISA instruction executed (its architectural charge).
    Instr {
        /// Instruction mnemonic.
        mnemonic: &'static str,
        /// Coarse class for profile grouping.
        class: InstrClass,
    },
    /// One functional execution of a compute recipe over a wave (issue
    /// cycles, micro-ops, and datapath energy). Repeats under redundancy.
    Exec {
        /// VRFs the recipe was applied to.
        vrfs: usize,
        /// Micro-op class mix of the recipe.
        mix: UopMix,
    },
    /// A recipe-cache template lookup.
    RecipeLookup {
        /// Architectural (per-MPU table) hit.
        hit: bool,
        /// Host-side [`crate::RecipePool`] template outcome, when a miss
        /// consulted a shared pool (`None` without a pool or on a hit).
        pool: Option<bool>,
    },
    /// The playback buffer refilled (body longer than the buffer).
    PlaybackRefill,
    /// A Baseline host-CPU offload round trip (or batched follow-on).
    Offload {
        /// True when an already-open batch serviced this instruction.
        batched: bool,
    },
    /// A NoC message traversal charged to the *receiving* MPU
    /// ([`TraceEvent::mpu`] is the destination).
    Noc {
        /// Sending MPU.
        src: u16,
        /// Receiving MPU.
        dst: u16,
        /// Payload bytes.
        bytes: u64,
        /// False when the message was dropped past the retry budget.
        delivered: bool,
    },
    /// One `MEMCPY` source→destination RFH-pair transfer (one event per
    /// pair in the move block's target map).
    Memcpy {
        /// Source RF holder.
        src_rfh: u16,
        /// Destination RF holder.
        dst_rfh: u16,
    },
    /// A compute-ensemble checkpoint was streamed out.
    Checkpoint,
    /// The ensemble rolled back to its checkpoint and restarted.
    Restart,
    /// The boot self-test marched a VRF and (possibly) remapped lanes.
    SelfTest {
        /// Lanes found dead.
        dead: u64,
        /// Logical lanes relocated.
        remapped: u64,
        /// Logical lanes lost past the spare budget.
        lost: u64,
    },
    /// A redundancy/recovery action.
    Fault(FaultAction),
    /// End-of-run finalization (front-end / CPU-idle energy, landed
    /// fault-injection count).
    Finish,
}

/// One traced event: where it happened, when, what it was, and the exact
/// [`Stats`] delta the simulator charged for it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The MPU whose ledger was charged.
    pub mpu: u16,
    /// Program line (instruction index) the event is attributed to.
    pub line: usize,
    /// The MPU's elapsed-cycle counter *after* applying the delta.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceKind,
    /// The exact charge: summing `delta` over events reproduces every
    /// summable [`Stats`] field (see the module docs for `cycles`).
    pub delta: Stats,
}

/// Receives trace events from a machine. Implementations must be cheap:
/// the simulator calls [`Tracer::event`] inline on its hot path.
pub trait Tracer: Send + Sync + fmt::Debug {
    /// Called once per stats charge, in execution order.
    fn event(&mut self, ev: &TraceEvent);
}

/// The standard collector: a clonable, thread-safe, append-only event log.
///
/// Clone it, hand one handle to the machine (via
/// [`Mpu::set_tracer`](crate::Mpu::set_tracer) or
/// [`System::set_event_log`](crate::System::set_event_log)) and keep the
/// other to read the events back.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all events recorded so far, in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Drains the log, returning all recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Tracer for EventLog {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.lock().push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uop_mix_counts_and_display() {
        let mut mix = UopMix::default();
        mix.0[MicroOpKind::Nor.index()] = 3;
        mix.0[MicroOpKind::Copy.index()] = 2;
        assert_eq!(mix.total(), 5);
        let pairs: Vec<(MicroOpKind, u32)> = mix.counts().collect();
        assert_eq!(pairs, vec![(MicroOpKind::Nor, 3), (MicroOpKind::Copy, 2)]);
        assert_eq!(mix.to_string(), "NOR:3 COPY:2");
    }

    #[test]
    fn event_log_is_clonable_and_shared() {
        let log = EventLog::new();
        let mut handle = log.clone();
        assert!(log.is_empty());
        let ev = TraceEvent {
            mpu: 0,
            line: 7,
            cycle: 42,
            kind: TraceKind::PlaybackRefill,
            delta: Stats::default(),
        };
        handle.event(&ev);
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot(), vec![ev.clone()]);
        assert_eq!(log.take(), vec![ev]);
        assert!(log.is_empty());
    }
}
