//! Hierarchical cycle/energy attribution: folds a trace-event stream into
//! a per-MPU tree (program line → instruction → micro-op class) whose
//! totals reproduce the live [`Stats`] exactly.
//!
//! # Conservation
//!
//! [`MpuProfile::totals`] is computed by folding every event's delta with
//! [`Stats::merge_sequential`] *in emission order* — the identical
//! per-field sequence of additions the simulator performed on its live
//! ledger — so every counter **and every floating-point energy field** is
//! bit-for-bit equal to the machine's final [`Stats`]. The one exception
//! is elapsed `cycles`, which message delivery advances with a `max`; it
//! is recovered from the last event's cycle stamp instead (for a
//! completed run that event is [`TraceKind::Finish`], stamped after all
//! charges). [`Profile::merged`] then folds per-MPU totals with
//! [`Stats::merge_parallel`] in MPU-id order — the same reduction
//! [`crate::System::run`] performs — so the chip-level total matches too.
//!
//! Within the tree, each event's delta is attached to exactly one node, so
//! integer counters partition exactly across the hierarchy (a node's
//! inclusive sum equals its subtree's charges). Energy fields in inclusive
//! sums are tree-order folds and may differ from the emission-order total
//! in the last few ulps; conservation is defined — and tested — against
//! [`MpuProfile::totals`].

use crate::machine::EnsembleKind;
use crate::stats::Stats;
use crate::trace::{TraceEvent, TraceKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One node of the attribution tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Stable merge key (deterministic for a given program).
    pub key: String,
    /// Human-readable label.
    pub label: String,
    /// How many events (or micro-ops, for micro-op-class leaves) merged
    /// into this node.
    pub count: u64,
    /// Charges attached directly to this node (exclusive of children).
    pub stats: Stats,
    /// Child spans, in first-appearance order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(key: String, label: String) -> Self {
        Self { key, label, count: 0, stats: Stats::default(), children: Vec::new() }
    }

    /// Finds (or creates) the child with `key`.
    fn child_mut(&mut self, key: &str, label: &str) -> &mut ProfileNode {
        if let Some(i) = self.children.iter().position(|c| c.key == key) {
            return &mut self.children[i];
        }
        self.children.push(ProfileNode::new(key.to_string(), label.to_string()));
        let last = self.children.len() - 1;
        &mut self.children[last]
    }

    /// Merges a finished span into this node's children (same key → one
    /// node whose counters add).
    fn absorb(&mut self, span: ProfileNode) {
        if let Some(i) = self.children.iter().position(|c| c.key == span.key) {
            let dst = &mut self.children[i];
            dst.count += span.count;
            dst.stats.merge_sequential(&span.stats);
            for child in span.children {
                dst.absorb(child);
            }
        } else {
            self.children.push(span);
        }
    }

    /// Inclusive charges: this node plus its whole subtree. Integer
    /// counters partition exactly; energy fields are tree-order folds.
    pub fn inclusive(&self) -> Stats {
        let mut total = self.stats;
        for child in &self.children {
            total.merge_sequential(&child.inclusive());
        }
        total
    }
}

/// The attribution tree of a single MPU.
#[derive(Debug, Clone, PartialEq)]
pub struct MpuProfile {
    /// Which MPU.
    pub mpu: u16,
    /// The exact [`Stats`] reproduction (see the module docs).
    pub totals: Stats,
    /// Root of the attribution tree.
    pub root: ProfileNode,
}

/// A hierarchical cycle/energy attribution profile built from a trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Per-MPU trees, sorted by MPU id.
    pub mpus: Vec<MpuProfile>,
}

impl Profile {
    /// Builds the profile from a trace-event stream (in emission order, as
    /// collected by [`crate::EventLog`]).
    pub fn build(events: &[TraceEvent]) -> Profile {
        let mut per_mpu: HashMap<u16, Vec<&TraceEvent>> = HashMap::new();
        let mut order: Vec<u16> = Vec::new();
        for ev in events {
            if !per_mpu.contains_key(&ev.mpu) {
                order.push(ev.mpu);
            }
            per_mpu.entry(ev.mpu).or_default().push(ev);
        }
        order.sort_unstable();
        let mpus = order
            .into_iter()
            .map(|id| {
                let evs = &per_mpu[&id];
                MpuProfile { mpu: id, totals: fold_totals(evs), root: build_tree(id, evs) }
            })
            .collect();
        Profile { mpus }
    }

    /// The tree for one MPU, if it emitted any events.
    pub fn mpu(&self, id: u16) -> Option<&MpuProfile> {
        self.mpus.iter().find(|m| m.mpu == id)
    }

    /// Chip-level totals: per-MPU totals reduced with
    /// [`Stats::merge_parallel`] in MPU-id order — exactly the reduction
    /// [`crate::System::run`] returns.
    pub fn merged(&self) -> Stats {
        let mut total = Stats::default();
        for m in &self.mpus {
            total.merge_parallel(&m.totals);
        }
        total
    }

    /// Renders the whole profile as a deterministic text report: one block
    /// per MPU, spans sorted by inclusive cycles (descending, then key).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.mpus {
            let t = &m.totals;
            let _ = writeln!(
                out,
                "== mpu{}: {} cycles, {} instr, {} uops, {:.3} pJ ==",
                m.mpu,
                t.cycles,
                t.instructions,
                t.uops,
                t.energy.total_pj()
            );
            render_node(&mut out, &m.root, 0);
        }
        out
    }
}

/// Folds every delta in emission order (the exact reproduction), then
/// recovers elapsed cycles from the last event's stamp.
fn fold_totals(events: &[&TraceEvent]) -> Stats {
    let mut totals = Stats::default();
    for ev in events {
        totals.merge_sequential(&ev.delta);
    }
    if let Some(last) = events.last() {
        totals.cycles = last.cycle;
    }
    totals
}

fn render_node(out: &mut String, node: &ProfileNode, depth: usize) {
    let inc = node.inclusive();
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = write!(out, "{}  [count {}]", node.label, node.count);
    if inc.cycles > 0 {
        let _ = write!(out, " cycles={}", inc.cycles);
    }
    if inc.uops > 0 {
        let _ = write!(out, " uops={}", inc.uops);
    }
    let pj = inc.energy.total_pj();
    if pj > 0.0 {
        let _ = write!(out, " energy={pj:.3}pJ");
    }
    out.push('\n');
    let mut order: Vec<usize> = (0..node.children.len()).collect();
    order.sort_by(|&a, &b| {
        let (ca, cb) = (&node.children[a], &node.children[b]);
        cb.inclusive().cycles.cmp(&ca.inclusive().cycles).then_with(|| ca.key.cmp(&cb.key))
    });
    for i in order {
        render_node(out, &node.children[i], depth + 1);
    }
}

/// Builds one MPU's tree by replaying the event stream against a span
/// stack (root at the bottom, open ensembles above it).
fn build_tree(id: u16, events: &[&TraceEvent]) -> ProfileNode {
    let mut root = ProfileNode::new(format!("mpu{id}"), format!("mpu{id}"));
    root.count = 1;
    // Open ensemble spans; everything else attaches to the current top.
    let mut stack: Vec<ProfileNode> = Vec::new();

    fn top<'a>(root: &'a mut ProfileNode, stack: &'a mut [ProfileNode]) -> &'a mut ProfileNode {
        match stack.last_mut() {
            Some(n) => n,
            None => root,
        }
    }

    fn close_one(root: &mut ProfileNode, stack: &mut Vec<ProfileNode>, kind: EnsembleKind) {
        let suffix = format!(":{kind}");
        while let Some(span) = stack.pop() {
            let matched = span.key.ends_with(&suffix);
            top(root, stack).absorb(span);
            if matched {
                return;
            }
        }
    }

    fn close_all(root: &mut ProfileNode, stack: &mut Vec<ProfileNode>) {
        while let Some(span) = stack.pop() {
            top(root, stack).absorb(span);
        }
    }

    for ev in events {
        let line = ev.line;
        match &ev.kind {
            TraceKind::EnsembleBegin { kind } => {
                let mut span =
                    ProfileNode::new(format!("e{line}:{kind}"), format!("{kind} @{line}"));
                span.count = 1;
                span.stats.merge_sequential(&ev.delta);
                stack.push(span);
            }
            TraceKind::EnsembleEnd { kind } => {
                top(&mut root, &mut stack).stats.merge_sequential(&ev.delta);
                close_one(&mut root, &mut stack, *kind);
            }
            TraceKind::Restart => {
                // The failed attempt's spans never closed; fold them back
                // before attaching the rollback charge at the root.
                close_all(&mut root, &mut stack);
                let node = root.child_mut("restart", "checkpoint restart");
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::Wave { index, vrfs } => {
                let t = top(&mut root, &mut stack);
                let node =
                    t.child_mut(&format!("w{index}"), &format!("wave {index} ({vrfs} vrfs)"));
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::Instr { mnemonic, class } => {
                let t = top(&mut root, &mut stack);
                let node = t.child_mut(&format!("i{line}"), mnemonic);
                node.label = format!("{line}: {mnemonic} [{class:?}]");
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::Exec { vrfs, mix } => {
                let t = top(&mut root, &mut stack);
                let node = t
                    .child_mut(&format!("i{line}"), "exec")
                    .child_mut("exec", &format!("exec ({vrfs} vrfs)"));
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
                // Micro-op-class leaves carry counts only: their parent's
                // delta already holds the cycles/energy, so the partition
                // stays exact.
                for (kind, n) in mix.counts() {
                    let leaf = node.child_mut(&format!("u{kind}"), &format!("uop {kind}"));
                    leaf.count += n as u64;
                }
            }
            TraceKind::RecipeLookup { hit, pool } => {
                let t = top(&mut root, &mut stack);
                let what = match (hit, pool) {
                    (true, _) => "hit",
                    (false, Some(true)) => "miss (pool hit)",
                    (false, Some(false)) => "miss (pool miss)",
                    (false, None) => "miss",
                };
                let node = t
                    .child_mut(&format!("i{line}"), "recipe")
                    .child_mut(&format!("r:{what}"), &format!("recipe {what}"));
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::PlaybackRefill => {
                let t = top(&mut root, &mut stack);
                let node = t
                    .child_mut(&format!("i{line}"), "playback")
                    .child_mut("playback", "playback refill");
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::Offload { batched } => {
                let t = top(&mut root, &mut stack);
                let what = if *batched { "offload (batched)" } else { "offload round trip" };
                let key = if *batched { "o:b" } else { "o:r" };
                let node = t.child_mut(&format!("i{line}"), "offload").child_mut(key, what);
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::Memcpy { src_rfh, dst_rfh } => {
                let t = top(&mut root, &mut stack);
                let node = t.child_mut(&format!("i{line}"), "memcpy").child_mut(
                    &format!("m{src_rfh}-{dst_rfh}"),
                    &format!("copy h{src_rfh} -> h{dst_rfh}"),
                );
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::Fault(action) => {
                let t = top(&mut root, &mut stack);
                let node = t
                    .child_mut(&format!("i{line}"), "recovery")
                    .child_mut(&format!("f:{action:?}"), &format!("{action:?}"));
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::Checkpoint => {
                let t = top(&mut root, &mut stack);
                let node = t.child_mut("checkpoint", "checkpoint");
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::SelfTest { .. } => {
                let node = root.child_mut("selftest", "boot self-test");
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::Noc { src, dst, delivered, .. } => {
                let t = top(&mut root, &mut stack);
                let what = if *delivered { "delivered" } else { "lost" };
                let node = t.child_mut(
                    &format!("noc{src}-{dst}:{what}"),
                    &format!("noc mpu{src} -> mpu{dst} ({what})"),
                );
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
            TraceKind::Finish => {
                close_all(&mut root, &mut stack);
                let node = root.child_mut("finish", "finalization");
                node.count += 1;
                node.stats.merge_sequential(&ev.delta);
            }
        }
    }
    close_all(&mut root, &mut stack);
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::machine::Mpu;
    use crate::trace::EventLog;
    use mpu_isa::{MpuId, Program};
    use pum_backend::DatapathKind;

    fn traced_run(asm: &str) -> (Stats, Vec<TraceEvent>) {
        let log = EventLog::new();
        let mut mpu = Mpu::new(SimConfig::mpu(DatapathKind::Racer), MpuId(0));
        mpu.set_tracer(Box::new(log.clone()));
        mpu.write_register(0, 0, 0, &vec![3; 64]).unwrap();
        mpu.write_register(0, 0, 1, &vec![4; 64]).unwrap();
        let program = Program::parse_asm(asm).unwrap();
        let stats = mpu.run(&program).unwrap();
        (stats, log.take())
    }

    const KERNEL: &str = "COMPUTE h0 v0\nADD r0 r1 r2\nMUL r2 r1 r3\nCOMPUTE_DONE\n\
                          MOVE h0 h1\nMEMCPY v0 r3 v0 r0\nMOVE_DONE";

    #[test]
    fn totals_reproduce_stats_exactly() {
        let (stats, events) = traced_run(KERNEL);
        let profile = Profile::build(&events);
        assert_eq!(profile.mpus.len(), 1);
        assert_eq!(profile.mpus[0].totals, stats, "emission-order fold must be exact");
        assert_eq!(profile.merged(), stats);
    }

    #[test]
    fn counters_partition_across_the_tree() {
        let (stats, events) = traced_run(KERNEL);
        let profile = Profile::build(&events);
        let inc = profile.mpus[0].root.inclusive();
        assert_eq!(inc.instructions, stats.instructions);
        assert_eq!(inc.uops, stats.uops);
        assert_eq!(inc.compute_cycles, stats.compute_cycles);
        assert_eq!(inc.control_cycles, stats.control_cycles);
        assert_eq!(inc.transfer_cycles, stats.transfer_cycles);
        assert_eq!(inc.scheduler_waves, stats.scheduler_waves);
    }

    #[test]
    fn tree_has_line_instruction_uop_hierarchy() {
        let (_, events) = traced_run(KERNEL);
        let profile = Profile::build(&events);
        let root = &profile.mpus[0].root;
        let ensemble =
            root.children.iter().find(|c| c.key.starts_with("e0:")).expect("compute ensemble span");
        let add = ensemble.children.iter().find(|c| c.key == "i1").expect("line node for ADD");
        assert!(add.label.contains("ADD"));
        let exec = add.children.iter().find(|c| c.key == "exec").expect("exec child");
        assert!(!exec.children.is_empty(), "micro-op-class leaves present");
        assert!(exec.children.iter().all(|u| u.key.starts_with('u')));
        let uops: u64 = exec.children.iter().map(|u| u.count).sum();
        assert_eq!(uops, exec.stats.uops, "class counts partition the uop counter");
    }

    #[test]
    fn render_is_deterministic_and_mentions_spans() {
        let (_, events) = traced_run(KERNEL);
        let profile = Profile::build(&events);
        let a = profile.render();
        let b = Profile::build(&events).render();
        assert_eq!(a, b);
        assert!(a.contains("== mpu0:"));
        assert!(a.contains("COMPUTE @0"));
        assert!(a.contains("MEMCPY"));
    }
}
