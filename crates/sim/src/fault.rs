//! Fault-injection configuration and recovery policies.
//!
//! [`FaultConfig`] describes *what goes wrong*: it is expanded into one
//! seeded [`FaultModel`] per VRF (each with its own derived, uncorrelated
//! PRNG stream) plus a NoC-level drop/corruption stream. The per-micro-op
//! transient rate is weighted by [`kind_weight`] so each technology's
//! dominant analog failure mechanism — TRA charge-sharing in DRAM, NOR
//! pull-down in ReRAM, bitline upsets in SRAM — carries the bulk of the
//! configured rate.
//!
//! [`RecoveryPolicy`] describes *what the machine does about it*: modular
//! redundancy over compute ensembles with bounded retry, permanent-fault
//! lane remapping onto spare lanes, checkpoint/restart at ensemble
//! boundaries, NoC retransmission, a blocking-`RECV` timeout, and a
//! control-flow watchdog. Every recovery mechanism charges its overhead
//! (extra runs, retries, remap copies, retransmissions) to the existing
//! cycle/energy accounting.
//!
//! With `seed: None` (the default) no fault model is ever built and the
//! simulator is byte-identical to one without the fault layer.

use pum_backend::{FaultModel, FaultPrng, LogicFamily, MicroOpKind};
use serde::{Deserialize, Serialize};

/// Location of one permanently stuck bit-line lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckLane {
    /// MPU the faulty VRF belongs to.
    pub mpu: u16,
    /// RF holder index.
    pub rfh: u16,
    /// VRF index within the holder.
    pub vrf: u16,
    /// The stuck lane.
    pub lane: usize,
    /// Stuck value: `true` = stuck-at-1, `false` = stuck-at-0.
    pub value: bool,
}

/// What goes wrong: the seeded hardware fault configuration of a chip.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master seed. `None` disables the fault layer entirely (no models
    /// are built; hot paths stay single-branch). `Some(seed)` arms it —
    /// even with all rates zero, which is useful to prove the plumbing
    /// itself perturbs nothing.
    pub seed: Option<u64>,
    /// Per-micro-op transient bit-plane flip probability for a
    /// technology's dominant mechanism; other micro-op kinds scale by
    /// [`kind_weight`].
    pub transient_rate: f64,
    /// Probability that a *runtime* register write (message delivery,
    /// transfer landing) flips one bit.
    pub write_corruption_rate: f64,
    /// Permanently stuck bit-line lanes.
    pub stuck_lanes: Vec<StuckLane>,
    /// Probability that the NoC drops a message.
    pub noc_drop_rate: f64,
    /// Probability that the NoC corrupts one bit of a message payload.
    pub noc_corruption_rate: f64,
}

impl FaultConfig {
    /// True when the fault layer is armed (a seed is set).
    pub fn enabled(&self) -> bool {
        self.seed.is_some()
    }

    /// Expands the configuration into the fault model for one VRF, with a
    /// stream seed derived from `(seed, mpu, rfh, vrf)` so every VRF's
    /// fault sequence is independent and replayable. `None` when disabled.
    pub fn vrf_model(
        &self,
        family: LogicFamily,
        mpu: u16,
        rfh: u16,
        vrf: u16,
        lanes: usize,
    ) -> Option<FaultModel> {
        let seed = self.seed?;
        let salt = ((mpu as u64) << 32) | ((rfh as u64) << 16) | vrf as u64;
        let mut model = FaultModel::new(FaultPrng::derive(seed, salt), lanes);
        if self.transient_rate > 0.0 {
            for kind in MicroOpKind::ALL {
                let weight = kind_weight(family, kind);
                if weight > 0.0 {
                    model.set_transient_rate(kind, self.transient_rate * weight);
                }
            }
        }
        model.set_write_corruption_rate(self.write_corruption_rate);
        for s in &self.stuck_lanes {
            if s.mpu == mpu && s.rfh == rfh && s.vrf == vrf && s.lane < lanes {
                model.add_stuck_lane(s.lane, s.value);
            }
        }
        Some(model)
    }

    /// Derived seed for the NoC's drop/corruption stream. `None` when
    /// disabled.
    pub fn noc_seed(&self) -> Option<u64> {
        self.seed.map(|s| FaultPrng::derive(s, u64::MAX))
    }
}

/// Relative transient-fault weight of a micro-op kind within a logic
/// family: the family's dominant analog mechanism carries weight 1.0 and
/// the configured `transient_rate` applies to it directly; cheaper or
/// digitally-latched operations fail proportionally less often.
pub fn kind_weight(family: LogicFamily, kind: MicroOpKind) -> f64 {
    use MicroOpKind::*;
    match family {
        // ReRAM: state-dependent voltage division on the NOR pull-down is
        // the analog step; buffer moves and presets are near-digital.
        LogicFamily::Nor => match kind {
            Nor => 1.0,
            Copy => 0.1,
            Set => 0.05,
            _ => 0.0,
        },
        // DRAM: triple-row-activation charge sharing dominates; the
        // dual-contact NOT and AAP row copies also disturb charge.
        LogicFamily::Maj => match kind {
            Tra => 1.0,
            Not => 0.3,
            Copy => 0.2,
            Set => 0.1,
            _ => 0.0,
        },
        // SRAM: bitline logic suffers read upsets; the CMOS full adder is
        // latched and sturdier; copies/presets are ordinary array writes.
        LogicFamily::Bitline => match kind {
            And | Or | Xor => 1.0,
            FullAdd => 0.5,
            Copy => 0.1,
            Set => 0.05,
            _ => 0.0,
        },
        // pLUTo: the LUT row activation and column read-out is the analog
        // step; buffer moves and presets are near-digital.
        LogicFamily::Lut => match kind {
            Lut => 1.0,
            Copy => 0.1,
            Set => 0.05,
            _ => 0.0,
        },
        // DPU: one word micro-op stands in for an entire vector
        // instruction — the pipeline walks all 64 lanes serially, so the
        // per-op exposure integrates over the whole loop rather than a
        // single row activation. The base rate is calibrated per row-op,
        // hence the weight scales with lane count (64 for the DPU
        // geometry) and, for the multi-cycle multiply/divide sequencers,
        // with their relative occupancy (8x / ~13x an ALU op) discounted
        // by the 0.7 latch-density factor of the shared sequencer.
        LogicFamily::WordSerial => match kind {
            WordAlu => 64.0,
            WordMul => 358.0,
            WordDiv => 597.0,
            _ => 0.0,
        },
    }
}

/// Redundant-execution mode for compute ensembles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Redundancy {
    /// Single execution, no checking.
    None,
    /// Duplicate-and-compare: run twice, compare lane-exactly; on
    /// mismatch, retry (both runs) up to
    /// [`RecoveryPolicy::max_retries`] times, then escalate.
    Dmr,
    /// Triple modular redundancy: run three times and commit the bitwise
    /// word-level majority — any single-run fault per bit is corrected in
    /// place.
    Tmr,
}

/// What the machine does about faults: detection, recovery, and
/// containment knobs. All overhead is charged to the normal cycle/energy
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Redundant execution of compute instructions.
    pub redundancy: Redundancy,
    /// Bounded retries for duplicate-and-compare mismatches (and NoC
    /// retransmissions) before escalating.
    pub max_retries: u32,
    /// Checkpoint VRF state at compute-ensemble boundaries and restart
    /// the ensemble when redundancy escalates an uncorrected fault.
    pub checkpoint_restart: bool,
    /// Bounded ensemble restarts before the error propagates.
    pub max_restarts: u32,
    /// Boot-time self-test each VRF, power-gate dead lanes, and remap the
    /// logical vector onto the remaining healthy lanes.
    pub remap: bool,
    /// Physical lanes reserved as spares per VRF when remapping: the
    /// logical vector width becomes `lanes - spare_lanes`, and up to
    /// `spare_lanes` dead lanes are absorbed with no capacity loss.
    pub spare_lanes: usize,
    /// Retransmit dropped/corrupted NoC messages (checksum-style
    /// detection) instead of losing or delivering them.
    pub noc_retry: bool,
    /// Cycle budget for a blocking `RECV` whose sender can no longer
    /// deliver: surfaces as `SimError::RecvTimeout` instead of an
    /// indefinite deadlock. `None` keeps the pure deadlock detector.
    pub recv_timeout: Option<u64>,
    /// Instruction budget per ensemble-body pass: a fault-corrupted loop
    /// counter that would spin (nearly) forever trips
    /// `SimError::WatchdogTriggered` instead. `None` disables it.
    pub watchdog_instructions: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            redundancy: Redundancy::None,
            max_retries: 3,
            checkpoint_restart: false,
            max_restarts: 1,
            remap: false,
            spare_lanes: 0,
            noc_retry: false,
            recv_timeout: None,
            watchdog_instructions: None,
        }
    }
}

impl RecoveryPolicy {
    /// Number of redundant executions per compute instruction.
    pub fn runs(&self) -> u32 {
        match self.redundancy {
            Redundancy::None => 1,
            Redundancy::Dmr => 2,
            Redundancy::Tmr => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_builds_no_models() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg.vrf_model(LogicFamily::Nor, 0, 0, 0, 64), None);
        assert_eq!(cfg.noc_seed(), None);
    }

    #[test]
    fn vrf_models_get_independent_streams() {
        let cfg = FaultConfig { seed: Some(7), transient_rate: 0.5, ..Default::default() };
        let a = cfg.vrf_model(LogicFamily::Nor, 0, 0, 0, 64).unwrap();
        let b = cfg.vrf_model(LogicFamily::Nor, 0, 0, 1, 64).unwrap();
        let c = cfg.vrf_model(LogicFamily::Nor, 1, 0, 0, 64).unwrap();
        assert_ne!(a.seed(), b.seed());
        assert_ne!(a.seed(), c.seed());
        // And rebuilding reproduces the same stream (replayability).
        let a2 = cfg.vrf_model(LogicFamily::Nor, 0, 0, 0, 64).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn stuck_lanes_only_apply_to_their_vrf() {
        let cfg = FaultConfig {
            seed: Some(1),
            stuck_lanes: vec![StuckLane { mpu: 0, rfh: 0, vrf: 0, lane: 3, value: true }],
            ..Default::default()
        };
        assert!(cfg.vrf_model(LogicFamily::Nor, 0, 0, 0, 64).unwrap().has_forced_lanes());
        assert!(!cfg.vrf_model(LogicFamily::Nor, 0, 0, 1, 64).unwrap().has_forced_lanes());
        assert!(!cfg.vrf_model(LogicFamily::Nor, 1, 0, 0, 64).unwrap().has_forced_lanes());
    }

    #[test]
    fn dominant_mechanism_carries_full_weight() {
        assert_eq!(kind_weight(LogicFamily::Nor, MicroOpKind::Nor), 1.0);
        assert_eq!(kind_weight(LogicFamily::Maj, MicroOpKind::Tra), 1.0);
        assert_eq!(kind_weight(LogicFamily::Bitline, MicroOpKind::Xor), 1.0);
        // Kinds a family never issues carry no weight.
        assert_eq!(kind_weight(LogicFamily::Nor, MicroOpKind::Tra), 0.0);
        assert_eq!(kind_weight(LogicFamily::Maj, MicroOpKind::Nor), 0.0);
    }

    #[test]
    fn policy_default_is_fully_inert() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.redundancy, Redundancy::None);
        assert_eq!(p.runs(), 1);
        assert!(!p.checkpoint_restart && !p.remap && !p.noc_retry);
        assert_eq!(p.recv_timeout, None);
        assert_eq!(p.watchdog_instructions, None);
    }

    #[test]
    fn redundancy_run_counts() {
        let mut p = RecoveryPolicy { redundancy: Redundancy::Dmr, ..Default::default() };
        assert_eq!(p.runs(), 2);
        p.redundancy = Redundancy::Tmr;
        assert_eq!(p.runs(), 3);
    }
}
