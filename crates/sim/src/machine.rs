//! The single-MPU execution engine: precoder/fetcher walk, compute
//! controller with playback-buffer replay and thermal-wave scheduling
//! (paper Fig. 10), EFI-backed control flow, the data transfer controller,
//! and the Baseline host-offload model.
//!
//! Execution is *functionally exact*: vector state lives in
//! [`BitPlaneVrf`]s and every compute instruction runs by applying its
//! micro-op recipe, so kernels produce real results that tests check
//! against reference implementations. Timing and energy accumulate from
//! the datapath model and control-path cost table as the program runs.

use crate::config::{ExecutionMode, SimConfig};
use crate::fault::Redundancy;
use crate::recipe_cache::{RecipeCache, RecipePool};
use crate::stats::{EnergyStats, Stats};
use crate::trace::{FaultAction, InstrClass, TraceEvent, TraceKind, Tracer, UopMix};
use mpu_isa::{Instruction, MpuId, Program, COND_REG};
use pum_backend::{BitPlaneVrf, EnsembleStep, EnsembleTrace, Plane, Recipe};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Depth of the control path's return-address stack. Both `JUMP` (which
/// hardware-wise is a call: it pushes its fall-through address) and the
/// precoder's subroutine bookkeeping share this bound; exceeding it —
/// e.g. a fault-corrupted jump target re-executing `JUMP`s with no
/// matching `RETURN` — raises [`SimError::ReturnStackOverflow`] instead
/// of growing host memory without bound.
pub const RETURN_STACK_DEPTH: usize = 64;

/// An error raised while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program is structurally invalid (validator message).
    InvalidProgram(String),
    /// A VRF or RFH index exceeds the datapath geometry.
    GeometryExceeded {
        /// Offending instruction index.
        line: usize,
        /// Description of the violation.
        what: String,
    },
    /// A `RETURN` executed with an empty return-address stack inside an
    /// ensemble body.
    ReturnUnderflow {
        /// Offending instruction index.
        line: usize,
    },
    /// A `JUMP` pushed past the return-address stack's hardware depth
    /// ([`RETURN_STACK_DEPTH`]) — unbalanced calls, typically from a
    /// fault-corrupted jump target.
    ReturnStackOverflow {
        /// Offending instruction index.
        line: usize,
        /// The stack depth that was exceeded.
        depth: usize,
    },
    /// A compute instruction reached execution but the template lookup
    /// could not synthesize its recipe. Execution must never silently
    /// skip work, so this is a hard error rather than a dropped
    /// instruction.
    RecipeUnavailable {
        /// Offending instruction index.
        line: usize,
        /// Mnemonic of the instruction without a recipe.
        mnemonic: &'static str,
    },
    /// Top-level execution reached a compute instruction outside any
    /// ensemble (fell into a subroutine body; end `main` with `RETURN`).
    StrayInstruction {
        /// Offending instruction index.
        line: usize,
        /// Mnemonic of the stray instruction.
        mnemonic: &'static str,
    },
    /// `SEND`/`RECV` executed on a lone machine outside a
    /// [`crate::System`].
    CommOutsideSystem {
        /// Offending instruction index.
        line: usize,
    },
    /// Execution ran off the end of the program — an unterminated
    /// `COMPUTE`/`MOVE`/`SEND` block or a control transfer past the last
    /// instruction.
    UnexpectedEnd {
        /// Index of the first missing instruction (== program length).
        line: usize,
    },
    /// Redundant executions of a compute instruction kept disagreeing
    /// after exhausting the retry budget
    /// ([`crate::RecoveryPolicy::max_retries`]).
    UncorrectedFault {
        /// Offending instruction index.
        line: usize,
    },
    /// An ensemble body exceeded its instruction budget
    /// ([`crate::RecoveryPolicy::watchdog_instructions`]) — typically a
    /// fault-corrupted loop counter spinning the EFI forever.
    WatchdogTriggered {
        /// Instruction index where the budget ran out.
        line: usize,
        /// Body instructions executed when the watchdog fired.
        instructions: u64,
    },
    /// A blocking `RECV` waited past its cycle budget
    /// ([`crate::RecoveryPolicy::recv_timeout`]) for a sender that can no
    /// longer deliver (completed, faulted, or its message was lost).
    RecvTimeout {
        /// The waiting MPU.
        mpu: u16,
        /// The sender it was waiting on.
        from: u16,
        /// Cycles spent waiting before giving up.
        waited: u64,
    },
    /// An error raised inside an ensemble, annotated with where it
    /// happened. Use [`SimError::root_cause`] to match on the underlying
    /// error.
    InEnsemble {
        /// MPU executing the ensemble.
        mpu: u16,
        /// Instruction index of the ensemble's opening header.
        line: usize,
        /// Which kind of ensemble was executing.
        kind: EnsembleKind,
        /// The underlying error.
        source: Box<SimError>,
    },
    /// Execution was cancelled through a [`RunControl`] token at a
    /// compute-ensemble boundary (deadline expiry, explicit abort).
    Cancelled {
        /// Instruction index execution stopped at; resuming is not
        /// possible — cancellation discards the run.
        line: usize,
    },
    /// Checkpoint/restart recovery exhausted its budget
    /// ([`crate::RecoveryPolicy::max_restarts`]): every attempt aborted on
    /// an injected-fault escalation. Carries the restart count and, via
    /// `source`, the last attempt's fault site so a host scheduler can
    /// classify the failure as transient (retry the whole job, fresh fault
    /// sites) rather than permanent. [`SimError::root_cause`] sees through
    /// this wrapper.
    RestartsExhausted {
        /// Instruction index of the ensemble's opening header.
        line: usize,
        /// Restarts performed before giving up.
        restarts: u32,
        /// The last attempt's error (fault site inside).
        source: Box<SimError>,
    },
    /// A parallel-sweep worker closure panicked while processing one item.
    /// The panic is contained to that item: the rest of the sweep
    /// completes and the pool survives.
    WorkerPanic {
        /// Index of the item whose closure panicked.
        item: usize,
        /// The panic payload rendered as text (`"<non-string panic>"`
        /// when the payload is not a string).
        payload: String,
    },
    /// A checkpoint was imported into an [`Mpu`] whose configuration does
    /// not match the one the checkpoint was exported under.
    CheckpointMismatch {
        /// Description of the disagreement.
        what: String,
    },
}

/// The ensemble kind carried by [`SimError::InEnsemble`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnsembleKind {
    /// A `COMPUTE … COMPUTE_DONE` ensemble.
    Compute,
    /// A `MOVE … MOVE_DONE` transfer block.
    Transfer,
    /// A `SEND … SEND_DONE` block.
    Send,
}

impl fmt::Display for EnsembleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EnsembleKind::Compute => "COMPUTE",
            EnsembleKind::Transfer => "MOVE",
            EnsembleKind::Send => "SEND",
        })
    }
}

impl SimError {
    /// Unwraps [`SimError::InEnsemble`] and [`SimError::RestartsExhausted`]
    /// context layers down to the underlying error.
    pub fn root_cause(&self) -> &SimError {
        match self {
            SimError::InEnsemble { source, .. } | SimError::RestartsExhausted { source, .. } => {
                source.root_cause()
            }
            other => other,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram(m) => write!(f, "invalid program: {m}"),
            SimError::GeometryExceeded { line, what } => {
                write!(f, "line {line}: geometry exceeded: {what}")
            }
            SimError::ReturnUnderflow { line } => {
                write!(f, "line {line}: RETURN with empty return-address stack")
            }
            SimError::ReturnStackOverflow { line, depth } => {
                write!(f, "line {line}: JUMP overflowed the {depth}-entry return-address stack")
            }
            SimError::RecipeUnavailable { line, mnemonic } => {
                write!(f, "line {line}: no recipe synthesizable for {mnemonic}")
            }
            SimError::StrayInstruction { line, mnemonic } => {
                write!(f, "line {line}: {mnemonic} reached outside any ensemble")
            }
            SimError::CommOutsideSystem { line } => {
                write!(f, "line {line}: SEND/RECV requires a multi-MPU System")
            }
            SimError::UnexpectedEnd { line } => {
                write!(f, "line {line}: execution ran past the end of the program")
            }
            SimError::UncorrectedFault { line } => {
                write!(f, "line {line}: redundant executions disagreed past the retry budget")
            }
            SimError::WatchdogTriggered { line, instructions } => {
                write!(f, "line {line}: watchdog fired after {instructions} body instructions")
            }
            SimError::RecvTimeout { mpu, from, waited } => {
                write!(f, "mpu{mpu}: RECV from mpu{from} timed out after {waited} cycles")
            }
            SimError::InEnsemble { mpu, line, kind, source } => {
                write!(f, "mpu{mpu}: in {kind} ensemble at line {line}: {source}")
            }
            SimError::Cancelled { line } => {
                write!(f, "line {line}: execution cancelled at an ensemble boundary")
            }
            SimError::RestartsExhausted { line, restarts, source } => {
                write!(
                    f,
                    "line {line}: checkpoint restarts exhausted after {restarts} attempts: \
                     {source}"
                )
            }
            SimError::WorkerPanic { item, payload } => {
                write!(f, "sweep worker panicked on item {item}: {payload}")
            }
            SimError::CheckpointMismatch { what } => {
                write!(f, "checkpoint does not fit this machine: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InEnsemble { source, .. } | SimError::RestartsExhausted { source, .. } => {
                Some(source.as_ref())
            }
            _ => None,
        }
    }
}

/// One register's worth of data shipped to another MPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteWrite {
    /// Destination RF holder.
    pub rfh: u16,
    /// Destination VRF within the holder.
    pub vrf: u16,
    /// Destination register.
    pub reg: u8,
    /// Element values, one per lane.
    pub values: Vec<u64>,
}

/// An inter-MPU message produced by a `SEND` block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Sender.
    pub src: MpuId,
    /// Receiver.
    pub dst: MpuId,
    /// Register payloads to apply at the receiver.
    pub writes: Vec<RemoteWrite>,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Sender-local cycle at which the message left the MPU.
    pub departure_cycle: u64,
}

/// Outcome of advancing a machine to its next communication boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum StepEvent {
    /// The program ran to completion (or a top-level `RETURN` halt).
    Completed,
    /// A `SEND` block finished; deliver this message, then call step again.
    Sent(Box<Message>),
    /// Execution is blocked on `RECV` from the named MPU; deliver a
    /// message with [`Mpu::deliver`] and step again.
    AwaitingRecv {
        /// The expected sender.
        src: MpuId,
    },
    /// An armed [`RunControl`] requested preemption: execution paused at a
    /// compute-ensemble boundary with no work in flight. Export the state
    /// with [`Mpu::export_checkpoint`] and resume later (possibly in a
    /// fresh machine via [`Mpu::import_checkpoint`]) by calling
    /// [`Mpu::step`] again — *without* [`Mpu::reset_pc`], which would
    /// restart the program instead.
    Preempted,
}

/// What an armed [`RunControl`] asks of the machine at a boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunDirective {
    Continue,
    Preempt,
    Cancel,
}

const CTRL_RUN: u8 = 0;
const CTRL_PREEMPT: u8 = 1;
const CTRL_CANCEL: u8 = 2;

/// A cooperative cancellation/preemption token shared between a host
/// scheduler and a running [`Mpu`].
///
/// The machine polls the token once per top-level instruction — the
/// compute-ensemble boundaries, where no partial ensemble work is in
/// flight. A cancel request surfaces as [`SimError::Cancelled`]; a preempt
/// request surfaces as [`StepEvent::Preempted`] with the machine in a
/// checkpointable state. The `boundaries` counter doubles as a progress
/// heartbeat: a watchdog that sees it stall knows the job is stuck inside
/// one ensemble (runaway loop) and can only be bounded by
/// [`crate::RecoveryPolicy::watchdog_instructions`].
#[derive(Debug, Default)]
pub struct RunControl {
    state: std::sync::atomic::AtomicU8,
    boundaries: std::sync::atomic::AtomicU64,
    /// Deterministic trigger: preempt when the boundary counter reaches
    /// this value (`0` = disarmed). Used by tests to pin the preemption
    /// point exactly.
    preempt_at: std::sync::atomic::AtomicU64,
}

impl RunControl {
    /// Creates a token in the running state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cooperative cancellation; the run errors with
    /// [`SimError::Cancelled`] at the next ensemble boundary.
    pub fn request_cancel(&self) {
        self.state.store(CTRL_CANCEL, std::sync::atomic::Ordering::Release);
    }

    /// Requests preemption; [`Mpu::step`] returns
    /// [`StepEvent::Preempted`] at the next ensemble boundary.
    pub fn request_preempt(&self) {
        // Never downgrade a cancel.
        let _ = self.state.compare_exchange(
            CTRL_RUN,
            CTRL_PREEMPT,
            std::sync::atomic::Ordering::AcqRel,
            std::sync::atomic::Ordering::Relaxed,
        );
    }

    /// Rearms the token for continued execution (clears a pending preempt
    /// or cancel; the boundary counter keeps running).
    pub fn clear(&self) {
        self.state.store(CTRL_RUN, std::sync::atomic::Ordering::Release);
    }

    /// Arms a deterministic preemption at the `n`-th boundary crossing
    /// (1-based; `0` disarms). Crossing `n` boundaries means `n - 1`
    /// top-level instructions have fully executed.
    pub fn preempt_at_boundary(&self, n: u64) {
        self.preempt_at.store(n, std::sync::atomic::Ordering::Release);
    }

    /// Ensemble boundaries crossed so far — the progress heartbeat.
    pub fn boundaries(&self) -> u64 {
        self.boundaries.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Counts one boundary crossing and reports what the machine should do.
    fn cross_boundary(&self) -> RunDirective {
        let crossed = self.boundaries.fetch_add(1, std::sync::atomic::Ordering::AcqRel) + 1;
        match self.state.load(std::sync::atomic::Ordering::Acquire) {
            CTRL_CANCEL => RunDirective::Cancel,
            CTRL_PREEMPT => RunDirective::Preempt,
            _ => {
                let at = self.preempt_at.load(std::sync::atomic::Ordering::Acquire);
                if at != 0 && crossed == at {
                    RunDirective::Preempt
                } else {
                    RunDirective::Continue
                }
            }
        }
    }
}

/// A full machine snapshot taken at a compute-ensemble boundary (after
/// [`StepEvent::Preempted`], or any time [`Mpu::step`] is not mid-flight).
///
/// Importing a checkpoint into a fresh [`Mpu`] built from the *same*
/// [`SimConfig`] and resuming with [`Mpu::step`] is byte-identical — lane
/// values and [`crate::Stats`] — to never having stopped: the snapshot
/// carries the VRF contents *with their fault-model PRNG state*, the lane
/// remap tables, the architectural recipe-cache state (table, LRU stamps,
/// hit/miss counters — a cold cache would replay a different miss
/// stream), the statistics ledger, and the program counter. Tracers,
/// recipe pools, and [`RunControl`] tokens are host-side attachments and
/// stay with the machine.
#[derive(Debug, Clone)]
pub struct MpuCheckpoint {
    config: SimConfig,
    id: MpuId,
    vrfs: HashMap<(u16, u16), BitPlaneVrf>,
    lane_maps: HashMap<(u16, u16), Vec<usize>>,
    cache: crate::recipe_cache::CacheCheckpoint,
    stats: Stats,
    pc: usize,
    halted: bool,
    inbox: Vec<Message>,
    traced_ensembles: u64,
    fallback_ensembles: u64,
}

impl MpuCheckpoint {
    /// The instruction index the resumed machine will continue from.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// The statistics ledger at the moment of capture.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Approximate host-memory footprint in 64-bit words (VRF planes
    /// dominate) — lets a scheduler budget checkpoint retention.
    pub fn words(&self) -> usize {
        self.vrfs.values().map(|v| v.snapshot().len()).sum()
    }
}

/// A single memory processing unit: control path + its slice of the PUM
/// datapath.
///
/// # Example
///
/// ```
/// use mastodon::{Mpu, SimConfig};
/// use mpu_isa::Program;
/// use pum_backend::DatapathKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mpu = Mpu::new(SimConfig::mpu(DatapathKind::Racer), 0.into());
/// mpu.write_register(0, 0, 0, &vec![2; 64])?;
/// mpu.write_register(0, 0, 1, &vec![40; 64])?;
/// let program = Program::parse_asm(
///     "COMPUTE h0 v0\n\
///      ADD r0 r1 r2\n\
///      COMPUTE_DONE",
/// )?;
/// let stats = mpu.run(&program)?;
/// assert_eq!(mpu.read_register(0, 0, 2)?[0], 42);
/// assert!(stats.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Mpu {
    config: SimConfig,
    id: MpuId,
    vrfs: HashMap<(u16, u16), BitPlaneVrf>,
    /// Logical-lane → physical-lane map per VRF, present only when
    /// permanent-fault remapping is active: the host-visible vector lives
    /// on the healthy lanes, dead lanes are skipped, and the logical
    /// width is `lanes_per_vrf - spare_lanes` (shrinking further if dead
    /// lanes outnumber the spares).
    lane_maps: HashMap<(u16, u16), Vec<usize>>,
    cache: RecipeCache,
    stats: Stats,
    pc: usize,
    halted: bool,
    inbox: Vec<Message>,
    /// Observability hook (`None` by default): every stats charge is
    /// mirrored as a [`TraceEvent`] when armed. Disarmed, each emission
    /// site is a single branch and no event is ever constructed, so
    /// execution and statistics are byte-identical either way.
    tracer: Option<Box<dyn Tracer>>,
    /// Compute ensembles executed on the fused trace tier (host-side
    /// telemetry; not part of [`Stats`] — tier choice never changes the
    /// architectural ledger).
    traced_ensembles: u64,
    /// Compute ensembles that fell back to per-instruction execution.
    fallback_ensembles: u64,
    /// Cooperative cancellation/preemption token (`None` by default):
    /// polled once per top-level instruction. Host-side only — polling
    /// never charges cycles, so controlled and uncontrolled runs produce
    /// byte-identical lane values and [`Stats`].
    ctrl: Option<Arc<RunControl>>,
}

impl Mpu {
    /// Creates an MPU with empty (zeroed) VRFs.
    pub fn new(config: SimConfig, id: MpuId) -> Self {
        let cache = RecipeCache::new(config.template_entries);
        Self {
            config,
            id,
            vrfs: HashMap::new(),
            lane_maps: HashMap::new(),
            cache,
            stats: Stats::default(),
            pc: 0,
            halted: false,
            inbox: Vec::new(),
            tracer: None,
            traced_ensembles: 0,
            fallback_ensembles: 0,
            ctrl: None,
        }
    }

    /// Arms a cooperative [`RunControl`] token. The machine polls it at
    /// every compute-ensemble boundary (once per top-level instruction):
    /// a cancel request errors with [`SimError::Cancelled`], a preempt
    /// request pauses with [`StepEvent::Preempted`]. Purely host-side —
    /// results and statistics are unchanged by polling.
    pub fn set_run_control(&mut self, ctrl: Arc<RunControl>) {
        self.ctrl = Some(ctrl);
    }

    /// Disarms the [`RunControl`] token, if any.
    pub fn clear_run_control(&mut self) {
        self.ctrl = None;
    }

    /// Execution-tier telemetry: `(trace, fallback)` counts of compute
    /// ensembles run on the fused trace tier vs. the per-instruction
    /// (compiled/interpreted) tier. Host-side observability only — lane
    /// values and [`Stats`] are bit-identical whichever tier executed.
    pub fn tier_counts(&self) -> (u64, u64) {
        (self.traced_ensembles, self.fallback_ensembles)
    }

    /// Arms structured tracing: `tracer` receives one [`TraceEvent`] per
    /// stats charge (see [`crate::trace`] for the contract). Tracing is
    /// observational only — lane values and [`Stats`] stay byte-identical
    /// to an untraced run.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Emits a trace event when a tracer is armed. The closure builds the
    /// `(kind, delta)` pair only in that case, so disarmed machines pay a
    /// single branch. Call *after* applying the charge: the event's cycle
    /// stamp is read from the post-charge ledger.
    #[inline]
    fn trace<F: FnOnce() -> (TraceKind, Stats)>(&mut self, line: usize, f: F) {
        if let Some(tracer) = self.tracer.as_mut() {
            let (kind, delta) = f();
            tracer.event(&TraceEvent {
                mpu: self.id.0,
                line,
                cycle: self.stats.cycles,
                kind,
                delta,
            });
        }
    }

    /// Traces one control-path instruction: its control-cycle charge plus
    /// the instruction count.
    #[inline]
    fn trace_control_instr(&mut self, line: usize, mnemonic: &'static str, cycles: u64) {
        self.trace(line, || {
            let delta =
                Stats { cycles, control_cycles: cycles, instructions: 1, ..Stats::default() };
            (TraceKind::Instr { mnemonic, class: InstrClass::Control }, delta)
        });
    }

    /// Traces one redundancy/recovery action and its fault counter.
    #[inline]
    fn trace_fault(&mut self, line: usize, action: FaultAction) {
        self.trace(line, || {
            let mut delta = Stats::default();
            match action {
                FaultAction::RedundantRun => delta.faults.redundant_runs = 1,
                FaultAction::Detected => delta.faults.detected = 1,
                FaultAction::Corrected => delta.faults.corrected = 1,
                FaultAction::Retry => delta.faults.retries = 1,
            }
            (TraceKind::Fault(action), delta)
        });
    }

    /// Creates an MPU whose recipe-cache misses consult `pool` before
    /// synthesizing from scratch. Host-side only: simulated timing, energy,
    /// and hit/miss statistics match [`Mpu::new`] exactly.
    pub fn with_pool(config: SimConfig, id: MpuId, pool: Arc<RecipePool>) -> Self {
        let mut mpu = Self::new(config, id);
        mpu.cache.set_pool(pool);
        mpu
    }

    /// Attaches a shared recipe-synthesis pool to an existing MPU (see
    /// [`Mpu::with_pool`]).
    pub fn set_recipe_pool(&mut self, pool: Arc<RecipePool>) {
        self.cache.set_pool(pool);
    }

    /// Fetches the instruction at `pc`, rejecting truncated programs
    /// (unterminated blocks, control transfers past the end) instead of
    /// panicking.
    fn fetch(program: &Program, pc: usize) -> Result<Instruction, SimError> {
        program.get(pc).copied().ok_or(SimError::UnexpectedEnd { line: pc })
    }

    /// This MPU's identifier.
    pub fn id(&self) -> MpuId {
        self.id
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The current program counter (a top-level instruction index whenever
    /// [`Mpu::step`] is not mid-flight).
    pub fn pc(&self) -> usize {
        self.pc
    }

    fn check_geometry(&self, line: usize, rfh: u16, vrf: u16) -> Result<(), SimError> {
        let g = self.config.datapath.geometry();
        if (rfh as usize) >= g.rfhs_per_mpu {
            return Err(SimError::GeometryExceeded {
                line,
                what: format!("RFH {rfh} >= {}", g.rfhs_per_mpu),
            });
        }
        if (vrf as usize) >= g.vrfs_per_rfh {
            return Err(SimError::GeometryExceeded {
                line,
                what: format!("VRF {vrf} >= {}", g.vrfs_per_rfh),
            });
        }
        Ok(())
    }

    fn vrf_mut(&mut self, rfh: u16, vrf: u16) -> &mut BitPlaneVrf {
        if !self.vrfs.contains_key(&(rfh, vrf)) {
            self.init_vrf(rfh, vrf);
        }
        match self.vrfs.get_mut(&(rfh, vrf)) {
            Some(v) => v,
            None => unreachable!("init_vrf inserts the VRF"),
        }
    }

    /// Powers on one VRF: attaches its derived fault model (stuck lanes
    /// assert from power-on) and, under the remap policy, runs the boot
    /// self-test that power-gates dead lanes and maps the logical vector
    /// onto the healthy ones.
    fn init_vrf(&mut self, rfh: u16, vrf: u16) {
        let g = self.config.datapath.geometry();
        let mut v = BitPlaneVrf::new(g.lanes_per_vrf, g.regs_per_vrf);
        if self.config.fault.enabled() {
            v.set_fault_model(self.config.fault.vrf_model(
                self.config.datapath.family(),
                self.id.0,
                rfh,
                vrf,
                g.lanes_per_vrf,
            ));
            if self.config.recovery.remap {
                let map = self.self_test_and_remap(&mut v, g.lanes_per_vrf);
                self.lane_maps.insert((rfh, vrf), map);
            }
        }
        self.vrfs.insert((rfh, vrf), v);
    }

    /// Boot self-test: march an all-ones then an all-zeros pattern through
    /// register 0 — a lane that cannot hold either value is dead. Dead
    /// lanes are power-gated (forced to 0 on every plane, including the
    /// mask, so they never participate again) and the logical vector is
    /// packed onto the remaining healthy lanes, spending the configured
    /// spares first. The march and repack are charged as transfer work.
    fn self_test_and_remap(&mut self, v: &mut BitPlaneVrf, lanes: usize) -> Vec<usize> {
        v.write_lane_values(0, &vec![u64::MAX; lanes]);
        let ones = v.read_lane_values(0);
        v.write_lane_values(0, &vec![0; lanes]);
        let zeros = v.read_lane_values(0);
        let dead: Vec<usize> =
            (0..lanes).filter(|&l| ones[l] != u64::MAX || zeros[l] != 0).collect();
        if !dead.is_empty() {
            if let Some(model) = v.fault_model_mut() {
                for &lane in &dead {
                    model.kill_lane(lane);
                }
            }
            // Re-attach so the power-gating forces every plane now.
            let model = v.fault_model().cloned();
            v.set_fault_model(model);
        }
        let logical = lanes.saturating_sub(self.config.recovery.spare_lanes).max(1);
        let map: Vec<usize> = (0..lanes).filter(|l| !dead.contains(l)).take(logical).collect();
        let dead_n = dead.len() as u64;
        let remapped_n = map.iter().enumerate().filter(|&(i, &p)| i != p).count() as u64;
        let lost_n = (logical - map.len()) as u64;
        let st = &mut self.stats.faults;
        st.dead_lanes += dead_n;
        st.remapped_lanes += remapped_n;
        st.lanes_lost += lost_n;
        // Overhead: two write/read march passes over one register.
        let words = 4 * lanes as u64;
        let cycles = words * self.config.datapath.transfer_cycles_per_word();
        let pj = words as f64 * self.config.datapath.transfer_energy_pj_per_word();
        self.stats.cycles += cycles;
        self.stats.transfer_cycles += cycles;
        self.stats.energy.transfer_pj += pj;
        self.trace(0, || {
            let mut delta = Stats::default();
            delta.faults.dead_lanes = dead_n;
            delta.faults.remapped_lanes = remapped_n;
            delta.faults.lanes_lost = lost_n;
            delta.cycles = cycles;
            delta.transfer_cycles = cycles;
            delta.energy.transfer_pj = pj;
            (TraceKind::SelfTest { dead: dead_n, remapped: remapped_n, lost: lost_n }, delta)
        });
        map
    }

    /// Writes host-visible element values through the logical→physical
    /// lane map (identity when remapping is off).
    fn write_lanes_logical(&mut self, rfh: u16, vrf: u16, reg: u8, values: &[u64]) {
        let lanes = self.config.datapath.geometry().lanes_per_vrf;
        self.vrf_mut(rfh, vrf); // materialize (runs the boot self-test)
        let map = self.lane_maps.get(&(rfh, vrf));
        let Some(v) = self.vrfs.get_mut(&(rfh, vrf)) else { return };
        match map {
            Some(map) => {
                let mut physical = vec![0u64; lanes];
                for (i, &p) in map.iter().enumerate() {
                    physical[p] = values.get(i).copied().unwrap_or(0);
                }
                v.write_lane_values(reg, &physical);
            }
            None => {
                // Lanes beyond the slice zero-fill implicitly; surplus
                // values are ignored (hardware has no rows for them).
                let take = values.len().min(lanes);
                v.write_lane_values(reg, &values[..take]);
            }
        }
    }

    /// Reads host-visible element values through the logical→physical
    /// lane map (identity when remapping is off).
    fn read_lanes_logical(&mut self, rfh: u16, vrf: u16, reg: u8) -> Vec<u64> {
        self.vrf_mut(rfh, vrf);
        let Some(v) = self.vrfs.get(&(rfh, vrf)) else { return Vec::new() };
        let physical = v.read_lane_values(reg);
        match self.lane_maps.get(&(rfh, vrf)) {
            Some(map) => map.iter().map(|&p| physical[p]).collect(),
            None => physical,
        }
    }

    /// Host-visible vector width of a VRF: the full lane count normally,
    /// the remapped logical width when lane remapping is active.
    pub fn logical_lanes(&mut self, rfh: u16, vrf: u16) -> usize {
        self.vrf_mut(rfh, vrf);
        match self.lane_maps.get(&(rfh, vrf)) {
            Some(map) => map.len(),
            None => self.config.datapath.geometry().lanes_per_vrf,
        }
    }

    /// Host/DMA path: loads element values into a register (untimed; the
    /// paper's workloads assume data resident in PUM).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::GeometryExceeded`] for out-of-range indices.
    pub fn write_register(
        &mut self,
        rfh: u16,
        vrf: u16,
        reg: u8,
        values: &[u64],
    ) -> Result<(), SimError> {
        self.check_geometry(0, rfh, vrf)?;
        self.write_lanes_logical(rfh, vrf, reg, values);
        Ok(())
    }

    /// Host/DMA path: reads a register back as element values.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::GeometryExceeded`] for out-of-range indices.
    pub fn read_register(&mut self, rfh: u16, vrf: u16, reg: u8) -> Result<Vec<u64>, SimError> {
        self.check_geometry(0, rfh, vrf)?;
        Ok(self.read_lanes_logical(rfh, vrf, reg))
    }

    /// Runs a complete program that performs no inter-MPU communication.
    ///
    /// # Errors
    ///
    /// Fails on invalid programs, geometry violations, or `SEND`/`RECV`
    /// (which need a [`crate::System`]).
    pub fn run(&mut self, program: &Program) -> Result<Stats, SimError> {
        self.reset_pc();
        match self.step(program)? {
            StepEvent::Completed => Ok(self.finish()),
            StepEvent::Sent(_) | StepEvent::AwaitingRecv { .. } => {
                Err(SimError::CommOutsideSystem { line: self.pc })
            }
            // `run` has no resume surface; preemptible execution drives
            // `step` directly.
            StepEvent::Preempted => Err(SimError::Cancelled { line: self.pc }),
        }
    }

    /// Rewinds the PC for a fresh run (VRF data is preserved).
    pub fn reset_pc(&mut self) {
        self.pc = 0;
        self.halted = false;
    }

    /// Finalizes end-of-run energy (front-end power in MPU mode, CPU idle
    /// power in Baseline mode) and returns a snapshot of the statistics.
    pub fn finish(&mut self) -> Stats {
        let injected = self.vrfs.values_mut().map(BitPlaneVrf::take_injected).sum::<u64>();
        self.stats.faults.injected += injected;
        let mut delta = Stats::default();
        delta.faults.injected = injected;
        match self.config.mode {
            ExecutionMode::Mpu => {
                let pj = (self.config.frontend_dynamic_mw + self.config.frontend_static_mw)
                    * self.stats.cycles as f64;
                self.stats.energy.frontend_pj += pj;
                delta.energy.frontend_pj = pj;
            }
            ExecutionMode::Baseline => {
                let non_offload = self.stats.cycles.saturating_sub(self.stats.offload_cycles);
                let pj = self.config.offload.cpu_idle_mw * non_offload as f64;
                self.stats.energy.cpu_pj += pj;
                delta.energy.cpu_pj = pj;
            }
        }
        let line = self.pc;
        self.trace(line, || (TraceKind::Finish, delta));
        self.stats
    }

    /// Snapshots the complete machine state at the current (ensemble)
    /// boundary. See [`MpuCheckpoint`] for the byte-identical-resume
    /// contract. Call only when [`Mpu::step`] is not mid-flight: after it
    /// returned [`StepEvent::Preempted`], [`StepEvent::Completed`], or
    /// before the first step.
    pub fn export_checkpoint(&self) -> MpuCheckpoint {
        MpuCheckpoint {
            config: self.config.clone(),
            id: self.id,
            vrfs: self.vrfs.clone(),
            lane_maps: self.lane_maps.clone(),
            cache: self.cache.checkpoint(),
            stats: self.stats,
            pc: self.pc,
            halted: self.halted,
            inbox: self.inbox.clone(),
            traced_ensembles: self.traced_ensembles,
            fallback_ensembles: self.fallback_ensembles,
        }
    }

    /// Restores a [`MpuCheckpoint`] into this machine, which then resumes
    /// from the captured boundary on the next [`Mpu::step`] — do *not*
    /// call [`Mpu::reset_pc`] afterwards, it would restart the program.
    /// The machine adopts the checkpoint's MPU id (fault-site derivation
    /// keys on it). Host-side attachments (tracer, recipe pool, run
    /// control) are untouched.
    ///
    /// # Errors
    ///
    /// [`SimError::CheckpointMismatch`] when this machine was built from a
    /// different [`SimConfig`] than the checkpoint — geometry, datapath,
    /// fault, and recovery settings must all agree for resume to be
    /// meaningful.
    pub fn import_checkpoint(&mut self, cp: &MpuCheckpoint) -> Result<(), SimError> {
        if self.config != cp.config {
            return Err(SimError::CheckpointMismatch {
                what: format!(
                    "machine config `{}` differs from checkpoint config `{}`",
                    self.config.label(),
                    cp.config.label()
                ),
            });
        }
        self.id = cp.id;
        self.vrfs = cp.vrfs.clone();
        self.lane_maps = cp.lane_maps.clone();
        self.cache.restore_checkpoint(&cp.cache);
        self.stats = cp.stats;
        self.pc = cp.pc;
        self.halted = cp.halted;
        self.inbox = cp.inbox.clone();
        self.traced_ensembles = cp.traced_ensembles;
        self.fallback_ensembles = cp.fallback_ensembles;
        Ok(())
    }

    /// Queues an incoming message (applied when `RECV` executes).
    pub fn deliver(&mut self, message: Message, arrival_cycle: u64) {
        // The receiver cannot see the message before it arrives.
        self.stats.cycles = self.stats.cycles.max(arrival_cycle);
        self.inbox.push(message);
    }

    /// Advances execution until completion or the next communication
    /// boundary. See [`StepEvent`].
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn step(&mut self, program: &Program) -> Result<StepEvent, SimError> {
        if self.pc == 0 && !self.halted {
            program.validate().map_err(|e| SimError::InvalidProgram(e.to_string()))?;
        }
        let len = program.len();
        while self.pc < len && !self.halted {
            let line = self.pc;
            if let Some(ctrl) = &self.ctrl {
                match ctrl.cross_boundary() {
                    RunDirective::Continue => {}
                    RunDirective::Preempt => return Ok(StepEvent::Preempted),
                    RunDirective::Cancel => return Err(SimError::Cancelled { line }),
                }
            }
            match program[line] {
                Instruction::Compute { .. } => self
                    .exec_compute_ensemble(program)
                    .map_err(|e| self.in_ensemble(line, EnsembleKind::Compute, e))?,
                Instruction::Move { .. } => self
                    .exec_transfer_block(program, None)
                    .map_err(|e| self.in_ensemble(line, EnsembleKind::Transfer, e))?,
                Instruction::MpuSync => {
                    // One compute controller → ensembles already serialized;
                    // the fence costs a marker.
                    let marker = self.config.control.ensemble_marker;
                    self.stats.cycles += marker;
                    self.stats.control_cycles += marker;
                    self.stats.instructions += 1;
                    self.trace(line, || {
                        let delta = Stats {
                            cycles: marker,
                            control_cycles: marker,
                            instructions: 1,
                            ..Stats::default()
                        };
                        let kind =
                            TraceKind::Instr { mnemonic: "MPU_SYNC", class: InstrClass::Control };
                        (kind, delta)
                    });
                    self.pc += 1;
                }
                Instruction::Send { dst } => {
                    // Baseline datapaths have no inter-MPU message passing:
                    // the host CPU mediates every collective step.
                    let msg = self
                        .exec_send_block(program, dst)
                        .map_err(|e| self.in_ensemble(line, EnsembleKind::Send, e))?;
                    self.offload_comm(msg.bytes, line);
                    return Ok(StepEvent::Sent(Box::new(msg)));
                }
                Instruction::Recv { src } => {
                    if let Some(pos) = self.inbox.iter().position(|m| m.src == src) {
                        let msg = self.inbox.remove(pos);
                        if self.config.mode == ExecutionMode::Baseline {
                            // CPU-mediated delivery over the off-chip bus.
                            self.offload_comm(msg.bytes, line);
                        }
                        self.apply_message(&msg);
                        self.stats.instructions += 1;
                        self.trace(line, || {
                            let delta = Stats { instructions: 1, ..Stats::default() };
                            (TraceKind::Instr { mnemonic: "RECV", class: InstrClass::Comm }, delta)
                        });
                        self.pc += 1;
                    } else {
                        return Ok(StepEvent::AwaitingRecv { src });
                    }
                }
                Instruction::Return => {
                    // Top-level RETURN is the halt convention (end of main;
                    // subroutine bodies follow).
                    self.halted = true;
                    self.stats.instructions += 1;
                    self.trace(line, || {
                        let delta = Stats { instructions: 1, ..Stats::default() };
                        (TraceKind::Instr { mnemonic: "RETURN", class: InstrClass::Control }, delta)
                    });
                }
                Instruction::Nop => {
                    let nop = self.config.control.nop;
                    self.stats.cycles += nop;
                    self.stats.control_cycles += nop;
                    self.stats.instructions += 1;
                    self.trace(line, || {
                        let delta = Stats {
                            cycles: nop,
                            control_cycles: nop,
                            instructions: 1,
                            ..Stats::default()
                        };
                        (TraceKind::Instr { mnemonic: "NOP", class: InstrClass::Control }, delta)
                    });
                    self.pc += 1;
                }
                ref other => {
                    return Err(SimError::StrayInstruction { line, mnemonic: other.mnemonic() });
                }
            }
        }
        Ok(StepEvent::Completed)
    }

    /// Annotates an ensemble-internal error with this MPU's id, the
    /// ensemble's opening line, and its kind (idempotent: errors already
    /// carrying context pass through).
    fn in_ensemble(&self, line: usize, kind: EnsembleKind, source: SimError) -> SimError {
        match source {
            wrapped @ SimError::InEnsemble { .. } => wrapped,
            source => SimError::InEnsemble { mpu: self.id.0, line, kind, source: Box::new(source) },
        }
    }

    // ----- compute ensembles ------------------------------------------

    /// Executes one compute ensemble, rolling back to a checkpoint of the
    /// VRF state and restarting (up to
    /// [`crate::RecoveryPolicy::max_restarts`] times) when redundancy
    /// escalates an uncorrected fault or the watchdog fires. Re-runs draw
    /// fresh fault sites, so a restart usually completes clean.
    fn exec_compute_ensemble(&mut self, program: &Program) -> Result<(), SimError> {
        if !self.config.recovery.checkpoint_restart {
            return self.exec_compute_ensemble_inner(program);
        }
        let start_pc = self.pc;
        let checkpoint: Vec<((u16, u16), Vec<u64>)> =
            self.vrfs.iter().map(|(&k, v)| (k, v.snapshot())).collect();
        // Checkpointing streams every live register row out to stable
        // storage: charge it as transfer work.
        let words: u64 = checkpoint.iter().map(|(_, s)| s.len() as u64).sum();
        let cp_cycles = words * self.config.datapath.transfer_cycles_per_word();
        let cp_pj = words as f64 * self.config.datapath.transfer_energy_pj_per_word();
        self.stats.cycles += cp_cycles;
        self.stats.transfer_cycles += cp_cycles;
        self.stats.energy.transfer_pj += cp_pj;
        self.trace(start_pc, || {
            let delta = Stats {
                cycles: cp_cycles,
                transfer_cycles: cp_cycles,
                energy: EnergyStats { transfer_pj: cp_pj, ..EnergyStats::default() },
                ..Stats::default()
            };
            (TraceKind::Checkpoint, delta)
        });
        let mut restarts = 0u32;
        loop {
            match self.exec_compute_ensemble_inner(program) {
                Ok(()) => return Ok(()),
                Err(e)
                    if restarts < self.config.recovery.max_restarts
                        && matches!(
                            e.root_cause(),
                            SimError::UncorrectedFault { .. } | SimError::WatchdogTriggered { .. }
                        ) =>
                {
                    restarts += 1;
                    self.stats.faults.ensemble_restarts += 1;
                    self.pc = start_pc;
                    let keys: Vec<(u16, u16)> = self.vrfs.keys().copied().collect();
                    for k in keys {
                        let snap = checkpoint.iter().find(|(ck, _)| *ck == k).map(|(_, s)| s);
                        let Some(v) = self.vrfs.get_mut(&k) else { continue };
                        match snap {
                            Some(snap) => v.restore(snap),
                            None => {
                                // Materialized during the failed attempt:
                                // back to power-on zeros (re-forcing any
                                // stuck lanes).
                                v.restore(&vec![0; v.snapshot().len()]);
                                let model = v.fault_model().cloned();
                                v.set_fault_model(model);
                            }
                        }
                    }
                    // Restore streams the checkpoint back in.
                    self.stats.cycles += cp_cycles;
                    self.stats.transfer_cycles += cp_cycles;
                    self.stats.energy.transfer_pj += cp_pj;
                    self.trace(start_pc, || {
                        let mut delta = Stats::default();
                        delta.faults.ensemble_restarts = 1;
                        delta.cycles = cp_cycles;
                        delta.transfer_cycles = cp_cycles;
                        delta.energy.transfer_pj = cp_pj;
                        (TraceKind::Restart, delta)
                    });
                }
                Err(e)
                    if matches!(
                        e.root_cause(),
                        SimError::UncorrectedFault { .. } | SimError::WatchdogTriggered { .. }
                    ) =>
                {
                    // The restart budget is spent and the final attempt
                    // still escalated: wrap with the budget context so a
                    // host scheduler can classify this as transient (a
                    // whole-job retry draws fresh fault sites) while
                    // `root_cause` still reaches the fault site inside.
                    return Err(SimError::RestartsExhausted {
                        line: start_pc,
                        restarts,
                        source: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Executes one compute ensemble starting at `self.pc` (its first
    /// `COMPUTE` header instruction), including thermal-wave replay.
    fn exec_compute_ensemble_inner(&mut self, program: &Program) -> Result<(), SimError> {
        let marker = self.config.control.ensemble_marker;
        let marker_delta =
            Stats { cycles: marker, control_cycles: marker, instructions: 1, ..Stats::default() };
        let header_pc = self.pc;
        self.trace(header_pc, || {
            (TraceKind::EnsembleBegin { kind: EnsembleKind::Compute }, Stats::default())
        });
        // Collect the contiguous COMPUTE header.
        let mut members: Vec<(u16, u16)> = Vec::new();
        while let Instruction::Compute { rfh, vrf } = Self::fetch(program, self.pc)? {
            self.check_geometry(self.pc, rfh.0, vrf.0)?;
            members.push((rfh.0, vrf.0));
            self.stats.cycles += marker;
            self.stats.control_cycles += marker;
            self.stats.instructions += 1;
            let line = self.pc;
            self.trace(line, || {
                (TraceKind::Instr { mnemonic: "COMPUTE", class: InstrClass::Marker }, marker_delta)
            });
            self.pc += 1;
        }
        let body_start = self.pc;

        // Thermal-aware wave formation (Fig. 10): per-RFH queues, at most
        // `active_vrfs_per_rfh` of each RFH's VRFs per wave.
        let waves = form_waves(&members, self.config.datapath.geometry().active_vrfs_per_rfh);
        self.stats.scheduler_waves += waves.len() as u64;

        // Tier selection: a straight-line body fuses into a cached
        // EnsembleTrace replayed flat per wave; anything else (or any
        // configuration needing per-instruction fidelity) falls back to
        // the per-instruction tier. Either way the lane values and every
        // Stats counter are bit-identical.
        let fused = self.ensemble_trace(program, body_start);
        match &fused {
            Some(_) => self.traced_ensembles += 1,
            None => self.fallback_ensembles += 1,
        }
        let mut end_pc = body_start;
        for (index, wave) in waves.iter().enumerate() {
            self.trace(body_start, || {
                let delta = Stats { scheduler_waves: 1, ..Stats::default() };
                (TraceKind::Wave { index, vrfs: wave.len() }, delta)
            });
            end_pc = match &fused {
                Some(t) => self.run_body_traced(t, body_start, wave)?,
                None => self.run_body(program, body_start, wave)?,
            };
        }
        if waves.is_empty() {
            // Headerless (empty) ensemble: skip to the footer.
            end_pc = match &fused {
                Some(t) => self.run_body_traced(t, body_start, &[])?,
                None => self.run_body(program, body_start, &[])?,
            };
        }
        // Footer.
        self.stats.cycles += marker;
        self.stats.control_cycles += marker;
        self.stats.instructions += 1;
        self.trace(end_pc, || {
            let kind = TraceKind::Instr { mnemonic: "COMPUTE_DONE", class: InstrClass::Marker };
            (kind, marker_delta)
        });
        self.trace(end_pc, || {
            (TraceKind::EnsembleEnd { kind: EnsembleKind::Compute }, Stats::default())
        });
        self.pc = end_pc + 1;
        Ok(())
    }

    /// Interprets an ensemble body once for one wave of VRFs; returns the
    /// index of the terminating `COMPUTE_DONE`.
    fn run_body(
        &mut self,
        program: &Program,
        body_start: usize,
        wave: &[(u16, u16)],
    ) -> Result<usize, SimError> {
        let mut pc = body_start;
        let mut return_stack: Vec<usize> = Vec::new();
        // RACER bit-pipelining: consecutive compute instructions overlap
        // across bit-stages; the first instruction after a (re)fill pays
        // full serial latency, later ones only their stage time.
        let mut pipeline_warm = false;
        // Baseline offload batching: one host round trip services a
        // contiguous run of control instructions; a compute instruction
        // ends the batch.
        let mut offload_batch = false;
        // Playback-buffer occupancy: bodies longer than the buffer incur
        // refills.
        let mut playback_used = 0usize;
        // Watchdog: bound on body instructions per wave pass, so a
        // fault-corrupted loop counter cannot spin the EFI forever.
        let mut body_instructions = 0u64;

        // Reset masks: an ensemble starts with all lanes enabled.
        for &(rfh, vrf) in wave {
            self.vrf_mut(rfh, vrf).fill_plane(Plane::Mask, true);
        }

        loop {
            let line = pc;
            let instr = Self::fetch(program, line)?;
            body_instructions += 1;
            if let Some(limit) = self.config.recovery.watchdog_instructions {
                if body_instructions > limit {
                    return Err(SimError::WatchdogTriggered { line, instructions: limit });
                }
            }
            playback_used += 1;
            if playback_used > self.config.playback_entries {
                playback_used = 1;
                let refill = self.config.control.playback_refill;
                self.charge_control(refill);
                self.trace(line, || {
                    let delta =
                        Stats { cycles: refill, control_cycles: refill, ..Stats::default() };
                    (TraceKind::PlaybackRefill, delta)
                });
            }
            match instr {
                Instruction::ComputeDone => {
                    // Leave predication clean for the next ensemble.
                    for &(rfh, vrf) in wave {
                        self.vrf_mut(rfh, vrf).fill_plane(Plane::Mask, true);
                    }
                    return Ok(line);
                }
                Instruction::Binary { .. }
                | Instruction::Unary { .. }
                | Instruction::Compare { .. }
                | Instruction::Fuzzy { .. }
                | Instruction::Cas { .. }
                | Instruction::Init { .. } => {
                    // In Baseline mode the CPU stays engaged across the
                    // whole control region (it issues these datapath ops
                    // remotely), so an open offload batch persists.
                    self.exec_compute_instr(&instr, wave, &mut pipeline_warm, line)?;
                    pc += 1;
                }
                Instruction::SetMask { rs } => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch, line);
                    let c = self.config.control.mask_update;
                    self.charge_control(c);
                    for &(rfh, vrf) in wave {
                        let v = self.vrf_mut(rfh, vrf);
                        if rs == COND_REG {
                            v.copy_plane(Plane::Cond, Plane::Mask);
                        } else {
                            v.copy_plane(Plane::Reg { reg: rs.0 as u8, bit: 0 }, Plane::Mask);
                        }
                    }
                    self.stats.instructions += 1;
                    self.trace_control_instr(line, "SETMASK", c);
                    pc += 1;
                }
                Instruction::GetMask { rd } => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch, line);
                    let c = self.config.control.mask_readout;
                    self.charge_control(c);
                    for &(rfh, vrf) in wave {
                        let v = self.vrf_mut(rfh, vrf);
                        v.set_mask_enabled(false);
                        v.copy_plane(Plane::Mask, Plane::Reg { reg: rd.0 as u8, bit: 0 });
                        for bit in 1..64 {
                            v.fill_plane(Plane::Reg { reg: rd.0 as u8, bit }, false);
                        }
                        v.set_mask_enabled(true);
                    }
                    self.stats.instructions += 1;
                    self.trace_control_instr(line, "GETMASK", c);
                    pc += 1;
                }
                Instruction::Unmask => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch, line);
                    let c = self.config.control.mask_update;
                    self.charge_control(c);
                    for &(rfh, vrf) in wave {
                        self.vrf_mut(rfh, vrf).fill_plane(Plane::Mask, true);
                    }
                    self.stats.instructions += 1;
                    self.trace_control_instr(line, "UNMASK", c);
                    pc += 1;
                }
                Instruction::JumpCond { target } => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch, line);
                    // The branch decision hands control back to the PUM
                    // fetcher: the CPU visit ends here.
                    offload_batch = false;
                    let c = self.config.control.efi_eval;
                    self.charge_control(c);
                    // EFI: jump back (continue the loop) while any lane of
                    // any wave VRF remains enabled (§VI-B semantics).
                    let any_enabled = wave
                        .iter()
                        .any(|&(rfh, vrf)| self.vrf_mut(rfh, vrf).any_lane_set(Plane::Mask));
                    self.stats.instructions += 1;
                    self.trace_control_instr(line, "JUMP_COND", c);
                    pc = if any_enabled { target.index() } else { pc + 1 };
                }
                Instruction::Jump { target } => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch, line);
                    let c = self.config.control.jump;
                    self.charge_control(c);
                    self.stats.instructions += 1;
                    self.trace_control_instr(line, "JUMP", c);
                    // JUMP is a call: it pushes its fall-through address
                    // for the matching RETURN. The stack is a hardware
                    // structure — a corrupted target re-executing JUMPs
                    // without RETURNs must trap, not grow without bound.
                    if return_stack.len() >= RETURN_STACK_DEPTH {
                        return Err(SimError::ReturnStackOverflow {
                            line,
                            depth: RETURN_STACK_DEPTH,
                        });
                    }
                    return_stack.push(pc + 1);
                    pc = target.index();
                }
                Instruction::Return => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch, line);
                    let c = self.config.control.jump;
                    self.charge_control(c);
                    self.stats.instructions += 1;
                    self.trace_control_instr(line, "RETURN", c);
                    pc = return_stack.pop().ok_or(SimError::ReturnUnderflow { line })?;
                }
                Instruction::Nop => {
                    // A NOP is a control instruction like every other body
                    // control op: in Baseline mode it rides a CPU offload
                    // visit (draining the bit pipeline and opening/joining
                    // a batch) exactly as SETMASK/JUMP do.
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch, line);
                    let c = self.config.control.nop;
                    self.charge_control(c);
                    self.stats.instructions += 1;
                    self.trace_control_instr(line, "NOP", c);
                    pc += 1;
                }
                ref other => {
                    return Err(SimError::StrayInstruction { line, mnemonic: other.mnemonic() });
                }
            }
        }
    }

    /// Tier-selection policy: returns the fused [`EnsembleTrace`] for the
    /// body starting at `body_start` when it is eligible for the trace
    /// tier, or `None` to fall back to per-instruction execution.
    ///
    /// Eligible bodies are straight-line: only compute instructions,
    /// `SETMASK`/`UNMASK`, and `NOP`, terminated by `COMPUTE_DONE` — no
    /// data-dependent control flow (`JUMP_COND`/EFI, `JUMP`/`RETURN`) and
    /// no mid-body mask readout (`GETMASK`). Configurations that need
    /// per-instruction fidelity also fall back: interpreted-recipe mode,
    /// Baseline offload mode, an armed tracer (events are per
    /// instruction), fault injection (draws must happen in program
    /// order), redundancy (snapshot/compare per instruction), and a
    /// watchdog tighter than the body (it must still be able to fire).
    fn ensemble_trace(
        &mut self,
        program: &Program,
        body_start: usize,
    ) -> Option<Arc<EnsembleTrace>> {
        if !self.config.trace_ensembles
            || self.config.mode != ExecutionMode::Mpu
            || self.config.interpret_recipes
            || self.tracer.is_some()
            || self.config.recovery.redundancy != Redundancy::None
            || self.config.fault.enabled()
        {
            return None;
        }
        let mut end = body_start;
        loop {
            match program.get(end)? {
                Instruction::ComputeDone => break,
                Instruction::Binary { .. }
                | Instruction::Unary { .. }
                | Instruction::Compare { .. }
                | Instruction::Fuzzy { .. }
                | Instruction::Cas { .. }
                | Instruction::Init { .. }
                | Instruction::SetMask { .. }
                | Instruction::Unmask
                | Instruction::Nop => end += 1,
                _ => return None,
            }
        }
        if let Some(limit) = self.config.recovery.watchdog_instructions {
            // The per-instruction tier fetches every body step plus the
            // terminating COMPUTE_DONE; if that would trip the watchdog,
            // it must actually trip.
            if (end - body_start) as u64 + 1 > limit {
                return None;
            }
        }
        self.cache.lookup_trace(&self.config.datapath, &program.instructions()[body_start..end])
    }

    /// Replays a fused ensemble trace once for one wave of VRFs: the flat
    /// word-loop op stream runs directly over each VRF's storage buffer
    /// while precomputed per-step costs are charged. Returns the index of
    /// the terminating `COMPUTE_DONE`, exactly like [`Self::run_body`],
    /// and leaves every statistic bit-identical to it — including the
    /// per-instruction template-table probes (the architectural recipe
    /// cache still sees every compute step) and the playback-refill
    /// charges, which commute and are settled in one batch at the end.
    fn run_body_traced(
        &mut self,
        trace: &Arc<EnsembleTrace>,
        body_start: usize,
        wave: &[(u16, u16)],
    ) -> Result<usize, SimError> {
        // Reset masks: an ensemble starts with all lanes enabled.
        for &(rfh, vrf) in wave {
            self.vrf_mut(rfh, vrf).fill_plane(Plane::Mask, true);
        }
        let penalty = self.config.control.recipe_miss_penalty;
        let steps = trace.steps();
        // When fusion proved the op stream never writes the mask plane,
        // each VRF's lane mask — and with it every step's enabled count —
        // is invariant across a contiguous run of compute steps, so the
        // run can be accounted step-by-step (program order, identical
        // charges) and then executed as one flat op pass per VRF, keeping
        // each VRF's storage L1-resident instead of interleaving VRFs at
        // every step.
        let batch = trace.fast();
        let mut i = 0;
        while i < steps.len() {
            let line = body_start + i;
            match &steps[i] {
                EnsembleStep::Compute { .. } => {
                    let mut j = i + 1;
                    while batch
                        && j < steps.len()
                        && matches!(steps[j], EnsembleStep::Compute { .. })
                    {
                        j += 1;
                    }
                    // Architectural accounting, per step in program order.
                    for (k, step) in steps[i..j].iter().enumerate() {
                        let EnsembleStep::Compute { instr, cycles, uops, saved, .. } = step else {
                            unreachable!("run boundaries split at non-compute steps");
                        };
                        // The architectural template table sees the same
                        // per-instruction probe stream as run_body, so LRU
                        // order and hit/miss counters match bit-for-bit.
                        let Some((_, outcome)) =
                            self.cache.lookup_traced(&self.config.datapath, instr)
                        else {
                            return Err(SimError::RecipeUnavailable {
                                line: line + k,
                                mnemonic: instr.mnemonic(),
                            });
                        };
                        if outcome.hit {
                            self.stats.recipe_hits += 1;
                        } else {
                            self.stats.recipe_misses += 1;
                            self.charge_control(penalty);
                        }
                        self.stats.instructions += 1;
                        self.stats.cycles += cycles;
                        self.stats.compute_cycles += cycles;
                        self.stats.uops += u64::from(*uops);
                        self.stats.uops_saved += u64::from(*saved);
                        // Energy reads each VRF's enabled count exactly as
                        // run_body does *before* the step executes — the
                        // masks are invariant across the run (batched
                        // case) or the run is this single step.
                        let mut energy = 0.0;
                        for &(rfh, vrf) in wave {
                            let enabled = self.vrf_mut(rfh, vrf).mask_lanes();
                            energy += trace.step_energy_pj(step, enabled);
                        }
                        self.stats.energy.datapath_pj += energy;
                    }
                    // Execution: the run's fused ops, one VRF at a time.
                    // VRFs are independent, so per-VRF state is identical
                    // to the step-interleaved order.
                    for &(rfh, vrf) in wave {
                        trace.run_steps(i..j, self.vrf_mut(rfh, vrf));
                    }
                    i = j;
                    continue;
                }
                EnsembleStep::SetMask { rs } => {
                    self.charge_control(self.config.control.mask_update);
                    for &(rfh, vrf) in wave {
                        let v = self.vrf_mut(rfh, vrf);
                        if *rs == COND_REG {
                            v.copy_plane(Plane::Cond, Plane::Mask);
                        } else {
                            v.copy_plane(Plane::Reg { reg: rs.0 as u8, bit: 0 }, Plane::Mask);
                        }
                    }
                    self.stats.instructions += 1;
                }
                EnsembleStep::Unmask => {
                    self.charge_control(self.config.control.mask_update);
                    for &(rfh, vrf) in wave {
                        self.vrf_mut(rfh, vrf).fill_plane(Plane::Mask, true);
                    }
                    self.stats.instructions += 1;
                }
                EnsembleStep::Nop => {
                    self.charge_control(self.config.control.nop);
                    self.stats.instructions += 1;
                }
            }
            i += 1;
        }
        // Playback refills: run_body counts every fetch (N body steps plus
        // the COMPUTE_DONE) and refills at each `playback_entries`-th
        // fetch after the initial fill — floor(N / entries) refills. The
        // charges are u64 adds, so settling them in one batch here is
        // Stats-identical to charging them in-line.
        let refills = trace.steps().len() as u64 / self.config.playback_entries as u64;
        if refills > 0 {
            self.charge_control(refills * self.config.control.playback_refill);
        }
        // Leave predication clean for the next ensemble.
        for &(rfh, vrf) in wave {
            self.vrf_mut(rfh, vrf).fill_plane(Plane::Mask, true);
        }
        Ok(body_start + trace.steps().len())
    }

    /// Issues one compute instruction to every VRF of the wave, under the
    /// configured redundancy policy.
    fn exec_compute_instr(
        &mut self,
        instr: &Instruction,
        wave: &[(u16, u16)],
        pipeline_warm: &mut bool,
        line: usize,
    ) -> Result<(), SimError> {
        let (cached, outcome) = match self.cache.lookup_traced(&self.config.datapath, instr) {
            Some(r) => r,
            // Never silently drop work: a compute instruction without a
            // synthesizable recipe is a hard error (and the canary that
            // keeps tier fallback paths honest).
            None => return Err(SimError::RecipeUnavailable { line, mnemonic: instr.mnemonic() }),
        };
        let recipe: Arc<Recipe> = Arc::clone(&cached.recipe);
        let penalty = self.config.control.recipe_miss_penalty;
        // Decode cost: MPU caches templates; Baseline decodes every time.
        let hit = match self.config.mode {
            ExecutionMode::Mpu => outcome.hit,
            ExecutionMode::Baseline => false,
        };
        if hit {
            self.stats.recipe_hits += 1;
        } else {
            self.stats.recipe_misses += 1;
            self.charge_control(penalty);
        }
        self.trace(line, || {
            let delta = if hit {
                Stats { recipe_hits: 1, ..Stats::default() }
            } else {
                Stats {
                    recipe_misses: 1,
                    cycles: penalty,
                    control_cycles: penalty,
                    ..Stats::default()
                }
            };
            (TraceKind::RecipeLookup { hit, pool: outcome.pool }, delta)
        });

        // Timing: micro-ops are broadcast to all wave VRFs, so issue time
        // does not scale with wave size. RACER overlaps consecutive
        // instructions across bit-stages once the pipeline is warm.
        let serial = self.config.datapath.recipe_cycles(&recipe);
        let cycles = if self.config.datapath.bit_pipelined() && *pipeline_warm {
            self.config.datapath.recipe_stage_cycles(&recipe)
        } else {
            serial
        };
        *pipeline_warm = true;
        self.stats.instructions += 1;
        let mnemonic = instr.mnemonic();
        self.trace(line, || {
            let delta = Stats { instructions: 1, ..Stats::default() };
            (TraceKind::Instr { mnemonic, class: InstrClass::Compute }, delta)
        });

        match self.config.recovery.redundancy {
            Redundancy::None => {
                self.run_wave_once(&cached, &recipe, wave, cycles, line);
                Ok(())
            }
            Redundancy::Dmr => self.run_wave_dmr(&cached, &recipe, wave, cycles, line),
            Redundancy::Tmr => {
                self.run_wave_tmr(&cached, &recipe, wave, cycles, line);
                Ok(())
            }
        }
    }

    /// One functional execution of a recipe over the wave, charging its
    /// issue cycles, micro-ops, and datapath energy (only enabled lanes
    /// burn switching energy — the mask power-gates the drivers). The
    /// compiled form executes the same plane writes as interpreting
    /// `recipe.ops()`, with plane addresses pre-resolved; the enabled
    /// lane count comes from the VRF's cached mask popcount.
    fn run_wave_once(
        &mut self,
        cached: &crate::recipe_cache::CachedRecipe,
        recipe: &Recipe,
        wave: &[(u16, u16)],
        cycles: u64,
        line: usize,
    ) {
        self.stats.cycles += cycles;
        self.stats.compute_cycles += cycles;
        self.stats.uops += recipe.len() as u64;
        self.stats.uops_saved += u64::from(recipe.saved_uops());
        let mut energy = 0.0;
        let interpret = self.config.interpret_recipes;
        for &(rfh, vrf) in wave {
            let v = self.vrf_mut(rfh, vrf);
            let enabled = v.mask_lanes();
            if interpret {
                for op in recipe.ops() {
                    op.apply(v);
                }
            } else {
                v.run_compiled(&cached.compiled);
            }
            energy += self.config.datapath.recipe_energy_pj(recipe, enabled);
        }
        self.stats.energy.datapath_pj += energy;
        self.trace(line, || {
            let delta = Stats {
                cycles,
                compute_cycles: cycles,
                uops: recipe.len() as u64,
                uops_saved: u64::from(recipe.saved_uops()),
                energy: EnergyStats { datapath_pj: energy, ..EnergyStats::default() },
                ..Stats::default()
            };
            (TraceKind::Exec { vrfs: wave.len(), mix: UopMix(cached.compiled.mix()) }, delta)
        });
    }

    /// Snapshots every wave VRF (pre- or post-execution state).
    fn snapshot_wave(&mut self, wave: &[(u16, u16)]) -> Vec<Vec<u64>> {
        wave.iter().map(|&(rfh, vrf)| self.vrf_mut(rfh, vrf).snapshot()).collect()
    }

    /// Per-VRF scratch word ranges for the wave, for architectural image
    /// comparison (see [`arch_images_agree`]).
    fn wave_scratch_ranges(&mut self, wave: &[(u16, u16)]) -> Vec<std::ops::Range<usize>> {
        wave.iter().map(|&(rfh, vrf)| self.vrf_mut(rfh, vrf).scratch_word_range()).collect()
    }

    /// Restores every wave VRF from a snapshot set.
    fn restore_wave(&mut self, wave: &[(u16, u16)], snapshots: &[Vec<u64>]) {
        for (i, &(rfh, vrf)) in wave.iter().enumerate() {
            self.vrf_mut(rfh, vrf).restore(&snapshots[i]);
        }
    }

    /// Duplicate-and-compare: execute twice from the same input state and
    /// compare the architectural VRF images lane-exactly (scratch planes
    /// are excluded — see [`BitPlaneVrf::scratch_word_range`]). A mismatch
    /// is a detected fault; retry the pair (fresh fault draws each time)
    /// up to the retry budget, then escalate as
    /// [`SimError::UncorrectedFault`].
    fn run_wave_dmr(
        &mut self,
        cached: &crate::recipe_cache::CachedRecipe,
        recipe: &Recipe,
        wave: &[(u16, u16)],
        cycles: u64,
        line: usize,
    ) -> Result<(), SimError> {
        let scratch = self.wave_scratch_ranges(wave);
        let input = self.snapshot_wave(wave);
        let mut attempt = 0u32;
        loop {
            self.run_wave_once(cached, recipe, wave, cycles, line);
            let first = self.snapshot_wave(wave);
            self.restore_wave(wave, &input);
            self.stats.faults.redundant_runs += 1;
            self.trace_fault(line, FaultAction::RedundantRun);
            self.run_wave_once(cached, recipe, wave, cycles, line);
            let second = self.snapshot_wave(wave);
            if arch_images_agree(&first, &second, &scratch) {
                if attempt > 0 {
                    self.stats.faults.corrected += 1;
                    self.trace_fault(line, FaultAction::Corrected);
                }
                return Ok(());
            }
            self.stats.faults.detected += 1;
            self.trace_fault(line, FaultAction::Detected);
            if attempt >= self.config.recovery.max_retries {
                return Err(SimError::UncorrectedFault { line });
            }
            attempt += 1;
            self.stats.faults.retries += 1;
            self.trace_fault(line, FaultAction::Retry);
            self.restore_wave(wave, &input);
        }
    }

    /// Triple modular redundancy: execute three times from the same input
    /// state and commit the bitwise word-level majority, correcting any
    /// fault confined to a single run in place. Unanimity (like the DMR
    /// comparison) is judged on architectural planes only; the majority
    /// vote itself spans the full image, which is harmless for scratch —
    /// recipes never read scratch they did not first write.
    fn run_wave_tmr(
        &mut self,
        cached: &crate::recipe_cache::CachedRecipe,
        recipe: &Recipe,
        wave: &[(u16, u16)],
        cycles: u64,
        line: usize,
    ) {
        let scratch = self.wave_scratch_ranges(wave);
        let input = self.snapshot_wave(wave);
        self.run_wave_once(cached, recipe, wave, cycles, line);
        let a = self.snapshot_wave(wave);
        self.restore_wave(wave, &input);
        self.stats.faults.redundant_runs += 1;
        self.trace_fault(line, FaultAction::RedundantRun);
        self.run_wave_once(cached, recipe, wave, cycles, line);
        let b = self.snapshot_wave(wave);
        self.restore_wave(wave, &input);
        self.stats.faults.redundant_runs += 1;
        self.trace_fault(line, FaultAction::RedundantRun);
        self.run_wave_once(cached, recipe, wave, cycles, line);
        let c = self.snapshot_wave(wave);
        if arch_images_agree(&a, &b, &scratch) && arch_images_agree(&a, &c, &scratch) {
            return; // unanimous; current state (== c) stands
        }
        self.stats.faults.detected += 1;
        self.trace_fault(line, FaultAction::Detected);
        self.stats.faults.corrected += 1;
        self.trace_fault(line, FaultAction::Corrected);
        for (i, &(rfh, vrf)) in wave.iter().enumerate() {
            let majority: Vec<u64> = a[i]
                .iter()
                .zip(&b[i])
                .zip(&c[i])
                .map(|((&x, &y), &z)| (x & y) | (y & z) | (x & z))
                .collect();
            self.vrf_mut(rfh, vrf).restore(&majority);
        }
    }

    /// Charges the Baseline host round trip for a control-flow instruction
    /// (no-op in MPU mode) and drains the bit pipeline. One round trip
    /// services a contiguous batch of control instructions (the CPU
    /// evaluates the whole mask/branch sequence in one visit); follow-on
    /// instructions within a batch only pay the bus transfer and a short
    /// CPU handling time.
    fn control_or_offload(
        &mut self,
        wave: &[(u16, u16)],
        pipeline_warm: &mut bool,
        offload_batch: &mut bool,
        line: usize,
    ) {
        if self.config.mode != ExecutionMode::Baseline {
            return;
        }
        *pipeline_warm = false; // offload drains the pipeline
        let lanes = self.config.datapath.geometry().lanes_per_vrf;
        let bytes = (wave.len().max(1) * lanes).div_ceil(8) as f64;
        let off = &self.config.offload;
        let batched = *offload_batch;
        let bus_cycles = (bytes / off.bus_bytes_per_cycle).ceil() as u64;
        let cycles = if batched {
            // Already at the CPU: per-instruction handling + data movement.
            64 + bus_cycles
        } else {
            self.stats.offload_events += 1;
            off.round_trip_cycles + bus_cycles
        };
        *offload_batch = true;
        let bus_pj = bytes * off.bus_pj_per_byte;
        let cpu_pj = off.cpu_active_mw * cycles as f64;
        self.stats.cycles += cycles;
        self.stats.offload_cycles += cycles;
        self.stats.energy.offload_bus_pj += bus_pj;
        self.stats.energy.cpu_pj += cpu_pj;
        self.trace(line, || {
            let delta = Stats {
                cycles,
                offload_cycles: cycles,
                offload_events: if batched { 0 } else { 1 },
                energy: EnergyStats { offload_bus_pj: bus_pj, cpu_pj, ..EnergyStats::default() },
                ..Stats::default()
            };
            (TraceKind::Offload { batched }, delta)
        });
    }

    fn charge_control(&mut self, cycles: u64) {
        self.stats.cycles += cycles;
        self.stats.control_cycles += cycles;
    }

    /// Baseline-mode CPU mediation of inter-MPU communication: one host
    /// round trip plus moving `bytes` across the off-chip bus twice
    /// (PUM → CPU → PUM). No-op in MPU mode.
    fn offload_comm(&mut self, bytes: u64, line: usize) {
        if self.config.mode != ExecutionMode::Baseline {
            return;
        }
        let off = &self.config.offload;
        let bus = ((2 * bytes) as f64 / off.bus_bytes_per_cycle).ceil() as u64;
        let cycles = off.round_trip_cycles + bus;
        let bus_pj = 2.0 * bytes as f64 * off.bus_pj_per_byte;
        let cpu_pj = off.cpu_active_mw * cycles as f64;
        self.stats.cycles += cycles;
        self.stats.offload_cycles += cycles;
        self.stats.offload_events += 1;
        self.stats.energy.offload_bus_pj += bus_pj;
        self.stats.energy.cpu_pj += cpu_pj;
        self.trace(line, || {
            let delta = Stats {
                cycles,
                offload_cycles: cycles,
                offload_events: 1,
                energy: EnergyStats { offload_bus_pj: bus_pj, cpu_pj, ..EnergyStats::default() },
                ..Stats::default()
            };
            (TraceKind::Offload { batched: false }, delta)
        });
    }

    // ----- transfer ensembles ------------------------------------------

    /// Executes a move block. With `message` set, the block belongs to a
    /// `SEND` and the copies become remote writes instead of local ones.
    fn exec_transfer_block(
        &mut self,
        program: &Program,
        mut message: Option<&mut Message>,
    ) -> Result<(), SimError> {
        let marker = self.config.control.ensemble_marker;
        let marker_delta =
            Stats { cycles: marker, control_cycles: marker, instructions: 1, ..Stats::default() };
        let header_pc = self.pc;
        self.trace(header_pc, || {
            (TraceKind::EnsembleBegin { kind: EnsembleKind::Transfer }, Stats::default())
        });
        // Header: source/destination RFH pairs → the DTC's target map.
        let mut pairs: Vec<(u16, u16)> = Vec::new();
        while let Instruction::Move { src, dst } = Self::fetch(program, self.pc)? {
            pairs.push((src.0, dst.0));
            self.stats.cycles += marker;
            self.stats.control_cycles += marker;
            self.stats.instructions += 1;
            let line = self.pc;
            self.trace(line, || {
                (TraceKind::Instr { mnemonic: "MOVE", class: InstrClass::Marker }, marker_delta)
            });
            self.pc += 1;
        }
        let lanes = self.config.datapath.geometry().lanes_per_vrf;
        let words = lanes as u64; // one 64-bit word per lane per register
        loop {
            match Self::fetch(program, self.pc)? {
                Instruction::MoveDone => {
                    self.stats.cycles += marker;
                    self.stats.control_cycles += marker;
                    self.stats.instructions += 1;
                    let line = self.pc;
                    self.trace(line, || {
                        let kind =
                            TraceKind::Instr { mnemonic: "MOVE_DONE", class: InstrClass::Marker };
                        (kind, marker_delta)
                    });
                    self.trace(line, || {
                        (TraceKind::EnsembleEnd { kind: EnsembleKind::Transfer }, Stats::default())
                    });
                    self.pc += 1;
                    return Ok(());
                }
                Instruction::Memcpy { src_vrf, rs, dst_vrf, rd } => {
                    let line = self.pc;
                    for &(src_rfh, dst_rfh) in &pairs {
                        self.check_geometry(line, src_rfh, src_vrf.0)?;
                        // Payloads carry *logical* values, so transfers
                        // between differently-remapped VRFs stay coherent.
                        let values = self.read_lanes_logical(src_rfh, src_vrf.0, rs.0 as u8);
                        match message.as_deref_mut() {
                            Some(msg) => {
                                msg.writes.push(RemoteWrite {
                                    rfh: dst_rfh,
                                    vrf: dst_vrf.0,
                                    reg: rd.0 as u8,
                                    values,
                                });
                                msg.bytes += words * 8;
                            }
                            None => {
                                self.check_geometry(line, dst_rfh, dst_vrf.0)?;
                                self.write_lanes_logical(dst_rfh, dst_vrf.0, rd.0 as u8, &values);
                                // Runtime landing write: subject to RFH
                                // write-corruption faults.
                                if let Some(v) = self.vrfs.get_mut(&(dst_rfh, dst_vrf.0)) {
                                    v.corrupt_register_write(rd.0 as u8);
                                }
                            }
                        }
                        // Sequential-consistency: transfers execute one at
                        // a time, in order.
                        let cycles = words * self.config.datapath.transfer_cycles_per_word();
                        let pj = words as f64 * self.config.datapath.transfer_energy_pj_per_word();
                        self.stats.cycles += cycles;
                        self.stats.transfer_cycles += cycles;
                        self.stats.energy.transfer_pj += pj;
                        self.trace(line, || {
                            let delta = Stats {
                                cycles,
                                transfer_cycles: cycles,
                                energy: EnergyStats { transfer_pj: pj, ..EnergyStats::default() },
                                ..Stats::default()
                            };
                            (TraceKind::Memcpy { src_rfh, dst_rfh }, delta)
                        });
                    }
                    self.stats.instructions += 1;
                    self.trace(line, || {
                        let delta = Stats { instructions: 1, ..Stats::default() };
                        let kind =
                            TraceKind::Instr { mnemonic: "MEMCPY", class: InstrClass::Transfer };
                        (kind, delta)
                    });
                    self.pc += 1;
                }
                ref other => {
                    return Err(SimError::StrayInstruction {
                        line: self.pc,
                        mnemonic: other.mnemonic(),
                    });
                }
            }
        }
    }

    /// Executes a `SEND` block, returning the message to deliver.
    fn exec_send_block(&mut self, program: &Program, dst: MpuId) -> Result<Message, SimError> {
        let marker = self.config.control.ensemble_marker;
        let marker_delta =
            Stats { cycles: marker, control_cycles: marker, instructions: 1, ..Stats::default() };
        let header_pc = self.pc;
        self.trace(header_pc, || {
            (TraceKind::EnsembleBegin { kind: EnsembleKind::Send }, Stats::default())
        });
        self.stats.cycles += marker;
        self.stats.control_cycles += marker;
        self.stats.instructions += 1;
        self.trace(header_pc, || {
            (TraceKind::Instr { mnemonic: "SEND", class: InstrClass::Marker }, marker_delta)
        });
        self.pc += 1; // past SEND
        let mut msg =
            Message { src: self.id, dst, writes: Vec::new(), bytes: 0, departure_cycle: 0 };
        while !matches!(Self::fetch(program, self.pc)?, Instruction::SendDone) {
            match Self::fetch(program, self.pc)? {
                Instruction::Move { .. } => self.exec_transfer_block(program, Some(&mut msg))?,
                ref other => {
                    return Err(SimError::StrayInstruction {
                        line: self.pc,
                        mnemonic: other.mnemonic(),
                    });
                }
            }
        }
        // SEND_DONE.
        self.stats.cycles += marker;
        self.stats.control_cycles += marker;
        self.stats.instructions += 1;
        self.stats.messages_sent += 1;
        self.stats.noc_bytes += msg.bytes;
        let done_pc = self.pc;
        let bytes = msg.bytes;
        self.trace(done_pc, || {
            let mut delta = marker_delta;
            delta.messages_sent = 1;
            delta.noc_bytes = bytes;
            (TraceKind::Instr { mnemonic: "SEND_DONE", class: InstrClass::Marker }, delta)
        });
        self.trace(done_pc, || {
            (TraceKind::EnsembleEnd { kind: EnsembleKind::Send }, Stats::default())
        });
        self.pc += 1;
        msg.departure_cycle = self.stats.cycles;
        Ok(msg)
    }

    fn apply_message(&mut self, msg: &Message) {
        // Pack straight from the message payload; missing tail lanes
        // zero-fill implicitly.
        for w in &msg.writes {
            self.write_lanes_logical(w.rfh, w.vrf, w.reg, &w.values);
            // Runtime landing write: subject to RFH write-corruption
            // faults.
            if let Some(v) = self.vrfs.get_mut(&(w.rfh, w.vrf)) {
                v.corrupt_register_write(w.reg);
            }
        }
    }

    /// Local cycle count (used by the multi-MPU system loop).
    pub fn local_cycles(&self) -> u64 {
        self.stats.cycles
    }

    pub(crate) fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Emits a trace event for a charge the [`crate::System`] applied to
    /// this MPU's ledger (NoC message traversals land on the receiver).
    /// The event is attributed to the instruction the MPU is currently at
    /// (a blocked `RECV` while a message is in flight).
    pub(crate) fn trace_system(&mut self, kind: TraceKind, delta: Stats) {
        let line = self.pc;
        self.trace(line, || (kind, delta));
    }

    /// Advances the local clock (NoC delays, rendezvous waits).
    pub fn advance_to(&mut self, cycle: u64) {
        self.stats.cycles = self.stats.cycles.max(cycle);
    }
}

/// Architectural equality of two wave snapshot sets: every word outside
/// each VRF's scratch region must match. Scratch planes are excluded
/// because their post-recipe contents are not architectural — two runs of
/// the same recipe may legitimately differ there only by which injected
/// faults landed in dead scratch, and recipes never read scratch they did
/// not first write.
fn arch_images_agree(a: &[Vec<u64>], b: &[Vec<u64>], scratch: &[std::ops::Range<usize>]) -> bool {
    a.iter()
        .zip(b)
        .zip(scratch)
        .all(|((x, y), r)| x[..r.start] == y[..r.start] && x[r.end..] == y[r.end..])
}

/// Forms thermal-aware scheduling waves (Fig. 10): per-RFH queues, at most
/// `limit` VRFs of each RFH per wave.
fn form_waves(members: &[(u16, u16)], limit: usize) -> Vec<Vec<(u16, u16)>> {
    let limit = limit.max(1);
    let mut queues: HashMap<u16, Vec<(u16, u16)>> = HashMap::new();
    let mut rfh_order: Vec<u16> = Vec::new();
    for &(rfh, vrf) in members {
        if !queues.contains_key(&rfh) {
            rfh_order.push(rfh);
        }
        queues.entry(rfh).or_default().push((rfh, vrf));
    }
    let mut waves = Vec::new();
    loop {
        let mut wave = Vec::new();
        for rfh in &rfh_order {
            let Some(queue) = queues.get_mut(rfh) else {
                continue;
            };
            let take = limit.min(queue.len());
            wave.extend(queue.drain(..take));
        }
        if wave.is_empty() {
            break;
        }
        waves.push(wave);
    }
    waves
}

/// One initial-register binding: `((rfh, vrf, reg), lane values)`.
pub type RegisterInit = ((u16, u16, u8), Vec<u64>);

/// Convenience: run `program` on a fresh MPU with initial register data and
/// return `(stats, machine)` for inspection.
///
/// `inputs` maps `(rfh, vrf, reg)` to lane values.
///
/// # Errors
///
/// Propagates [`SimError`] from setup and execution.
pub fn run_single(
    config: SimConfig,
    program: &Program,
    inputs: &[RegisterInit],
) -> Result<(Stats, Mpu), SimError> {
    run_single_pooled(config, program, inputs, None)
}

/// [`run_single`] with an optional shared [`RecipePool`]: concurrent
/// simulations skip re-synthesizing recipes another run already lowered.
/// Results are bit-identical to the unpooled path — the pool only elides
/// host-side synthesis work, never the simulated template-fetch penalty.
///
/// # Errors
///
/// Propagates [`SimError`] from setup and execution.
pub fn run_single_pooled(
    config: SimConfig,
    program: &Program,
    inputs: &[RegisterInit],
    pool: Option<&Arc<RecipePool>>,
) -> Result<(Stats, Mpu), SimError> {
    run_single_traced(config, program, inputs, pool, None)
}

/// [`run_single_pooled`] with an optional [`Tracer`] attached before any
/// instruction executes, so the event stream covers the whole run.
/// Statistics and lane values are byte-identical to an untraced run.
///
/// # Errors
///
/// Propagates [`SimError`] from setup and execution.
pub fn run_single_traced(
    config: SimConfig,
    program: &Program,
    inputs: &[RegisterInit],
    pool: Option<&Arc<RecipePool>>,
    tracer: Option<Box<dyn Tracer>>,
) -> Result<(Stats, Mpu), SimError> {
    let mut mpu = match pool {
        Some(pool) => Mpu::with_pool(config, MpuId(0), Arc::clone(pool)),
        None => Mpu::new(config, MpuId(0)),
    };
    if let Some(tracer) = tracer {
        mpu.set_tracer(tracer);
    }
    for ((rfh, vrf, reg), values) in inputs {
        mpu.write_register(*rfh, *vrf, *reg, values)?;
    }
    let stats = mpu.run(program)?;
    Ok((stats, mpu))
}

// Parallel sweeps move whole machines across worker threads; keep the
// simulator `Send + Sync` (no `Rc`, no interior mutability without locks).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Mpu>();
    assert_send_sync::<crate::System>();
    assert_send_sync::<RecipePool>();
    assert_send_sync::<Stats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventLog;
    use mpu_isa::{BinaryOp, CompareOp, LineNum, RegId, UnaryOp, VrfId};
    use pum_backend::DatapathKind;

    fn asm(text: &str) -> Program {
        Program::parse_asm(text).expect("valid asm")
    }

    fn racer() -> SimConfig {
        SimConfig::mpu(DatapathKind::Racer)
    }

    #[test]
    fn simple_add_runs_and_is_correct() {
        let p = asm("COMPUTE h0 v0\nADD r0 r1 r2\nCOMPUTE_DONE");
        let (stats, mut mpu) =
            run_single(racer(), &p, &[((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![9; 64])]).unwrap();
        assert_eq!(mpu.read_register(0, 0, 2).unwrap(), vec![14; 64]);
        assert!(stats.cycles > 0);
        // 641-uop synthesized template, minus what the recipe optimizer
        // removes (see pum_backend::opt); saved + issued reconstructs it.
        assert_eq!(stats.uops, 573);
        assert_eq!(stats.uops_saved, 68);
        assert_eq!(stats.uops + stats.uops_saved, 641);
        assert_eq!(stats.offload_events, 0);
    }

    #[test]
    fn ensemble_broadcasts_to_all_vrfs() {
        let p = asm("COMPUTE h0 v0\nCOMPUTE h1 v0\nINC r0 r1\nCOMPUTE_DONE");
        let (_, mut mpu) =
            run_single(racer(), &p, &[((0, 0, 0), vec![1; 64]), ((1, 0, 0), vec![10; 64])])
                .unwrap();
        assert_eq!(mpu.read_register(0, 0, 1).unwrap()[0], 2);
        assert_eq!(mpu.read_register(1, 0, 1).unwrap()[0], 11);
    }

    #[test]
    fn thermal_waves_replay_for_same_rfh_vrfs() {
        // RACER allows 1 active VRF per RFH: two VRFs of the same RFH in
        // one ensemble must execute in two waves, with identical results.
        let p = asm("COMPUTE h0 v0\nCOMPUTE h0 v1\nINC r0 r1\nCOMPUTE_DONE");
        let (stats, mut mpu) =
            run_single(racer(), &p, &[((0, 0, 0), vec![1; 64]), ((0, 1, 0), vec![7; 64])]).unwrap();
        assert_eq!(stats.scheduler_waves, 2);
        assert_eq!(mpu.read_register(0, 0, 1).unwrap()[0], 2);
        assert_eq!(mpu.read_register(0, 1, 1).unwrap()[0], 8);

        // MIMDRAM can activate both at once: one wave, same results.
        let (stats, _) = run_single(
            SimConfig::mpu(DatapathKind::Mimdram),
            &p,
            &[((0, 0, 0), vec![1; 512]), ((0, 1, 0), vec![7; 512])],
        )
        .unwrap();
        assert_eq!(stats.scheduler_waves, 1);
    }

    #[test]
    fn dynamic_loop_terminates_via_efi() {
        // r0 counts down from lane index; loop decrements until all zero.
        // while (r0 > r1): r0 -= r2  (r1 = 0, r2 = 1)
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            // loop head (line 1): cond = r0 > r1
            Instruction::Compare { op: CompareOp::Gt, rs: RegId(0), rt: RegId(1) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(2), rd: RegId(0) },
            Instruction::JumpCond { target: LineNum(1) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let init: Vec<u64> = (0..64).map(|i| i % 5).collect();
        let (stats, mut mpu) = run_single(
            racer(),
            &p,
            &[((0, 0, 0), init), ((0, 0, 1), vec![0; 64]), ((0, 0, 2), vec![1; 64])],
        )
        .unwrap();
        assert_eq!(mpu.read_register(0, 0, 0).unwrap(), vec![0; 64]);
        // 4 iterations (max initial value), data-driven.
        assert!(stats.instructions > 10);
        assert_eq!(stats.offload_events, 0, "MPU mode needs no CPU");
    }

    #[test]
    fn baseline_mode_offloads_control_flow() {
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Compare { op: CompareOp::Gt, rs: RegId(0), rt: RegId(1) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(2), rd: RegId(0) },
            Instruction::JumpCond { target: LineNum(1) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let inputs: [((u16, u16, u8), Vec<u64>); 3] =
            [((0, 0, 0), vec![3; 64]), ((0, 0, 1), vec![0; 64]), ((0, 0, 2), vec![1; 64])];
        let (mpu_stats, mut m1) =
            run_single(SimConfig::mpu(DatapathKind::Racer), &p, &inputs).unwrap();
        let (base_stats, mut m2) =
            run_single(SimConfig::baseline(DatapathKind::Racer), &p, &inputs).unwrap();
        // Same architectural result...
        assert_eq!(m1.read_register(0, 0, 0).unwrap(), m2.read_register(0, 0, 0).unwrap());
        // ...but Baseline pays CPU round trips.
        assert!(base_stats.offload_events > 0);
        assert!(base_stats.cycles > 3 * mpu_stats.cycles, "offloads dominate");
        assert!(base_stats.energy.cpu_pj > 0.0);
        assert_eq!(mpu_stats.offload_events, 0);
        assert!(mpu_stats.energy.cpu_pj == 0.0);
    }

    #[test]
    fn branches_predicate_lanes() {
        // if (r0 == r1) r2 = r0 + r1 else r2 = r0 - r1, via mask + inverse.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Compare { op: CompareOp::Eq, rs: RegId(0), rt: RegId(1) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            // Invert the mask: getmask → r3, unmask, r3 = (r3 == 0), setmask.
            Instruction::GetMask { rd: RegId(3) },
            Instruction::Unmask,
            Instruction::Init { value: mpu_isa::InitValue::Zero, rd: RegId(4) },
            Instruction::Compare { op: CompareOp::Eq, rs: RegId(3), rt: RegId(4) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let a: Vec<u64> = (0..64).collect();
        let b: Vec<u64> = (0..64).map(|i| if i % 2 == 0 { i } else { 1 }).collect();
        let (_, mut mpu) =
            run_single(racer(), &p, &[((0, 0, 0), a.clone()), ((0, 0, 1), b.clone())]).unwrap();
        let got = mpu.read_register(0, 0, 2).unwrap();
        for i in 0..64 {
            let expect = if a[i] == b[i] { a[i] + b[i] } else { a[i].wrapping_sub(b[i]) };
            assert_eq!(got[i], expect, "lane {i}");
        }
    }

    #[test]
    fn subroutine_call_and_halt_convention() {
        // main: call subroutine at line 4, halt; sub: r1 = r0 + r0.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Jump { target: LineNum(4) },
            Instruction::ComputeDone,
            Instruction::Return, // top-level halt (never reached: pc skips)
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(0), rd: RegId(1) },
            Instruction::Return,
        ]);
        let (_, mut mpu) = run_single(racer(), &p, &[((0, 0, 0), vec![21; 64])]).unwrap();
        assert_eq!(mpu.read_register(0, 0, 1).unwrap()[0], 42);
    }

    #[test]
    fn transfer_block_moves_registers_between_vrfs() {
        let p = asm("MOVE h0 h1\nMEMCPY v0 r0 v0 r1\nMOVE_DONE");
        let (stats, mut mpu) = run_single(racer(), &p, &[((0, 0, 0), vec![77; 64])]).unwrap();
        assert_eq!(mpu.read_register(1, 0, 1).unwrap()[0], 77);
        assert!(stats.transfer_cycles > 0);
        assert!(stats.energy.transfer_pj > 0.0);
    }

    #[test]
    fn multi_pair_move_applies_to_every_pair() {
        let p = asm("MOVE h0 h1\nMOVE h2 h3\nMEMCPY v0 r0 v0 r0\nMOVE_DONE");
        let (_, mut mpu) =
            run_single(racer(), &p, &[((0, 0, 0), vec![5; 64]), ((2, 0, 0), vec![6; 64])]).unwrap();
        assert_eq!(mpu.read_register(1, 0, 0).unwrap()[0], 5);
        assert_eq!(mpu.read_register(3, 0, 0).unwrap()[0], 6);
    }

    #[test]
    fn send_outside_system_is_an_error() {
        let p = asm("SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE");
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(matches!(err, SimError::CommOutsideSystem { .. }));
    }

    #[test]
    fn geometry_violations_are_reported() {
        let p = asm("COMPUTE h9 v0\nNOP\nCOMPUTE_DONE");
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(matches!(err.root_cause(), SimError::GeometryExceeded { .. }), "got {err:?}");
        // The ensemble wrapper records where it happened.
        match &err {
            SimError::InEnsemble { mpu, line, kind, .. } => {
                assert_eq!(*mpu, 0);
                assert_eq!(*line, 0);
                assert_eq!(*kind, EnsembleKind::Compute);
            }
            other => panic!("expected ensemble context, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("mpu0") && msg.contains("COMPUTE"), "got {msg}");
    }

    #[test]
    fn recipe_cache_hits_on_repeated_instructions() {
        let p = asm("COMPUTE h0 v0\nADD r0 r1 r2\nADD r0 r1 r2\nADD r0 r1 r2\nCOMPUTE_DONE");
        let (stats, _) = run_single(racer(), &p, &[]).unwrap();
        assert_eq!(stats.recipe_misses, 1);
        assert_eq!(stats.recipe_hits, 2);
    }

    #[test]
    fn pipelining_makes_consecutive_instructions_cheaper() {
        // Two identical RACER programs; the one with more back-to-back
        // instructions should cost much less than proportionally more.
        let p1 = asm("COMPUTE h0 v0\nADD r0 r1 r2\nCOMPUTE_DONE");
        let p8 = asm("COMPUTE h0 v0\n\
             ADD r0 r1 r2\nADD r0 r1 r2\nADD r0 r1 r2\nADD r0 r1 r2\n\
             ADD r0 r1 r2\nADD r0 r1 r2\nADD r0 r1 r2\nADD r0 r1 r2\n\
             COMPUTE_DONE");
        let (s1, _) = run_single(racer(), &p1, &[]).unwrap();
        let (s8, _) = run_single(racer(), &p8, &[]).unwrap();
        assert!(
            (s8.compute_cycles as f64) < 3.0 * s1.compute_cycles as f64,
            "8 pipelined ADDs ({}) should cost < 3x one ADD ({})",
            s8.compute_cycles,
            s1.compute_cycles
        );
    }

    #[test]
    fn mask_resets_between_ensembles() {
        // First ensemble masks everything off; second must still write.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Init { value: mpu_isa::InitValue::Zero, rd: RegId(3) },
            Instruction::SetMask { rs: RegId(3) }, // all lanes off
            Instruction::ComputeDone,
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Unary { op: UnaryOp::Inc, rs: RegId(0), rd: RegId(1) },
            Instruction::ComputeDone,
        ]);
        let (_, mut mpu) = run_single(racer(), &p, &[((0, 0, 0), vec![1; 64])]).unwrap();
        assert_eq!(mpu.read_register(0, 0, 1).unwrap()[0], 2);
    }

    #[test]
    fn stray_instruction_detected() {
        let p = Program::from_instructions(vec![Instruction::Unmask]);
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(matches!(err, SimError::StrayInstruction { .. }));
    }

    #[test]
    fn truncated_compute_block_is_an_error_not_a_panic() {
        // COMPUTE header + body but no COMPUTE_DONE: the up-front
        // validator rejects it before execution starts.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
        ]);
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(matches!(err, SimError::InvalidProgram(_)), "got {err:?}");
    }

    #[test]
    fn truncated_move_block_is_an_error_not_a_panic() {
        // MOVE header with neither body nor MOVE_DONE.
        let p =
            Program::from_instructions(vec![Instruction::Move { src: 0.into(), dst: 1.into() }]);
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(matches!(err, SimError::InvalidProgram(_)), "got {err:?}");
    }

    #[test]
    fn fetch_past_program_end_reports_unexpected_end() {
        // Should validation ever miss a truncated block, the execution-path
        // backstop turns the out-of-bounds fetch into a SimError rather
        // than an index panic.
        let p = Program::from_instructions(vec![Instruction::Nop]);
        assert!(matches!(Mpu::fetch(&p, 0), Ok(Instruction::Nop)));
        let err = Mpu::fetch(&p, 3).unwrap_err();
        assert_eq!(err, SimError::UnexpectedEnd { line: 3 });
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "got {msg}");
    }

    #[test]
    fn wave_formation_respects_limits() {
        let members = vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)];
        let waves = form_waves(&members, 1);
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0], vec![(0, 0), (1, 0)]);
        assert_eq!(waves[1], vec![(0, 1), (1, 1)]);
        assert_eq!(waves[2], vec![(0, 2)]);
        let waves = form_waves(&members, 8);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 5);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SimError::ReturnUnderflow { line: 7 };
        assert!(e.to_string().contains("line 7"));
        let e = SimError::StrayInstruction { line: 3, mnemonic: "MEMCPY" };
        assert!(e.to_string().contains("MEMCPY"));
        let e = SimError::RecvTimeout { mpu: 2, from: 5, waited: 900 };
        let msg = e.to_string();
        assert!(msg.contains("mpu2") && msg.contains("mpu5") && msg.contains("900"), "got {msg}");
        let e = SimError::InEnsemble {
            mpu: 1,
            line: 4,
            kind: EnsembleKind::Send,
            source: Box::new(SimError::UncorrectedFault { line: 6 }),
        };
        let msg = e.to_string();
        assert!(msg.contains("mpu1") && msg.contains("SEND") && msg.contains("line 6"), "{msg}");
        assert_eq!(e.root_cause(), &SimError::UncorrectedFault { line: 6 });
        use std::error::Error;
        assert!(e.source().is_some());
    }

    // ----- fault injection & recovery ---------------------------------

    use crate::fault::{FaultConfig, Redundancy, StuckLane};

    fn faulty_racer(rate: f64, seed: u64) -> SimConfig {
        let mut c = racer();
        c.fault = FaultConfig { seed: Some(seed), transient_rate: rate, ..Default::default() };
        c
    }

    fn add_chain(n: usize) -> Program {
        let mut text = String::from("COMPUTE h0 v0\n");
        for _ in 0..n {
            text.push_str("ADD r0 r1 r2\nADD r2 r1 r2\n");
        }
        text.push_str("COMPUTE_DONE");
        asm(&text)
    }

    #[test]
    fn armed_but_zero_rate_fault_layer_is_byte_identical() {
        let p = add_chain(4);
        let inputs: [RegisterInit; 2] = [((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![9; 64])];
        let (clean_stats, mut clean) = run_single(racer(), &p, &inputs).unwrap();
        let (armed_stats, mut armed) =
            run_single(faulty_racer(0.0, 0xD15EA5E), &p, &inputs).unwrap();
        assert_eq!(clean_stats, armed_stats);
        assert_eq!(clean.read_register(0, 0, 2).unwrap(), armed.read_register(0, 0, 2).unwrap());
        assert_eq!(armed_stats.faults.injected, 0);
    }

    #[test]
    fn transient_faults_inject_and_are_counted() {
        let p = add_chain(8);
        let inputs: [RegisterInit; 2] = [((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![9; 64])];
        let (stats, _) = run_single(faulty_racer(0.5, 42), &p, &inputs).unwrap();
        assert!(stats.faults.injected > 0, "rate 0.5 over 16 ADDs must land faults");
    }

    #[test]
    fn tmr_masks_faults_to_the_fault_free_result() {
        let p = add_chain(8);
        let inputs: [RegisterInit; 2] = [((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![9; 64])];
        let (_, mut clean) = run_single(racer(), &p, &inputs).unwrap();
        // TMR guarantees correction only while at most one of the three
        // runs is faulty per vote, so the rate must keep expected flips
        // per instruction per run well below one (a RACER ADD is ~641
        // micro-ops: 1e-4 ≈ 0.06 expected flips per run).
        let mut cfg = faulty_racer(1e-4, 2);
        cfg.recovery.redundancy = Redundancy::Tmr;
        let (stats, mut tmr) = run_single(cfg, &p, &inputs).unwrap();
        assert_eq!(
            clean.read_register(0, 0, 2).unwrap(),
            tmr.read_register(0, 0, 2).unwrap(),
            "TMR must vote out single-run faults"
        );
        assert!(stats.faults.injected > 0, "faults must actually land to make the test meaningful");
        assert_eq!(stats.faults.detected, stats.faults.corrected);
        assert!(stats.faults.redundant_runs > 0);
    }

    #[test]
    fn dmr_detects_and_escalates_when_retries_exhaust() {
        let p = add_chain(8);
        let inputs: [RegisterInit; 2] = [((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![9; 64])];
        // At rate 0.9 every paired run corrupts differently: DMR detects
        // each mismatch, burns its retries, and escalates.
        let mut cfg = faulty_racer(0.9, 3);
        cfg.recovery.redundancy = Redundancy::Dmr;
        cfg.recovery.max_retries = 2;
        let err = run_single(cfg, &p, &inputs).unwrap_err();
        assert!(matches!(err.root_cause(), SimError::UncorrectedFault { .. }), "got {err:?}");
    }

    #[test]
    fn dmr_retry_recovers_from_sparse_faults() {
        let p = add_chain(8);
        let inputs: [RegisterInit; 2] = [((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![9; 64])];
        let (_, mut clean) = run_single(racer(), &p, &inputs).unwrap();
        // Sparse faults: at most one of the paired runs corrupts, the
        // compare catches it, and a retry pair almost surely runs clean.
        let mut cfg = faulty_racer(1e-4, 6);
        cfg.recovery.redundancy = Redundancy::Dmr;
        cfg.recovery.max_retries = 8;
        let (stats, mut dmr) = run_single(cfg, &p, &inputs).unwrap();
        assert_eq!(
            clean.read_register(0, 0, 2).unwrap(),
            dmr.read_register(0, 0, 2).unwrap(),
            "DMR + retry must converge to the fault-free result"
        );
        assert!(stats.faults.injected > 0);
        assert!(stats.faults.corrected > 0);
        assert!(stats.faults.detected >= stats.faults.corrected);
    }

    #[test]
    fn checkpoint_restart_retries_a_failed_ensemble() {
        let p = add_chain(8);
        let inputs: [RegisterInit; 2] = [((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![9; 64])];
        let (_, mut clean) = run_single(racer(), &p, &inputs).unwrap();
        // Tight retry budget so some instruction escalates, then the
        // ensemble restart absorbs it (fresh draws each attempt).
        let mut cfg = faulty_racer(3e-4, 2);
        cfg.recovery.redundancy = Redundancy::Dmr;
        cfg.recovery.max_retries = 0;
        cfg.recovery.checkpoint_restart = true;
        cfg.recovery.max_restarts = 64;
        let (stats, mut rec) = run_single(cfg, &p, &inputs).unwrap();
        assert_eq!(clean.read_register(0, 0, 2).unwrap(), rec.read_register(0, 0, 2).unwrap());
        assert!(stats.faults.ensemble_restarts > 0, "expected at least one rollback");
    }

    #[test]
    fn stuck_lane_remaps_onto_spares() {
        let lanes = 64;
        let mut cfg = racer();
        cfg.fault = FaultConfig {
            seed: Some(1),
            stuck_lanes: vec![StuckLane { mpu: 0, rfh: 0, vrf: 0, lane: 5, value: true }],
            ..Default::default()
        };
        cfg.recovery.remap = true;
        cfg.recovery.spare_lanes = 4;
        let logical = lanes - 4;
        let a: Vec<u64> = (0..logical as u64).collect();
        let b = vec![100; logical];
        let p = asm("COMPUTE h0 v0\nADD r0 r1 r2\nCOMPUTE_DONE");
        let (stats, mut mpu) =
            run_single(cfg, &p, &[((0, 0, 0), a.clone()), ((0, 0, 1), b.clone())]).unwrap();
        let got = mpu.read_register(0, 0, 2).unwrap();
        assert_eq!(got.len(), logical);
        for i in 0..logical {
            assert_eq!(got[i], a[i] + 100, "logical lane {i}");
        }
        assert_eq!(mpu.logical_lanes(0, 0), logical);
        assert_eq!(stats.faults.dead_lanes, 1);
        assert!(stats.faults.remapped_lanes > 0, "lanes past the dead one must shift");
        assert_eq!(stats.faults.lanes_lost, 0, "one dead lane fits in four spares");
    }

    #[test]
    fn dead_lanes_beyond_spares_degrade_gracefully() {
        let mut cfg = racer();
        cfg.fault = FaultConfig {
            seed: Some(1),
            stuck_lanes: vec![
                StuckLane { mpu: 0, rfh: 0, vrf: 0, lane: 0, value: true },
                StuckLane { mpu: 0, rfh: 0, vrf: 0, lane: 1, value: false },
                StuckLane { mpu: 0, rfh: 0, vrf: 0, lane: 2, value: true },
            ],
            ..Default::default()
        };
        cfg.recovery.remap = true;
        cfg.recovery.spare_lanes = 1;
        let p = asm("COMPUTE h0 v0\nINC r0 r1\nCOMPUTE_DONE");
        let (stats, mut mpu) = run_single(cfg, &p, &[((0, 0, 0), vec![7; 64])]).unwrap();
        // 64 physical - 1 spare = 63 logical wanted, but 3 dead > 1 spare:
        // only 61 healthy lanes remain.
        assert_eq!(mpu.logical_lanes(0, 0), 61);
        assert_eq!(stats.faults.dead_lanes, 3);
        assert_eq!(stats.faults.lanes_lost, 2);
        assert_eq!(mpu.read_register(0, 0, 1).unwrap(), vec![8; 61]);
    }

    #[test]
    fn stuck_at_0_lane_without_remap_corrupts_results() {
        // Sanity check that the fault actually bites when unprotected.
        let mut cfg = racer();
        cfg.fault = FaultConfig {
            seed: Some(1),
            stuck_lanes: vec![StuckLane { mpu: 0, rfh: 0, vrf: 0, lane: 5, value: false }],
            ..Default::default()
        };
        let p = asm("COMPUTE h0 v0\nINC r0 r1\nCOMPUTE_DONE");
        let (_, mut mpu) = run_single(cfg, &p, &[((0, 0, 0), vec![7; 64])]).unwrap();
        let got = mpu.read_register(0, 0, 1).unwrap();
        assert_eq!(got[5], 0, "stuck-at-0 lane pins every plane to zero");
        assert_eq!(got[6], 8, "healthy lanes are unaffected");
    }

    #[test]
    fn watchdog_stops_runaway_ensemble_bodies() {
        // Mask never clears → the EFI loops forever without a watchdog.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Nop,
            Instruction::JumpCond { target: LineNum(1) },
            Instruction::ComputeDone,
        ]);
        let mut cfg = racer();
        cfg.recovery.watchdog_instructions = Some(500);
        let err = run_single(cfg, &p, &[]).unwrap_err();
        assert!(
            matches!(err.root_cause(), SimError::WatchdogTriggered { instructions: 500, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn missing_recipe_is_a_hard_error() {
        // A recipe-less instruction reaching the compute path must trap,
        // not silently skip the work (the old behavior returned Ok).
        let mut mpu = Mpu::new(racer(), mpu_isa::MpuId(0));
        let mut warm = false;
        let err = mpu.exec_compute_instr(&Instruction::Nop, &[], &mut warm, 7).unwrap_err();
        assert!(
            matches!(err, SimError::RecipeUnavailable { line: 7, mnemonic: "NOP" }),
            "got {err:?}"
        );
    }

    #[test]
    fn nop_drains_the_pipeline_and_offloads_like_other_control_ops() {
        // S2: a NOP between two ADDs is a control instruction. In Baseline
        // mode it must trigger a CPU offload visit (draining RACER's bit
        // pipeline), so the second ADD pays full serial latency again.
        let with_nop = asm("COMPUTE h0 v0\nADD r0 r1 r2\nNOP\nADD r0 r1 r3\nCOMPUTE_DONE");
        let dp = pum_backend::DatapathModel::racer();
        let add =
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
        let recipe = dp.recipe(&add).unwrap();
        let serial = dp.recipe_cycles(&recipe);
        let stage = dp.recipe_stage_cycles(&recipe);

        let (base, _) =
            run_single(SimConfig::baseline(DatapathKind::Racer), &with_nop, &[]).unwrap();
        assert_eq!(base.offload_events, 1, "the NOP opens one CPU offload batch");
        assert_eq!(base.compute_cycles, 2 * serial, "the offload drains the pipeline");

        // In MPU mode there is no offload: the pipeline stays warm across
        // the NOP and the second ADD only pays its stage time.
        let mut cfg = racer();
        cfg.trace_ensembles = false;
        let (mpu_stats, _) = run_single(cfg, &with_nop, &[]).unwrap();
        assert_eq!(mpu_stats.offload_events, 0);
        assert_eq!(mpu_stats.compute_cycles, serial + stage);
    }

    #[test]
    fn corrupted_jump_target_traps_on_return_stack_overflow() {
        // A self-targeting JUMP (legal per the validator: the target is in
        // bounds) pushes a return address every iteration. The bounded
        // hardware stack must trap instead of growing without limit.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Jump { target: LineNum(1) },
            Instruction::ComputeDone,
        ]);
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(
            matches!(
                err.root_cause(),
                SimError::ReturnStackOverflow { depth: RETURN_STACK_DEPTH, .. }
            ),
            "got {err:?}"
        );
    }

    /// A straight-line body exercising every trace-eligible instruction
    /// class, with predication flips in the middle.
    fn straight_line_program() -> Program {
        asm("COMPUTE h0 v0\n\
             ADD r0 r1 r2\n\
             CMPGT r2 r1\n\
             SETMASK r63\n\
             SUB r2 r0 r3\n\
             NOP\n\
             UNMASK\n\
             INC r3 r4\n\
             COMPUTE_DONE")
    }

    #[test]
    fn trace_tier_is_bit_identical_to_per_instruction_execution() {
        let p = straight_line_program();
        let inputs: [((u16, u16, u8), Vec<u64>); 2] =
            [((0, 0, 0), (0..64).collect()), ((0, 0, 1), vec![13; 64])];
        let mut compiled_cfg = racer();
        compiled_cfg.trace_ensembles = false;
        let (want, mut want_mpu) = run_single(compiled_cfg, &p, &inputs).unwrap();
        let (got, mut got_mpu) = run_single(racer(), &p, &inputs).unwrap();
        assert_eq!(want, got, "Stats must match bit-for-bit across tiers");
        for reg in 0..5 {
            assert_eq!(
                want_mpu.read_register(0, 0, reg).unwrap(),
                got_mpu.read_register(0, 0, reg).unwrap(),
                "r{reg}"
            );
        }
        assert_eq!(got_mpu.tier_counts(), (1, 0), "the body must run on the trace tier");
        assert_eq!(want_mpu.tier_counts(), (0, 1), "trace_ensembles=false must fall back");
    }

    #[test]
    fn trace_tier_replays_thermal_waves() {
        // Two VRFs of one RACER RFH: the trace replays once per wave and
        // the results and statistics still match the fallback tier.
        let p = asm("COMPUTE h0 v0\nCOMPUTE h0 v1\nADD r0 r0 r1\nINC r1 r2\nCOMPUTE_DONE");
        let inputs: [((u16, u16, u8), Vec<u64>); 2] =
            [((0, 0, 0), vec![4; 64]), ((0, 1, 0), vec![9; 64])];
        let mut off = racer();
        off.trace_ensembles = false;
        let (want, mut m1) = run_single(off, &p, &inputs).unwrap();
        let (got, mut m2) = run_single(racer(), &p, &inputs).unwrap();
        assert_eq!(want.scheduler_waves, 2);
        assert_eq!(want, got);
        assert_eq!(m2.tier_counts(), (1, 0));
        for (rfh, vrf) in [(0, 0), (0, 1)] {
            assert_eq!(
                m1.read_register(rfh, vrf, 2).unwrap(),
                m2.read_register(rfh, vrf, 2).unwrap()
            );
        }
    }

    #[test]
    fn data_dependent_bodies_fall_back_to_the_compiled_tier() {
        // EFI loop: not straight-line → per-instruction execution.
        let efi = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Compare { op: CompareOp::Gt, rs: RegId(0), rt: RegId(1) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(2), rd: RegId(0) },
            Instruction::JumpCond { target: LineNum(1) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let inputs: [((u16, u16, u8), Vec<u64>); 3] =
            [((0, 0, 0), vec![3; 64]), ((0, 0, 1), vec![0; 64]), ((0, 0, 2), vec![1; 64])];
        let (_, mpu) = run_single(racer(), &efi, &inputs).unwrap();
        assert_eq!(mpu.tier_counts(), (0, 1), "EFI loops must not fuse");

        // Mid-body GETMASK reads predication out: also ineligible.
        let getmask = asm("COMPUTE h0 v0\nADD r0 r1 r2\nGETMASK r3\nCOMPUTE_DONE");
        let (_, mpu) = run_single(racer(), &getmask, &[]).unwrap();
        assert_eq!(mpu.tier_counts(), (0, 1), "GETMASK bodies must not fuse");
    }

    #[test]
    fn per_instruction_fidelity_configs_fall_back() {
        let p = straight_line_program();
        // Interpreted-recipe mode.
        let mut cfg = racer();
        cfg.interpret_recipes = true;
        let (_, mpu) = run_single(cfg, &p, &[]).unwrap();
        assert_eq!(mpu.tier_counts(), (0, 1), "interpreted mode must fall back");
        // Baseline offload mode.
        let (_, mpu) = run_single(SimConfig::baseline(DatapathKind::Racer), &p, &[]).unwrap();
        assert_eq!(mpu.tier_counts(), (0, 1), "Baseline mode must fall back");
        // Seeded fault injection (draws must happen in program order).
        let mut cfg = racer();
        cfg.fault = FaultConfig { seed: Some(3), ..Default::default() };
        let (_, mpu) = run_single(cfg, &p, &[]).unwrap();
        assert_eq!(mpu.tier_counts(), (0, 1), "fault injection must fall back");
        // A watchdog tighter than the body must still be able to fire.
        let mut cfg = racer();
        cfg.recovery.watchdog_instructions = Some(3);
        let err = run_single(cfg, &p, &[]).unwrap_err();
        assert!(matches!(err.root_cause(), SimError::WatchdogTriggered { .. }));
        // An armed tracer needs per-instruction events.
        let log = EventLog::new();
        let (_, mpu) =
            run_single_traced(racer(), &p, &[], None, Some(Box::new(log.clone()))).unwrap();
        assert_eq!(mpu.tier_counts(), (0, 1), "tracing must fall back");
        assert!(!log.is_empty());
    }

    #[test]
    fn trace_tier_charges_identical_playback_refills() {
        // Body of 10 instructions with a 4-entry playback buffer: the
        // per-instruction tier refills in-line, the trace tier settles the
        // same floor(10/4) = 2 refills in one batch. Stats must agree.
        let body = "ADD r0 r1 r2\n".repeat(9);
        let p = asm(&format!("COMPUTE h0 v0\n{body}NOP\nCOMPUTE_DONE"));
        let mut on = racer();
        on.playback_entries = 4;
        let mut off = on.clone();
        off.trace_ensembles = false;
        let (want, _) = run_single(off, &p, &[]).unwrap();
        let (got, mpu) = run_single(on, &p, &[]).unwrap();
        assert_eq!(mpu.tier_counts(), (1, 0));
        assert_eq!(want, got);
    }

    /// A program with several top-level instructions (= several ensemble
    /// boundaries) for the preemption tests.
    fn staged_program() -> Program {
        asm("COMPUTE h0 v0\nADD r0 r1 r2\nCOMPUTE_DONE\n\
             NOP\n\
             COMPUTE h0 v0\nSUB r2 r1 r3\nCOMPUTE_DONE\n\
             NOP\n\
             COMPUTE h0 v0\nADD r2 r3 r4\nCOMPUTE_DONE")
    }

    const STAGED_INPUTS: [((u16, u16, u8), u64); 2] = [((0, 0, 0), 5), ((0, 0, 1), 9)];

    fn staged_inputs() -> Vec<RegisterInit> {
        STAGED_INPUTS.iter().map(|&(key, v)| (key, vec![v; 64])).collect()
    }

    #[test]
    fn cancel_surfaces_as_typed_error_at_a_boundary() {
        let ctrl = Arc::new(RunControl::new());
        ctrl.request_cancel();
        let mut mpu = Mpu::new(racer(), MpuId(0));
        mpu.set_run_control(Arc::clone(&ctrl));
        let err = mpu.run(&staged_program()).unwrap_err();
        assert!(matches!(err, SimError::Cancelled { line: 0 }), "got {err:?}");
    }

    #[test]
    fn preempt_clear_resume_in_place_completes() {
        let ctrl = Arc::new(RunControl::new());
        ctrl.request_preempt();
        let p = staged_program();
        let mut mpu = Mpu::new(racer(), MpuId(0));
        mpu.set_run_control(Arc::clone(&ctrl));
        for ((rfh, vrf, reg), values) in staged_inputs() {
            mpu.write_register(rfh, vrf, reg, &values).unwrap();
        }
        mpu.reset_pc();
        assert_eq!(mpu.step(&p).unwrap(), StepEvent::Preempted);
        ctrl.clear();
        assert_eq!(mpu.step(&p).unwrap(), StepEvent::Completed);
        mpu.finish();
        assert_eq!(mpu.read_register(0, 0, 4).unwrap(), vec![14 + 5; 64]);
    }

    #[test]
    fn preempt_at_every_boundary_resumes_byte_identical_in_a_fresh_mpu() {
        let p = staged_program();
        let inputs = staged_inputs();
        let (want_stats, mut want) = run_single(racer(), &p, &inputs).unwrap();
        let want_lanes = want.read_register(0, 0, 4).unwrap();

        // Count the boundaries an uninterrupted controlled run crosses.
        let counter = Arc::new(RunControl::new());
        let mut probe = Mpu::new(racer(), MpuId(0));
        probe.set_run_control(Arc::clone(&counter));
        for ((rfh, vrf, reg), values) in &inputs {
            probe.write_register(*rfh, *vrf, *reg, values).unwrap();
        }
        let probe_stats = probe.run(&p).unwrap();
        assert_eq!(probe_stats, want_stats, "an idle token must not change the ledger");
        let total = counter.boundaries();
        assert_eq!(total, 5, "3 ensembles + 2 NOPs");

        for k in 1..=total {
            let ctrl = Arc::new(RunControl::new());
            ctrl.preempt_at_boundary(k);
            let mut mpu = Mpu::new(racer(), MpuId(0));
            mpu.set_run_control(ctrl);
            for ((rfh, vrf, reg), values) in &inputs {
                mpu.write_register(*rfh, *vrf, *reg, values).unwrap();
            }
            mpu.reset_pc();
            assert_eq!(mpu.step(&p).unwrap(), StepEvent::Preempted, "boundary {k}");
            let cp = mpu.export_checkpoint();
            assert!(cp.words() > 0);
            drop(mpu);

            let mut fresh = Mpu::new(racer(), MpuId(0));
            fresh.import_checkpoint(&cp).unwrap();
            assert_eq!(fresh.step(&p).unwrap(), StepEvent::Completed, "boundary {k}");
            let stats = fresh.finish();
            assert_eq!(stats, want_stats, "stats diverged after resume at boundary {k}");
            assert_eq!(
                fresh.read_register(0, 0, 4).unwrap(),
                want_lanes,
                "lanes diverged after resume at boundary {k}"
            );
        }
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_under_armed_faults() {
        // The snapshot carries the fault PRNG state inside each VRF, so a
        // resumed run draws the same fault sites the uninterrupted run
        // would have.
        let mut cfg = faulty_racer(2e-3, 7);
        cfg.recovery.redundancy = Redundancy::Tmr;
        cfg.recovery.max_retries = 8;
        let p = staged_program();
        let inputs = staged_inputs();
        let (want_stats, mut want) = run_single(cfg.clone(), &p, &inputs).unwrap();
        let want_lanes = want.read_register(0, 0, 4).unwrap();
        assert!(want_stats.faults.injected > 0, "the fault layer must be exercised");

        let ctrl = Arc::new(RunControl::new());
        ctrl.preempt_at_boundary(3);
        let mut mpu = Mpu::new(cfg.clone(), MpuId(0));
        mpu.set_run_control(ctrl);
        for ((rfh, vrf, reg), values) in &inputs {
            mpu.write_register(*rfh, *vrf, *reg, values).unwrap();
        }
        mpu.reset_pc();
        assert_eq!(mpu.step(&p).unwrap(), StepEvent::Preempted);
        let cp = mpu.export_checkpoint();
        let mut fresh = Mpu::new(cfg, MpuId(0));
        fresh.import_checkpoint(&cp).unwrap();
        assert_eq!(fresh.step(&p).unwrap(), StepEvent::Completed);
        assert_eq!(fresh.finish(), want_stats);
        assert_eq!(fresh.read_register(0, 0, 4).unwrap(), want_lanes);
    }

    #[test]
    fn checkpoint_into_mismatched_config_is_rejected() {
        let mpu = Mpu::new(racer(), MpuId(0));
        let cp = mpu.export_checkpoint();
        let mut other = Mpu::new(SimConfig::mpu(DatapathKind::Mimdram), MpuId(0));
        let err = other.import_checkpoint(&cp).unwrap_err();
        assert!(matches!(err, SimError::CheckpointMismatch { .. }), "got {err:?}");
    }

    #[test]
    fn exhausted_restart_budget_carries_restart_count_and_fault_site() {
        // A high fault rate with a DMR policy, no per-instruction retries,
        // and a tiny restart budget: the ensemble keeps aborting until the
        // budget runs out, and the surfaced error must carry the restart
        // count while `root_cause` still reaches the fault site.
        let p = add_chain(24);
        let mut cfg = faulty_racer(3e-3, 11);
        cfg.recovery.redundancy = Redundancy::Dmr;
        cfg.recovery.max_retries = 0;
        cfg.recovery.checkpoint_restart = true;
        cfg.recovery.max_restarts = 1;
        let inputs: [RegisterInit; 2] = [((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![9; 64])];
        let err = run_single(cfg, &p, &inputs).unwrap_err();
        let SimError::InEnsemble { kind: EnsembleKind::Compute, source, .. } = &err else {
            panic!("expected ensemble context, got {err:?}");
        };
        let SimError::RestartsExhausted { restarts, source: last, .. } = source.as_ref() else {
            panic!("expected RestartsExhausted, got {source:?}");
        };
        assert_eq!(*restarts, 1, "the whole budget was spent");
        assert!(
            matches!(last.as_ref(), SimError::UncorrectedFault { .. }),
            "the last attempt's fault site rides along: {last:?}"
        );
        assert!(matches!(err.root_cause(), SimError::UncorrectedFault { .. }));
    }
}
