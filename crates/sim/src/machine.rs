//! The single-MPU execution engine: precoder/fetcher walk, compute
//! controller with playback-buffer replay and thermal-wave scheduling
//! (paper Fig. 10), EFI-backed control flow, the data transfer controller,
//! and the Baseline host-offload model.
//!
//! Execution is *functionally exact*: vector state lives in
//! [`BitPlaneVrf`]s and every compute instruction runs by applying its
//! micro-op recipe, so kernels produce real results that tests check
//! against reference implementations. Timing and energy accumulate from
//! the datapath model and control-path cost table as the program runs.

use crate::config::{ExecutionMode, SimConfig};
use crate::recipe_cache::{RecipeCache, RecipePool};
use crate::stats::Stats;
use mpu_isa::{Instruction, MpuId, Program, COND_REG};
use pum_backend::{BitPlaneVrf, Plane, Recipe};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An error raised while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program is structurally invalid (validator message).
    InvalidProgram(String),
    /// A VRF or RFH index exceeds the datapath geometry.
    GeometryExceeded {
        /// Offending instruction index.
        line: usize,
        /// Description of the violation.
        what: String,
    },
    /// A `RETURN` executed with an empty return-address stack inside an
    /// ensemble body.
    ReturnUnderflow {
        /// Offending instruction index.
        line: usize,
    },
    /// Top-level execution reached a compute instruction outside any
    /// ensemble (fell into a subroutine body; end `main` with `RETURN`).
    StrayInstruction {
        /// Offending instruction index.
        line: usize,
        /// Mnemonic of the stray instruction.
        mnemonic: &'static str,
    },
    /// `SEND`/`RECV` executed on a lone machine outside a
    /// [`crate::System`].
    CommOutsideSystem {
        /// Offending instruction index.
        line: usize,
    },
    /// Execution ran off the end of the program — an unterminated
    /// `COMPUTE`/`MOVE`/`SEND` block or a control transfer past the last
    /// instruction.
    UnexpectedEnd {
        /// Index of the first missing instruction (== program length).
        line: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram(m) => write!(f, "invalid program: {m}"),
            SimError::GeometryExceeded { line, what } => {
                write!(f, "line {line}: geometry exceeded: {what}")
            }
            SimError::ReturnUnderflow { line } => {
                write!(f, "line {line}: RETURN with empty return-address stack")
            }
            SimError::StrayInstruction { line, mnemonic } => {
                write!(f, "line {line}: {mnemonic} reached outside any ensemble")
            }
            SimError::CommOutsideSystem { line } => {
                write!(f, "line {line}: SEND/RECV requires a multi-MPU System")
            }
            SimError::UnexpectedEnd { line } => {
                write!(f, "line {line}: execution ran past the end of the program")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One register's worth of data shipped to another MPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteWrite {
    /// Destination RF holder.
    pub rfh: u16,
    /// Destination VRF within the holder.
    pub vrf: u16,
    /// Destination register.
    pub reg: u8,
    /// Element values, one per lane.
    pub values: Vec<u64>,
}

/// An inter-MPU message produced by a `SEND` block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Sender.
    pub src: MpuId,
    /// Receiver.
    pub dst: MpuId,
    /// Register payloads to apply at the receiver.
    pub writes: Vec<RemoteWrite>,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Sender-local cycle at which the message left the MPU.
    pub departure_cycle: u64,
}

/// Outcome of advancing a machine to its next communication boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum StepEvent {
    /// The program ran to completion (or a top-level `RETURN` halt).
    Completed,
    /// A `SEND` block finished; deliver this message, then call step again.
    Sent(Box<Message>),
    /// Execution is blocked on `RECV` from the named MPU; deliver a
    /// message with [`Mpu::deliver`] and step again.
    AwaitingRecv {
        /// The expected sender.
        src: MpuId,
    },
}

/// A single memory processing unit: control path + its slice of the PUM
/// datapath.
///
/// # Example
///
/// ```
/// use mastodon::{Mpu, SimConfig};
/// use mpu_isa::Program;
/// use pum_backend::DatapathKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mpu = Mpu::new(SimConfig::mpu(DatapathKind::Racer), 0.into());
/// mpu.write_register(0, 0, 0, &vec![2; 64])?;
/// mpu.write_register(0, 0, 1, &vec![40; 64])?;
/// let program = Program::parse_asm(
///     "COMPUTE h0 v0\n\
///      ADD r0 r1 r2\n\
///      COMPUTE_DONE",
/// )?;
/// let stats = mpu.run(&program)?;
/// assert_eq!(mpu.read_register(0, 0, 2)?[0], 42);
/// assert!(stats.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Mpu {
    config: SimConfig,
    id: MpuId,
    vrfs: HashMap<(u16, u16), BitPlaneVrf>,
    cache: RecipeCache,
    stats: Stats,
    pc: usize,
    halted: bool,
    inbox: Vec<Message>,
}

impl Mpu {
    /// Creates an MPU with empty (zeroed) VRFs.
    pub fn new(config: SimConfig, id: MpuId) -> Self {
        let cache = RecipeCache::new(config.template_entries);
        Self {
            config,
            id,
            vrfs: HashMap::new(),
            cache,
            stats: Stats::default(),
            pc: 0,
            halted: false,
            inbox: Vec::new(),
        }
    }

    /// Creates an MPU whose recipe-cache misses consult `pool` before
    /// synthesizing from scratch. Host-side only: simulated timing, energy,
    /// and hit/miss statistics match [`Mpu::new`] exactly.
    pub fn with_pool(config: SimConfig, id: MpuId, pool: Arc<RecipePool>) -> Self {
        let mut mpu = Self::new(config, id);
        mpu.cache.set_pool(pool);
        mpu
    }

    /// Attaches a shared recipe-synthesis pool to an existing MPU (see
    /// [`Mpu::with_pool`]).
    pub fn set_recipe_pool(&mut self, pool: Arc<RecipePool>) {
        self.cache.set_pool(pool);
    }

    /// Fetches the instruction at `pc`, rejecting truncated programs
    /// (unterminated blocks, control transfers past the end) instead of
    /// panicking.
    fn fetch(program: &Program, pc: usize) -> Result<Instruction, SimError> {
        program.get(pc).copied().ok_or(SimError::UnexpectedEnd { line: pc })
    }

    /// This MPU's identifier.
    pub fn id(&self) -> MpuId {
        self.id
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    fn check_geometry(&self, line: usize, rfh: u16, vrf: u16) -> Result<(), SimError> {
        let g = self.config.datapath.geometry();
        if (rfh as usize) >= g.rfhs_per_mpu {
            return Err(SimError::GeometryExceeded {
                line,
                what: format!("RFH {rfh} >= {}", g.rfhs_per_mpu),
            });
        }
        if (vrf as usize) >= g.vrfs_per_rfh {
            return Err(SimError::GeometryExceeded {
                line,
                what: format!("VRF {vrf} >= {}", g.vrfs_per_rfh),
            });
        }
        Ok(())
    }

    fn vrf_mut(&mut self, rfh: u16, vrf: u16) -> &mut BitPlaneVrf {
        let g = self.config.datapath.geometry();
        self.vrfs
            .entry((rfh, vrf))
            .or_insert_with(|| BitPlaneVrf::new(g.lanes_per_vrf, g.regs_per_vrf))
    }

    /// Host/DMA path: loads element values into a register (untimed; the
    /// paper's workloads assume data resident in PUM).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::GeometryExceeded`] for out-of-range indices.
    pub fn write_register(
        &mut self,
        rfh: u16,
        vrf: u16,
        reg: u8,
        values: &[u64],
    ) -> Result<(), SimError> {
        self.check_geometry(0, rfh, vrf)?;
        // Pack straight from the caller's slice: lanes beyond it zero-fill
        // implicitly, and surplus values are ignored (hardware has no rows
        // for them).
        let lanes = self.config.datapath.geometry().lanes_per_vrf;
        let take = values.len().min(lanes);
        self.vrf_mut(rfh, vrf).write_lane_values(reg, &values[..take]);
        Ok(())
    }

    /// Host/DMA path: reads a register back as element values.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::GeometryExceeded`] for out-of-range indices.
    pub fn read_register(&mut self, rfh: u16, vrf: u16, reg: u8) -> Result<Vec<u64>, SimError> {
        self.check_geometry(0, rfh, vrf)?;
        Ok(self.vrf_mut(rfh, vrf).read_lane_values(reg))
    }

    /// Runs a complete program that performs no inter-MPU communication.
    ///
    /// # Errors
    ///
    /// Fails on invalid programs, geometry violations, or `SEND`/`RECV`
    /// (which need a [`crate::System`]).
    pub fn run(&mut self, program: &Program) -> Result<Stats, SimError> {
        self.reset_pc();
        match self.step(program)? {
            StepEvent::Completed => Ok(self.finish()),
            StepEvent::Sent(_) | StepEvent::AwaitingRecv { .. } => {
                Err(SimError::CommOutsideSystem { line: self.pc })
            }
        }
    }

    /// Rewinds the PC for a fresh run (VRF data is preserved).
    pub fn reset_pc(&mut self) {
        self.pc = 0;
        self.halted = false;
    }

    /// Finalizes end-of-run energy (front-end power in MPU mode, CPU idle
    /// power in Baseline mode) and returns a snapshot of the statistics.
    pub fn finish(&mut self) -> Stats {
        match self.config.mode {
            ExecutionMode::Mpu => {
                self.stats.energy.frontend_pj += (self.config.frontend_dynamic_mw
                    + self.config.frontend_static_mw)
                    * self.stats.cycles as f64;
            }
            ExecutionMode::Baseline => {
                let non_offload = self.stats.cycles.saturating_sub(self.stats.offload_cycles);
                self.stats.energy.cpu_pj += self.config.offload.cpu_idle_mw * non_offload as f64;
            }
        }
        self.stats
    }

    /// Queues an incoming message (applied when `RECV` executes).
    pub fn deliver(&mut self, message: Message, arrival_cycle: u64) {
        // The receiver cannot see the message before it arrives.
        self.stats.cycles = self.stats.cycles.max(arrival_cycle);
        self.inbox.push(message);
    }

    /// Advances execution until completion or the next communication
    /// boundary. See [`StepEvent`].
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn step(&mut self, program: &Program) -> Result<StepEvent, SimError> {
        if self.pc == 0 && !self.halted {
            program.validate().map_err(|e| SimError::InvalidProgram(e.to_string()))?;
        }
        let len = program.len();
        while self.pc < len && !self.halted {
            let line = self.pc;
            match program[line] {
                Instruction::Compute { .. } => self.exec_compute_ensemble(program)?,
                Instruction::Move { .. } => self.exec_transfer_block(program, None)?,
                Instruction::MpuSync => {
                    // One compute controller → ensembles already serialized;
                    // the fence costs a marker.
                    self.stats.cycles += self.config.control.ensemble_marker;
                    self.stats.control_cycles += self.config.control.ensemble_marker;
                    self.stats.instructions += 1;
                    self.pc += 1;
                }
                Instruction::Send { dst } => {
                    // Baseline datapaths have no inter-MPU message passing:
                    // the host CPU mediates every collective step.
                    let msg = self.exec_send_block(program, dst)?;
                    self.offload_comm(msg.bytes);
                    return Ok(StepEvent::Sent(Box::new(msg)));
                }
                Instruction::Recv { src } => {
                    if let Some(pos) = self.inbox.iter().position(|m| m.src == src) {
                        let msg = self.inbox.remove(pos);
                        if self.config.mode == ExecutionMode::Baseline {
                            // CPU-mediated delivery over the off-chip bus.
                            self.offload_comm(msg.bytes);
                        }
                        self.apply_message(&msg);
                        self.stats.instructions += 1;
                        self.pc += 1;
                    } else {
                        return Ok(StepEvent::AwaitingRecv { src });
                    }
                }
                Instruction::Return => {
                    // Top-level RETURN is the halt convention (end of main;
                    // subroutine bodies follow).
                    self.halted = true;
                    self.stats.instructions += 1;
                }
                Instruction::Nop => {
                    self.stats.cycles += self.config.control.nop;
                    self.stats.control_cycles += self.config.control.nop;
                    self.stats.instructions += 1;
                    self.pc += 1;
                }
                ref other => {
                    return Err(SimError::StrayInstruction { line, mnemonic: other.mnemonic() });
                }
            }
        }
        Ok(StepEvent::Completed)
    }

    // ----- compute ensembles ------------------------------------------

    /// Executes one compute ensemble starting at `self.pc` (its first
    /// `COMPUTE` header instruction), including thermal-wave replay.
    fn exec_compute_ensemble(&mut self, program: &Program) -> Result<(), SimError> {
        let marker = self.config.control.ensemble_marker;
        // Collect the contiguous COMPUTE header.
        let mut members: Vec<(u16, u16)> = Vec::new();
        while let Instruction::Compute { rfh, vrf } = Self::fetch(program, self.pc)? {
            self.check_geometry(self.pc, rfh.0, vrf.0)?;
            members.push((rfh.0, vrf.0));
            self.stats.cycles += marker;
            self.stats.control_cycles += marker;
            self.stats.instructions += 1;
            self.pc += 1;
        }
        let body_start = self.pc;

        // Thermal-aware wave formation (Fig. 10): per-RFH queues, at most
        // `active_vrfs_per_rfh` of each RFH's VRFs per wave.
        let waves = form_waves(&members, self.config.datapath.geometry().active_vrfs_per_rfh);
        self.stats.scheduler_waves += waves.len() as u64;

        let mut end_pc = body_start;
        for wave in &waves {
            end_pc = self.run_body(program, body_start, wave)?;
        }
        if waves.is_empty() {
            // Headerless (empty) ensemble: skip to the footer.
            end_pc = self.run_body(program, body_start, &[])?;
        }
        // Footer.
        self.stats.cycles += marker;
        self.stats.control_cycles += marker;
        self.stats.instructions += 1;
        self.pc = end_pc + 1;
        Ok(())
    }

    /// Interprets an ensemble body once for one wave of VRFs; returns the
    /// index of the terminating `COMPUTE_DONE`.
    fn run_body(
        &mut self,
        program: &Program,
        body_start: usize,
        wave: &[(u16, u16)],
    ) -> Result<usize, SimError> {
        let mut pc = body_start;
        let mut return_stack: Vec<usize> = Vec::new();
        // RACER bit-pipelining: consecutive compute instructions overlap
        // across bit-stages; the first instruction after a (re)fill pays
        // full serial latency, later ones only their stage time.
        let mut pipeline_warm = false;
        // Baseline offload batching: one host round trip services a
        // contiguous run of control instructions; a compute instruction
        // ends the batch.
        let mut offload_batch = false;
        // Playback-buffer occupancy: bodies longer than the buffer incur
        // refills.
        let mut playback_used = 0usize;

        // Reset masks: an ensemble starts with all lanes enabled.
        for &(rfh, vrf) in wave {
            self.vrf_mut(rfh, vrf).fill_plane(Plane::Mask, true);
        }

        loop {
            let line = pc;
            let instr = Self::fetch(program, line)?;
            playback_used += 1;
            if playback_used > self.config.playback_entries {
                playback_used = 1;
                self.charge_control(self.config.control.playback_refill);
            }
            match instr {
                Instruction::ComputeDone => {
                    // Leave predication clean for the next ensemble.
                    for &(rfh, vrf) in wave {
                        self.vrf_mut(rfh, vrf).fill_plane(Plane::Mask, true);
                    }
                    return Ok(line);
                }
                Instruction::Binary { .. }
                | Instruction::Unary { .. }
                | Instruction::Compare { .. }
                | Instruction::Fuzzy { .. }
                | Instruction::Cas { .. }
                | Instruction::Init { .. } => {
                    // In Baseline mode the CPU stays engaged across the
                    // whole control region (it issues these datapath ops
                    // remotely), so an open offload batch persists.
                    self.exec_compute_instr(&instr, wave, &mut pipeline_warm)?;
                    pc += 1;
                }
                Instruction::SetMask { rs } => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch);
                    self.charge_control(self.config.control.mask_update);
                    for &(rfh, vrf) in wave {
                        let v = self.vrf_mut(rfh, vrf);
                        if rs == COND_REG {
                            v.copy_plane(Plane::Cond, Plane::Mask);
                        } else {
                            v.copy_plane(Plane::Reg { reg: rs.0 as u8, bit: 0 }, Plane::Mask);
                        }
                    }
                    self.stats.instructions += 1;
                    pc += 1;
                }
                Instruction::GetMask { rd } => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch);
                    self.charge_control(self.config.control.mask_readout);
                    for &(rfh, vrf) in wave {
                        let v = self.vrf_mut(rfh, vrf);
                        v.set_mask_enabled(false);
                        v.copy_plane(Plane::Mask, Plane::Reg { reg: rd.0 as u8, bit: 0 });
                        for bit in 1..64 {
                            v.fill_plane(Plane::Reg { reg: rd.0 as u8, bit }, false);
                        }
                        v.set_mask_enabled(true);
                    }
                    self.stats.instructions += 1;
                    pc += 1;
                }
                Instruction::Unmask => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch);
                    self.charge_control(self.config.control.mask_update);
                    for &(rfh, vrf) in wave {
                        self.vrf_mut(rfh, vrf).fill_plane(Plane::Mask, true);
                    }
                    self.stats.instructions += 1;
                    pc += 1;
                }
                Instruction::JumpCond { target } => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch);
                    // The branch decision hands control back to the PUM
                    // fetcher: the CPU visit ends here.
                    offload_batch = false;
                    self.charge_control(self.config.control.efi_eval);
                    // EFI: jump back (continue the loop) while any lane of
                    // any wave VRF remains enabled (§VI-B semantics).
                    let any_enabled = wave
                        .iter()
                        .any(|&(rfh, vrf)| self.vrf_mut(rfh, vrf).any_lane_set(Plane::Mask));
                    self.stats.instructions += 1;
                    pc = if any_enabled { target.index() } else { pc + 1 };
                }
                Instruction::Jump { target } => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch);
                    self.charge_control(self.config.control.jump);
                    self.stats.instructions += 1;
                    return_stack.push(pc + 1);
                    pc = target.index();
                }
                Instruction::Return => {
                    self.control_or_offload(wave, &mut pipeline_warm, &mut offload_batch);
                    self.charge_control(self.config.control.jump);
                    self.stats.instructions += 1;
                    pc = return_stack.pop().ok_or(SimError::ReturnUnderflow { line })?;
                }
                Instruction::Nop => {
                    self.charge_control(self.config.control.nop);
                    self.stats.instructions += 1;
                    pc += 1;
                }
                ref other => {
                    return Err(SimError::StrayInstruction { line, mnemonic: other.mnemonic() });
                }
            }
        }
    }

    /// Issues one compute instruction to every VRF of the wave.
    fn exec_compute_instr(
        &mut self,
        instr: &Instruction,
        wave: &[(u16, u16)],
        pipeline_warm: &mut bool,
    ) -> Result<(), SimError> {
        let (cached, hit) = match self.cache.lookup(&self.config.datapath, instr) {
            Some(r) => r,
            None => return Ok(()), // unreachable for compute instructions
        };
        let recipe: Arc<Recipe> = cached.recipe;
        // Decode cost: MPU caches templates; Baseline decodes every time.
        match self.config.mode {
            ExecutionMode::Mpu => {
                if hit {
                    self.stats.recipe_hits += 1;
                } else {
                    self.stats.recipe_misses += 1;
                    self.charge_control(self.config.control.recipe_miss_penalty);
                }
            }
            ExecutionMode::Baseline => {
                self.stats.recipe_misses += 1;
                self.charge_control(self.config.control.recipe_miss_penalty);
            }
        }

        // Timing: micro-ops are broadcast to all wave VRFs, so issue time
        // does not scale with wave size. RACER overlaps consecutive
        // instructions across bit-stages once the pipeline is warm.
        let serial = self.config.datapath.recipe_cycles(&recipe);
        let cycles = if self.config.datapath.bit_pipelined() && *pipeline_warm {
            self.config.datapath.recipe_stage_cycles(&recipe)
        } else {
            serial
        };
        *pipeline_warm = true;
        self.stats.cycles += cycles;
        self.stats.compute_cycles += cycles;
        self.stats.instructions += 1;
        self.stats.uops += recipe.len() as u64;

        // Functional execution + datapath energy (only enabled lanes burn
        // switching energy — the mask power-gates the drivers). The
        // compiled form executes the same plane writes as interpreting
        // `recipe.ops()`, with plane addresses pre-resolved; the enabled
        // lane count comes from the VRF's cached mask popcount.
        let mut energy = 0.0;
        let interpret = self.config.interpret_recipes;
        for &(rfh, vrf) in wave {
            let v = self.vrf_mut(rfh, vrf);
            let enabled = v.mask_lanes();
            if interpret {
                for op in recipe.ops() {
                    op.apply(v);
                }
            } else {
                v.run_compiled(&cached.compiled);
            }
            energy += self.config.datapath.recipe_energy_pj(&recipe, enabled);
        }
        self.stats.energy.datapath_pj += energy;
        Ok(())
    }

    /// Charges the Baseline host round trip for a control-flow instruction
    /// (no-op in MPU mode) and drains the bit pipeline. One round trip
    /// services a contiguous batch of control instructions (the CPU
    /// evaluates the whole mask/branch sequence in one visit); follow-on
    /// instructions within a batch only pay the bus transfer and a short
    /// CPU handling time.
    fn control_or_offload(
        &mut self,
        wave: &[(u16, u16)],
        pipeline_warm: &mut bool,
        offload_batch: &mut bool,
    ) {
        if self.config.mode != ExecutionMode::Baseline {
            return;
        }
        *pipeline_warm = false; // offload drains the pipeline
        let lanes = self.config.datapath.geometry().lanes_per_vrf;
        let bytes = (wave.len().max(1) * lanes).div_ceil(8) as f64;
        let off = &self.config.offload;
        let bus_cycles = (bytes / off.bus_bytes_per_cycle).ceil() as u64;
        let cycles = if *offload_batch {
            // Already at the CPU: per-instruction handling + data movement.
            64 + bus_cycles
        } else {
            self.stats.offload_events += 1;
            off.round_trip_cycles + bus_cycles
        };
        *offload_batch = true;
        self.stats.cycles += cycles;
        self.stats.offload_cycles += cycles;
        self.stats.energy.offload_bus_pj += bytes * off.bus_pj_per_byte;
        self.stats.energy.cpu_pj += off.cpu_active_mw * cycles as f64;
    }

    fn charge_control(&mut self, cycles: u64) {
        self.stats.cycles += cycles;
        self.stats.control_cycles += cycles;
    }

    /// Baseline-mode CPU mediation of inter-MPU communication: one host
    /// round trip plus moving `bytes` across the off-chip bus twice
    /// (PUM → CPU → PUM). No-op in MPU mode.
    fn offload_comm(&mut self, bytes: u64) {
        if self.config.mode != ExecutionMode::Baseline {
            return;
        }
        let off = &self.config.offload;
        let bus = ((2 * bytes) as f64 / off.bus_bytes_per_cycle).ceil() as u64;
        let cycles = off.round_trip_cycles + bus;
        self.stats.cycles += cycles;
        self.stats.offload_cycles += cycles;
        self.stats.offload_events += 1;
        self.stats.energy.offload_bus_pj += 2.0 * bytes as f64 * off.bus_pj_per_byte;
        self.stats.energy.cpu_pj += off.cpu_active_mw * cycles as f64;
    }

    // ----- transfer ensembles ------------------------------------------

    /// Executes a move block. With `message` set, the block belongs to a
    /// `SEND` and the copies become remote writes instead of local ones.
    fn exec_transfer_block(
        &mut self,
        program: &Program,
        mut message: Option<&mut Message>,
    ) -> Result<(), SimError> {
        let marker = self.config.control.ensemble_marker;
        // Header: source/destination RFH pairs → the DTC's target map.
        let mut pairs: Vec<(u16, u16)> = Vec::new();
        while let Instruction::Move { src, dst } = Self::fetch(program, self.pc)? {
            pairs.push((src.0, dst.0));
            self.stats.cycles += marker;
            self.stats.control_cycles += marker;
            self.stats.instructions += 1;
            self.pc += 1;
        }
        let lanes = self.config.datapath.geometry().lanes_per_vrf;
        let words = lanes as u64; // one 64-bit word per lane per register
        loop {
            match Self::fetch(program, self.pc)? {
                Instruction::MoveDone => {
                    self.stats.cycles += marker;
                    self.stats.control_cycles += marker;
                    self.stats.instructions += 1;
                    self.pc += 1;
                    return Ok(());
                }
                Instruction::Memcpy { src_vrf, rs, dst_vrf, rd } => {
                    let line = self.pc;
                    for &(src_rfh, dst_rfh) in &pairs {
                        self.check_geometry(line, src_rfh, src_vrf.0)?;
                        let values = {
                            let v = self.vrf_mut(src_rfh, src_vrf.0);
                            v.read_lane_values(rs.0 as u8)
                        };
                        match message.as_deref_mut() {
                            Some(msg) => {
                                msg.writes.push(RemoteWrite {
                                    rfh: dst_rfh,
                                    vrf: dst_vrf.0,
                                    reg: rd.0 as u8,
                                    values,
                                });
                                msg.bytes += words * 8;
                            }
                            None => {
                                self.check_geometry(line, dst_rfh, dst_vrf.0)?;
                                self.vrf_mut(dst_rfh, dst_vrf.0)
                                    .write_lane_values(rd.0 as u8, &values);
                            }
                        }
                        // Sequential-consistency: transfers execute one at
                        // a time, in order.
                        let cycles = words * self.config.datapath.transfer_cycles_per_word();
                        self.stats.cycles += cycles;
                        self.stats.transfer_cycles += cycles;
                        self.stats.energy.transfer_pj +=
                            words as f64 * self.config.datapath.transfer_energy_pj_per_word();
                    }
                    self.stats.instructions += 1;
                    self.pc += 1;
                }
                ref other => {
                    return Err(SimError::StrayInstruction {
                        line: self.pc,
                        mnemonic: other.mnemonic(),
                    });
                }
            }
        }
    }

    /// Executes a `SEND` block, returning the message to deliver.
    fn exec_send_block(&mut self, program: &Program, dst: MpuId) -> Result<Message, SimError> {
        let marker = self.config.control.ensemble_marker;
        self.stats.cycles += marker;
        self.stats.control_cycles += marker;
        self.stats.instructions += 1;
        self.pc += 1; // past SEND
        let mut msg =
            Message { src: self.id, dst, writes: Vec::new(), bytes: 0, departure_cycle: 0 };
        while !matches!(Self::fetch(program, self.pc)?, Instruction::SendDone) {
            match Self::fetch(program, self.pc)? {
                Instruction::Move { .. } => self.exec_transfer_block(program, Some(&mut msg))?,
                ref other => {
                    return Err(SimError::StrayInstruction {
                        line: self.pc,
                        mnemonic: other.mnemonic(),
                    });
                }
            }
        }
        // SEND_DONE.
        self.stats.cycles += marker;
        self.stats.control_cycles += marker;
        self.stats.instructions += 1;
        self.pc += 1;
        self.stats.messages_sent += 1;
        self.stats.noc_bytes += msg.bytes;
        msg.departure_cycle = self.stats.cycles;
        Ok(msg)
    }

    fn apply_message(&mut self, msg: &Message) {
        // Pack straight from the message payload; missing tail lanes
        // zero-fill implicitly.
        let lanes = self.config.datapath.geometry().lanes_per_vrf;
        for w in &msg.writes {
            let take = w.values.len().min(lanes);
            self.vrf_mut(w.rfh, w.vrf).write_lane_values(w.reg, &w.values[..take]);
        }
    }

    /// Local cycle count (used by the multi-MPU system loop).
    pub fn local_cycles(&self) -> u64 {
        self.stats.cycles
    }

    pub(crate) fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Advances the local clock (NoC delays, rendezvous waits).
    pub fn advance_to(&mut self, cycle: u64) {
        self.stats.cycles = self.stats.cycles.max(cycle);
    }
}

/// Forms thermal-aware scheduling waves (Fig. 10): per-RFH queues, at most
/// `limit` VRFs of each RFH per wave.
fn form_waves(members: &[(u16, u16)], limit: usize) -> Vec<Vec<(u16, u16)>> {
    let limit = limit.max(1);
    let mut queues: HashMap<u16, Vec<(u16, u16)>> = HashMap::new();
    let mut rfh_order: Vec<u16> = Vec::new();
    for &(rfh, vrf) in members {
        if !queues.contains_key(&rfh) {
            rfh_order.push(rfh);
        }
        queues.entry(rfh).or_default().push((rfh, vrf));
    }
    let mut waves = Vec::new();
    loop {
        let mut wave = Vec::new();
        for rfh in &rfh_order {
            let Some(queue) = queues.get_mut(rfh) else {
                continue;
            };
            let take = limit.min(queue.len());
            wave.extend(queue.drain(..take));
        }
        if wave.is_empty() {
            break;
        }
        waves.push(wave);
    }
    waves
}

/// One initial-register binding: `((rfh, vrf, reg), lane values)`.
pub type RegisterInit = ((u16, u16, u8), Vec<u64>);

/// Convenience: run `program` on a fresh MPU with initial register data and
/// return `(stats, machine)` for inspection.
///
/// `inputs` maps `(rfh, vrf, reg)` to lane values.
///
/// # Errors
///
/// Propagates [`SimError`] from setup and execution.
pub fn run_single(
    config: SimConfig,
    program: &Program,
    inputs: &[RegisterInit],
) -> Result<(Stats, Mpu), SimError> {
    run_single_pooled(config, program, inputs, None)
}

/// [`run_single`] with an optional shared [`RecipePool`]: concurrent
/// simulations skip re-synthesizing recipes another run already lowered.
/// Results are bit-identical to the unpooled path — the pool only elides
/// host-side synthesis work, never the simulated template-fetch penalty.
///
/// # Errors
///
/// Propagates [`SimError`] from setup and execution.
pub fn run_single_pooled(
    config: SimConfig,
    program: &Program,
    inputs: &[RegisterInit],
    pool: Option<&Arc<RecipePool>>,
) -> Result<(Stats, Mpu), SimError> {
    let mut mpu = match pool {
        Some(pool) => Mpu::with_pool(config, MpuId(0), Arc::clone(pool)),
        None => Mpu::new(config, MpuId(0)),
    };
    for ((rfh, vrf, reg), values) in inputs {
        mpu.write_register(*rfh, *vrf, *reg, values)?;
    }
    let stats = mpu.run(program)?;
    Ok((stats, mpu))
}

// Parallel sweeps move whole machines across worker threads; keep the
// simulator `Send + Sync` (no `Rc`, no interior mutability without locks).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Mpu>();
    assert_send_sync::<crate::System>();
    assert_send_sync::<RecipePool>();
    assert_send_sync::<Stats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpu_isa::{BinaryOp, CompareOp, LineNum, RegId, UnaryOp, VrfId};
    use pum_backend::DatapathKind;

    fn asm(text: &str) -> Program {
        Program::parse_asm(text).expect("valid asm")
    }

    fn racer() -> SimConfig {
        SimConfig::mpu(DatapathKind::Racer)
    }

    #[test]
    fn simple_add_runs_and_is_correct() {
        let p = asm("COMPUTE h0 v0\nADD r0 r1 r2\nCOMPUTE_DONE");
        let (stats, mut mpu) =
            run_single(racer(), &p, &[((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![9; 64])]).unwrap();
        assert_eq!(mpu.read_register(0, 0, 2).unwrap(), vec![14; 64]);
        assert!(stats.cycles > 0);
        assert_eq!(stats.uops, 641);
        assert_eq!(stats.offload_events, 0);
    }

    #[test]
    fn ensemble_broadcasts_to_all_vrfs() {
        let p = asm("COMPUTE h0 v0\nCOMPUTE h1 v0\nINC r0 r1\nCOMPUTE_DONE");
        let (_, mut mpu) =
            run_single(racer(), &p, &[((0, 0, 0), vec![1; 64]), ((1, 0, 0), vec![10; 64])])
                .unwrap();
        assert_eq!(mpu.read_register(0, 0, 1).unwrap()[0], 2);
        assert_eq!(mpu.read_register(1, 0, 1).unwrap()[0], 11);
    }

    #[test]
    fn thermal_waves_replay_for_same_rfh_vrfs() {
        // RACER allows 1 active VRF per RFH: two VRFs of the same RFH in
        // one ensemble must execute in two waves, with identical results.
        let p = asm("COMPUTE h0 v0\nCOMPUTE h0 v1\nINC r0 r1\nCOMPUTE_DONE");
        let (stats, mut mpu) =
            run_single(racer(), &p, &[((0, 0, 0), vec![1; 64]), ((0, 1, 0), vec![7; 64])]).unwrap();
        assert_eq!(stats.scheduler_waves, 2);
        assert_eq!(mpu.read_register(0, 0, 1).unwrap()[0], 2);
        assert_eq!(mpu.read_register(0, 1, 1).unwrap()[0], 8);

        // MIMDRAM can activate both at once: one wave, same results.
        let (stats, _) = run_single(
            SimConfig::mpu(DatapathKind::Mimdram),
            &p,
            &[((0, 0, 0), vec![1; 512]), ((0, 1, 0), vec![7; 512])],
        )
        .unwrap();
        assert_eq!(stats.scheduler_waves, 1);
    }

    #[test]
    fn dynamic_loop_terminates_via_efi() {
        // r0 counts down from lane index; loop decrements until all zero.
        // while (r0 > r1): r0 -= r2  (r1 = 0, r2 = 1)
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            // loop head (line 1): cond = r0 > r1
            Instruction::Compare { op: CompareOp::Gt, rs: RegId(0), rt: RegId(1) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(2), rd: RegId(0) },
            Instruction::JumpCond { target: LineNum(1) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let init: Vec<u64> = (0..64).map(|i| i % 5).collect();
        let (stats, mut mpu) = run_single(
            racer(),
            &p,
            &[((0, 0, 0), init), ((0, 0, 1), vec![0; 64]), ((0, 0, 2), vec![1; 64])],
        )
        .unwrap();
        assert_eq!(mpu.read_register(0, 0, 0).unwrap(), vec![0; 64]);
        // 4 iterations (max initial value), data-driven.
        assert!(stats.instructions > 10);
        assert_eq!(stats.offload_events, 0, "MPU mode needs no CPU");
    }

    #[test]
    fn baseline_mode_offloads_control_flow() {
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Compare { op: CompareOp::Gt, rs: RegId(0), rt: RegId(1) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(2), rd: RegId(0) },
            Instruction::JumpCond { target: LineNum(1) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let inputs: [((u16, u16, u8), Vec<u64>); 3] =
            [((0, 0, 0), vec![3; 64]), ((0, 0, 1), vec![0; 64]), ((0, 0, 2), vec![1; 64])];
        let (mpu_stats, mut m1) =
            run_single(SimConfig::mpu(DatapathKind::Racer), &p, &inputs).unwrap();
        let (base_stats, mut m2) =
            run_single(SimConfig::baseline(DatapathKind::Racer), &p, &inputs).unwrap();
        // Same architectural result...
        assert_eq!(m1.read_register(0, 0, 0).unwrap(), m2.read_register(0, 0, 0).unwrap());
        // ...but Baseline pays CPU round trips.
        assert!(base_stats.offload_events > 0);
        assert!(base_stats.cycles > 3 * mpu_stats.cycles, "offloads dominate");
        assert!(base_stats.energy.cpu_pj > 0.0);
        assert_eq!(mpu_stats.offload_events, 0);
        assert!(mpu_stats.energy.cpu_pj == 0.0);
    }

    #[test]
    fn branches_predicate_lanes() {
        // if (r0 == r1) r2 = r0 + r1 else r2 = r0 - r1, via mask + inverse.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Compare { op: CompareOp::Eq, rs: RegId(0), rt: RegId(1) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            // Invert the mask: getmask → r3, unmask, r3 = (r3 == 0), setmask.
            Instruction::GetMask { rd: RegId(3) },
            Instruction::Unmask,
            Instruction::Init { value: mpu_isa::InitValue::Zero, rd: RegId(4) },
            Instruction::Compare { op: CompareOp::Eq, rs: RegId(3), rt: RegId(4) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let a: Vec<u64> = (0..64).collect();
        let b: Vec<u64> = (0..64).map(|i| if i % 2 == 0 { i } else { 1 }).collect();
        let (_, mut mpu) =
            run_single(racer(), &p, &[((0, 0, 0), a.clone()), ((0, 0, 1), b.clone())]).unwrap();
        let got = mpu.read_register(0, 0, 2).unwrap();
        for i in 0..64 {
            let expect = if a[i] == b[i] { a[i] + b[i] } else { a[i].wrapping_sub(b[i]) };
            assert_eq!(got[i], expect, "lane {i}");
        }
    }

    #[test]
    fn subroutine_call_and_halt_convention() {
        // main: call subroutine at line 4, halt; sub: r1 = r0 + r0.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Jump { target: LineNum(4) },
            Instruction::ComputeDone,
            Instruction::Return, // top-level halt (never reached: pc skips)
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(0), rd: RegId(1) },
            Instruction::Return,
        ]);
        let (_, mut mpu) = run_single(racer(), &p, &[((0, 0, 0), vec![21; 64])]).unwrap();
        assert_eq!(mpu.read_register(0, 0, 1).unwrap()[0], 42);
    }

    #[test]
    fn transfer_block_moves_registers_between_vrfs() {
        let p = asm("MOVE h0 h1\nMEMCPY v0 r0 v0 r1\nMOVE_DONE");
        let (stats, mut mpu) = run_single(racer(), &p, &[((0, 0, 0), vec![77; 64])]).unwrap();
        assert_eq!(mpu.read_register(1, 0, 1).unwrap()[0], 77);
        assert!(stats.transfer_cycles > 0);
        assert!(stats.energy.transfer_pj > 0.0);
    }

    #[test]
    fn multi_pair_move_applies_to_every_pair() {
        let p = asm("MOVE h0 h1\nMOVE h2 h3\nMEMCPY v0 r0 v0 r0\nMOVE_DONE");
        let (_, mut mpu) =
            run_single(racer(), &p, &[((0, 0, 0), vec![5; 64]), ((2, 0, 0), vec![6; 64])]).unwrap();
        assert_eq!(mpu.read_register(1, 0, 0).unwrap()[0], 5);
        assert_eq!(mpu.read_register(3, 0, 0).unwrap()[0], 6);
    }

    #[test]
    fn send_outside_system_is_an_error() {
        let p = asm("SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE");
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(matches!(err, SimError::CommOutsideSystem { .. }));
    }

    #[test]
    fn geometry_violations_are_reported() {
        let p = asm("COMPUTE h9 v0\nNOP\nCOMPUTE_DONE");
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(matches!(err, SimError::GeometryExceeded { .. }));
    }

    #[test]
    fn recipe_cache_hits_on_repeated_instructions() {
        let p = asm("COMPUTE h0 v0\nADD r0 r1 r2\nADD r0 r1 r2\nADD r0 r1 r2\nCOMPUTE_DONE");
        let (stats, _) = run_single(racer(), &p, &[]).unwrap();
        assert_eq!(stats.recipe_misses, 1);
        assert_eq!(stats.recipe_hits, 2);
    }

    #[test]
    fn pipelining_makes_consecutive_instructions_cheaper() {
        // Two identical RACER programs; the one with more back-to-back
        // instructions should cost much less than proportionally more.
        let p1 = asm("COMPUTE h0 v0\nADD r0 r1 r2\nCOMPUTE_DONE");
        let p8 = asm("COMPUTE h0 v0\n\
             ADD r0 r1 r2\nADD r0 r1 r2\nADD r0 r1 r2\nADD r0 r1 r2\n\
             ADD r0 r1 r2\nADD r0 r1 r2\nADD r0 r1 r2\nADD r0 r1 r2\n\
             COMPUTE_DONE");
        let (s1, _) = run_single(racer(), &p1, &[]).unwrap();
        let (s8, _) = run_single(racer(), &p8, &[]).unwrap();
        assert!(
            (s8.compute_cycles as f64) < 3.0 * s1.compute_cycles as f64,
            "8 pipelined ADDs ({}) should cost < 3x one ADD ({})",
            s8.compute_cycles,
            s1.compute_cycles
        );
    }

    #[test]
    fn mask_resets_between_ensembles() {
        // First ensemble masks everything off; second must still write.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Init { value: mpu_isa::InitValue::Zero, rd: RegId(3) },
            Instruction::SetMask { rs: RegId(3) }, // all lanes off
            Instruction::ComputeDone,
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Unary { op: UnaryOp::Inc, rs: RegId(0), rd: RegId(1) },
            Instruction::ComputeDone,
        ]);
        let (_, mut mpu) = run_single(racer(), &p, &[((0, 0, 0), vec![1; 64])]).unwrap();
        assert_eq!(mpu.read_register(0, 0, 1).unwrap()[0], 2);
    }

    #[test]
    fn stray_instruction_detected() {
        let p = Program::from_instructions(vec![Instruction::Unmask]);
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(matches!(err, SimError::StrayInstruction { .. }));
    }

    #[test]
    fn truncated_compute_block_is_an_error_not_a_panic() {
        // COMPUTE header + body but no COMPUTE_DONE: the up-front
        // validator rejects it before execution starts.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
        ]);
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(matches!(err, SimError::InvalidProgram(_)), "got {err:?}");
    }

    #[test]
    fn truncated_move_block_is_an_error_not_a_panic() {
        // MOVE header with neither body nor MOVE_DONE.
        let p =
            Program::from_instructions(vec![Instruction::Move { src: 0.into(), dst: 1.into() }]);
        let err = run_single(racer(), &p, &[]).unwrap_err();
        assert!(matches!(err, SimError::InvalidProgram(_)), "got {err:?}");
    }

    #[test]
    fn fetch_past_program_end_reports_unexpected_end() {
        // Should validation ever miss a truncated block, the execution-path
        // backstop turns the out-of-bounds fetch into a SimError rather
        // than an index panic.
        let p = Program::from_instructions(vec![Instruction::Nop]);
        assert!(matches!(Mpu::fetch(&p, 0), Ok(Instruction::Nop)));
        let err = Mpu::fetch(&p, 3).unwrap_err();
        assert_eq!(err, SimError::UnexpectedEnd { line: 3 });
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "got {msg}");
    }

    #[test]
    fn wave_formation_respects_limits() {
        let members = vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)];
        let waves = form_waves(&members, 1);
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0], vec![(0, 0), (1, 0)]);
        assert_eq!(waves[1], vec![(0, 1), (1, 1)]);
        assert_eq!(waves[2], vec![(0, 2)]);
        let waves = form_waves(&members, 8);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 5);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SimError::ReturnUnderflow { line: 7 };
        assert!(e.to_string().contains("line 7"));
        let e = SimError::StrayInstruction { line: 3, mnemonic: "MEMCPY" };
        assert!(e.to_string().contains("MEMCPY"));
    }
}
