//! Execution statistics: cycle and energy accounting with the breakdowns
//! the paper's figures report (Fig. 12/13 totals, Fig. 15 time breakdown).

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Energy accounting, picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyStats {
    /// Micro-op energy in the memory arrays.
    pub datapath_pj: f64,
    /// MPU front-end (control path) energy.
    pub frontend_pj: f64,
    /// Intra-MPU and inter-MPU data movement energy.
    pub transfer_pj: f64,
    /// Off-chip bus energy for Baseline offloads.
    pub offload_bus_pj: f64,
    /// Host CPU energy (active during offloads + idle during PUM compute;
    /// Baseline mode only).
    pub cpu_pj: f64,
}

impl EnergyStats {
    /// Total energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.datapath_pj + self.frontend_pj + self.transfer_pj + self.offload_bus_pj + self.cpu_pj
    }

    /// Total energy, millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1.0e9
    }
}

impl AddAssign for EnergyStats {
    fn add_assign(&mut self, rhs: Self) {
        self.datapath_pj += rhs.datapath_pj;
        self.frontend_pj += rhs.frontend_pj;
        self.transfer_pj += rhs.transfer_pj;
        self.offload_bus_pj += rhs.offload_bus_pj;
        self.cpu_pj += rhs.cpu_pj;
    }
}

/// Fault-injection and recovery accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transient bit-plane flips and register-write corruptions that
    /// actually landed (flips absorbed by forced lanes don't count).
    pub injected: u64,
    /// Faults detected by redundancy comparison (DMR mismatch / TMR vote).
    pub detected: u64,
    /// Faults corrected in place (DMR retry success / TMR majority).
    pub corrected: u64,
    /// DMR retry rounds executed after a mismatch.
    pub retries: u64,
    /// Extra redundant executions beyond the first (2× for DMR, 3× for
    /// TMR, plus retries).
    pub redundant_runs: u64,
    /// Compute ensembles rolled back to their checkpoint and restarted.
    pub ensemble_restarts: u64,
    /// Lanes found dead by the boot self-test (power-gated).
    pub dead_lanes: u64,
    /// Logical lanes relocated to a different physical lane by remapping.
    pub remapped_lanes: u64,
    /// Logical lanes lost because dead lanes exceeded the spares
    /// (graceful degradation: reduced occupancy).
    pub lanes_lost: u64,
    /// NoC messages dropped in flight.
    pub messages_dropped: u64,
    /// NoC messages delivered with a corrupted payload.
    pub messages_corrupted: u64,
    /// NoC retransmissions issued by the retry policy.
    pub retransmissions: u64,
}

impl AddAssign for FaultStats {
    fn add_assign(&mut self, rhs: Self) {
        self.injected += rhs.injected;
        self.detected += rhs.detected;
        self.corrected += rhs.corrected;
        self.retries += rhs.retries;
        self.redundant_runs += rhs.redundant_runs;
        self.ensemble_restarts += rhs.ensemble_restarts;
        self.dead_lanes += rhs.dead_lanes;
        self.remapped_lanes += rhs.remapped_lanes;
        self.lanes_lost += rhs.lanes_lost;
        self.messages_dropped += rhs.messages_dropped;
        self.messages_corrupted += rhs.messages_corrupted;
        self.retransmissions += rhs.retransmissions;
    }
}

/// Full statistics for one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Stats {
    /// Total elapsed cycles (1 GHz → cycles == nanoseconds).
    pub cycles: u64,
    /// Cycles issuing micro-ops (the Fig. 15 "MPU computation" component).
    pub compute_cycles: u64,
    /// Cycles in control-path work: masks, EFI evaluations, jumps,
    /// ensemble markers, recipe misses, playback refills.
    pub control_cycles: u64,
    /// Cycles moving data on-chip (transfer ensembles + NoC; the Fig. 15
    /// "inter-MPU communication" component).
    pub transfer_cycles: u64,
    /// Cycles stalled on host-CPU offloads (the Fig. 15 "off-chip
    /// communication" component; Baseline only).
    pub offload_cycles: u64,
    /// ISA instructions executed (dynamic count).
    pub instructions: u64,
    /// Micro-ops issued to the datapath.
    pub uops: u64,
    /// Micro-ops the recipe optimizer removed from issued recipes (the
    /// work that *would* have been issued had synthesis templates run
    /// unoptimized; see `pum_backend::opt`).
    #[serde(default)]
    pub uops_saved: u64,
    /// Host offload events (Baseline only).
    pub offload_events: u64,
    /// Recipe-table (template lookup) hits.
    pub recipe_hits: u64,
    /// Recipe-table misses.
    pub recipe_misses: u64,
    /// Scheduler waves replayed due to per-RFH activation limits.
    pub scheduler_waves: u64,
    /// Inter-MPU messages sent.
    pub messages_sent: u64,
    /// Bytes moved between MPUs.
    pub noc_bytes: u64,
    /// Fault-injection and recovery accounting.
    #[serde(default)]
    pub faults: FaultStats,
    /// Energy breakdown.
    pub energy: EnergyStats,
}

impl Stats {
    /// Elapsed wall-clock time in nanoseconds (1 GHz clock).
    pub fn time_ns(&self) -> f64 {
        self.cycles as f64
    }

    /// Elapsed time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.cycles as f64 / 1000.0
    }

    /// The Fig. 15 execution-time breakdown as fractions
    /// `(compute, inter-MPU, off-chip)` of the summed per-MPU activity
    /// (front-end control cycles count toward compute). Normalizing by the
    /// component sum keeps multi-MPU aggregates (where counters add but
    /// elapsed time is a max) on a 100% scale.
    pub fn time_breakdown(&self) -> (f64, f64, f64) {
        let compute = (self.compute_cycles + self.control_cycles) as f64;
        let total = (compute + self.transfer_cycles as f64 + self.offload_cycles as f64).max(1.0);
        (compute / total, self.transfer_cycles as f64 / total, self.offload_cycles as f64 / total)
    }

    /// Recipe-cache hit rate in `[0, 1]` (1.0 when no lookups happened).
    pub fn recipe_hit_rate(&self) -> f64 {
        let lookups = self.recipe_hits + self.recipe_misses;
        if lookups == 0 {
            1.0
        } else {
            self.recipe_hits as f64 / lookups as f64
        }
    }

    /// Merges per-MPU statistics for sequential sections (cycles add).
    pub fn merge_sequential(&mut self, other: &Stats) {
        self.cycles += other.cycles;
        self.accumulate_counters(other);
    }

    /// Merges per-MPU statistics for parallel sections (elapsed time is the
    /// max; work counters and energy add).
    pub fn merge_parallel(&mut self, other: &Stats) {
        self.cycles = self.cycles.max(other.cycles);
        self.accumulate_counters(other);
    }

    fn accumulate_counters(&mut self, other: &Stats) {
        self.compute_cycles += other.compute_cycles;
        self.control_cycles += other.control_cycles;
        self.transfer_cycles += other.transfer_cycles;
        self.offload_cycles += other.offload_cycles;
        self.instructions += other.instructions;
        self.uops += other.uops;
        self.uops_saved += other.uops_saved;
        self.offload_events += other.offload_events;
        self.recipe_hits += other.recipe_hits;
        self.recipe_misses += other.recipe_misses;
        self.scheduler_waves += other.scheduler_waves;
        self.messages_sent += other.messages_sent;
        self.noc_bytes += other.noc_bytes;
        self.faults += other.faults;
        self.energy += other.energy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions_sum_to_at_most_one() {
        let s = Stats {
            cycles: 100,
            compute_cycles: 50,
            control_cycles: 10,
            transfer_cycles: 20,
            offload_cycles: 20,
            ..Stats::default()
        };
        let (c, t, o) = s.time_breakdown();
        assert!((c + t + o - 1.0).abs() < 1e-9);
        assert!((c - 0.6).abs() < 1e-9);
        assert!((o - 0.2).abs() < 1e-9);
    }

    #[test]
    fn merge_parallel_takes_max_time_and_sums_energy() {
        let mut a = Stats { cycles: 100, ..Stats::default() };
        a.energy.datapath_pj = 5.0;
        let mut b = Stats { cycles: 70, ..Stats::default() };
        b.energy.datapath_pj = 7.0;
        a.merge_parallel(&b);
        assert_eq!(a.cycles, 100);
        assert!((a.energy.datapath_pj - 12.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sequential_adds_time() {
        let mut a = Stats { cycles: 100, ..Stats::default() };
        let b = Stats { cycles: 70, ..Stats::default() };
        a.merge_sequential(&b);
        assert_eq!(a.cycles, 170);
    }

    #[test]
    fn hit_rate_defaults_to_one_without_lookups() {
        assert_eq!(Stats::default().recipe_hit_rate(), 1.0);
        let s = Stats { recipe_hits: 3, recipe_misses: 1, ..Stats::default() };
        assert!((s.recipe_hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn energy_totals() {
        let e = EnergyStats {
            datapath_pj: 1.0,
            frontend_pj: 2.0,
            transfer_pj: 3.0,
            offload_bus_pj: 4.0,
            cpu_pj: 5.0,
        };
        assert!((e.total_pj() - 15.0).abs() < 1e-12);
        assert!((e.total_mj() - 15.0e-9).abs() < 1e-18);
    }
}
