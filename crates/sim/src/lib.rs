//! # mastodon — a cycle-accurate MPU simulator
//!
//! A reproduction of the paper's MASTODON (*Memory Array Simulation
//! Testbed for Organization, Data, Operations, and Networks*): it executes
//! MPU ISA binaries on modeled bitwise PUM datapaths with the full control
//! path of the paper's §VI —
//!
//! * **precoder/fetcher** walking the binary and distributing ensembles,
//! * **compute controller** with playback-buffer replay, an I2M decoder
//!   backed by a capacity-bounded recipe cache (template lookup, Fig. 9),
//!   per-VRF mask registers and the EFI for `JUMP_COND`,
//! * **thermal-aware scheduler** forming per-RFH activation waves (Fig. 10),
//! * **data transfer controller** for move blocks and `SEND`/`RECV`
//!   message passing over a mesh NoC ([`System`]),
//! * a **Baseline mode** in which control-flow instructions trigger host
//!   CPU round trips over the off-chip bus — the configuration the paper
//!   compares against.
//!
//! Execution is functionally exact (vector state lives in bit-plane VRFs
//! and every instruction runs via its micro-op recipe), so simulations
//! produce checkable results along with cycle/energy statistics.
//!
//! # Parallel sweeps
//!
//! Every simulator type is `Send + Sync` (enforced by a compile-time
//! assertion in `machine.rs`), so whole chip runs can be fanned across
//! threads. Two pieces support this:
//!
//! * [`RecipePool`] — a thread-safe, append-only map from
//!   `(RecipeCtx, instruction word)` to the synthesized micro-op
//!   [`Recipe`](pum_backend::Recipe). Recipe synthesis is a pure function
//!   of that key, so concurrent runs share one pool (via
//!   [`run_single_pooled`] or [`System::new_pooled`]) and each template is
//!   synthesized once per process instead of once per run. The pool only
//!   memoizes *host-side* synthesis work: each MPU's architectural
//!   [`RecipeCache`] still tracks its own capacity, LRU evictions, and
//!   hit/miss statistics, so pooled and unpooled runs produce identical
//!   [`Stats`].
//! * `workloads::run_sweep_parallel` / `workloads::parallel_map` — the
//!   sweep harness built on these guarantees. Results are returned in
//!   input order and are byte-identical to a serial sweep, whatever the
//!   job count. Worker count comes from `--jobs N` on the experiment
//!   binaries, else the `MPU_JOBS` environment variable, else the number
//!   of available cores.
//!
//! # Quick start
//!
//! ```
//! use mastodon::{run_single, SimConfig};
//! use mpu_isa::Program;
//! use pum_backend::DatapathKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Program::parse_asm(
//!     "COMPUTE h0 v0\n\
//!      MUL r0 r1 r2\n\
//!      COMPUTE_DONE",
//! )?;
//! let (stats, mut mpu) = run_single(
//!     SimConfig::mpu(DatapathKind::Racer),
//!     &program,
//!     &[((0, 0, 0), vec![6; 64]), ((0, 0, 1), vec![7; 64])],
//! )?;
//! assert_eq!(mpu.read_register(0, 0, 2)?[0], 42);
//! println!("{} cycles, {} µops", stats.cycles, stats.uops);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod autotune;
mod chrome;
mod config;
mod fault;
mod machine;
mod noc;
mod profile;
mod recipe_cache;
mod stats;
mod system;
mod trace;

pub use autotune::{autotune, EnsembleShape, TuneResult};
pub use chrome::{chrome_trace_json, NOC_TID};
pub use config::{ControlCosts, ExecutionMode, NocParams, OffloadParams, SimConfig};
pub use fault::{kind_weight, FaultConfig, RecoveryPolicy, Redundancy, StuckLane};
pub use machine::{
    run_single, run_single_pooled, run_single_traced, EnsembleKind, Message, Mpu, MpuCheckpoint,
    RegisterInit, RemoteWrite, RunControl, SimError, StepEvent, RETURN_STACK_DEPTH,
};
pub use noc::MeshNoc;
pub use profile::{MpuProfile, Profile, ProfileNode};
pub use recipe_cache::{PoolStats, RecipeCache, RecipePool};
pub use stats::{EnergyStats, FaultStats, Stats};
pub use system::{System, SystemError};
pub use trace::{EventLog, FaultAction, InstrClass, TraceEvent, TraceKind, Tracer, UopMix};
