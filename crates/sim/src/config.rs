//! Simulation configuration (paper Table III plus offload/NoC parameters).

use crate::fault::{FaultConfig, RecoveryPolicy};
use pum_backend::{DatapathKind, DatapathModel};
use serde::{Deserialize, Serialize};

/// Whether the control path is the MPU front end or the original
/// ("Baseline") datapath that offloads control flow to a host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Full MPU front end: in-PUM control flow, recipe caching, playback.
    Mpu,
    /// Original datapath: every control-flow instruction triggers a host
    /// CPU round trip over the off-chip bus; the pipeline drains around
    /// each offload.
    Baseline,
}

/// Host-CPU offload model parameters (Baseline mode; paper Fig. 1).
///
/// The dominant term is the round trip through the host's driver stack:
/// interrupt delivery, kernel driver, user-space handler and the DMA of the
/// condition vector, at fine (per-control-instruction) granularity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadParams {
    /// Round-trip latency of one control offload, in MPU cycles (ns).
    pub round_trip_cycles: u64,
    /// Off-chip bus bandwidth, bytes per cycle (16 GB/s ≈ 16 B/cycle).
    pub bus_bytes_per_cycle: f64,
    /// Off-chip bus energy, pJ per byte moved.
    pub bus_pj_per_byte: f64,
    /// CPU package power while servicing an offload, mW (== pJ/cycle).
    pub cpu_active_mw: f64,
    /// CPU package power while idling as the PUM computes, mW.
    pub cpu_idle_mw: f64,
}

impl Default for OffloadParams {
    fn default() -> Self {
        Self {
            round_trip_cycles: 15_000, // ≈ 15 µs interrupt + driver + DMA visit
            bus_bytes_per_cycle: 16.0,
            bus_pj_per_byte: 25.0,
            cpu_active_mw: 120_000.0, // 120 W package
            cpu_idle_mw: 40_000.0,    // 40 W idle
        }
    }
}

/// Mesh NoC parameters for inter-MPU messages (replacing the paper's SST
/// modules).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocParams {
    /// Per-hop router+link latency, cycles.
    pub hop_cycles: u64,
    /// Link width: bytes accepted per cycle.
    pub link_bytes_per_cycle: f64,
    /// Energy per byte per hop, pJ.
    pub pj_per_byte_hop: f64,
}

impl Default for NocParams {
    fn default() -> Self {
        Self { hop_cycles: 3, link_bytes_per_cycle: 8.0, pj_per_byte_hop: 0.8 }
    }
}

/// Fixed control-path costs, in cycles (derived from the 1 GHz synthesis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlCosts {
    /// Ensemble header/footer handling per instruction.
    pub ensemble_marker: u64,
    /// SETMASK / UNMASK mask-register update.
    pub mask_update: u64,
    /// GETMASK copy-out (mask → data register).
    pub mask_readout: u64,
    /// JUMP_COND: EFI reduction + scheduler PC update.
    pub efi_eval: u64,
    /// JUMP / RETURN (return-address stack push/pop).
    pub jump: u64,
    /// NOP bubble.
    pub nop: u64,
    /// Recipe-table miss: fetch a template from binary storage into the
    /// template lookup (paper Fig. 9).
    pub recipe_miss_penalty: u64,
    /// Refill of the playback buffer when a body exceeds its capacity.
    pub playback_refill: u64,
}

impl Default for ControlCosts {
    fn default() -> Self {
        Self {
            ensemble_marker: 2,
            mask_update: 4,
            mask_readout: 6,
            efi_eval: 8,
            jump: 2,
            nop: 1,
            recipe_miss_penalty: 64,
            playback_refill: 32,
        }
    }
}

/// Serde default for [`SimConfig::trace_ensembles`]: the trace tier is on
/// unless a config explicitly opts out.
fn default_trace_ensembles() -> bool {
    true
}

/// Complete configuration of one simulated chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The PUM datapath under the front end.
    pub datapath: DatapathModel,
    /// MPU or Baseline control path.
    pub mode: ExecutionMode,
    /// Host-offload model (used in Baseline mode).
    pub offload: OffloadParams,
    /// Inter-MPU network model.
    pub noc: NocParams,
    /// Fixed control-path costs.
    pub control: ControlCosts,
    /// Playback buffer capacity, instructions (Table III: 1024).
    pub playback_entries: usize,
    /// Template lookup capacity, recipes (Table III: 1024).
    pub template_entries: usize,
    /// Front-end dynamic power while busy, mW (== pJ/cycle at 1 GHz).
    pub frontend_dynamic_mw: f64,
    /// Front-end static power, mW.
    pub frontend_static_mw: f64,
    /// Execute compute instructions by interpreting their micro-op
    /// sequence one op at a time instead of running the geometry-compiled
    /// form. Timing, energy, and statistics are identical either way; the
    /// conformance suite runs both paths differentially to prove it.
    #[serde(default)]
    pub interpret_recipes: bool,
    /// Fuse straight-line compute-ensemble bodies into cached
    /// [`pum_backend::EnsembleTrace`]s and replay those instead of
    /// dispatching per instruction (the trace execution tier). A host-side
    /// optimization only: lane values, statistics, and trace events are
    /// bit-identical to the per-instruction tiers, and bodies with
    /// data-dependent control flow automatically fall back. The
    /// conformance suite runs all three tiers differentially to prove it.
    #[serde(default = "default_trace_ensembles")]
    pub trace_ensembles: bool,
    /// Seeded hardware fault injection. Default: disabled (no seed).
    #[serde(default)]
    pub fault: FaultConfig,
    /// Detection and recovery policy. Default: everything off.
    #[serde(default)]
    pub recovery: RecoveryPolicy,
}

impl SimConfig {
    /// MPU-mode configuration for a datapath.
    pub fn mpu(kind: DatapathKind) -> Self {
        Self::new(DatapathModel::for_kind(kind), ExecutionMode::Mpu)
    }

    /// Baseline-mode configuration for a datapath.
    pub fn baseline(kind: DatapathKind) -> Self {
        Self::new(DatapathModel::for_kind(kind), ExecutionMode::Baseline)
    }

    /// Builds a configuration from an explicit datapath model.
    pub fn new(datapath: DatapathModel, mode: ExecutionMode) -> Self {
        let fe = pum_backend::area::FrontEndModel::default();
        Self {
            datapath,
            mode,
            offload: OffloadParams::default(),
            noc: NocParams::default(),
            control: ControlCosts::default(),
            playback_entries: 1024,
            template_entries: 1024,
            frontend_dynamic_mw: fe.total_dynamic_mw(),
            frontend_static_mw: fe.total_static_mw(),
            interpret_recipes: false,
            trace_ensembles: default_trace_ensembles(),
            fault: FaultConfig::default(),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// A short tag like `MPU:RACER` / `Baseline:MIMDRAM` used in reports.
    pub fn label(&self) -> String {
        let mode = match self.mode {
            ExecutionMode::Mpu => "MPU",
            ExecutionMode::Baseline => "Baseline",
        };
        format!("{mode}:{}", self.datapath.name())
    }

    /// Renders the Table III parameter dump for this configuration.
    pub fn table3_rows(&self) -> Vec<(String, String)> {
        let g = self.datapath.geometry();
        vec![
            ("Pointer Table Entries".into(), "20".into()),
            ("Template Lookup Entries".into(), self.template_entries.to_string()),
            ("Bits in Activation Board".into(), g.vrfs_per_mpu().to_string()),
            ("Playback Buffer Entries".into(), self.playback_entries.to_string()),
            ("Instruction Storage Cap.".into(), "2 MB".into()),
            ("Active VRFs Per RFH".into(), g.active_vrfs_per_rfh.to_string()),
            ("RFHs Per MPU".into(), g.rfhs_per_mpu.to_string()),
            ("MPUs on Chip".into(), g.mpus_per_chip.to_string()),
            ("Memory per MPU".into(), format!("{} MB", g.mem_bytes_per_mpu >> 20)),
            ("Compute Controllers".into(), "1".into()),
            ("Micro-Op Issue Rate".into(), "1 per cycle per MPU".into()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_follow_paper_naming() {
        assert_eq!(SimConfig::mpu(DatapathKind::Racer).label(), "MPU:RACER");
        assert_eq!(SimConfig::baseline(DatapathKind::Mimdram).label(), "Baseline:MIMDRAM");
    }

    #[test]
    fn table3_reports_datapath_specific_limits() {
        let racer = SimConfig::mpu(DatapathKind::Racer);
        let rows = racer.table3_rows();
        let active = rows.iter().find(|(k, _)| k == "Active VRFs Per RFH").unwrap();
        assert_eq!(active.1, "1");
        let dc = SimConfig::mpu(DatapathKind::DualityCache);
        let rows = dc.table3_rows();
        let mpus = rows.iter().find(|(k, _)| k == "MPUs on Chip").unwrap();
        assert_eq!(mpus.1, "12");
    }

    #[test]
    fn frontend_power_comes_from_area_model() {
        let c = SimConfig::mpu(DatapathKind::Racer);
        assert!((c.frontend_dynamic_mw - 71.72).abs() < 3.0);
        assert!((c.frontend_static_mw - 1.22).abs() < 0.1);
    }
}
