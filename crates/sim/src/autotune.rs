//! Binary-portability autotuning (paper §VI-C).
//!
//! MPU binaries encode a compile-target VRFs-per-RFH parameter; the
//! runtime "can perform some degree of RFH/VRF-to-MPU remapping if the
//! target hardware uses a different parameter", and the paper envisions
//! GPU-style autotuning over the (small) search space. This module
//! implements that: given a program template parameterized by its
//! ensemble shape, [`autotune`] sweeps candidate shapes on the target
//! datapath, runs each, and returns the fastest within the hardware's
//! constraints.

use crate::config::SimConfig;
use crate::machine::{run_single, SimError};
use crate::stats::Stats;
use mpu_isa::Program;
use serde::{Deserialize, Serialize};

/// One candidate ensemble shape: how many VRFs per RFH a block activates,
/// across how many RFHs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EnsembleShape {
    /// RF holders the ensemble spans.
    pub rfhs: usize,
    /// VRFs named per RF holder.
    pub vrfs_per_rfh: usize,
}

impl EnsembleShape {
    /// The `(rfh, vrf)` member list this shape denotes.
    pub fn members(&self) -> Vec<(u16, u16)> {
        let mut members = Vec::with_capacity(self.rfhs * self.vrfs_per_rfh);
        for v in 0..self.vrfs_per_rfh {
            for h in 0..self.rfhs {
                members.push((h as u16, v as u16));
            }
        }
        members
    }

    /// Total VRFs (and therefore `lanes × total` elements) this shape
    /// computes on per pass.
    pub fn total_vrfs(&self) -> usize {
        self.rfhs * self.vrfs_per_rfh
    }
}

/// Result of evaluating one candidate shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneResult {
    /// The candidate shape.
    pub shape: EnsembleShape,
    /// Simulated statistics for one pass.
    pub stats: Stats,
    /// Figure of merit: elements processed per cycle (higher is better).
    pub throughput: f64,
}

/// Sweeps candidate ensemble shapes for a program template on a target
/// configuration and returns every evaluated point, best first.
///
/// `template` receives the member list and must return the program for
/// that shape plus its initial register data (as for
/// [`crate::run_single`]).
///
/// # Errors
///
/// Propagates the first simulation failure.
///
/// # Example
///
/// ```
/// use mastodon::{autotune, SimConfig};
/// use mpu_isa::{Instruction, Program, RegId, RfhId, VrfId};
/// use pum_backend::DatapathKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let results = autotune(&SimConfig::mpu(DatapathKind::Racer), |members| {
///     let mut instrs: Vec<Instruction> = members
///         .iter()
///         .map(|&(h, v)| Instruction::Compute { rfh: RfhId(h), vrf: VrfId(v) })
///         .collect();
///     instrs.push(Instruction::Unary {
///         op: mpu_isa::UnaryOp::Inc,
///         rs: RegId(0),
///         rd: RegId(1),
///     });
///     instrs.push(Instruction::ComputeDone);
///     (Program::from_instructions(instrs), Vec::new())
/// })?;
/// // On RACER (1 active VRF/RFH) the winner spans all 8 RFHs, 1 VRF each.
/// assert_eq!(results[0].shape.rfhs, 8);
/// # Ok(())
/// # }
/// ```
#[allow(clippy::type_complexity)]
pub fn autotune(
    config: &SimConfig,
    template: impl Fn(&[(u16, u16)]) -> (Program, Vec<((u16, u16, u8), Vec<u64>)>),
) -> Result<Vec<TuneResult>, SimError> {
    let g = config.datapath.geometry();
    let mut candidates = Vec::new();
    let mut v = 1;
    while v <= g.vrfs_per_rfh.min(8) {
        let mut h = 1;
        while h <= g.rfhs_per_mpu {
            candidates.push(EnsembleShape { rfhs: h, vrfs_per_rfh: v });
            h *= 2;
        }
        v *= 2;
    }

    let mut results = Vec::new();
    for shape in candidates {
        let members = shape.members();
        let (program, inputs) = template(&members);
        let (stats, _) = run_single(config.clone(), &program, &inputs)?;
        let elements = (shape.total_vrfs() * g.lanes_per_vrf) as f64;
        let throughput = elements / stats.cycles.max(1) as f64;
        results.push(TuneResult { shape, stats, throughput });
    }
    results.sort_by(|a, b| b.throughput.total_cmp(&a.throughput));
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpu_isa::{BinaryOp, Instruction, RegId, RfhId, VrfId};
    use pum_backend::DatapathKind;

    fn template(members: &[(u16, u16)]) -> (Program, Vec<crate::machine::RegisterInit>) {
        let mut instrs: Vec<Instruction> = members
            .iter()
            .map(|&(h, v)| Instruction::Compute { rfh: RfhId(h), vrf: VrfId(v) })
            .collect();
        for _ in 0..4 {
            instrs.push(Instruction::Binary {
                op: BinaryOp::Add,
                rs: RegId(0),
                rt: RegId(1),
                rd: RegId(2),
            });
        }
        instrs.push(Instruction::ComputeDone);
        (Program::from_instructions(instrs), Vec::new())
    }

    #[test]
    fn racer_prefers_one_vrf_per_rfh() {
        // With 1 active VRF/RFH, extra VRFs per RFH serialize into waves:
        // same elements, proportionally more time. Throughput favors wide
        // shapes (all RFHs) over deep ones.
        let results = autotune(&SimConfig::mpu(DatapathKind::Racer), template).unwrap();
        let best = &results[0];
        assert_eq!(best.shape.rfhs, 8, "span every cluster");
        // Deep shapes on RACER need replay waves.
        let deep = results.iter().find(|r| r.shape.vrfs_per_rfh == 8 && r.shape.rfhs == 8).unwrap();
        assert!(deep.stats.scheduler_waves >= 8);
        assert!(best.throughput >= deep.throughput);
    }

    #[test]
    fn mimdram_tolerates_deep_shapes() {
        // MIMDRAM activates all local VRFs at once: deeper shapes process
        // more elements in the same single wave, so the best shape is the
        // largest one.
        let results = autotune(&SimConfig::mpu(DatapathKind::Mimdram), template).unwrap();
        let best = &results[0];
        assert_eq!(best.shape.total_vrfs(), 64, "biggest shape wins: {:?}", best.shape);
        assert_eq!(best.stats.scheduler_waves, 1);
    }

    #[test]
    fn results_are_sorted_by_throughput() {
        let results = autotune(&SimConfig::mpu(DatapathKind::Racer), template).unwrap();
        for pair in results.windows(2) {
            assert!(pair[0].throughput >= pair[1].throughput);
        }
        // The sweep covers both wide and deep candidates.
        assert!(results.iter().any(|r| r.shape.vrfs_per_rfh > 1));
        assert!(results.iter().any(|r| r.shape.rfhs > 1));
    }

    #[test]
    fn shape_member_enumeration() {
        let s = EnsembleShape { rfhs: 2, vrfs_per_rfh: 3 };
        let m = s.members();
        assert_eq!(m.len(), 6);
        assert!(m.contains(&(0, 0)) && m.contains(&(1, 2)));
        assert_eq!(s.total_vrfs(), 6);
    }
}
