//! Bit-plane vector register file storage.
//!
//! Bitwise PUM datapaths store each vector register bit-sliced: bit *b* of
//! every lane lives in the same physical row/column, and a micro-op (NOR,
//! triple-row-activate majority, bitline AND, ...) applies to **all lanes
//! of one bit-plane at once**. [`BitPlaneVrf`] reproduces that layout
//! exactly: a plane is a packed bitvector over lanes, and micro-ops are
//! whole-plane boolean operations — the column-parallel physics of PUM.

use crate::DATA_BITS;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one bit-plane of a VRF, as addressed by micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Plane {
    /// Bit `bit` of architectural vector register `reg`.
    Reg {
        /// Register index within the VRF.
        reg: u8,
        /// Bit position within each 64-bit element.
        bit: u8,
    },
    /// A scratch plane (buffer rows used by recipes for temporaries;
    /// RACER buffers, Ambit designated compute rows, DC sense-amp latches).
    Scratch(u16),
    /// The conditional register: one bit per lane, written by comparison
    /// instructions. Writes are lane-masked.
    Cond,
    /// The mask register: one bit per lane, gating writes to architectural
    /// planes. Writes to this plane are *not* masked (otherwise lanes could
    /// never be re-enabled).
    Mask,
    /// A preset constant row (read-only), as used by e.g. Ambit to turn a
    /// majority vote into AND (`Const(false)`) or OR (`Const(true)`).
    Const(bool),
}

impl fmt::Display for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plane::Reg { reg, bit } => write!(f, "r{reg}.{bit}"),
            Plane::Scratch(i) => write!(f, "s{i}"),
            Plane::Cond => f.write_str("cond"),
            Plane::Mask => f.write_str("mask"),
            Plane::Const(b) => write!(f, "const{}", u8::from(*b)),
        }
    }
}

/// Number of scratch planes available to recipes.
pub const SCRATCH_PLANES: usize = 24;

/// A bit-plane vector register file: `regs × 64` architectural planes plus
/// scratch, conditional, mask and constant planes, each a packed bitvector
/// over `lanes`.
///
/// # Example
///
/// ```
/// use pum_backend::BitPlaneVrf;
///
/// let mut vrf = BitPlaneVrf::new(64, 8);
/// vrf.write_lane_values(0, &[7; 64]);
/// assert_eq!(vrf.read_lane_values(0)[5], 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitPlaneVrf {
    lanes: usize,
    regs: usize,
    words: usize,
    /// Flat plane storage: `(regs*64 + SCRATCH + cond + mask + const0/1)`
    /// planes of `words` u64 words each.
    storage: Vec<u64>,
    /// When `false`, writes to architectural planes ignore the mask
    /// register (used while servicing `GETMASK`, which must copy all bits).
    mask_enabled: bool,
}

impl BitPlaneVrf {
    /// Creates a VRF with `lanes` lanes and `regs` architectural vector
    /// registers, all zeroed, mask fully enabled (all lanes on).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`, `regs == 0`, or `regs > 64`.
    pub fn new(lanes: usize, regs: usize) -> Self {
        assert!(lanes > 0, "a VRF needs at least one lane");
        assert!(regs > 0 && regs <= 64, "register count must be in 1..=64");
        let words = lanes.div_ceil(64);
        let n_planes = regs * DATA_BITS as usize + SCRATCH_PLANES + 4;
        let mut vrf =
            Self { lanes, regs, words, storage: vec![0u64; n_planes * words], mask_enabled: true };
        // Mask starts all-enabled; const1 plane all ones.
        vrf.fill_plane(Plane::Mask, true);
        let c1 = vrf.plane_index(Plane::Const(true));
        vrf.fill_raw(c1, true);
        vrf
    }

    /// Number of lanes (vector elements) in this VRF.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of architectural vector registers.
    pub fn regs(&self) -> usize {
        self.regs
    }

    fn plane_index(&self, plane: Plane) -> usize {
        let arch = self.regs * DATA_BITS as usize;
        match plane {
            Plane::Reg { reg, bit } => {
                let (reg, bit) = (reg as usize, bit as usize);
                assert!(reg < self.regs, "register {reg} out of range (VRF has {})", self.regs);
                assert!(bit < DATA_BITS as usize, "bit {bit} out of range");
                reg * DATA_BITS as usize + bit
            }
            Plane::Scratch(i) => {
                assert!((i as usize) < SCRATCH_PLANES, "scratch plane {i} out of range");
                arch + i as usize
            }
            Plane::Cond => arch + SCRATCH_PLANES,
            Plane::Mask => arch + SCRATCH_PLANES + 1,
            Plane::Const(false) => arch + SCRATCH_PLANES + 2,
            Plane::Const(true) => arch + SCRATCH_PLANES + 3,
        }
    }

    fn plane(&self, plane: Plane) -> &[u64] {
        let i = self.plane_index(plane);
        &self.storage[i * self.words..(i + 1) * self.words]
    }

    fn fill_raw(&mut self, index: usize, value: bool) {
        let word = if value { !0u64 } else { 0u64 };
        self.storage[index * self.words..(index + 1) * self.words].fill(word);
        if value {
            self.trim_tail(index);
        }
    }

    /// Zeroes bits beyond `lanes` in the last word of a plane so that
    /// whole-plane reductions (e.g. "any lane set") stay exact.
    fn trim_tail(&mut self, index: usize) {
        let extra = self.words * 64 - self.lanes;
        if extra > 0 {
            let last = index * self.words + self.words - 1;
            self.storage[last] &= !0u64 >> extra;
        }
    }

    /// True if writes to `plane` must be gated by the mask register.
    fn is_masked_target(plane: Plane) -> bool {
        matches!(plane, Plane::Reg { .. } | Plane::Cond)
    }

    /// Writes `new` into `out`, honouring lane masking when `out` is an
    /// architectural or conditional plane.
    ///
    /// # Panics
    ///
    /// Panics if `out` is a constant plane.
    fn commit(&mut self, out: Plane, new: Vec<u64>) {
        assert!(!matches!(out, Plane::Const(_)), "constant planes are read-only");
        let masked = self.mask_enabled && Self::is_masked_target(out);
        let out_idx = self.plane_index(out);
        if masked {
            let mask_idx = self.plane_index(Plane::Mask);
            for (w, &word) in new.iter().enumerate().take(self.words) {
                let m = self.storage[mask_idx * self.words + w];
                let old = self.storage[out_idx * self.words + w];
                self.storage[out_idx * self.words + w] = (word & m) | (old & !m);
            }
        } else {
            self.storage[out_idx * self.words..(out_idx + 1) * self.words].copy_from_slice(&new);
        }
        self.trim_tail(out_idx);
    }

    /// Applies a two-input boolean plane operation: `out = f(a, b)`.
    pub fn apply2(&mut self, a: Plane, b: Plane, out: Plane, f: impl Fn(u64, u64) -> u64) {
        let av = self.plane(a).to_vec();
        let bv = self.plane(b);
        let new: Vec<u64> = av.iter().zip(bv).map(|(&x, &y)| f(x, y)).collect();
        self.commit(out, new);
    }

    /// Applies a three-input boolean plane operation: `out = f(a, b, c)`.
    pub fn apply3(
        &mut self,
        a: Plane,
        b: Plane,
        c: Plane,
        out: Plane,
        f: impl Fn(u64, u64, u64) -> u64,
    ) {
        let av = self.plane(a).to_vec();
        let bv = self.plane(b).to_vec();
        let cv = self.plane(c);
        let new: Vec<u64> = av.iter().zip(&bv).zip(cv).map(|((&x, &y), &z)| f(x, y, z)).collect();
        self.commit(out, new);
    }

    /// Copies plane `a` into `out` (a row-copy / buffered copy micro-op).
    pub fn copy_plane(&mut self, a: Plane, out: Plane) {
        let new = self.plane(a).to_vec();
        self.commit(out, new);
    }

    /// Fills `out` with a constant bit (a preset / initialize micro-op).
    pub fn fill_plane(&mut self, out: Plane, value: bool) {
        let new = vec![if value { !0u64 } else { 0u64 }; self.words];
        self.commit(out, new);
    }

    /// Reads one lane's bit from a plane.
    pub fn lane_bit(&self, plane: Plane, lane: usize) -> bool {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (self.plane(plane)[lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// True if any lane of `plane` is set (the EFI's "any lane enabled"
    /// reduction used by `JUMP_COND`).
    pub fn any_lane_set(&self, plane: Plane) -> bool {
        self.plane(plane).iter().any(|&w| w != 0)
    }

    /// Number of set lanes in `plane`.
    pub fn count_lanes_set(&self, plane: Plane) -> usize {
        self.plane(plane).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Reads the packed bitvector of a plane (words of 64 lanes).
    pub fn plane_words(&self, plane: Plane) -> &[u64] {
        self.plane(plane)
    }

    /// Overwrites a plane with packed lane bits, bypassing the mask (used
    /// by the control path and by DMA-style transfers).
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the plane word count.
    pub fn set_plane_words(&mut self, plane: Plane, words: &[u64]) {
        assert_eq!(words.len(), self.words, "plane word count mismatch");
        let idx = self.plane_index(plane);
        self.storage[idx * self.words..(idx + 1) * self.words].copy_from_slice(words);
        self.trim_tail(idx);
    }

    /// Temporarily disables lane masking (control-path `GETMASK` path).
    pub fn set_mask_enabled(&mut self, enabled: bool) {
        self.mask_enabled = enabled;
    }

    /// Whether lane masking currently applies to architectural writes.
    pub fn mask_enabled(&self) -> bool {
        self.mask_enabled
    }

    /// Writes 64-bit element values into register `reg`, one per lane.
    /// Bypasses the mask (this is the host/DMA data-load path).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != lanes`.
    pub fn write_lane_values(&mut self, reg: u8, values: &[u64]) {
        assert_eq!(values.len(), self.lanes, "one value per lane required");
        for bit in 0..DATA_BITS as u8 {
            let idx = self.plane_index(Plane::Reg { reg, bit });
            let base = idx * self.words;
            for w in 0..self.words {
                let mut packed = 0u64;
                for l in 0..64 {
                    let lane = w * 64 + l;
                    if lane < self.lanes && (values[lane] >> bit) & 1 == 1 {
                        packed |= 1 << l;
                    }
                }
                self.storage[base + w] = packed;
            }
        }
    }

    /// Reads register `reg` back as 64-bit element values, one per lane.
    pub fn read_lane_values(&self, reg: u8) -> Vec<u64> {
        let mut values = vec![0u64; self.lanes];
        for bit in 0..DATA_BITS as u8 {
            let plane = self.plane(Plane::Reg { reg, bit });
            for (lane, value) in values.iter_mut().enumerate() {
                if (plane[lane / 64] >> (lane % 64)) & 1 == 1 {
                    *value |= 1 << bit;
                }
            }
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_value_roundtrip() {
        let mut vrf = BitPlaneVrf::new(100, 4);
        let values: Vec<u64> =
            (0..100).map(|i| (i as u64).wrapping_mul(0x1234_5678_9abc_def1)).collect();
        vrf.write_lane_values(2, &values);
        assert_eq!(vrf.read_lane_values(2), values);
    }

    #[test]
    fn apply2_is_whole_plane_parallel() {
        let mut vrf = BitPlaneVrf::new(130, 2);
        let a: Vec<u64> = (0..130).map(|i| i as u64 & 1).collect();
        let b: Vec<u64> = (0..130).map(|i| (i as u64 >> 1) & 1).collect();
        vrf.write_lane_values(0, &a);
        vrf.write_lane_values(1, &b);
        // NOR of bit 0 planes.
        vrf.apply2(
            Plane::Reg { reg: 0, bit: 0 },
            Plane::Reg { reg: 1, bit: 0 },
            Plane::Scratch(0),
            |x, y| !(x | y),
        );
        for lane in 0..130 {
            let expect = !(a[lane] | b[lane]) & 1 == 1;
            assert_eq!(vrf.lane_bit(Plane::Scratch(0), lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn masked_writes_preserve_disabled_lanes() {
        let mut vrf = BitPlaneVrf::new(64, 2);
        vrf.write_lane_values(0, &[5u64; 64]);
        // Disable odd lanes.
        let mask: Vec<u64> = (0..64).map(|i| (i % 2 == 0) as u64).collect();
        let mut packed = 0u64;
        for (i, &m) in mask.iter().enumerate() {
            packed |= m << i;
        }
        vrf.set_plane_words(Plane::Mask, &[packed]);
        // Write constant 1 into bit 1 of reg 0 (value +2 where enabled).
        vrf.fill_plane(Plane::Reg { reg: 0, bit: 1 }, true);
        let vals = vrf.read_lane_values(0);
        for (lane, &v) in vals.iter().enumerate() {
            if lane % 2 == 0 {
                assert_eq!(v, 7, "enabled lane {lane}");
            } else {
                assert_eq!(v, 5, "disabled lane {lane}");
            }
        }
    }

    #[test]
    fn mask_plane_writes_are_never_masked() {
        let mut vrf = BitPlaneVrf::new(64, 1);
        vrf.fill_plane(Plane::Mask, false); // all lanes off
        vrf.fill_plane(Plane::Mask, true); // must still re-enable
        assert_eq!(vrf.count_lanes_set(Plane::Mask), 64);
    }

    #[test]
    fn const_planes_hold_their_values() {
        let vrf = BitPlaneVrf::new(70, 1);
        assert_eq!(vrf.count_lanes_set(Plane::Const(true)), 70);
        assert_eq!(vrf.count_lanes_set(Plane::Const(false)), 0);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn const_planes_reject_writes() {
        let mut vrf = BitPlaneVrf::new(64, 1);
        vrf.fill_plane(Plane::Const(false), true);
    }

    #[test]
    fn any_and_count_reductions_ignore_tail_bits() {
        let mut vrf = BitPlaneVrf::new(65, 1);
        vrf.fill_plane(Plane::Scratch(0), true);
        assert_eq!(vrf.count_lanes_set(Plane::Scratch(0)), 65);
        vrf.fill_plane(Plane::Scratch(0), false);
        assert!(!vrf.any_lane_set(Plane::Scratch(0)));
    }

    #[test]
    fn getmask_path_bypasses_masking() {
        let mut vrf = BitPlaneVrf::new(64, 1);
        vrf.set_plane_words(Plane::Mask, &[0x00ff_00ff_00ff_00ffu64]);
        vrf.set_mask_enabled(false);
        // Copy the mask into an architectural plane: all bits must copy.
        vrf.copy_plane(Plane::Mask, Plane::Reg { reg: 0, bit: 0 });
        vrf.set_mask_enabled(true);
        assert_eq!(vrf.plane_words(Plane::Reg { reg: 0, bit: 0 })[0], 0x00ff_00ff_00ff_00ff);
    }

    #[test]
    fn cond_writes_respect_mask() {
        let mut vrf = BitPlaneVrf::new(64, 1);
        vrf.fill_plane(Plane::Cond, true);
        vrf.set_plane_words(Plane::Mask, &[0xffff_0000_0000_0000u64]);
        vrf.fill_plane(Plane::Cond, false);
        // Only the 16 enabled lanes were cleared.
        assert_eq!(vrf.count_lanes_set(Plane::Cond), 48);
    }

    #[test]
    fn display_plane_names() {
        assert_eq!(Plane::Reg { reg: 3, bit: 7 }.to_string(), "r3.7");
        assert_eq!(Plane::Scratch(2).to_string(), "s2");
        assert_eq!(Plane::Cond.to_string(), "cond");
        assert_eq!(Plane::Mask.to_string(), "mask");
        assert_eq!(Plane::Const(true).to_string(), "const1");
    }
}
