//! Bit-plane vector register file storage.
//!
//! Bitwise PUM datapaths store each vector register bit-sliced: bit *b* of
//! every lane lives in the same physical row/column, and a micro-op (NOR,
//! triple-row-activate majority, bitline AND, ...) applies to **all lanes
//! of one bit-plane at once**. [`BitPlaneVrf`] reproduces that layout
//! exactly: a plane is a packed bitvector over lanes, and micro-ops are
//! whole-plane boolean operations — the column-parallel physics of PUM.
//!
//! # In-place execution
//!
//! Micro-ops are the simulator's innermost loop (a 32-bit MUL replays
//! thousands per VRF per wave), so every plane operation here runs
//! **allocation-free and in place**: plane addresses resolve to offsets
//! into one flat `storage` buffer, and the output words are computed
//! directly over that buffer with the lane mask fused into the same loop.
//! Word-wise plane operations are pointwise, so an output that aliases an
//! input is safe without staging: each output word is produced from the
//! already-read input words of the same index. Host data loads go through
//! a word-level 64×64 bit-matrix transpose instead of per-bit shifting.

use crate::fault::FaultModel;
use crate::microop::MicroOpKind;
use crate::DATA_BITS;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one bit-plane of a VRF, as addressed by micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Plane {
    /// Bit `bit` of architectural vector register `reg`.
    Reg {
        /// Register index within the VRF.
        reg: u8,
        /// Bit position within each 64-bit element.
        bit: u8,
    },
    /// A scratch plane (buffer rows used by recipes for temporaries;
    /// RACER buffers, Ambit designated compute rows, DC sense-amp latches).
    Scratch(u16),
    /// The conditional register: one bit per lane, written by comparison
    /// instructions. Writes are lane-masked.
    Cond,
    /// The mask register: one bit per lane, gating writes to architectural
    /// planes. Writes to this plane are *not* masked (otherwise lanes could
    /// never be re-enabled).
    Mask,
    /// A preset constant row (read-only), as used by e.g. Ambit to turn a
    /// majority vote into AND (`Const(false)`) or OR (`Const(true)`).
    Const(bool),
}

impl fmt::Display for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plane::Reg { reg, bit } => write!(f, "r{reg}.{bit}"),
            Plane::Scratch(i) => write!(f, "s{i}"),
            Plane::Cond => f.write_str("cond"),
            Plane::Mask => f.write_str("mask"),
            Plane::Const(b) => write!(f, "const{}", u8::from(*b)),
        }
    }
}

/// Number of scratch planes available to recipes.
pub const SCRATCH_PLANES: usize = 24;

/// Transposes a 64×64 bit matrix in place (`a[r]` bit `c` ↔ `a[c]` bit
/// `r`), using the classic recursive block-swap (Hacker's Delight §7-3):
/// six passes of word-level shifts and XOR swaps instead of 4096 per-bit
/// probes. This is the packing kernel behind the host data-load path.
fn transpose_64x64(a: &mut [u64; 64]) {
    let mut j = 32;
    let mut m = 0x0000_0000_ffff_ffffu64;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            // Swap the off-diagonal j×j blocks of rows [k, k|j).
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k | j] ^= t;
            a[k] ^= t << j;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// A bit-plane vector register file: `regs × 64` architectural planes plus
/// scratch, conditional, mask and constant planes, each a packed bitvector
/// over `lanes`.
///
/// # Example
///
/// ```
/// use pum_backend::BitPlaneVrf;
///
/// let mut vrf = BitPlaneVrf::new(64, 8);
/// vrf.write_lane_values(0, &[7; 64]);
/// assert_eq!(vrf.read_lane_values(0)[5], 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitPlaneVrf {
    lanes: usize,
    regs: usize,
    words: usize,
    /// Flat plane storage: `(regs*64 + SCRATCH + cond + mask + const0/1)`
    /// planes of `words` u64 words each.
    storage: Vec<u64>,
    /// When `false`, writes to architectural planes ignore the mask
    /// register (used while servicing `GETMASK`, which must copy all bits).
    mask_enabled: bool,
    /// Cached popcount of the mask plane, refreshed whenever the mask
    /// plane is written (it is a pure function of `storage`, so derived
    /// equality and serialization stay consistent).
    mask_lanes: usize,
    /// Optional seeded hardware fault model (see [`crate::fault`]). `None`
    /// (the default) keeps every hot-path hook down to one branch, so a
    /// fault-free VRF behaves byte-identically to one built without the
    /// fault layer.
    #[serde(default)]
    faults: Option<Box<FaultModel>>,
}

impl BitPlaneVrf {
    /// Creates a VRF with `lanes` lanes and `regs` architectural vector
    /// registers, all zeroed, mask fully enabled (all lanes on).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`, `regs == 0`, or `regs > 64`.
    pub fn new(lanes: usize, regs: usize) -> Self {
        assert!(lanes > 0, "a VRF needs at least one lane");
        assert!(regs > 0 && regs <= 64, "register count must be in 1..=64");
        let words = lanes.div_ceil(64);
        let n_planes = regs * DATA_BITS as usize + SCRATCH_PLANES + 4;
        let mut vrf = Self {
            lanes,
            regs,
            words,
            storage: vec![0u64; n_planes * words],
            mask_enabled: true,
            mask_lanes: 0,
            faults: None,
        };
        // Mask starts all-enabled; const1 plane all ones.
        vrf.fill_plane(Plane::Mask, true);
        let c1 = vrf.plane_index(Plane::Const(true)) * words;
        vrf.fill_op(c1, false, true);
        vrf
    }

    /// Number of lanes (vector elements) in this VRF.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of architectural vector registers.
    pub fn regs(&self) -> usize {
        self.regs
    }

    fn plane_index(&self, plane: Plane) -> usize {
        let arch = self.regs * DATA_BITS as usize;
        match plane {
            Plane::Reg { reg, bit } => {
                let (reg, bit) = (reg as usize, bit as usize);
                assert!(reg < self.regs, "register {reg} out of range (VRF has {})", self.regs);
                assert!(bit < DATA_BITS as usize, "bit {bit} out of range");
                reg * DATA_BITS as usize + bit
            }
            Plane::Scratch(i) => {
                assert!((i as usize) < SCRATCH_PLANES, "scratch plane {i} out of range");
                arch + i as usize
            }
            Plane::Cond => arch + SCRATCH_PLANES,
            Plane::Mask => arch + SCRATCH_PLANES + 1,
            Plane::Const(false) => arch + SCRATCH_PLANES + 2,
            Plane::Const(true) => arch + SCRATCH_PLANES + 3,
        }
    }

    fn plane(&self, plane: Plane) -> &[u64] {
        let i = self.plane_index(plane);
        &self.storage[i * self.words..(i + 1) * self.words]
    }

    /// Word offset of the mask plane in `storage`.
    #[inline]
    pub(crate) fn mask_base(&self) -> usize {
        (self.regs * DATA_BITS as usize + SCRATCH_PLANES + 1) * self.words
    }

    /// Words per plane (`lanes.div_ceil(64)`).
    #[inline]
    pub(crate) fn words(&self) -> usize {
        self.words
    }

    /// Direct access to the flat plane storage, for the fused
    /// ensemble-trace executor (`compiled::run_ops_fast`), which has
    /// statically discharged all [`Self::finish_write`] bookkeeping.
    #[inline]
    pub(crate) fn storage_mut(&mut self) -> &mut [u64] {
        &mut self.storage
    }

    /// Range of words in a [`Self::snapshot`] image occupied by the
    /// scratch planes. Redundant-execution comparison and voting exclude
    /// this range: scratch contents are not architectural — recipes are
    /// free to leave different residue there (the recipe optimizer elides
    /// dead scratch stores), and a scratch fault that matters has
    /// propagated into an architectural plane by the time a recipe ends.
    pub fn scratch_word_range(&self) -> std::ops::Range<usize> {
        let arch = self.regs * DATA_BITS as usize;
        arch * self.words..(arch + SCRATCH_PLANES) * self.words
    }

    /// True if writes to `plane` must be gated by the mask register.
    pub(crate) fn is_masked_target(plane: Plane) -> bool {
        matches!(plane, Plane::Reg { .. } | Plane::Cond)
    }

    /// Resolves an output plane to its storage offset and whether the
    /// current write must honour the lane mask.
    ///
    /// # Panics
    ///
    /// Panics if `out` is a constant plane.
    #[inline]
    fn out_base(&self, out: Plane) -> (usize, bool) {
        assert!(!matches!(out, Plane::Const(_)), "constant planes are read-only");
        (self.plane_index(out) * self.words, self.mask_enabled && Self::is_masked_target(out))
    }

    /// Post-write bookkeeping for the plane at word offset `base`: zeroes
    /// bits beyond `lanes` in the last word (whole-plane reductions stay
    /// exact), forces permanently stuck/dead lanes to their stuck values,
    /// and refreshes the cached mask popcount if the mask plane was the
    /// target.
    #[inline]
    fn finish_write(&mut self, base: usize) {
        let extra = self.words * 64 - self.lanes;
        if extra > 0 {
            self.storage[base + self.words - 1] &= !0u64 >> extra;
        }
        if let Some(f) = &self.faults {
            if f.has_forced_lanes() {
                for w in 0..self.words {
                    self.storage[base + w] = f.force_word(w, self.storage[base + w]);
                }
            }
        }
        if base == self.mask_base() {
            self.mask_lanes =
                self.storage[base..base + self.words].iter().map(|w| w.count_ones() as usize).sum();
        }
    }

    /// In-place two-input word loop: `storage[out..] = f(a, b)`, with the
    /// mask merge fused when `masked`. Aliasing between `out` and any
    /// input is safe (the operation is pointwise per word).
    #[inline]
    pub(crate) fn op2(
        &mut self,
        a: usize,
        b: usize,
        out: usize,
        masked: bool,
        f: impl Fn(u64, u64) -> u64,
    ) {
        if masked {
            let mask = self.mask_base();
            for w in 0..self.words {
                let new = f(self.storage[a + w], self.storage[b + w]);
                let m = self.storage[mask + w];
                self.storage[out + w] = (new & m) | (self.storage[out + w] & !m);
            }
        } else {
            for w in 0..self.words {
                self.storage[out + w] = f(self.storage[a + w], self.storage[b + w]);
            }
        }
        self.finish_write(out);
    }

    /// In-place three-input word loop (see [`BitPlaneVrf::op2`]).
    #[inline]
    pub(crate) fn op3(
        &mut self,
        a: usize,
        b: usize,
        c: usize,
        out: usize,
        masked: bool,
        f: impl Fn(u64, u64, u64) -> u64,
    ) {
        if masked {
            let mask = self.mask_base();
            for w in 0..self.words {
                let new = f(self.storage[a + w], self.storage[b + w], self.storage[c + w]);
                let m = self.storage[mask + w];
                self.storage[out + w] = (new & m) | (self.storage[out + w] & !m);
            }
        } else {
            for w in 0..self.words {
                self.storage[out + w] =
                    f(self.storage[a + w], self.storage[b + w], self.storage[c + w]);
            }
        }
        self.finish_write(out);
    }

    /// In-place plane copy (see [`BitPlaneVrf::op2`]).
    #[inline]
    pub(crate) fn copy_op(&mut self, a: usize, out: usize, masked: bool) {
        if masked {
            let mask = self.mask_base();
            for w in 0..self.words {
                let m = self.storage[mask + w];
                self.storage[out + w] = (self.storage[a + w] & m) | (self.storage[out + w] & !m);
            }
        } else if a != out {
            for w in 0..self.words {
                self.storage[out + w] = self.storage[a + w];
            }
        }
        self.finish_write(out);
    }

    /// In-place constant fill (see [`BitPlaneVrf::op2`]).
    #[inline]
    pub(crate) fn fill_op(&mut self, out: usize, masked: bool, value: bool) {
        let word = if value { !0u64 } else { 0u64 };
        if masked {
            let mask = self.mask_base();
            for w in 0..self.words {
                let m = self.storage[mask + w];
                self.storage[out + w] = (word & m) | (self.storage[out + w] & !m);
            }
        } else {
            self.storage[out..out + self.words].fill(word);
        }
        self.finish_write(out);
    }

    /// Applies a two-input boolean plane operation: `out = f(a, b)`.
    pub fn apply2(&mut self, a: Plane, b: Plane, out: Plane, f: impl Fn(u64, u64) -> u64) {
        let a = self.plane_index(a) * self.words;
        let b = self.plane_index(b) * self.words;
        let (out, masked) = self.out_base(out);
        self.op2(a, b, out, masked, f);
    }

    /// Applies a three-input boolean plane operation: `out = f(a, b, c)`.
    pub fn apply3(
        &mut self,
        a: Plane,
        b: Plane,
        c: Plane,
        out: Plane,
        f: impl Fn(u64, u64, u64) -> u64,
    ) {
        let a = self.plane_index(a) * self.words;
        let b = self.plane_index(b) * self.words;
        let c = self.plane_index(c) * self.words;
        let (out, masked) = self.out_base(out);
        self.op3(a, b, c, out, masked, f);
    }

    /// Copies plane `a` into `out` (a row-copy / buffered copy micro-op).
    pub fn copy_plane(&mut self, a: Plane, out: Plane) {
        let a = self.plane_index(a) * self.words;
        let (out, masked) = self.out_base(out);
        self.copy_op(a, out, masked);
    }

    /// Fills `out` with a constant bit (a preset / initialize micro-op).
    pub fn fill_plane(&mut self, out: Plane, value: bool) {
        let (out, masked) = self.out_base(out);
        self.fill_op(out, masked, value);
    }

    /// Reads one lane's bit from a plane.
    pub fn lane_bit(&self, plane: Plane, lane: usize) -> bool {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (self.plane(plane)[lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// True if any lane of `plane` is set (the EFI's "any lane enabled"
    /// reduction used by `JUMP_COND`).
    pub fn any_lane_set(&self, plane: Plane) -> bool {
        self.plane(plane).iter().any(|&w| w != 0)
    }

    /// Number of set lanes in `plane`.
    pub fn count_lanes_set(&self, plane: Plane) -> usize {
        self.plane(plane).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of currently enabled lanes — the cached popcount of the mask
    /// plane, maintained incrementally so per-instruction energy gating
    /// does not rescan the plane.
    pub fn mask_lanes(&self) -> usize {
        self.mask_lanes
    }

    /// Reads the packed bitvector of a plane (words of 64 lanes).
    pub fn plane_words(&self, plane: Plane) -> &[u64] {
        self.plane(plane)
    }

    /// Overwrites a plane with packed lane bits, bypassing the mask (used
    /// by the control path and by DMA-style transfers).
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the plane word count.
    pub fn set_plane_words(&mut self, plane: Plane, words: &[u64]) {
        assert_eq!(words.len(), self.words, "plane word count mismatch");
        let base = self.plane_index(plane) * self.words;
        self.storage[base..base + self.words].copy_from_slice(words);
        self.finish_write(base);
    }

    /// Temporarily disables lane masking (control-path `GETMASK` path).
    pub fn set_mask_enabled(&mut self, enabled: bool) {
        self.mask_enabled = enabled;
    }

    /// Whether lane masking currently applies to architectural writes.
    pub fn mask_enabled(&self) -> bool {
        self.mask_enabled
    }

    /// Executes a pre-compiled recipe (see [`crate::CompiledRecipe`]):
    /// plane addresses and mask-target decisions were resolved at
    /// compile time, so the hot loop is pure word arithmetic over
    /// `storage`.
    ///
    /// # Panics
    ///
    /// Panics if the recipe was compiled for a different VRF geometry.
    pub fn run_compiled(&mut self, recipe: &crate::CompiledRecipe) {
        assert_eq!(
            (recipe.lanes(), recipe.regs()),
            (self.lanes, self.regs),
            "compiled recipe targets a different VRF geometry"
        );
        crate::compiled::run(self, recipe);
    }

    /// Transient-fault hook, called once per executed micro-op by the
    /// interpreted path ([`crate::MicroOp::apply`]) with the op's output
    /// plane. With no fault model attached this is a single branch.
    #[inline]
    pub(crate) fn post_op(&mut self, kind: MicroOpKind, out: Plane) {
        if self.faults.is_some() {
            let base = self.plane_index(out) * self.words;
            self.post_op_at(kind, base);
        }
    }

    /// Transient-fault hook over a pre-resolved output plane offset (the
    /// compiled path's form of [`BitPlaneVrf::post_op`]). Both paths call
    /// it exactly once per micro-op with the same `(kind, plane)`
    /// sequence, so interpreted and compiled execution draw identical
    /// fault sites and stay byte-identical under injection.
    #[inline]
    pub(crate) fn post_op_at(&mut self, kind: MicroOpKind, out_base: usize) {
        let mask_base = self.mask_base();
        let lanes = self.lanes;
        let Some(f) = self.faults.as_deref_mut() else { return };
        if let Some(lane) = f.draw_flip(kind, lanes) {
            let (w, bit) = (lane / 64, 1u64 << (lane % 64));
            // A flip on a permanently forced lane is absorbed by the
            // stuck value and does not count as an injection.
            let flipped = f.force_word(w, self.storage[out_base + w] ^ bit);
            if flipped != self.storage[out_base + w] {
                self.storage[out_base + w] = flipped;
                f.note_injected();
                if out_base == mask_base {
                    self.mask_lanes = self.storage[mask_base..mask_base + self.words]
                        .iter()
                        .map(|w| w.count_ones() as usize)
                        .sum();
                }
            }
        }
    }

    /// RFH write-corruption hook, called by the simulator after a
    /// *runtime* register write lands (message delivery, transfer-block
    /// landing) — never for host data loads, which model an ideal test
    /// interface. On a hit, flips one bit of one lane of `reg`; returns
    /// whether a corruption landed.
    pub fn corrupt_register_write(&mut self, reg: u8) -> bool {
        if self.faults.is_none() {
            return false;
        }
        let base = self.plane_index(Plane::Reg { reg, bit: 0 }) * self.words;
        let lanes = self.lanes;
        let Some(f) = self.faults.as_deref_mut() else { return false };
        let Some((lane, bit)) = f.draw_write_corruption(lanes) else { return false };
        let (w, lane_bit) = (lane / 64, 1u64 << (lane % 64));
        let i = base + bit as usize * self.words + w;
        let flipped = f.force_word(w, self.storage[i] ^ lane_bit);
        if flipped == self.storage[i] {
            return false;
        }
        self.storage[i] = flipped;
        f.note_injected();
        true
    }

    /// Attaches (or detaches, with `None`) a hardware fault model. Any
    /// permanently stuck lanes take effect immediately across all planes —
    /// a stuck bit-line is stuck from power-on, not from its next write.
    pub fn set_fault_model(&mut self, model: Option<FaultModel>) {
        self.faults = model.map(Box::new);
        if let Some(f) = &self.faults {
            if f.has_forced_lanes() {
                let planes = self.storage.len() / self.words;
                for p in 0..planes {
                    for w in 0..self.words {
                        let i = p * self.words + w;
                        self.storage[i] = f.force_word(w, self.storage[i]);
                    }
                }
                let base = self.mask_base();
                self.mask_lanes = self.storage[base..base + self.words]
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum();
            }
        }
    }

    /// The attached fault model, if any.
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.faults.as_deref()
    }

    /// Mutable access to the attached fault model, if any.
    pub fn fault_model_mut(&mut self) -> Option<&mut FaultModel> {
        self.faults.as_deref_mut()
    }

    /// Drains the fault model's landed-injection counter (0 if no model).
    pub fn take_injected(&mut self) -> u64 {
        self.faults.as_deref_mut().map_or(0, FaultModel::take_injected)
    }

    /// Captures the full plane storage for checkpoint/redundancy replay.
    /// The fault model (and its PRNG site) is deliberately *not* part of
    /// the snapshot: re-running after a restore must draw fresh fault
    /// sites, not replay the same ones.
    pub fn snapshot(&self) -> Vec<u64> {
        self.storage.clone()
    }

    /// Restores plane storage captured by [`BitPlaneVrf::snapshot`] and
    /// refreshes derived state (the cached mask popcount).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a different VRF geometry.
    pub fn restore(&mut self, snapshot: &[u64]) {
        assert_eq!(snapshot.len(), self.storage.len(), "snapshot geometry mismatch");
        self.storage.copy_from_slice(snapshot);
        let base = self.mask_base();
        self.mask_lanes =
            self.storage[base..base + self.words].iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Writes 64-bit element values into register `reg`, one per lane,
    /// starting at lane 0; remaining lanes are zeroed (implicit padding).
    /// Bypasses the mask (this is the host/DMA data-load path).
    ///
    /// Packing goes through a word-level 64×64 bit-matrix transpose: one
    /// lane block (64 lanes × 64 bits) is transposed in six shift/XOR
    /// passes and scattered to the register's bit planes.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > lanes`.
    pub fn write_lane_values(&mut self, reg: u8, values: &[u64]) {
        assert!(values.len() <= self.lanes, "{} values exceed {} lanes", values.len(), self.lanes);
        let base = self.plane_index(Plane::Reg { reg, bit: 0 }) * self.words;
        let mut block = [0u64; 64];
        for w in 0..self.words {
            let src = &values[values.len().min(w * 64)..];
            let n = src.len().min(64);
            block[..n].copy_from_slice(&src[..n]);
            block[n..].fill(0);
            transpose_64x64(&mut block);
            for (bit, &plane_word) in block.iter().enumerate() {
                self.storage[base + bit * self.words + w] = plane_word;
            }
        }
        // This path bypasses `finish_write`, so apply the permanent-lane
        // forcing explicitly: data loaded onto a stuck bit-line reads back
        // at the stuck value.
        if let Some(f) = &self.faults {
            if f.has_forced_lanes() {
                for bit in 0..DATA_BITS as usize {
                    for w in 0..self.words {
                        let i = base + bit * self.words + w;
                        self.storage[i] = f.force_word(w, self.storage[i]);
                    }
                }
            }
        }
    }

    /// Reads register `reg` back as 64-bit element values, one per lane
    /// (the inverse transpose of [`BitPlaneVrf::write_lane_values`]).
    pub fn read_lane_values(&self, reg: u8) -> Vec<u64> {
        let base = self.plane_index(Plane::Reg { reg, bit: 0 }) * self.words;
        let mut values = vec![0u64; self.lanes];
        let mut block = [0u64; 64];
        for w in 0..self.words {
            for (bit, row) in block.iter_mut().enumerate() {
                *row = self.storage[base + bit * self.words + w];
            }
            transpose_64x64(&mut block);
            let lo = w * 64;
            let n = (self.lanes - lo).min(64);
            values[lo..lo + n].copy_from_slice(&block[..n]);
        }
        values
    }

    /// Masked word-level register store: lane `i` of `reg` receives
    /// `values[i]` where the lane mask enables it; disabled lanes keep
    /// their contents. This is the word-serial (DPU) datapath's write-back
    /// path — unlike [`BitPlaneVrf::write_lane_values`] (a host-side data
    /// load that bypasses the mask), registers are architectural targets
    /// here and the merge matches the bit-plane `op2`/`op3` semantics
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != lanes`.
    pub(crate) fn store_lane_values(&mut self, reg: u8, values: &[u64]) {
        assert_eq!(values.len(), self.lanes, "word store must cover every lane");
        let base = self.plane_index(Plane::Reg { reg, bit: 0 }) * self.words;
        let masked = self.mask_enabled;
        let mask_base = self.mask_base();
        let mut block = [0u64; 64];
        for w in 0..self.words {
            let lo = w * 64;
            let n = (self.lanes - lo).min(64);
            block[..n].copy_from_slice(&values[lo..lo + n]);
            block[n..].fill(0);
            transpose_64x64(&mut block);
            // Tail lanes beyond `lanes` stay zero either way: the unmasked
            // plane words carry zeros there, and the mask plane's invariant
            // tail zeros preserve the (zero) old contents when masked.
            let m = if masked { self.storage[mask_base + w] } else { !0u64 };
            for (bit, &plane_word) in block.iter().enumerate() {
                let i = base + bit * self.words + w;
                self.storage[i] = (plane_word & m) | (self.storage[i] & !m);
            }
        }
        if let Some(f) = &self.faults {
            if f.has_forced_lanes() {
                for bit in 0..DATA_BITS as usize {
                    for w in 0..self.words {
                        let i = base + bit * self.words + w;
                        self.storage[i] = f.force_word(w, self.storage[i]);
                    }
                }
            }
        }
    }

    /// Masked conditional-plane store from pre-packed per-lane flag words
    /// (bit `i % 64` of `flags[i / 64]` is lane `i`'s flag). The word-serial
    /// datapath's `Compare`/`Fuzzy` write-back path.
    pub(crate) fn store_cond_words(&mut self, flags: &[u64]) {
        assert_eq!(flags.len(), self.words, "flag words must cover the lane range");
        let (out, masked) = self.out_base(Plane::Cond);
        if masked {
            let mask_base = self.mask_base();
            for (w, &flag_word) in flags.iter().enumerate() {
                let m = self.storage[mask_base + w];
                self.storage[out + w] = (flag_word & m) | (self.storage[out + w] & !m);
            }
        } else {
            self.storage[out..out + self.words].copy_from_slice(flags);
        }
        self.finish_write(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_value_roundtrip() {
        let mut vrf = BitPlaneVrf::new(100, 4);
        let values: Vec<u64> =
            (0..100).map(|i| (i as u64).wrapping_mul(0x1234_5678_9abc_def1)).collect();
        vrf.write_lane_values(2, &values);
        assert_eq!(vrf.read_lane_values(2), values);
    }

    #[test]
    fn transpose_matches_naive_bit_packing() {
        // The word-level transpose must place bit b of lane l exactly where
        // the per-bit packer did: plane (reg, b), word l/64, bit l%64.
        let lanes = 130;
        let mut vrf = BitPlaneVrf::new(lanes, 2);
        let values: Vec<u64> =
            (0..lanes as u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i << 40)).collect();
        vrf.write_lane_values(1, &values);
        for bit in 0..64u8 {
            let plane = vrf.plane_words(Plane::Reg { reg: 1, bit });
            for (lane, &v) in values.iter().enumerate() {
                let expect = (v >> bit) & 1 == 1;
                let got = (plane[lane / 64] >> (lane % 64)) & 1 == 1;
                assert_eq!(got, expect, "bit {bit} lane {lane}");
            }
            // Tail bits beyond `lanes` stay zero.
            let extra = lanes.div_ceil(64) * 64 - lanes;
            assert_eq!(plane[lanes / 64] >> (64 - extra), 0, "tail of bit {bit}");
        }
    }

    #[test]
    fn short_writes_zero_pad_remaining_lanes() {
        let mut vrf = BitPlaneVrf::new(100, 2);
        vrf.write_lane_values(0, &[u64::MAX; 100]);
        vrf.write_lane_values(0, &[7, 7, 7]);
        let got = vrf.read_lane_values(0);
        assert_eq!(&got[..3], &[7, 7, 7]);
        assert!(got[3..].iter().all(|&v| v == 0), "padding lanes must clear");
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_writes_are_rejected() {
        let mut vrf = BitPlaneVrf::new(64, 2);
        vrf.write_lane_values(0, &[0; 65]);
    }

    #[test]
    fn apply2_is_whole_plane_parallel() {
        let mut vrf = BitPlaneVrf::new(130, 2);
        let a: Vec<u64> = (0..130).map(|i| i as u64 & 1).collect();
        let b: Vec<u64> = (0..130).map(|i| (i as u64 >> 1) & 1).collect();
        vrf.write_lane_values(0, &a);
        vrf.write_lane_values(1, &b);
        // NOR of bit 0 planes.
        vrf.apply2(
            Plane::Reg { reg: 0, bit: 0 },
            Plane::Reg { reg: 1, bit: 0 },
            Plane::Scratch(0),
            |x, y| !(x | y),
        );
        for lane in 0..130 {
            let expect = !(a[lane] | b[lane]) & 1 == 1;
            assert_eq!(vrf.lane_bit(Plane::Scratch(0), lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn aliased_outputs_are_pointwise_safe() {
        let mut vrf = BitPlaneVrf::new(128, 2);
        vrf.set_plane_words(Plane::Scratch(0), &[0xdead_beef_0123_4567, 0x3]);
        vrf.set_plane_words(Plane::Scratch(1), &[0xffff_0000_ffff_0000, 0x2]);
        // out == a
        vrf.apply2(Plane::Scratch(0), Plane::Scratch(1), Plane::Scratch(0), |x, y| x ^ y);
        assert_eq!(
            vrf.plane_words(Plane::Scratch(0)),
            &[0xdead_beef_0123_4567u64 ^ 0xffff_0000_ffff_0000, 0x1]
        );
        // out == b
        vrf.apply2(Plane::Scratch(0), Plane::Scratch(1), Plane::Scratch(1), |x, y| x & y);
        assert_eq!(
            vrf.plane_words(Plane::Scratch(1)),
            &[(0xdead_beef_0123_4567u64 ^ 0xffff_0000_ffff_0000) & 0xffff_0000_ffff_0000, 0x0]
        );
    }

    #[test]
    fn masked_writes_preserve_disabled_lanes() {
        let mut vrf = BitPlaneVrf::new(64, 2);
        vrf.write_lane_values(0, &[5u64; 64]);
        // Disable odd lanes.
        let mask: Vec<u64> = (0..64).map(|i| (i % 2 == 0) as u64).collect();
        let mut packed = 0u64;
        for (i, &m) in mask.iter().enumerate() {
            packed |= m << i;
        }
        vrf.set_plane_words(Plane::Mask, &[packed]);
        // Write constant 1 into bit 1 of reg 0 (value +2 where enabled).
        vrf.fill_plane(Plane::Reg { reg: 0, bit: 1 }, true);
        let vals = vrf.read_lane_values(0);
        for (lane, &v) in vals.iter().enumerate() {
            if lane % 2 == 0 {
                assert_eq!(v, 7, "enabled lane {lane}");
            } else {
                assert_eq!(v, 5, "disabled lane {lane}");
            }
        }
    }

    #[test]
    fn mask_plane_writes_are_never_masked() {
        let mut vrf = BitPlaneVrf::new(64, 1);
        vrf.fill_plane(Plane::Mask, false); // all lanes off
        vrf.fill_plane(Plane::Mask, true); // must still re-enable
        assert_eq!(vrf.count_lanes_set(Plane::Mask), 64);
    }

    #[test]
    fn mask_popcount_cache_tracks_every_write_path() {
        let mut vrf = BitPlaneVrf::new(100, 2);
        assert_eq!(vrf.mask_lanes(), 100);
        vrf.fill_plane(Plane::Mask, false);
        assert_eq!(vrf.mask_lanes(), 0);
        vrf.set_plane_words(Plane::Mask, &[0xff, 0x1]);
        assert_eq!(vrf.mask_lanes(), 9);
        vrf.copy_plane(Plane::Const(true), Plane::Mask);
        assert_eq!(vrf.mask_lanes(), 100);
        vrf.apply2(Plane::Const(true), Plane::Const(true), Plane::Mask, |x, y| x & !y);
        assert_eq!(vrf.mask_lanes(), 0);
        // Non-mask writes leave the cache untouched but consistent.
        vrf.fill_plane(Plane::Scratch(0), true);
        assert_eq!(vrf.mask_lanes(), vrf.count_lanes_set(Plane::Mask));
    }

    #[test]
    fn const_planes_hold_their_values() {
        let vrf = BitPlaneVrf::new(70, 1);
        assert_eq!(vrf.count_lanes_set(Plane::Const(true)), 70);
        assert_eq!(vrf.count_lanes_set(Plane::Const(false)), 0);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn const_planes_reject_writes() {
        let mut vrf = BitPlaneVrf::new(64, 1);
        vrf.fill_plane(Plane::Const(false), true);
    }

    #[test]
    fn any_and_count_reductions_ignore_tail_bits() {
        let mut vrf = BitPlaneVrf::new(65, 1);
        vrf.fill_plane(Plane::Scratch(0), true);
        assert_eq!(vrf.count_lanes_set(Plane::Scratch(0)), 65);
        vrf.fill_plane(Plane::Scratch(0), false);
        assert!(!vrf.any_lane_set(Plane::Scratch(0)));
    }

    #[test]
    fn getmask_path_bypasses_masking() {
        let mut vrf = BitPlaneVrf::new(64, 1);
        vrf.set_plane_words(Plane::Mask, &[0x00ff_00ff_00ff_00ffu64]);
        vrf.set_mask_enabled(false);
        // Copy the mask into an architectural plane: all bits must copy.
        vrf.copy_plane(Plane::Mask, Plane::Reg { reg: 0, bit: 0 });
        vrf.set_mask_enabled(true);
        assert_eq!(vrf.plane_words(Plane::Reg { reg: 0, bit: 0 })[0], 0x00ff_00ff_00ff_00ff);
    }

    #[test]
    fn cond_writes_respect_mask() {
        let mut vrf = BitPlaneVrf::new(64, 1);
        vrf.fill_plane(Plane::Cond, true);
        vrf.set_plane_words(Plane::Mask, &[0xffff_0000_0000_0000u64]);
        vrf.fill_plane(Plane::Cond, false);
        // Only the 16 enabled lanes were cleared.
        assert_eq!(vrf.count_lanes_set(Plane::Cond), 48);
    }

    #[test]
    fn stuck_lanes_force_every_write_path() {
        let mut vrf = BitPlaneVrf::new(64, 2);
        let mut fm = FaultModel::new(1, 64);
        fm.add_stuck_lane(5, true);
        fm.add_stuck_lane(9, false);
        vrf.set_fault_model(Some(fm));
        // Host data load: every bit of lane 5 forced to 1, lane 9 to 0.
        vrf.write_lane_values(0, &[0u64; 64]);
        assert_eq!(vrf.read_lane_values(0)[5], u64::MAX);
        vrf.write_lane_values(1, &[u64::MAX; 64]);
        assert_eq!(vrf.read_lane_values(1)[9], 0);
        // Plane ops go through finish_write forcing.
        vrf.fill_plane(Plane::Scratch(0), false);
        assert!(vrf.lane_bit(Plane::Scratch(0), 5));
        vrf.fill_plane(Plane::Scratch(0), true);
        assert!(!vrf.lane_bit(Plane::Scratch(0), 9));
        // Attach-time forcing already propagated to the mask plane.
        assert!(!vrf.lane_bit(Plane::Mask, 9));
        assert_eq!(vrf.mask_lanes(), vrf.count_lanes_set(Plane::Mask));
    }

    #[test]
    fn transient_flips_land_and_are_counted() {
        let mut vrf = BitPlaneVrf::new(64, 1);
        let mut fm = FaultModel::new(3, 64);
        fm.set_transient_rate(MicroOpKind::Set, 1.0);
        vrf.set_fault_model(Some(fm));
        vrf.fill_plane(Plane::Scratch(0), false);
        vrf.post_op(MicroOpKind::Set, Plane::Scratch(0));
        assert_eq!(vrf.count_lanes_set(Plane::Scratch(0)), 1, "exactly one lane flipped");
        assert_eq!(vrf.take_injected(), 1);
        assert_eq!(vrf.take_injected(), 0);
    }

    #[test]
    fn register_write_corruption_flips_one_bit() {
        let mut vrf = BitPlaneVrf::new(64, 2);
        let mut fm = FaultModel::new(11, 64);
        fm.set_write_corruption_rate(1.0);
        vrf.set_fault_model(Some(fm));
        vrf.write_lane_values(0, &[0u64; 64]);
        assert!(vrf.corrupt_register_write(0));
        let vals = vrf.read_lane_values(0);
        let set: u32 = vals.iter().map(|v| v.count_ones()).sum();
        assert_eq!(set, 1, "exactly one bit of one lane flipped");
        assert_eq!(vrf.take_injected(), 1);
        // Without a model the hook is inert.
        vrf.set_fault_model(None);
        assert!(!vrf.corrupt_register_write(0));
    }

    #[test]
    fn snapshot_restore_roundtrips_storage_and_mask_cache() {
        let mut vrf = BitPlaneVrf::new(100, 2);
        vrf.write_lane_values(0, &[0xabcd; 100]);
        vrf.set_plane_words(Plane::Mask, &[0xff, 0x0]);
        let snap = vrf.snapshot();
        let saved_masks = vrf.mask_lanes();
        vrf.write_lane_values(0, &[0; 100]);
        vrf.fill_plane(Plane::Mask, true);
        vrf.restore(&snap);
        assert_eq!(vrf.read_lane_values(0), vec![0xabcd; 100]);
        assert_eq!(vrf.mask_lanes(), saved_masks);
    }

    #[test]
    fn display_plane_names() {
        assert_eq!(Plane::Reg { reg: 3, bit: 7 }.to_string(), "r3.7");
        assert_eq!(Plane::Scratch(2).to_string(), "s2");
        assert_eq!(Plane::Cond.to_string(), "cond");
        assert_eq!(Plane::Mask.to_string(), "mask");
        assert_eq!(Plane::Const(true).to_string(), "const1");
    }
}
