//! MPU front-end area & power model (paper §VIII-A, Fig. 11).
//!
//! The paper synthesizes the control path in FreePDK 15 nm and reports a
//! per-MPU front end of **0.123 mm²**, **1.22 mW** static and **71.72 mW**
//! dynamic power, with storage-based components (playback buffer, template
//! lookup) contributing 53% of area, 91% of static power and nearly all
//! dynamic power. We cannot run Synopsys here, so this module substitutes a
//! parametric model: each component's cost is derived from its storage bits
//! (Table III capacities) or logic-gate estimate times calibrated per-bit /
//! per-gate constants. The calibration targets are the paper's totals and
//! breakdown shares; tests pin both.

use serde::{Deserialize, Serialize};

/// Table III front-end capacities, from which component costs derive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontEndConfig {
    /// Playback buffer entries (27 bits each).
    pub playback_entries: usize,
    /// Template lookup entries (24 bits each).
    pub template_entries: usize,
    /// Pointer table entries (20 bits each).
    pub pointer_entries: usize,
    /// Activation board bits (1 per VRF).
    pub activation_bits: usize,
    /// Compute controllers per MPU.
    pub compute_controllers: usize,
}

impl Default for FrontEndConfig {
    /// The Table III configuration.
    fn default() -> Self {
        Self {
            playback_entries: 1024,
            template_entries: 1024,
            pointer_entries: 20,
            activation_bits: 512,
            compute_controllers: 1,
        }
    }
}

/// One control-path component's synthesized cost.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ComponentCost {
    /// Component name as shown in Fig. 11.
    pub name: &'static str,
    /// True for storage-based components (register files / lookup tables).
    pub storage: bool,
    /// Area, mm².
    pub area_mm2: f64,
    /// Static (leakage) power, mW.
    pub static_mw: f64,
    /// Dynamic power at full activity, mW.
    pub dynamic_mw: f64,
}

/// The full front-end cost model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FrontEndModel {
    components: Vec<ComponentCost>,
}

/// Calibrated 15 nm constants (see module docs).
mod cal {
    /// mm² per storage bit (registers + parallel-lookup overhead).
    pub const AREA_PER_BIT_MM2: f64 = 1.10e-6;
    /// mm² per kGE of random logic.
    pub const AREA_PER_KGE_MM2: f64 = 3.906e-4;
    /// Static µW per storage bit.
    pub const STATIC_UW_PER_BIT: f64 = 0.018727;
    /// Static µW per kGE.
    pub const STATIC_UW_PER_KGE: f64 = 0.742;
    /// Dynamic µW per storage bit at full activity (1 GHz).
    pub const DYN_UW_PER_BIT: f64 = 1.1373;
    /// Dynamic µW per kGE at full activity.
    pub const DYN_UW_PER_KGE: f64 = 29.08;
}

fn storage(name: &'static str, bits: f64) -> ComponentCost {
    ComponentCost {
        name,
        storage: true,
        area_mm2: bits * cal::AREA_PER_BIT_MM2,
        static_mw: bits * cal::STATIC_UW_PER_BIT / 1000.0,
        dynamic_mw: bits * cal::DYN_UW_PER_BIT / 1000.0,
    }
}

fn logic(name: &'static str, kge: f64) -> ComponentCost {
    ComponentCost {
        name,
        storage: false,
        area_mm2: kge * cal::AREA_PER_KGE_MM2,
        static_mw: kge * cal::STATIC_UW_PER_KGE / 1000.0,
        dynamic_mw: kge * cal::DYN_UW_PER_KGE / 1000.0,
    }
}

impl FrontEndModel {
    /// Builds the model for a front-end configuration.
    pub fn new(config: FrontEndConfig) -> Self {
        let cc = config.compute_controllers as f64;
        let components = vec![
            storage("playback buffer", cc * (config.playback_entries * 27) as f64),
            storage("template lookup", (config.template_entries * 24) as f64),
            storage("pointer table", (config.pointer_entries * 20) as f64),
            storage("activation board", cc * config.activation_bits as f64),
            storage("DTC target map", 2048.0),
            storage("DTC data buffer", 4096.0),
            // Random-logic components, in kGE.
            logic("fetcher", 30.0),
            logic("I2M template filler", 45.0),
            logic("scheduler", 28.0),
            logic("EFI", 12.0),
            logic("inter-MPU controller", 25.0),
            logic("return-address stack", 8.0),
        ];
        Self { components }
    }

    /// The per-component breakdown (Fig. 11).
    pub fn components(&self) -> &[ComponentCost] {
        &self.components
    }

    /// Total front-end area, mm² (paper: 0.123 mm²).
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total static power, mW (paper: 1.22 mW).
    pub fn total_static_mw(&self) -> f64 {
        self.components.iter().map(|c| c.static_mw).sum()
    }

    /// Total dynamic power at full activity, mW (paper: 71.72 mW).
    pub fn total_dynamic_mw(&self) -> f64 {
        self.components.iter().map(|c| c.dynamic_mw).sum()
    }

    /// Fraction of area in storage-based components (paper: 53%).
    pub fn storage_area_share(&self) -> f64 {
        let s: f64 = self.components.iter().filter(|c| c.storage).map(|c| c.area_mm2).sum();
        s / self.total_area_mm2()
    }

    /// Fraction of static power in storage-based components (paper: 91%).
    pub fn storage_static_share(&self) -> f64 {
        let s: f64 = self.components.iter().filter(|c| c.storage).map(|c| c.static_mw).sum();
        s / self.total_static_mw()
    }

    /// Fraction of dynamic power in storage-based components (paper:
    /// "almost all").
    pub fn storage_dynamic_share(&self) -> f64 {
        let s: f64 = self.components.iter().filter(|c| c.storage).map(|c| c.dynamic_mw).sum();
        s / self.total_dynamic_mw()
    }
}

impl Default for FrontEndModel {
    fn default() -> Self {
        Self::new(FrontEndConfig::default())
    }
}

/// Chip-level effect of adding `mpus` front ends to a RACER chip
/// (paper §VIII-A example: 512 MPUs grow a 4.00 cm² chip to 4.63 cm² and
/// 330 mW static to 955 mW; max control-path draw 36.7 W).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipAugmentation {
    /// Chip area including front ends, cm².
    pub total_area_cm2: f64,
    /// Chip static power including front ends, mW.
    pub total_static_mw: f64,
    /// Maximum runtime draw of all MPU control paths, W.
    pub max_control_path_w: f64,
}

/// Computes the §VIII-A chip-augmentation numbers.
pub fn augment_chip(
    model: &FrontEndModel,
    base_area_cm2: f64,
    base_static_mw: f64,
    mpus: usize,
) -> ChipAugmentation {
    let n = mpus as f64;
    ChipAugmentation {
        total_area_cm2: base_area_cm2 + n * model.total_area_mm2() / 100.0,
        total_static_mw: base_static_mw + n * model.total_static_mw(),
        max_control_path_w: n * (model.total_static_mw() + model.total_dynamic_mw()) / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(got: f64, want: f64, tol: f64) -> bool {
        (got - want).abs() <= tol * want
    }

    #[test]
    fn totals_match_paper_synthesis() {
        let m = FrontEndModel::default();
        assert!(
            close(m.total_area_mm2(), 0.123, 0.05),
            "area {} vs paper 0.123 mm²",
            m.total_area_mm2()
        );
        assert!(
            close(m.total_static_mw(), 1.22, 0.05),
            "static {} vs paper 1.22 mW",
            m.total_static_mw()
        );
        assert!(
            close(m.total_dynamic_mw(), 71.72, 0.05),
            "dynamic {} vs paper 71.72 mW",
            m.total_dynamic_mw()
        );
    }

    #[test]
    fn breakdown_shares_match_paper() {
        let m = FrontEndModel::default();
        assert!(
            close(m.storage_area_share(), 0.53, 0.10),
            "storage area share {}",
            m.storage_area_share()
        );
        assert!(
            close(m.storage_static_share(), 0.91, 0.05),
            "storage static share {}",
            m.storage_static_share()
        );
        assert!(m.storage_dynamic_share() > 0.9, "storage dominates dynamic power");
    }

    #[test]
    fn chip_augmentation_matches_section_viii_a() {
        let m = FrontEndModel::default();
        let chip = augment_chip(&m, 4.00, 330.0, 512);
        assert!(close(chip.total_area_cm2, 4.63, 0.03), "area {}", chip.total_area_cm2);
        assert!(close(chip.total_static_mw, 955.0, 0.05), "static {}", chip.total_static_mw);
        assert!(
            close(chip.max_control_path_w, 36.7, 0.05),
            "control-path draw {}",
            chip.max_control_path_w
        );
    }

    #[test]
    fn bigger_buffers_cost_more() {
        let small = FrontEndModel::new(FrontEndConfig::default());
        let big = FrontEndModel::new(FrontEndConfig {
            playback_entries: 4096,
            ..FrontEndConfig::default()
        });
        assert!(big.total_area_mm2() > small.total_area_mm2());
        assert!(big.total_dynamic_mw() > small.total_dynamic_mw());
    }

    #[test]
    fn component_list_names_fig11_blocks() {
        let m = FrontEndModel::default();
        let names: Vec<_> = m.components().iter().map(|c| c.name).collect();
        for expected in ["playback buffer", "template lookup", "pointer table", "activation board"]
        {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
