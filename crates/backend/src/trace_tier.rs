//! The ensemble trace tier: a straight-line compute-ensemble body fused
//! into one flat, branch-free sequence of resolved word-loop ops plus
//! precomputed cost annotations.
//!
//! [`crate::CompiledRecipe`] removed per-micro-op plane resolution, but
//! the simulator still pays per-instruction overhead on every thermal-wave
//! replay: a recipe-cache probe, three cost-model walks over the micro-op
//! list (`recipe_cycles`, `recipe_stage_cycles`, `recipe_energy_pj` — each
//! a `BTreeMap` lookup per op), and the fetch/dispatch loop itself. For a
//! RACER `ADD` that is ~3×641 map walks per wave to move 64 lanes — the
//! cost model dominates the word arithmetic.
//!
//! [`fuse_ensemble`] hoists all of it to synthesis time. A straight-line
//! body (compute instructions, mask writes, and NOPs, with no
//! data-dependent control flow) becomes an [`EnsembleTrace`]:
//!
//! * every instruction's compiled ops concatenated into one flat vector,
//!   executed by the same word-loop core as [`crate::CompiledRecipe`]
//!   (so plane writes and fault-site draws are byte-identical);
//! * per-step issue cycles precomputed, including the bit-pipelining
//!   schedule — within a wave the first compute instruction pays serial
//!   latency and later ones their stage time, which is statically known
//!   for a straight-line body;
//! * per-op energy coefficients (pJ per lane) stored flat, so runtime
//!   energy is `Σ coeff × enabled_lanes` in the original op order —
//!   bit-identical f64 accumulation to the cost model's per-recipe sum —
//!   with the full-mask total precomputed for the common case.
//!
//! The trace is a pure function of `(recipe context, encoded body,
//! geometry)` and is cached by the simulator's recipe pool/cache under
//! exactly that key. It carries *costs*, not charges: the simulator
//! replays the steps and applies the identical `Stats` mutations the
//! per-instruction tiers would, so architectural counters never depend on
//! which tier executed a body.

use crate::bitplane::{BitPlaneVrf, SCRATCH_PLANES};
use crate::compiled::{self, CompiledOp, CompiledRecipe};
use crate::datapath::DatapathModel;
use crate::recipe::Recipe;
use crate::DATA_BITS;
use mpu_isa::{Instruction, RegId};
use std::ops::Range;
use std::sync::Arc;

/// One body instruction of a fused ensemble trace.
#[derive(Debug, Clone)]
pub enum EnsembleStep {
    /// A compute instruction: its fused ops plus precomputed costs.
    Compute {
        /// The source instruction (recipe-cache accounting, mnemonics).
        instr: Instruction,
        /// Issue cycles for this step's position in the body: serial
        /// latency for the first compute instruction of a wave, stage
        /// time for later ones on bit-pipelined backends.
        cycles: u64,
        /// Micro-op count of the underlying recipe.
        uops: u32,
        /// Micro-ops the recipe optimizer removed from this step's recipe
        /// ([`crate::Recipe::saved_uops`]), carried so the fused tier
        /// charges the same `uops_saved` statistics as the other tiers.
        saved: u32,
        /// This step's slice of [`EnsembleTrace`]'s flat op vector.
        ops: Range<u32>,
        /// This step's slice of the flat per-op energy coefficients.
        coeffs: Range<u32>,
        /// Recipe energy with every lane enabled (the common case),
        /// precomputed by the same per-op summation the partial-mask
        /// path performs at runtime.
        energy_full_pj: f64,
    },
    /// `SETMASK rs`: load the lane mask from a register (or `COND`).
    SetMask {
        /// Source register (`COND_REG` selects the condition plane).
        rs: RegId,
    },
    /// `UNMASK`: re-enable every lane.
    Unmask,
    /// `NOP`: a control bubble.
    Nop,
}

/// A compute-ensemble body fused into a flat, branch-free word-loop
/// program over the VRF storage buffer, with all cost-model work
/// precomputed. Built by [`fuse_ensemble`]; executed step-by-step via
/// [`EnsembleTrace::run_step`] / [`EnsembleTrace::step_energy_pj`].
#[derive(Debug, Clone)]
pub struct EnsembleTrace {
    steps: Vec<EnsembleStep>,
    ops: Vec<CompiledOp>,
    coeffs: Vec<f64>,
    lanes: usize,
    regs: usize,
    /// Fusion proved every post-write bookkeeping step is a no-op for this
    /// op stream (`lanes % 64 == 0`, no mask-plane writes), so fault-free
    /// replay may use the bookkeeping-free word loop
    /// (`compiled::run_ops_fast`).
    fast: bool,
}

impl EnsembleTrace {
    /// The fused body steps, in program order (the terminating
    /// `COMPUTE_DONE` is not a step).
    pub fn steps(&self) -> &[EnsembleStep] {
        &self.steps
    }

    /// Lane count the trace was fused for.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Architectural register count the trace was fused for.
    pub fn regs(&self) -> usize {
        self.regs
    }

    /// Total fused micro-ops across all compute steps.
    pub fn fused_ops(&self) -> usize {
        self.ops.len()
    }

    /// True when fusion proved the op stream never writes the mask plane
    /// and the geometry has no padding bits. Replay may then batch a
    /// contiguous run of compute steps into one word-loop pass per VRF
    /// (the lane mask — and with it every step's enabled count — is
    /// invariant across the run) and use the bookkeeping-free fast loop.
    pub fn fast(&self) -> bool {
        self.fast
    }

    /// Executes the fused ops of a contiguous range of *compute* steps
    /// over one VRF in a single word-loop pass — the batched form of
    /// calling [`Self::run_step`] once per step, byte-identical to it
    /// (the per-step op slices are adjacent in the flat op vector).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, contains a non-compute step, or the
    /// VRF geometry differs from the trace's.
    pub fn run_steps(&self, range: Range<usize>, vrf: &mut BitPlaneVrf) {
        assert_eq!(
            (self.lanes, self.regs),
            (vrf.lanes(), vrf.regs()),
            "ensemble trace targets a different VRF geometry"
        );
        let compute_ops = |i: usize| match &self.steps[i] {
            EnsembleStep::Compute { ops, .. } => ops.clone(),
            step => panic!("run_steps spans a non-compute step: {step:?}"),
        };
        let start = compute_ops(range.start).start as usize;
        let end = compute_ops(range.end - 1).end as usize;
        debug_assert!(range.clone().all(|i| matches!(self.steps[i], EnsembleStep::Compute { .. })));
        let ops = &self.ops[start..end];
        if self.fast && vrf.fault_model().is_none() && vrf.mask_enabled() {
            compiled::run_ops_fast(vrf, ops);
        } else {
            compiled::run_ops(vrf, ops);
        }
    }

    /// Executes one step's fused ops over a VRF (no-op for non-compute
    /// steps — their plane effects are the control path's business).
    ///
    /// Replay assumes the ensemble-start invariant the simulator
    /// establishes before the first step: the lane mask is full. Fusion
    /// statically tracks the mask from that state (`SETMASK` makes it
    /// unknown, `UNMASK` restores it), which is what lets known-full mask
    /// merges be dropped at fuse time.
    ///
    /// When fusion proved the bookkeeping-free fast loop sound and the VRF
    /// is fault-free with mask-honouring enabled, the step runs through
    /// [`compiled::run_ops_fast`]; otherwise through the general word-loop
    /// core. Both perform the identical plane writes.
    ///
    /// # Panics
    ///
    /// Panics if `vrf` has a different geometry than the trace was fused
    /// for, mirroring [`BitPlaneVrf::run_compiled`].
    pub fn run_step(&self, step: &EnsembleStep, vrf: &mut BitPlaneVrf) {
        let EnsembleStep::Compute { ops, .. } = step else {
            return;
        };
        assert_eq!(
            (self.lanes, self.regs),
            (vrf.lanes(), vrf.regs()),
            "ensemble trace targets a different VRF geometry"
        );
        let ops = &self.ops[ops.start as usize..ops.end as usize];
        if self.fast && vrf.fault_model().is_none() && vrf.mask_enabled() {
            compiled::run_ops_fast(vrf, ops);
        } else {
            compiled::run_ops(vrf, ops);
        }
    }

    /// Energy (pJ) of one step across `enabled` active lanes: the
    /// precomputed total when every lane is enabled, otherwise the per-op
    /// coefficient sum in original op order — the same f64 additions, in
    /// the same order, as [`DatapathModel::recipe_energy_pj`], so the
    /// result is bit-identical. Zero for non-compute steps.
    pub fn step_energy_pj(&self, step: &EnsembleStep, enabled: usize) -> f64 {
        let EnsembleStep::Compute { coeffs, energy_full_pj, .. } = step else {
            return 0.0;
        };
        if enabled == self.lanes {
            return *energy_full_pj;
        }
        let lanes = enabled as f64;
        let mut pj = 0.0;
        for &coeff in &self.coeffs[coeffs.start as usize..coeffs.end as usize] {
            pj += coeff * lanes;
        }
        pj
    }
}

/// Fuses a straight-line ensemble body into an [`EnsembleTrace`],
/// resolving each compute instruction to its `(recipe, compiled)` pair
/// via `synth` (the simulator passes its recipe pool here so fusion
/// concatenates exactly the already-compiled templates the
/// per-instruction tiers would execute — including deliberately corrupted
/// preloads — without re-synthesizing or re-compiling anything). Returns
/// `None` if any instruction is outside the fusable set: compute classes,
/// `SETMASK`, `UNMASK`, and `NOP`. Control transfers (`JUMP`,
/// `JUMP_COND`, `RETURN`) and the mid-body mask readout (`GETMASK`) are
/// data-dependent and must take the slow path.
pub fn fuse_ensemble_with(
    datapath: &DatapathModel,
    body: &[Instruction],
    mut synth: impl FnMut(&DatapathModel, &Instruction) -> Option<(Arc<Recipe>, Arc<CompiledRecipe>)>,
) -> Option<EnsembleTrace> {
    let g = datapath.geometry();
    let (lanes, regs) = (g.lanes_per_vrf, g.regs_per_vrf);
    let pipelined = datapath.bit_pipelined();
    let mut steps = Vec::with_capacity(body.len());
    let mut ops: Vec<CompiledOp> = Vec::new();
    let mut coeffs: Vec<f64> = Vec::new();
    // Mirrors the interpreter's per-wave `pipeline_warm` flag: for a
    // straight-line body the warm/cold schedule is statically known.
    let mut pipeline_warm = false;
    // Static mask tracking from the ensemble-start invariant (mask full):
    // while the mask is known full, a masked write equals an unmasked one
    // (plus `finish_write`'s padding-bit zeroing, which is preserved on
    // every path), so the merge is dropped at fuse time. `SETMASK` makes
    // the mask data-dependent; `UNMASK` restores the known-full state.
    let mut mask_full = true;
    // Word offset of the mask plane (mirrors `BitPlaneVrf`'s layout): an
    // op stream that writes it would invalidate both the static mask
    // tracking and the cached popcount, so it forfeits the fast loop.
    let mask_base = (regs * DATA_BITS as usize + SCRATCH_PLANES + 1) * lanes.div_ceil(64);
    let mut writes_mask = false;
    // Word-serial ops transpose whole lane values through the VRF and
    // consult the mask plane dynamically; they are correct on the general
    // word-loop core but excluded from the bookkeeping-free fast loop.
    let mut has_word = false;
    for instr in body {
        match instr {
            Instruction::Binary { .. }
            | Instruction::Unary { .. }
            | Instruction::Compare { .. }
            | Instruction::Fuzzy { .. }
            | Instruction::Cas { .. }
            | Instruction::Init { .. } => {
                let (recipe, compiled) = synth(datapath, instr)?;
                let cycles = if pipelined && pipeline_warm {
                    datapath.recipe_stage_cycles(&recipe)
                } else {
                    datapath.recipe_cycles(&recipe)
                };
                pipeline_warm = true;
                let op_start = ops.len() as u32;
                for &op in compiled.ops() {
                    if op_writes(op, mask_base as u32) {
                        writes_mask = true;
                        mask_full = false;
                    }
                    if matches!(op, CompiledOp::Word { .. }) {
                        has_word = true;
                    }
                    ops.push(if mask_full { drop_mask_merge(op) } else { op });
                }
                let coeff_start = coeffs.len() as u32;
                let mut energy_full_pj = 0.0;
                for op in recipe.ops() {
                    // `uop_energy_pj(kind, 1)` is the per-lane coefficient
                    // exactly (×1.0 is exact in IEEE 754), so the runtime
                    // `coeff × lanes` product is bit-identical to the cost
                    // model's.
                    let coeff = datapath.uop_energy_pj(op.kind(), 1);
                    coeffs.push(coeff);
                    energy_full_pj += coeff * lanes as f64;
                }
                steps.push(EnsembleStep::Compute {
                    instr: *instr,
                    cycles,
                    uops: recipe.len() as u32,
                    saved: recipe.saved_uops(),
                    ops: op_start..ops.len() as u32,
                    coeffs: coeff_start..coeffs.len() as u32,
                    energy_full_pj,
                });
            }
            Instruction::SetMask { rs } => {
                mask_full = false;
                steps.push(EnsembleStep::SetMask { rs: *rs });
            }
            Instruction::Unmask => {
                mask_full = !writes_mask;
                steps.push(EnsembleStep::Unmask);
            }
            Instruction::Nop => steps.push(EnsembleStep::Nop),
            _ => return None,
        }
    }
    let fast = lanes % 64 == 0 && !writes_mask && !has_word;
    Some(EnsembleTrace { steps, ops, coeffs, lanes, regs, fast })
}

/// True if `op` writes the plane at word offset `base`.
fn op_writes(op: CompiledOp, base: u32) -> bool {
    match op {
        CompiledOp::Op2 { out, .. }
        | CompiledOp::Maj { out, .. }
        | CompiledOp::Copy { out, .. }
        | CompiledOp::Fill { out, .. } => out == base,
        CompiledOp::FullAdd { carry, sum, latch, .. } => {
            carry == base || sum == base || latch == base
        }
        CompiledOp::Lut { out, .. } => out == base,
        // Word ops write register (and condition) planes only, never the
        // mask plane.
        CompiledOp::Word { .. } => false,
    }
}

/// Rewrites `op` with its mask-merge flags cleared — sound only when the
/// mask is statically known to be full at this point of the op stream.
fn drop_mask_merge(op: CompiledOp) -> CompiledOp {
    match op {
        CompiledOp::Op2 { func, a, b, out, .. } => {
            CompiledOp::Op2 { func, a, b, out, masked: false }
        }
        CompiledOp::Maj { a, b, c, out, .. } => CompiledOp::Maj { a, b, c, out, masked: false },
        CompiledOp::FullAdd { a, b, carry, sum, latch, .. } => {
            CompiledOp::FullAdd { a, b, carry, sum, latch, carry_masked: false, sum_masked: false }
        }
        CompiledOp::Copy { a, out, .. } => CompiledOp::Copy { a, out, masked: false },
        CompiledOp::Fill { out, value, .. } => CompiledOp::Fill { out, masked: false, value },
        CompiledOp::Lut { a, b, c, out, table, .. } => {
            CompiledOp::Lut { a, b, c, out, table, masked: false }
        }
        // Word ops consult the mask plane dynamically; with a full mask the
        // merge is already the identity, so there is nothing to drop.
        op @ CompiledOp::Word { .. } => op,
    }
}

/// [`fuse_ensemble_with`] synthesizing and compiling recipes directly
/// from `datapath` (no shared pool).
pub fn fuse_ensemble(datapath: &DatapathModel, body: &[Instruction]) -> Option<EnsembleTrace> {
    let g = datapath.geometry();
    fuse_ensemble_with(datapath, body, |dp, instr| {
        let recipe = Arc::new(dp.recipe(instr)?);
        let compiled = Arc::new(recipe.compile(g.lanes_per_vrf, g.regs_per_vrf));
        Some((recipe, compiled))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatapathKind;
    use mpu_isa::{BinaryOp, CompareOp, UnaryOp, COND_REG};

    fn add(rd: u16) -> Instruction {
        Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(rd) }
    }

    fn body() -> Vec<Instruction> {
        vec![
            add(2),
            Instruction::Compare { op: CompareOp::Lt, rs: RegId(2), rt: RegId(1) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Unary { op: UnaryOp::Inv, rs: RegId(0), rd: RegId(3) },
            Instruction::Nop,
            Instruction::Unmask,
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(3), rt: RegId(1), rd: RegId(4) },
        ]
    }

    #[test]
    fn fused_compute_steps_match_interpreted_recipes() {
        for kind in DatapathKind::ALL {
            let dp = DatapathModel::for_kind(kind);
            let g = dp.geometry();
            let trace = fuse_ensemble(&dp, &body()).expect("straight-line body fuses");
            assert_eq!(trace.steps().len(), body().len());

            let mut a = BitPlaneVrf::new(g.lanes_per_vrf, g.regs_per_vrf);
            let xs: Vec<u64> = (0..g.lanes_per_vrf as u64).map(|i| i * 3 + 1).collect();
            let ys: Vec<u64> = (0..g.lanes_per_vrf as u64).map(|i| i * 7 + 2).collect();
            a.write_lane_values(0, &xs);
            a.write_lane_values(1, &ys);
            let mut b = a.clone();

            // a: interpret every recipe; b: replay the fused trace. The
            // control-path steps apply the same plane effects on both.
            for (step, instr) in trace.steps().iter().zip(body()) {
                match instr {
                    Instruction::SetMask { .. } => {
                        for v in [&mut a, &mut b] {
                            v.copy_plane(crate::Plane::Cond, crate::Plane::Mask);
                        }
                    }
                    Instruction::Unmask => {
                        for v in [&mut a, &mut b] {
                            v.fill_plane(crate::Plane::Mask, true);
                        }
                    }
                    Instruction::Nop => {}
                    ref compute => {
                        let recipe = dp.recipe(compute).expect("compute instruction");
                        for op in recipe.ops() {
                            op.apply(&mut a);
                        }
                        trace.run_step(step, &mut b);
                    }
                }
            }
            assert_eq!(a, b, "{kind:?}: fused trace diverged from interpreter");
        }
    }

    #[test]
    fn step_costs_match_the_cost_model() {
        let dp = DatapathModel::racer();
        let g = dp.geometry();
        let trace = fuse_ensemble(&dp, &[add(2), add(3), add(4)]).unwrap();
        let recipe = dp.recipe(&add(2)).unwrap();
        let serial = dp.recipe_cycles(&recipe);
        let stage = dp.recipe_stage_cycles(&recipe);
        assert!(stage < serial, "RACER is bit-pipelined");
        let cycles: Vec<u64> = trace
            .steps()
            .iter()
            .map(|s| match s {
                EnsembleStep::Compute { cycles, .. } => *cycles,
                _ => 0,
            })
            .collect();
        assert_eq!(cycles, vec![serial, stage, stage], "first step cold, rest warm");
        for step in trace.steps() {
            assert_eq!(
                trace.step_energy_pj(step, g.lanes_per_vrf).to_bits(),
                dp.recipe_energy_pj(&recipe, g.lanes_per_vrf).to_bits(),
                "full-mask energy is bit-identical to the cost model"
            );
            assert_eq!(
                trace.step_energy_pj(step, 17).to_bits(),
                dp.recipe_energy_pj(&recipe, 17).to_bits(),
                "partial-mask energy is bit-identical to the cost model"
            );
        }
    }

    #[test]
    fn word_traces_forfeit_the_fast_loop() {
        let trace = fuse_ensemble(&DatapathModel::dpu(), &[add(2)]).unwrap();
        assert!(!trace.fast(), "word-serial ops must take the general word loop");
        let trace = fuse_ensemble(&DatapathModel::pluto(), &[add(2)]).unwrap();
        assert!(trace.fast(), "pLUTo bit-plane traces keep the fast loop");
    }

    #[test]
    fn non_straight_line_bodies_do_not_fuse() {
        let dp = DatapathModel::racer();
        let jump_cond = Instruction::JumpCond { target: mpu_isa::LineNum(0) };
        let get_mask = Instruction::GetMask { rd: RegId(5) };
        for poison in [jump_cond, get_mask, Instruction::Return] {
            let mut b = vec![add(2)];
            b.push(poison);
            assert!(fuse_ensemble(&dp, &b).is_none(), "{poison:?} must not fuse");
        }
    }
}
