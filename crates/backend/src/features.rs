//! Table I: supported-feature matrix of the MPU versus prior PUM
//! datapaths, CPUs, and GPUs.
//!
//! The matrix is data (not behaviour) in the paper; we encode it so the
//! `table1` experiment binary can regenerate the table and tests can check
//! the MPU's full-feature claim.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A platform column of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Liquid Silicon (RRAM reconfigurable fabric).
    LiquidSilicon,
    /// Duality Cache.
    DualityCache,
    /// MIMDRAM.
    Mimdram,
    /// RACER.
    Racer,
    /// A conventional out-of-order CPU.
    Cpu,
    /// A SIMT GPU.
    Gpu,
    /// The MPU front end (this work).
    Mpu,
}

impl Platform {
    /// Table I column order.
    pub const ALL: [Platform; 7] = [
        Platform::LiquidSilicon,
        Platform::DualityCache,
        Platform::Mimdram,
        Platform::Racer,
        Platform::Cpu,
        Platform::Gpu,
        Platform::Mpu,
    ];

    /// Column abbreviation used in the paper.
    pub fn abbrev(self) -> &'static str {
        match self {
            Platform::LiquidSilicon => "LS",
            Platform::DualityCache => "DC",
            Platform::Mimdram => "MD",
            Platform::Racer => "RC",
            Platform::Cpu => "CPU",
            Platform::Gpu => "GPU",
            Platform::Mpu => "MPU",
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// A feature row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Feature {
    /// `if`-`else` statements.
    IfElse,
    /// Data-driven (dynamic) loops.
    DynamicLoops,
    /// Subroutine calls.
    SubroutineCalls,
    /// Global synchronization.
    GlobalSync,
    /// Collective communication.
    CollectiveComm,
    /// Power-density-aware scheduling.
    PowerDensityScheduling,
    /// Runtime micro-op decoding.
    RuntimeMicroOpDecoding,
}

impl Feature {
    /// Table I row order.
    pub const ALL: [Feature; 7] = [
        Feature::IfElse,
        Feature::DynamicLoops,
        Feature::SubroutineCalls,
        Feature::GlobalSync,
        Feature::CollectiveComm,
        Feature::PowerDensityScheduling,
        Feature::RuntimeMicroOpDecoding,
    ];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Feature::IfElse => "if-else statements",
            Feature::DynamicLoops => "Dynamic loops",
            Feature::SubroutineCalls => "Subroutine calls",
            Feature::GlobalSync => "Global synchronization",
            Feature::CollectiveComm => "Collective communication",
            Feature::PowerDensityScheduling => "Power-density-aware scheduling",
            Feature::RuntimeMicroOpDecoding => "Runtime micro-op decoding",
        }
    }

    /// The Table I section this row belongs to.
    pub fn section(self) -> &'static str {
        match self {
            Feature::IfElse
            | Feature::DynamicLoops
            | Feature::SubroutineCalls
            | Feature::GlobalSync => "Complex Control Instructions",
            _ => "System-Level Abilities",
        }
    }
}

/// True iff `platform` supports `feature`, exactly as Table I reports.
pub fn supports(platform: Platform, feature: Feature) -> bool {
    use Feature::*;
    use Platform::*;
    match (platform, feature) {
        // if-else: everyone.
        (_, IfElse) => true,
        // Dynamic loops: only CPU, GPU, MPU.
        (Cpu | Gpu | Mpu, DynamicLoops) => true,
        (_, DynamicLoops) => false,
        // Subroutine calls: MIMDRAM, CPU, GPU, MPU.
        (Mimdram | Cpu | Gpu | Mpu, SubroutineCalls) => true,
        (_, SubroutineCalls) => false,
        // Global synchronization: all except MIMDRAM.
        (Mimdram, GlobalSync) => false,
        (_, GlobalSync) => true,
        // Collective communication: DC, MD, RC, CPU, MPU (not LS, not GPU).
        (DualityCache | Mimdram | Racer | Cpu | Mpu, CollectiveComm) => true,
        (_, CollectiveComm) => false,
        // Power-density-aware scheduling: MPU only.
        (Mpu, PowerDensityScheduling) => true,
        (_, PowerDensityScheduling) => false,
        // Runtime micro-op decoding: MD, RC, CPU, MPU.
        (Mimdram | Racer | Cpu | Mpu, RuntimeMicroOpDecoding) => true,
        (_, RuntimeMicroOpDecoding) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpu_supports_every_feature() {
        for f in Feature::ALL {
            assert!(supports(Platform::Mpu, f), "MPU must support {}", f.label());
        }
    }

    #[test]
    fn only_mpu_has_power_density_scheduling() {
        for p in Platform::ALL {
            assert_eq!(supports(p, Feature::PowerDensityScheduling), p == Platform::Mpu, "{p}");
        }
    }

    #[test]
    fn spot_check_against_table_i() {
        // A few cells read directly off the paper's Table I.
        assert!(!supports(Platform::Racer, Feature::DynamicLoops));
        assert!(supports(Platform::Mimdram, Feature::SubroutineCalls));
        assert!(!supports(Platform::Mimdram, Feature::GlobalSync));
        assert!(!supports(Platform::Gpu, Feature::CollectiveComm));
        assert!(!supports(Platform::LiquidSilicon, Feature::CollectiveComm));
        assert!(supports(Platform::Racer, Feature::RuntimeMicroOpDecoding));
        assert!(!supports(Platform::Gpu, Feature::RuntimeMicroOpDecoding));
        assert!(!supports(Platform::DualityCache, Feature::RuntimeMicroOpDecoding));
    }

    #[test]
    fn sections_partition_the_rows() {
        let control: Vec<_> =
            Feature::ALL.iter().filter(|f| f.section() == "Complex Control Instructions").collect();
        assert_eq!(control.len(), 4);
    }
}
