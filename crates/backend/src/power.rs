//! Power-density model (paper Fig. 5).
//!
//! Unrestricted PUM datapaths scale power density with the number of
//! simultaneously active memory arrays, and several exceed safe air-cooling
//! limits well before full activation — the reason the MPU's RF holder
//! abstraction exists. This module reproduces the Fig. 5 sweep: power
//! density (W/cm²) versus active arrays per unit area, for the evaluated
//! datapaths plus FloatPIM (included in the paper's figure), against the
//! air-cooling limit.

use crate::datapath::DatapathModel;
use serde::{Deserialize, Serialize};

/// Safe air-cooling limit used by the scheduler, W/cm² (Huang et al.,
/// SEMI-THERM 2010, the paper's reference [44]).
pub const AIR_COOLING_LIMIT_W_PER_CM2: f64 = 100.0;

/// One point of the Fig. 5 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerDensityPoint {
    /// Number of simultaneously active arrays (VRFs) in one RFH footprint.
    pub active_arrays: usize,
    /// Resulting power density, W/cm².
    pub w_per_cm2: f64,
}

/// Power density of `active` simultaneously active VRFs packed into one
/// RF holder's footprint of `datapath`.
pub fn power_density_w_per_cm2(datapath: &DatapathModel, active: usize) -> f64 {
    let g = datapath.geometry();
    let footprint_mm2 = datapath.vrf_area_mm2() * g.vrfs_per_rfh as f64;
    let idle = g.vrfs_per_rfh.saturating_sub(active);
    let power_mw = active as f64 * datapath.active_power_mw_per_vrf()
        + idle as f64 * datapath.static_power_mw_per_vrf();
    // mW / mm² == W/cm² * 10; convert: 1 mW/mm² = 0.1 W/cm²... careful:
    // 1 W/cm² = 1000 mW / 100 mm² = 10 mW/mm². So W/cm² = (mW/mm²)/10.
    (power_mw / footprint_mm2) / 10.0
}

/// The largest number of active VRFs per RFH that stays under the
/// air-cooling limit — how the designer picks
/// [`crate::Geometry::active_vrfs_per_rfh`].
pub fn thermal_active_limit(datapath: &DatapathModel) -> usize {
    let g = datapath.geometry();
    let mut limit = 0;
    for active in 1..=g.vrfs_per_rfh {
        if power_density_w_per_cm2(datapath, active) > AIR_COOLING_LIMIT_W_PER_CM2 {
            break;
        }
        limit = active;
    }
    limit.max(1)
}

/// Sweeps active-array counts for Fig. 5.
pub fn fig5_sweep(datapath: &DatapathModel) -> Vec<PowerDensityPoint> {
    let g = datapath.geometry();
    (1..=g.vrfs_per_rfh)
        .map(|active_arrays| PowerDensityPoint {
            active_arrays,
            w_per_cm2: power_density_w_per_cm2(datapath, active_arrays),
        })
        .collect()
}

/// A FloatPIM-like ReRAM training accelerator, shown in the paper's Fig. 5
/// alongside the evaluated datapaths: dense analog-friendly crossbars with
/// high per-array activation power.
pub fn floatpim_like() -> DatapathModel {
    use crate::logic::LogicFamily;
    use crate::microop::MicroOpKind;
    crate::datapath::DatapathBuilder::new("FloatPIM", LogicFamily::Nor)
        .uop(MicroOpKind::Nor, 10, 0.6)
        .uop(MicroOpKind::Copy, 10, 0.7)
        .uop(MicroOpKind::Set, 10, 0.4)
        .build()
        .with_thermal_profile(20.0, 0.002, 0.0005)
}

impl DatapathModel {
    /// Overrides the thermal parameters (active/static power per VRF in mW
    /// and VRF area in mm²) — used to model datapaths that only appear in
    /// the Fig. 5 comparison.
    pub fn with_thermal_profile(
        mut self,
        active_mw: f64,
        static_mw: f64,
        vrf_area_mm2: f64,
    ) -> Self {
        self.replace_thermal(active_mw, static_mw, vrf_area_mm2);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::DatapathKind;

    #[test]
    fn racer_exceeds_limit_beyond_one_active_pipeline() {
        // The paper maps one active VRF per RACER cluster; our model must
        // agree: 1 is safe, 2 is borderline-permissible (footnote 2 says
        // two actives still fit), and large counts blow the budget.
        let racer = DatapathModel::racer();
        assert!(power_density_w_per_cm2(&racer, 1) < AIR_COOLING_LIMIT_W_PER_CM2);
        assert!(power_density_w_per_cm2(&racer, 64) > AIR_COOLING_LIMIT_W_PER_CM2);
        let limit = thermal_active_limit(&racer);
        assert!((1..=4).contains(&limit), "RACER thermal limit {limit} should be small");
    }

    #[test]
    fn duality_cache_never_throttles() {
        // Paper: "Duality Cache does not suffer from thermal throttling in
        // Figure 5" — its rate limit is structural (issue windows).
        let dc = DatapathModel::duality_cache();
        let g = dc.geometry();
        assert!(
            power_density_w_per_cm2(&dc, g.vrfs_per_rfh) < AIR_COOLING_LIMIT_W_PER_CM2,
            "DC at full activation: {} W/cm²",
            power_density_w_per_cm2(&dc, g.vrfs_per_rfh)
        );
        assert_eq!(thermal_active_limit(&dc), g.vrfs_per_rfh);
    }

    #[test]
    fn mimdram_supports_full_local_activation() {
        let md = DatapathModel::mimdram();
        assert_eq!(thermal_active_limit(&md), md.geometry().vrfs_per_rfh);
    }

    #[test]
    fn density_is_monotonic_in_active_arrays() {
        // A physics invariant, not a Fig. 5 pin: it must hold for the
        // pLUTo and DPU models too.
        for kind in DatapathKind::ALL {
            let dp = DatapathModel::for_kind(kind);
            let sweep = fig5_sweep(&dp);
            for pair in sweep.windows(2) {
                assert!(pair[1].w_per_cm2 >= pair[0].w_per_cm2, "{}", dp.name());
            }
        }
    }

    #[test]
    fn floatpim_is_the_hottest_curve() {
        // Fig 5 shows FloatPIM's power density rising fastest.
        let fp = floatpim_like();
        let racer = DatapathModel::racer();
        assert!(
            power_density_w_per_cm2(&fp, 8) > power_density_w_per_cm2(&racer, 8),
            "FloatPIM should run hotter than RACER"
        );
        assert!(thermal_active_limit(&fp) < thermal_active_limit(&DatapathModel::mimdram()));
    }
}
