//! Seeded hardware fault models for bit-plane datapaths.
//!
//! Analog in-memory compute executes with non-trivial failure rates: DRAM
//! triple-row-activation majority votes fail when charge sharing lands too
//! close to the sense-amp threshold, ReRAM NOR pull-downs fail on drifted
//! cell resistances, and SRAM bitline logic suffers read upsets. Real PIM
//! parts additionally ship with dead bit-lines that software must route
//! around. [`FaultModel`] reproduces all three classes against a
//! [`crate::BitPlaneVrf`]:
//!
//! * **permanent stuck-at-0/1 bit-line lanes** — every plane write forces
//!   the faulty lane's bit to its stuck value;
//! * **transient per-micro-op bit-plane flips** — after each micro-op, one
//!   lane of the output plane may flip, with a per-[`MicroOpKind`]
//!   probability (so each technology's dominant failure mechanism can be
//!   weighted);
//! * **RFH register-write corruption** — a runtime register write (message
//!   delivery, transfer-block landing) may flip one bit of the written
//!   register.
//!
//! All randomness comes from a **counter-based PRNG** ([`FaultPrng`]):
//! draw *n* is a pure hash of `(seed, n)`, so any run is replayable — and
//! any individual injection re-derivable — from the `(seed, site)` pair
//! alone, independent of thread scheduling or host state.
//!
//! With no model attached (the default), every hook is a single
//! `Option::is_some` test: results are byte-identical to a build without
//! the fault layer.

use crate::microop::MicroOpKind;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: a high-quality 64-bit mixing permutation.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A counter-based pseudorandom source: draw `site` is
/// `mix64(seed + site * GOLDEN)`, a pure function of `(seed, site)`.
///
/// Unlike a stateful generator, any draw can be reproduced in isolation,
/// which makes every injected fault replayable from its `(seed, site)`
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPrng {
    seed: u64,
    site: u64,
}

impl FaultPrng {
    /// Creates a source for `seed`, starting at site 0.
    pub fn new(seed: u64) -> Self {
        Self { seed, site: 0 }
    }

    /// Derives an independent stream seed from a parent seed and a salt
    /// (used to give every VRF and the NoC their own uncorrelated streams).
    pub fn derive(seed: u64, salt: u64) -> u64 {
        mix64(seed ^ mix64(salt.wrapping_add(0x9e37_79b9_7f4a_7c15)))
    }

    /// The value of draw `site` under `seed` — the pure replay function.
    pub fn at(seed: u64, site: u64) -> u64 {
        mix64(seed.wrapping_add(site.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Returns the next draw and advances the site counter.
    pub fn next_draw(&mut self) -> u64 {
        let v = Self::at(self.seed, self.site);
        self.site = self.site.wrapping_add(1);
        v
    }

    /// Number of draws made so far (the next draw's site).
    pub fn site(&self) -> u64 {
        self.site
    }

    /// The stream's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Converts a probability in `[0, 1]` to a 64-bit comparison threshold:
/// an event fires when a uniform draw is `< threshold`.
pub fn rate_to_threshold(rate: f64) -> u64 {
    if rate <= 0.0 {
        0
    } else if rate >= 1.0 {
        u64::MAX
    } else {
        (rate * u64::MAX as f64) as u64
    }
}

/// A seeded hardware fault model attachable to one [`crate::BitPlaneVrf`]
/// (see the module docs for the fault taxonomy).
///
/// Probabilities are stored as fixed-point `u64` thresholds
/// ([`rate_to_threshold`]) so the model — and the VRF carrying it — keeps
/// a derived [`Eq`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultModel {
    prng: FaultPrng,
    /// Per-[`MicroOpKind`] transient flip threshold, indexed by
    /// [`MicroOpKind::index`] (the order of [`MicroOpKind::ALL`]).
    thresholds: [u64; MicroOpKind::ALL.len()],
    /// RFH register-write corruption threshold.
    write_threshold: u64,
    /// Lanes whose writes are forced to 1 (stuck-at-1), packed per word.
    force_one: Vec<u64>,
    /// Lanes whose writes are forced to 0 (stuck-at-0 or power-gated),
    /// packed per word.
    force_zero: Vec<u64>,
    /// Transient flips and write corruptions that actually landed (a flip
    /// absorbed by a stuck/killed lane does not count).
    injected: u64,
}

impl FaultModel {
    /// Creates a fault-free model for a VRF with `lanes` lanes; arm it
    /// with [`FaultModel::set_transient_rate`] /
    /// [`FaultModel::set_write_corruption_rate`] /
    /// [`FaultModel::add_stuck_lane`].
    pub fn new(seed: u64, lanes: usize) -> Self {
        let words = lanes.div_ceil(64);
        Self {
            prng: FaultPrng::new(seed),
            thresholds: [0; MicroOpKind::ALL.len()],
            write_threshold: 0,
            force_one: vec![0; words],
            force_zero: vec![0; words],
            injected: 0,
        }
    }

    /// Sets the transient flip probability for one micro-op kind.
    pub fn set_transient_rate(&mut self, kind: MicroOpKind, rate: f64) {
        self.thresholds[kind.index()] = rate_to_threshold(rate);
    }

    /// Sets the probability that a runtime register write flips one bit.
    pub fn set_write_corruption_rate(&mut self, rate: f64) {
        self.write_threshold = rate_to_threshold(rate);
    }

    /// Declares `lane` permanently stuck at `value`.
    pub fn add_stuck_lane(&mut self, lane: usize, value: bool) {
        let (w, bit) = (lane / 64, 1u64 << (lane % 64));
        if value {
            self.force_one[w] |= bit;
            self.force_zero[w] &= !bit;
        } else {
            self.force_zero[w] |= bit;
            self.force_one[w] &= !bit;
        }
    }

    /// Power-gates `lane`: every plane write forces its bit to 0. Used by
    /// the remap controller to retire a lane discovered dead at boot.
    pub fn kill_lane(&mut self, lane: usize) {
        self.add_stuck_lane(lane, false);
    }

    /// True if any lane has a permanent forcing (stuck or killed).
    pub fn has_forced_lanes(&self) -> bool {
        self.force_one.iter().chain(&self.force_zero).any(|&w| w != 0)
    }

    /// Applies the permanent-lane forcing to one plane word.
    #[inline]
    pub(crate) fn force_word(&self, index: usize, word: u64) -> u64 {
        (word | self.force_one[index]) & !self.force_zero[index]
    }

    /// Draws the transient-flip decision for one executed micro-op of
    /// `kind`; on a hit, returns the lane whose output bit flips.
    #[inline]
    pub(crate) fn draw_flip(&mut self, kind: MicroOpKind, lanes: usize) -> Option<usize> {
        let threshold = self.thresholds[kind.index()];
        if threshold == 0 {
            return None;
        }
        if self.prng.next_draw() >= threshold {
            return None;
        }
        Some((self.prng.next_draw() % lanes as u64) as usize)
    }

    /// Draws the corruption decision for one runtime register write; on a
    /// hit, returns the `(lane, bit)` to flip.
    #[inline]
    pub(crate) fn draw_write_corruption(&mut self, lanes: usize) -> Option<(usize, u8)> {
        if self.write_threshold == 0 {
            return None;
        }
        if self.prng.next_draw() >= self.write_threshold {
            return None;
        }
        let lane = (self.prng.next_draw() % lanes as u64) as usize;
        let bit = (self.prng.next_draw() % 64) as u8;
        Some((lane, bit))
    }

    /// Records one landed fault.
    #[inline]
    pub(crate) fn note_injected(&mut self) {
        self.injected += 1;
    }

    /// Faults that actually landed so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Returns and resets the landed-fault counter (the simulator drains
    /// it into its statistics).
    pub fn take_injected(&mut self) -> u64 {
        std::mem::take(&mut self.injected)
    }

    /// The PRNG site counter (draws made so far) — with the seed, enough
    /// to replay the fault sequence exactly.
    pub fn site(&self) -> u64 {
        self.prng.site()
    }

    /// The model's stream seed.
    pub fn seed(&self) -> u64 {
        self.prng.seed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_counter_based_and_replayable() {
        let mut p = FaultPrng::new(42);
        let draws: Vec<u64> = (0..8).map(|_| p.next_draw()).collect();
        assert_eq!(p.site(), 8);
        // Every draw is re-derivable from (seed, site) alone.
        for (site, &v) in draws.iter().enumerate() {
            assert_eq!(FaultPrng::at(42, site as u64), v);
        }
        // Distinct seeds give distinct streams.
        assert_ne!(FaultPrng::at(42, 0), FaultPrng::at(43, 0));
        assert_ne!(FaultPrng::derive(1, 2), FaultPrng::derive(1, 3));
    }

    #[test]
    fn thresholds_cover_the_unit_interval() {
        assert_eq!(rate_to_threshold(0.0), 0);
        assert_eq!(rate_to_threshold(-1.0), 0);
        assert_eq!(rate_to_threshold(1.0), u64::MAX);
        assert_eq!(rate_to_threshold(2.0), u64::MAX);
        let half = rate_to_threshold(0.5);
        assert!(half > u64::MAX / 4 && half < 3 * (u64::MAX / 4));
    }

    #[test]
    fn zero_rate_never_fires_and_never_draws() {
        let mut m = FaultModel::new(7, 64);
        for kind in MicroOpKind::ALL {
            assert_eq!(m.draw_flip(kind, 64), None);
        }
        assert_eq!(m.draw_write_corruption(64), None);
        assert_eq!(m.site(), 0, "zero-rate paths must not consume sites");
    }

    #[test]
    fn certain_rate_always_fires_within_lanes() {
        let mut m = FaultModel::new(7, 100);
        m.set_transient_rate(MicroOpKind::Nor, 1.0);
        m.set_write_corruption_rate(1.0);
        for _ in 0..32 {
            let lane = m.draw_flip(MicroOpKind::Nor, 100).expect("must fire");
            assert!(lane < 100);
        }
        let (lane, bit) = m.draw_write_corruption(100).expect("must fire");
        assert!(lane < 100 && bit < 64);
        // Other kinds stay silent.
        assert_eq!(m.draw_flip(MicroOpKind::Copy, 100), None);
    }

    #[test]
    fn stuck_lane_forcing_composes() {
        let mut m = FaultModel::new(0, 128);
        m.add_stuck_lane(3, true);
        m.add_stuck_lane(65, false);
        assert!(m.has_forced_lanes());
        assert_eq!(m.force_word(0, 0), 1 << 3);
        assert_eq!(m.force_word(1, u64::MAX), !(1 << 1));
        // Re-declaring a lane with the other polarity replaces it.
        m.add_stuck_lane(3, false);
        assert_eq!(m.force_word(0, u64::MAX), !(1 << 3));
        m.kill_lane(65); // idempotent with stuck-at-0
        assert_eq!(m.force_word(1, u64::MAX), !(1 << 1));
    }

    #[test]
    fn injected_counter_drains() {
        let mut m = FaultModel::new(0, 64);
        m.note_injected();
        m.note_injected();
        assert_eq!(m.injected(), 2);
        assert_eq!(m.take_injected(), 2);
        assert_eq!(m.injected(), 0);
    }
}
