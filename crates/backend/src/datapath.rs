//! Parametric models of bitwise PUM datapaths (paper §II-C, §IV, Table III).
//!
//! A [`DatapathModel`] captures everything the MPU front end needs to know
//! about a back end: its logic family (which fixes instruction recipes),
//! geometry (VRF/RFH mapping, Table III), per-micro-op timing and energy,
//! whether execution is bit-pipelined (RACER), and inter-VRF transfer
//! costs. Three calibrated models ship with the crate:
//!
//! * [`DatapathModel::racer`] — ReRAM, bit-pipelined NOR (RACER + OSCAR).
//!   VRF = pipeline (64 tiles), RFH = cluster, 1 active VRF per cluster
//!   (thermal), 497 MPUs on a 4 cm² chip.
//! * [`DatapathModel::mimdram`] — DRAM, triple-row activation. VRF = mat
//!   group, RFH = µPE, all local VRFs may activate, 450 MPUs.
//! * [`DatapathModel::duality_cache`] — SRAM bitline + CMOS adders. VRF =
//!   subarray group, RFH = issue window, all local VRFs may activate,
//!   12 MPUs (cache capacity).
//!
//! Cycle counts are at the 1 GHz MPU clock. Energy constants are per lane
//! per micro-op and were chosen from the cited technology papers' orders
//! of magnitude, then calibrated so the cross-datapath trends of the MPU
//! paper's evaluation hold (see DESIGN.md §2).

use crate::logic::LogicFamily;
use crate::microop::MicroOpKind;
use crate::recipe::{build_recipe, Recipe, RecipeCtx};
use mpu_isa::Instruction;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which shipped datapath a model describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatapathKind {
    /// ReRAM-based RACER with OSCAR NOR primitives.
    Racer,
    /// DRAM-based MIMDRAM.
    Mimdram,
    /// SRAM-based Duality Cache.
    DualityCache,
    /// DRAM LUT-in-memory (pLUTo, arXiv:2104.07699).
    Pluto,
    /// UPMEM-style commercial DPU, PrIM-calibrated (arXiv:2105.03814).
    Dpu,
    /// A user-defined backend built with [`DatapathBuilder`].
    Custom,
}

impl DatapathKind {
    /// The three paper-evaluated backends (figure/table reproductions).
    pub const EVALUATED: [DatapathKind; 3] =
        [DatapathKind::Racer, DatapathKind::Mimdram, DatapathKind::DualityCache];

    /// Every shipped backend — the sweep constant for conformance, fault,
    /// and perf-gate matrices. Guarded by [`DatapathKind::is_shipped`]'s
    /// wildcard-free match plus the const assertion below: a new variant
    /// fails to compile until both are updated, so a 6th backend cannot
    /// silently under-sweep.
    pub const ALL: [DatapathKind; 5] = [
        DatapathKind::Racer,
        DatapathKind::Mimdram,
        DatapathKind::DualityCache,
        DatapathKind::Pluto,
        DatapathKind::Dpu,
    ];

    /// True for backends constructible via [`DatapathModel::for_kind`]
    /// (everything but `Custom`). The match is deliberately wildcard-free:
    /// adding a variant breaks compilation here until [`DatapathKind::ALL`]
    /// is reconsidered.
    pub const fn is_shipped(self) -> bool {
        match self {
            DatapathKind::Racer
            | DatapathKind::Mimdram
            | DatapathKind::DualityCache
            | DatapathKind::Pluto
            | DatapathKind::Dpu => true,
            DatapathKind::Custom => false,
        }
    }
}

// Compile-time exhaustiveness: every entry of `ALL` is shipped, and the
// shipped count matches `ALL`'s length (`is_shipped` is wildcard-free, so
// a new enum variant cannot compile without revisiting both).
const _: () = {
    let mut i = 0;
    while i < DatapathKind::ALL.len() {
        assert!(DatapathKind::ALL[i].is_shipped());
        i += 1;
    }
};

/// Physical organization of a datapath, mapping the MPU abstraction onto
/// hardware (paper §IV and Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Geometry {
    /// Vector lanes per VRF (rows of a RACER pipeline tile, columns of a
    /// DRAM mat / SRAM subarray).
    pub lanes_per_vrf: usize,
    /// Architectural vector registers per VRF (the top two are reserved as
    /// recipe temporaries).
    pub regs_per_vrf: usize,
    /// VRFs per RF holder (Table III: 512-bit activation board / 8 RFHs).
    pub vrfs_per_rfh: usize,
    /// RF holders per MPU.
    pub rfhs_per_mpu: usize,
    /// Thermal/structural cap on simultaneously active VRFs per RFH.
    pub active_vrfs_per_rfh: usize,
    /// MPUs on the 4 cm² iso-area chip.
    pub mpus_per_chip: usize,
    /// Memory capacity managed per MPU, in bytes.
    pub mem_bytes_per_mpu: u64,
}

impl Geometry {
    /// Total VRFs in one MPU.
    pub fn vrfs_per_mpu(&self) -> usize {
        self.vrfs_per_rfh * self.rfhs_per_mpu
    }

    /// VRFs that may be active simultaneously in one MPU.
    pub fn max_active_vrfs_per_mpu(&self) -> usize {
        self.active_vrfs_per_rfh.min(self.vrfs_per_rfh) * self.rfhs_per_mpu
    }

    /// Data elements (64-bit lanes) resident across one MPU's VRFs.
    pub fn lanes_per_mpu(&self) -> usize {
        self.lanes_per_vrf * self.vrfs_per_mpu()
    }

    /// Index of the two registers reserved for recipe temporaries.
    pub fn temp_regs(&self) -> (u8, u8) {
        ((self.regs_per_vrf - 2) as u8, (self.regs_per_vrf - 1) as u8)
    }

    /// Registers usable by programs (excludes recipe temporaries).
    pub fn usable_regs(&self) -> usize {
        self.regs_per_vrf - 2
    }
}

/// A calibrated PUM datapath model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatapathModel {
    kind: DatapathKind,
    name: String,
    family: LogicFamily,
    geometry: Geometry,
    uop_cycles: BTreeMap<MicroOpKind, u64>,
    uop_energy_pj_per_lane: BTreeMap<MicroOpKind, f64>,
    bit_pipelined: bool,
    /// Pipeline depth in bit-stages (RACER: tiles per pipeline).
    pipeline_depth: u32,
    /// Cycles to move one 64-bit word between VRFs of adjacent RFHs.
    transfer_cycles_per_word: u64,
    /// Energy (pJ) to move one 64-bit word between VRFs.
    transfer_energy_pj_per_word: f64,
    /// Static (leakage) power per VRF, in milliwatts.
    static_power_mw_per_vrf: f64,
    /// Dynamic power of one VRF actively executing micro-ops, mW.
    active_power_mw_per_vrf: f64,
    /// Die area of one VRF's memory arrays, mm².
    vrf_area_mm2: f64,
    /// Recipe-optimizer configuration applied by [`DatapathModel::recipe`].
    #[serde(default)]
    opt: crate::opt::OptConfig,
    /// True for word-serial near-bank cores (UPMEM-style DPUs): one
    /// micro-op processes the VRF's lanes sequentially, so recipe cycle
    /// counts scale with `lanes_per_vrf` (energy is already per-lane).
    #[serde(default)]
    word_serial: bool,
}

impl DatapathModel {
    /// The ReRAM-based RACER backend (paper §II-C, §IV, Table III).
    pub fn racer() -> Self {
        Self {
            kind: DatapathKind::Racer,
            name: "RACER".to_string(),
            family: LogicFamily::Nor,
            geometry: Geometry {
                lanes_per_vrf: 64,
                regs_per_vrf: 16,
                vrfs_per_rfh: 64,
                rfhs_per_mpu: 8,
                active_vrfs_per_rfh: 1,
                mpus_per_chip: 497,
                mem_bytes_per_mpu: 16 << 20,
            },
            // OSCAR-class ReRAM NOR ≈ 2 ns switching (RACER's pipelines are
            // engineered for GHz-rate micro-op issue); buffered copies
            // similar.
            uop_cycles: BTreeMap::from([
                (MicroOpKind::Nor, 2),
                (MicroOpKind::Copy, 2),
                (MicroOpKind::Set, 2),
            ]),
            // Low-current OSCAR switching: tens of femtojoules per cell.
            uop_energy_pj_per_lane: BTreeMap::from([
                (MicroOpKind::Nor, 0.020),
                (MicroOpKind::Copy, 0.025),
                (MicroOpKind::Set, 0.012),
            ]),
            bit_pipelined: true,
            pipeline_depth: 64,
            transfer_cycles_per_word: 16,
            transfer_energy_pj_per_word: 12.0,
            static_power_mw_per_vrf: 0.0013, // ReRAM is non-volatile; PCC leakage only
            // Peak switching power while driving NOR write currents: the
            // thermal criterion Fig. 5 plots (averages are far lower).
            active_power_mw_per_vrf: 45.0,
            vrf_area_mm2: 0.0015,
            opt: crate::opt::OptConfig::default(),
            word_serial: false,
        }
    }

    /// The DRAM-based MIMDRAM backend.
    pub fn mimdram() -> Self {
        Self {
            kind: DatapathKind::Mimdram,
            name: "MIMDRAM".to_string(),
            family: LogicFamily::Maj,
            geometry: Geometry {
                lanes_per_vrf: 512,
                regs_per_vrf: 16,
                vrfs_per_rfh: 64,
                rfhs_per_mpu: 8,
                active_vrfs_per_rfh: 256, // effectively all 64
                mpus_per_chip: 450,
                mem_bytes_per_mpu: 16 << 20,
            },
            // In-mat activations are faster than full-array tRAS (short
            // local bitlines — the MIMDRAM design point); AAP row copies
            // cost an extra precharge.
            uop_cycles: BTreeMap::from([
                (MicroOpKind::Tra, 20),
                (MicroOpKind::Not, 20),
                (MicroOpKind::Copy, 28),
                (MicroOpKind::Set, 20),
            ]),
            uop_energy_pj_per_lane: BTreeMap::from([
                (MicroOpKind::Tra, 0.09),
                (MicroOpKind::Not, 0.06),
                (MicroOpKind::Copy, 0.12),
                (MicroOpKind::Set, 0.05),
            ]),
            bit_pipelined: false,
            pipeline_depth: 1,
            transfer_cycles_per_word: 24,
            transfer_energy_pj_per_word: 20.0,
            static_power_mw_per_vrf: 0.011, // refresh + peripheral leakage
            active_power_mw_per_vrf: 1.4,
            vrf_area_mm2: 0.0016,
            opt: crate::opt::OptConfig::default(),
            word_serial: false,
        }
    }

    /// The SRAM-based Duality Cache backend.
    pub fn duality_cache() -> Self {
        Self {
            kind: DatapathKind::DualityCache,
            name: "DualityCache".to_string(),
            family: LogicFamily::Bitline,
            geometry: Geometry {
                lanes_per_vrf: 256,
                regs_per_vrf: 16,
                vrfs_per_rfh: 64,
                rfhs_per_mpu: 8,
                active_vrfs_per_rfh: 256, // no thermal throttle (paper Fig 5)
                mpus_per_chip: 12,
                mem_bytes_per_mpu: 16 << 20,
            },
            // 14-cycle in-SRAM operation latency (paper §VIII-C); the CMOS
            // full adder computes sum+carry in a single such operation.
            uop_cycles: BTreeMap::from([
                (MicroOpKind::And, 14),
                (MicroOpKind::Or, 14),
                (MicroOpKind::Xor, 14),
                (MicroOpKind::Not, 14),
                (MicroOpKind::FullAdd, 14),
                (MicroOpKind::Copy, 14),
                (MicroOpKind::Set, 14),
            ]),
            uop_energy_pj_per_lane: BTreeMap::from([
                (MicroOpKind::And, 0.020),
                (MicroOpKind::Or, 0.020),
                (MicroOpKind::Xor, 0.025),
                (MicroOpKind::Not, 0.015),
                (MicroOpKind::FullAdd, 0.035),
                (MicroOpKind::Copy, 0.020),
                (MicroOpKind::Set, 0.012),
            ]),
            bit_pipelined: false,
            pipeline_depth: 1,
            transfer_cycles_per_word: 8,
            transfer_energy_pj_per_word: 6.0,
            static_power_mw_per_vrf: 0.045, // SRAM leakage dominates
            active_power_mw_per_vrf: 1.9,
            vrf_area_mm2: 0.055, // SRAM density is poor (0.2 GB chip)
            opt: crate::opt::OptConfig::default(),
            word_serial: false,
        }
    }

    /// The DRAM LUT-in-memory pLUTo backend (arXiv:2104.07699).
    ///
    /// Every gate is a single LUT-row query costing one full row cycle
    /// (tRC ≈ 46 ns at the 1 GHz MPU clock) regardless of the boolean
    /// function — pLUTo's pitch: complex gates at AND/OR price. Geometry
    /// mirrors the DRAM mat organization of MIMDRAM; the LUT storage
    /// overhead costs some array density, hence fewer MPUs per chip.
    pub fn pluto() -> Self {
        Self {
            kind: DatapathKind::Pluto,
            name: "pLUTo".to_string(),
            family: LogicFamily::Lut,
            geometry: Geometry {
                lanes_per_vrf: 512,
                regs_per_vrf: 16,
                vrfs_per_rfh: 64,
                rfhs_per_mpu: 8,
                active_vrfs_per_rfh: 256, // effectively all 64
                mpus_per_chip: 360,       // LUT rows cost array density
                mem_bytes_per_mpu: 16 << 20,
            },
            // A LUT query is a full activate–query–precharge row cycle
            // (pLUTo §4: tRC-bound); copies and presets are standard
            // AAP/preset row operations as in MIMDRAM.
            uop_cycles: BTreeMap::from([
                (MicroOpKind::Lut, 46),
                (MicroOpKind::Copy, 28),
                (MicroOpKind::Set, 20),
            ]),
            uop_energy_pj_per_lane: BTreeMap::from([
                (MicroOpKind::Lut, 0.10),
                (MicroOpKind::Copy, 0.12),
                (MicroOpKind::Set, 0.05),
            ]),
            bit_pipelined: false,
            pipeline_depth: 1,
            transfer_cycles_per_word: 24,
            transfer_energy_pj_per_word: 20.0,
            static_power_mw_per_vrf: 0.011, // refresh + peripheral leakage
            active_power_mw_per_vrf: 1.5,
            vrf_area_mm2: 0.0019, // mat area + LUT source/destination rows
            opt: crate::opt::OptConfig::default(),
            word_serial: false,
        }
    }

    /// The UPMEM-style commercial DPU backend, calibrated against the PrIM
    /// characterization (arXiv:2105.03814).
    ///
    /// A DPU is a word-serial near-bank core: no inter-lane bit-plane
    /// primitives exist, so recipes fall back to one [`MicroOp::Word`] per
    /// instruction and cycle counts scale with the lanes processed
    /// sequentially ([`DatapathModel::recipe_cycles`]). PrIM's throughput
    /// numbers give the per-element cost ratios: add/sub/logic ≈ 1×,
    /// 32-bit multiply ≈ 8× (software-pipelined shifts on a core without
    /// a hardware multiplier), division ≈ 13×.
    pub fn dpu() -> Self {
        Self {
            kind: DatapathKind::Dpu,
            name: "DPU".to_string(),
            family: LogicFamily::WordSerial,
            geometry: Geometry {
                lanes_per_vrf: 64,
                regs_per_vrf: 16,
                vrfs_per_rfh: 8, // one tasklet group per RFH
                rfhs_per_mpu: 8,
                active_vrfs_per_rfh: 256,    // all tasklets run concurrently
                mpus_per_chip: 40,           // ranks of 64 DPUs, iso-area
                mem_bytes_per_mpu: 64 << 20, // MRAM bank per DPU
            },
            // Cycles are per lane (word-serial): ~12 pipeline cycles per
            // 64-bit ALU op at the ~350 MHz DPU clock rescaled to the
            // 1 GHz MPU clock; MUL/DIV are software loops.
            uop_cycles: BTreeMap::from([
                (MicroOpKind::WordAlu, 12),
                (MicroOpKind::WordMul, 96),
                (MicroOpKind::WordDiv, 160),
            ]),
            uop_energy_pj_per_lane: BTreeMap::from([
                (MicroOpKind::WordAlu, 4.5),
                (MicroOpKind::WordMul, 30.0),
                (MicroOpKind::WordDiv, 55.0),
            ]),
            bit_pipelined: false,
            pipeline_depth: 1,
            transfer_cycles_per_word: 64, // through the DMA engine + WRAM
            transfer_energy_pj_per_word: 45.0,
            static_power_mw_per_vrf: 0.02,
            active_power_mw_per_vrf: 2.8, // a running RISC core, not an array
            vrf_area_mm2: 0.02,
            opt: crate::opt::OptConfig::default(),
            word_serial: true,
        }
    }

    /// The model for a [`DatapathKind`] (panics on `Custom`; build those
    /// with [`DatapathBuilder`]).
    pub fn for_kind(kind: DatapathKind) -> Self {
        match kind {
            DatapathKind::Racer => Self::racer(),
            DatapathKind::Mimdram => Self::mimdram(),
            DatapathKind::DualityCache => Self::duality_cache(),
            DatapathKind::Pluto => Self::pluto(),
            DatapathKind::Dpu => Self::dpu(),
            DatapathKind::Custom => panic!("custom datapaths are built with DatapathBuilder"),
        }
    }

    /// Which shipped backend this is.
    pub fn kind(&self) -> DatapathKind {
        self.kind
    }

    /// Human-readable backend name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backend's native logic family.
    pub fn family(&self) -> LogicFamily {
        self.family
    }

    /// Physical organization (Table III).
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Recipe-synthesis context (family + reserved temp registers +
    /// optimizer configuration).
    pub fn recipe_ctx(&self) -> RecipeCtx {
        RecipeCtx { family: self.family, temp_regs: self.geometry.temp_regs(), opt: self.opt }
    }

    /// The recipe-optimizer configuration this model applies at synthesis.
    pub fn opt_config(&self) -> crate::opt::OptConfig {
        self.opt
    }

    /// Replaces the recipe-optimizer configuration (e.g.
    /// [`crate::opt::OptConfig::disabled`] to measure the unoptimized
    /// templates). The configuration is part of [`DatapathModel::recipe_ctx`]
    /// and therefore of every recipe memo key.
    pub fn with_opt_config(mut self, opt: crate::opt::OptConfig) -> Self {
        self.opt = opt;
        self
    }

    /// Synthesizes the recipe for `instr` and runs the recipe optimizer
    /// over it (see [`crate::opt`]), or returns `None` for control-path
    /// instructions. Callers should cache recipes per instruction — that
    /// is exactly what the control path's template lookup does, which also
    /// amortizes the optimization cost to once per template miss.
    pub fn recipe(&self, instr: &Instruction) -> Option<Recipe> {
        self.recipe_with_stats(instr).map(|(recipe, _)| recipe)
    }

    /// [`DatapathModel::recipe`], also returning the optimizer's per-rule
    /// attribution counters for this synthesis.
    pub fn recipe_with_stats(&self, instr: &Instruction) -> Option<(Recipe, crate::opt::OptStats)> {
        let template = build_recipe(self.recipe_ctx(), instr)?;
        let cost = |kind: MicroOpKind| {
            let cycles = self.uop_cycles.get(&kind).copied()?;
            let energy = self.uop_energy_pj_per_lane.get(&kind).copied()?;
            Some((cycles, energy))
        };
        Some(crate::opt::optimize(&template, self.family, self.opt, &cost))
    }

    /// Issue/occupancy cycles of one micro-op at the 1 GHz MPU clock.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not native to this backend (recipes only emit
    /// supported kinds).
    pub fn uop_cycles(&self, kind: MicroOpKind) -> u64 {
        *self
            .uop_cycles
            .get(&kind)
            .unwrap_or_else(|| panic!("{} does not support {kind}", self.name))
    }

    /// Energy of one micro-op, in picojoules, across `lanes` active lanes.
    pub fn uop_energy_pj(&self, kind: MicroOpKind, lanes: usize) -> f64 {
        self.uop_energy_pj_per_lane
            .get(&kind)
            .unwrap_or_else(|| panic!("{} does not support {kind}", self.name))
            * lanes as f64
    }

    /// Total cycles to issue a recipe serially (no bit-pipelining). On
    /// word-serial backends the per-op cost is charged once per lane: the
    /// near-bank core walks the VRF sequentially.
    pub fn recipe_cycles(&self, recipe: &Recipe) -> u64 {
        let per_op: u64 = recipe.ops().iter().map(|op| self.uop_cycles(op.kind())).sum();
        if self.word_serial {
            per_op * self.geometry.lanes_per_vrf as u64
        } else {
            per_op
        }
    }

    /// True for word-serial near-bank cores (UPMEM-style DPUs).
    pub fn word_serial(&self) -> bool {
        self.word_serial
    }

    /// Total energy (pJ) of a recipe across `lanes` lanes.
    pub fn recipe_energy_pj(&self, recipe: &Recipe, lanes: usize) -> f64 {
        recipe.ops().iter().map(|op| self.uop_energy_pj(op.kind(), lanes)).sum()
    }

    /// Whether consecutive instructions overlap across bit-stages (RACER's
    /// bit-pipelining, paper §II-C).
    pub fn bit_pipelined(&self) -> bool {
        self.bit_pipelined
    }

    /// Pipeline depth in bit-stages.
    pub fn pipeline_depth(&self) -> u32 {
        self.pipeline_depth
    }

    /// Steady-state cycles a recipe occupies one bit-stage of the pipeline
    /// (`recipe_cycles / depth`, at least 1); equals `recipe_cycles` for
    /// non-pipelined backends.
    pub fn recipe_stage_cycles(&self, recipe: &Recipe) -> u64 {
        let total = self.recipe_cycles(recipe);
        if self.bit_pipelined {
            (total / self.pipeline_depth as u64).max(1)
        } else {
            total
        }
    }

    /// Cycles to move one 64-bit word between VRFs (intra-MPU).
    pub fn transfer_cycles_per_word(&self) -> u64 {
        self.transfer_cycles_per_word
    }

    /// Energy (pJ) to move one 64-bit word between VRFs (intra-MPU).
    pub fn transfer_energy_pj_per_word(&self) -> f64 {
        self.transfer_energy_pj_per_word
    }

    /// Leakage power of one VRF, mW.
    pub fn static_power_mw_per_vrf(&self) -> f64 {
        self.static_power_mw_per_vrf
    }

    /// Dynamic power of one actively computing VRF, mW.
    pub fn active_power_mw_per_vrf(&self) -> f64 {
        self.active_power_mw_per_vrf
    }

    /// Die area of one VRF, mm².
    pub fn vrf_area_mm2(&self) -> f64 {
        self.vrf_area_mm2
    }

    /// Micro-op kinds this backend natively supports.
    pub fn supports(&self) -> Vec<MicroOpKind> {
        self.uop_cycles.keys().copied().collect()
    }

    pub(crate) fn replace_thermal(&mut self, active_mw: f64, static_mw: f64, vrf_area_mm2: f64) {
        self.active_power_mw_per_vrf = active_mw;
        self.static_power_mw_per_vrf = static_mw;
        self.vrf_area_mm2 = vrf_area_mm2;
    }
}

/// Builder for custom datapath models, demonstrating that the MPU front
/// end is not tied to the three shipped backends.
///
/// # Example
///
/// ```
/// use pum_backend::{DatapathBuilder, LogicFamily, MicroOpKind};
///
/// let dp = DatapathBuilder::new("MyPUM", LogicFamily::Nor)
///     .lanes_per_vrf(128)
///     .uop(MicroOpKind::Nor, 5, 0.2)
///     .uop(MicroOpKind::Copy, 5, 0.2)
///     .uop(MicroOpKind::Set, 5, 0.1)
///     .build();
/// assert_eq!(dp.geometry().lanes_per_vrf, 128);
/// ```
#[derive(Debug, Clone)]
pub struct DatapathBuilder {
    model: DatapathModel,
}

impl DatapathBuilder {
    /// Starts from sane defaults (RACER-like geometry) for `family`.
    pub fn new(name: &str, family: LogicFamily) -> Self {
        let mut model = DatapathModel::racer();
        model.kind = DatapathKind::Custom;
        model.name = name.to_string();
        model.family = family;
        model.uop_cycles.clear();
        model.uop_energy_pj_per_lane.clear();
        model.bit_pipelined = false;
        model.pipeline_depth = 1;
        Self { model }
    }

    /// Sets lanes per VRF.
    pub fn lanes_per_vrf(mut self, lanes: usize) -> Self {
        self.model.geometry.lanes_per_vrf = lanes;
        self
    }

    /// Sets the thermal cap on active VRFs per RFH.
    pub fn active_vrfs_per_rfh(mut self, n: usize) -> Self {
        self.model.geometry.active_vrfs_per_rfh = n;
        self
    }

    /// Sets MPUs per chip.
    pub fn mpus_per_chip(mut self, n: usize) -> Self {
        self.model.geometry.mpus_per_chip = n;
        self
    }

    /// Registers a supported micro-op with its latency and per-lane energy.
    pub fn uop(mut self, kind: MicroOpKind, cycles: u64, energy_pj_per_lane: f64) -> Self {
        self.model.uop_cycles.insert(kind, cycles);
        self.model.uop_energy_pj_per_lane.insert(kind, energy_pj_per_lane);
        self
    }

    /// Sets the recipe-optimizer configuration (defaults to enabled with
    /// every rule family on).
    pub fn optimizer(mut self, opt: crate::opt::OptConfig) -> Self {
        self.model.opt = opt;
        self
    }

    /// Enables bit-pipelining with the given depth.
    pub fn bit_pipelined(mut self, depth: u32) -> Self {
        self.model.bit_pipelined = true;
        self.model.pipeline_depth = depth;
        self
    }

    /// Finalizes the model.
    ///
    /// # Panics
    ///
    /// Panics if the registered micro-ops cannot express the model's logic
    /// family (recipes would fail at issue time otherwise).
    pub fn build(self) -> DatapathModel {
        for kind in self.model.family.supported_kinds() {
            assert!(
                self.model.uop_cycles.contains_key(kind),
                "family {:?} requires a cost for {kind}",
                self.model.family
            );
        }
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpu_isa::{BinaryOp, RegId};

    fn add_instr() -> Instruction {
        Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) }
    }

    #[test]
    fn shipped_models_match_table_iii() {
        let r = DatapathModel::racer();
        assert_eq!(r.geometry().active_vrfs_per_rfh, 1);
        assert_eq!(r.geometry().rfhs_per_mpu, 8);
        assert_eq!(r.geometry().mpus_per_chip, 497);
        assert_eq!(r.geometry().mem_bytes_per_mpu, 16 << 20);
        let m = DatapathModel::mimdram();
        assert_eq!(m.geometry().active_vrfs_per_rfh, 256);
        assert_eq!(m.geometry().mpus_per_chip, 450);
        let d = DatapathModel::duality_cache();
        assert_eq!(d.geometry().mpus_per_chip, 12);
        // Activation board: 512 bits = 1 per VRF (Table III).
        assert_eq!(r.geometry().vrfs_per_mpu(), 512);
        assert_eq!(m.geometry().vrfs_per_mpu(), 512);
    }

    #[test]
    fn new_backends_match_their_calibration_sources() {
        let p = DatapathModel::pluto();
        assert_eq!(p.family(), LogicFamily::Lut);
        assert_eq!(p.uop_cycles(MicroOpKind::Lut), 46, "LUT query is tRC-bound");
        assert!(!p.word_serial());
        let d = DatapathModel::dpu();
        assert_eq!(d.family(), LogicFamily::WordSerial);
        assert!(d.word_serial());
        // PrIM cost ratios: MUL ≈ 8× ALU, DIV slower still.
        assert_eq!(d.uop_cycles(MicroOpKind::WordMul), 8 * d.uop_cycles(MicroOpKind::WordAlu));
        assert!(d.uop_cycles(MicroOpKind::WordDiv) > d.uop_cycles(MicroOpKind::WordMul));
    }

    #[test]
    fn all_covers_every_shipped_backend() {
        assert_eq!(DatapathKind::ALL.len(), 5);
        for kind in DatapathKind::ALL {
            assert!(kind.is_shipped());
            // Constructible, and self-describing.
            assert_eq!(DatapathModel::for_kind(kind).kind(), kind);
        }
        assert!(!DatapathKind::Custom.is_shipped());
        for kind in DatapathKind::EVALUATED {
            assert!(DatapathKind::ALL.contains(&kind), "EVALUATED ⊆ ALL");
        }
    }

    #[test]
    fn word_serial_cycles_scale_with_lanes() {
        let d = DatapathModel::dpu();
        let recipe = d.recipe(&add_instr()).unwrap();
        assert_eq!(recipe.len(), 1, "word-serial ADD is a single micro-op");
        assert_eq!(
            d.recipe_cycles(&recipe),
            d.uop_cycles(MicroOpKind::WordAlu) * d.geometry().lanes_per_vrf as u64
        );
    }

    #[test]
    fn recipes_cost_what_the_model_says() {
        for kind in DatapathKind::ALL {
            let dp = DatapathModel::for_kind(kind);
            let recipe = dp.recipe(&add_instr()).unwrap();
            let cycles = dp.recipe_cycles(&recipe);
            assert!(cycles > 0);
            let energy = dp.recipe_energy_pj(&recipe, dp.geometry().lanes_per_vrf);
            assert!(energy > 0.0);
            // Stage cycles never exceed serial cycles.
            assert!(dp.recipe_stage_cycles(&recipe) <= cycles);
        }
    }

    #[test]
    fn racer_pipelining_divides_stage_cost() {
        let dp = DatapathModel::racer();
        let recipe = dp.recipe(&add_instr()).unwrap();
        let serial = dp.recipe_cycles(&recipe);
        let stage = dp.recipe_stage_cycles(&recipe);
        assert!(dp.bit_pipelined());
        assert_eq!(stage, (serial / 64).max(1));
        // Duality Cache is not pipelined: stage == serial.
        let dc = DatapathModel::duality_cache();
        let r = dc.recipe(&add_instr()).unwrap();
        assert_eq!(dc.recipe_stage_cycles(&r), dc.recipe_cycles(&r));
    }

    #[test]
    fn duality_cache_add_is_cheap_thanks_to_cmos_adders() {
        // DC's FullAdd computes sum+carry in one 14-cycle op; RACER needs
        // 9 NORs + copy at 10 cycles each. Per-instruction serial latency
        // must reflect that.
        let dc = DatapathModel::duality_cache();
        let racer = DatapathModel::racer();
        let dc_cycles = dc.recipe_cycles(&dc.recipe(&add_instr()).unwrap());
        let racer_cycles = racer.recipe_cycles(&racer.recipe(&add_instr()).unwrap());
        assert!(
            dc_cycles < racer_cycles,
            "DC ADD {dc_cycles} should beat serial RACER ADD {racer_cycles}"
        );
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn unsupported_uop_cost_panics() {
        DatapathModel::racer().uop_cycles(MicroOpKind::Tra);
    }

    #[test]
    fn geometry_derived_quantities() {
        let g = DatapathModel::racer().geometry();
        assert_eq!(g.max_active_vrfs_per_mpu(), 8);
        assert_eq!(g.lanes_per_mpu(), 512 * 64);
        assert_eq!(g.temp_regs(), (14, 15));
        assert_eq!(g.usable_regs(), 14);
        let m = DatapathModel::mimdram().geometry();
        assert_eq!(m.max_active_vrfs_per_mpu(), 512);
    }

    #[test]
    fn builder_constructs_custom_backend() {
        let dp = DatapathBuilder::new("TestPUM", LogicFamily::Bitline)
            .lanes_per_vrf(32)
            .active_vrfs_per_rfh(4)
            .mpus_per_chip(10)
            .uop(MicroOpKind::And, 3, 0.1)
            .uop(MicroOpKind::Or, 3, 0.1)
            .uop(MicroOpKind::Xor, 3, 0.1)
            .uop(MicroOpKind::Not, 3, 0.1)
            .uop(MicroOpKind::FullAdd, 3, 0.1)
            .uop(MicroOpKind::Copy, 3, 0.1)
            .uop(MicroOpKind::Set, 3, 0.1)
            .bit_pipelined(8)
            .build();
        assert_eq!(dp.kind(), DatapathKind::Custom);
        assert_eq!(dp.name(), "TestPUM");
        assert!(dp.recipe(&add_instr()).is_some());
        assert_eq!(dp.geometry().max_active_vrfs_per_mpu(), 32);
    }

    #[test]
    #[should_panic(expected = "requires a cost")]
    fn builder_rejects_incomplete_uop_set() {
        DatapathBuilder::new("Broken", LogicFamily::Nor).uop(MicroOpKind::Nor, 1, 0.1).build();
    }

    #[test]
    fn supports_lists_native_kinds() {
        let r = DatapathModel::racer();
        assert!(r.supports().contains(&MicroOpKind::Nor));
        assert!(!r.supports().contains(&MicroOpKind::Tra));
        let m = DatapathModel::mimdram();
        assert!(m.supports().contains(&MicroOpKind::Tra));
    }
}
