//! Technology-level micro-operations.
//!
//! Every bitwise PUM technology exposes a small set of column-parallel
//! primitives (paper §II-B): ReRAM crossbars perform NOR via state-dependent
//! voltage division; DRAM performs a majority vote via triple-row activation
//! (TRA), specialized to AND/OR with preset rows, plus NOT via dual-contact
//! cells and row copies via AAP; SRAM bitline computing yields AND/OR/XOR,
//! and Duality Cache adds single-cycle CMOS full adders at the sense amps.
//!
//! [`MicroOp`] is the union of these primitives; each backend reports which
//! subset it natively supports ([`crate::Datapath::supports`]) and its
//! recipes are synthesized from that subset only — this is checked by tests.
//!
//! Two substrate families extend the bitwise set:
//!
//! * pLUTo-style LUT-in-DRAM exposes [`MicroOp::Lut`]: an arbitrary 3-input
//!   truth table evaluated per lane by querying a pre-programmed LUT row
//!   (one row activation per query, so every gate costs the same).
//! * UPMEM-style DPUs execute near-bank RISC cores with no inter-lane
//!   bitline primitives at all; [`MicroOp::Word`] carries a whole ISA
//!   instruction that the datapath evaluates word-serially, lane by lane.

use crate::bitplane::{BitPlaneVrf, Plane};
use mpu_isa::{BinaryOp, InitValue, Instruction};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single column-parallel micro-operation applied to whole bit-planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MicroOp {
    /// ReRAM crossbar NOR: `out = !(a | b)` (OSCAR primitive).
    Nor {
        /// First input plane.
        a: Plane,
        /// Second input plane.
        b: Plane,
        /// Output plane.
        out: Plane,
    },
    /// DRAM triple-row-activate majority vote: `out = maj(a, b, c)`.
    Tra {
        /// First input plane.
        a: Plane,
        /// Second input plane.
        b: Plane,
        /// Third input plane.
        c: Plane,
        /// Output plane.
        out: Plane,
    },
    /// Bitwise NOT (dual-contact cell readout or inverting buffer).
    Not {
        /// Input plane.
        a: Plane,
        /// Output plane.
        out: Plane,
    },
    /// SRAM bitline AND: `out = a & b`.
    And {
        /// First input plane.
        a: Plane,
        /// Second input plane.
        b: Plane,
        /// Output plane.
        out: Plane,
    },
    /// SRAM bitline OR: `out = a | b`.
    Or {
        /// First input plane.
        a: Plane,
        /// Second input plane.
        b: Plane,
        /// Output plane.
        out: Plane,
    },
    /// SRAM bitline XOR: `out = a ^ b`.
    Xor {
        /// First input plane.
        a: Plane,
        /// Second input plane.
        b: Plane,
        /// Output plane.
        out: Plane,
    },
    /// Duality Cache CMOS full adder: `sum = a ^ b ^ cin`,
    /// `cout = maj(a, b, cin)`, computed in a single operation.
    FullAdd {
        /// First addend plane.
        a: Plane,
        /// Second addend plane.
        b: Plane,
        /// Carry-in plane (also receives the carry-out).
        carry: Plane,
        /// Sum output plane.
        sum: Plane,
    },
    /// Row copy (DRAM AAP, RACER buffer move, SRAM read/write-back).
    Copy {
        /// Source plane.
        a: Plane,
        /// Destination plane.
        out: Plane,
    },
    /// Initialize a plane to a constant (preset row write).
    Set {
        /// Destination plane.
        out: Plane,
        /// Constant value.
        value: bool,
    },
    /// pLUTo LUT query: `out = table[a | b<<1 | c<<2]`, an arbitrary
    /// 3-input boolean function evaluated per lane from a pre-programmed
    /// LUT row. Two-input gates tie `c` to [`Plane::Const`]`(false)`.
    Lut {
        /// First input plane (truth-table index bit 0).
        a: Plane,
        /// Second input plane (truth-table index bit 1).
        b: Plane,
        /// Third input plane (truth-table index bit 2).
        c: Plane,
        /// Output plane.
        out: Plane,
        /// Truth table: bit `i` is the output for input index `i`.
        table: u8,
    },
    /// UPMEM-style word-serial execution of a whole compute instruction:
    /// the near-bank core reads every operand lane, evaluates the shared
    /// word-level semantics ([`crate::recipe::semantics`]) and writes the
    /// results back under the lane mask. No bit-plane logic is involved.
    Word {
        /// The compute instruction evaluated word-serially.
        instr: Instruction,
    },
}

/// The kind of a micro-op, used for capability checks and cost lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MicroOpKind {
    /// ReRAM NOR.
    Nor,
    /// DRAM triple-row-activate majority.
    Tra,
    /// Bitwise NOT.
    Not,
    /// Bitline AND.
    And,
    /// Bitline OR.
    Or,
    /// Bitline XOR.
    Xor,
    /// CMOS full adder.
    FullAdd,
    /// Row copy.
    Copy,
    /// Constant preset.
    Set,
    /// pLUTo 3-input LUT query (one DRAM row activation).
    Lut,
    /// Word-serial ALU instruction (add/sub/logic/compare class).
    WordAlu,
    /// Word-serial multiply (software-pipelined on the DPU core).
    WordMul,
    /// Word-serial division (the slowest DPU instruction class).
    WordDiv,
}

impl MicroOpKind {
    /// All micro-op kinds.
    pub const ALL: [MicroOpKind; 13] = [
        MicroOpKind::Nor,
        MicroOpKind::Tra,
        MicroOpKind::Not,
        MicroOpKind::And,
        MicroOpKind::Or,
        MicroOpKind::Xor,
        MicroOpKind::FullAdd,
        MicroOpKind::Copy,
        MicroOpKind::Set,
        MicroOpKind::Lut,
        MicroOpKind::WordAlu,
        MicroOpKind::WordMul,
        MicroOpKind::WordDiv,
    ];

    /// This kind's position in [`MicroOpKind::ALL`], for dense per-kind
    /// tables (histograms, attribution profiles) without a map allocation.
    pub const fn index(self) -> usize {
        match self {
            MicroOpKind::Nor => 0,
            MicroOpKind::Tra => 1,
            MicroOpKind::Not => 2,
            MicroOpKind::And => 3,
            MicroOpKind::Or => 4,
            MicroOpKind::Xor => 5,
            MicroOpKind::FullAdd => 6,
            MicroOpKind::Copy => 7,
            MicroOpKind::Set => 8,
            MicroOpKind::Lut => 9,
            MicroOpKind::WordAlu => 10,
            MicroOpKind::WordMul => 11,
            MicroOpKind::WordDiv => 12,
        }
    }
}

impl fmt::Display for MicroOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MicroOpKind::Nor => "NOR",
            MicroOpKind::Tra => "TRA",
            MicroOpKind::Not => "NOT",
            MicroOpKind::And => "AND",
            MicroOpKind::Or => "OR",
            MicroOpKind::Xor => "XOR",
            MicroOpKind::FullAdd => "FULLADD",
            MicroOpKind::Copy => "COPY",
            MicroOpKind::Set => "SET",
            MicroOpKind::Lut => "LUT",
            MicroOpKind::WordAlu => "WALU",
            MicroOpKind::WordMul => "WMUL",
            MicroOpKind::WordDiv => "WDIV",
        };
        f.write_str(s)
    }
}

/// The micro-op kind of a word-serial instruction, split by DPU cost
/// class: multiplies and divisions are software-pipelined on the core and
/// cost far more than the single-issue ALU class.
pub fn word_kind(instr: &Instruction) -> MicroOpKind {
    match instr {
        Instruction::Binary { op: BinaryOp::Mul | BinaryOp::Mac, .. } => MicroOpKind::WordMul,
        Instruction::Binary { op: BinaryOp::QDiv | BinaryOp::QRDiv | BinaryOp::RDiv, .. } => {
            MicroOpKind::WordDiv
        }
        _ => MicroOpKind::WordAlu,
    }
}

/// Word-parallel evaluation of a 3-input LUT over packed lane bits: lane
/// `i` of the result is `table[x_i | y_i<<1 | z_i<<2]`. This is the exact
/// per-lane semantics of a pLUTo LUT-row query, vectorized over 64 lanes.
pub fn lut3_word(table: u8, x: u64, y: u64, z: u64) -> u64 {
    let mut out = 0u64;
    for idx in 0..8 {
        if table >> idx & 1 == 0 {
            continue;
        }
        out |= (if idx & 1 != 0 { x } else { !x })
            & (if idx & 2 != 0 { y } else { !y })
            & (if idx & 4 != 0 { z } else { !z });
    }
    out
}

impl MicroOp {
    /// This micro-op's kind.
    pub fn kind(&self) -> MicroOpKind {
        match self {
            MicroOp::Nor { .. } => MicroOpKind::Nor,
            MicroOp::Tra { .. } => MicroOpKind::Tra,
            MicroOp::Not { .. } => MicroOpKind::Not,
            MicroOp::And { .. } => MicroOpKind::And,
            MicroOp::Or { .. } => MicroOpKind::Or,
            MicroOp::Xor { .. } => MicroOpKind::Xor,
            MicroOp::FullAdd { .. } => MicroOpKind::FullAdd,
            MicroOp::Copy { .. } => MicroOpKind::Copy,
            MicroOp::Set { .. } => MicroOpKind::Set,
            MicroOp::Lut { .. } => MicroOpKind::Lut,
            MicroOp::Word { instr } => word_kind(instr),
        }
    }

    /// The plane this micro-op writes (for [`MicroOp::FullAdd`], the sum
    /// plane — the single fault-injection target of the fused operation).
    fn out_plane(&self) -> Plane {
        match *self {
            MicroOp::Nor { out, .. }
            | MicroOp::Tra { out, .. }
            | MicroOp::Not { out, .. }
            | MicroOp::And { out, .. }
            | MicroOp::Or { out, .. }
            | MicroOp::Xor { out, .. }
            | MicroOp::Copy { out, .. }
            | MicroOp::Set { out, .. }
            | MicroOp::Lut { out, .. } => out,
            MicroOp::FullAdd { sum, .. } => sum,
            // The word-serial op's primary destination, bit 0 standing for
            // the whole register (the single fault-injection target).
            MicroOp::Word { instr } => word_out_plane(&instr),
        }
    }

    /// The planes this micro-op reads, in operand order.
    ///
    /// [`MicroOp::FullAdd`] reads its addends and the carry-in; the carry
    /// plane also appears in [`MicroOp::writes`] because it receives the
    /// carry-out. `Set` reads nothing. Used by the recipe optimizer's
    /// dataflow analysis (`crate::opt`).
    pub fn reads(&self) -> Vec<Plane> {
        match *self {
            MicroOp::Nor { a, b, .. }
            | MicroOp::And { a, b, .. }
            | MicroOp::Or { a, b, .. }
            | MicroOp::Xor { a, b, .. } => vec![a, b],
            MicroOp::Tra { a, b, c, .. } | MicroOp::Lut { a, b, c, .. } => vec![a, b, c],
            MicroOp::Not { a, .. } | MicroOp::Copy { a, .. } => vec![a],
            MicroOp::FullAdd { a, b, carry, .. } => vec![a, b, carry],
            MicroOp::Set { .. } => vec![],
            // Coarse word-level summary: bit 0 stands for the whole
            // register. The optimizer never analyzes word-serial recipes
            // (it returns them unmodified), so this is documentation, not
            // dataflow input.
            MicroOp::Word { instr } => word_reg_planes(&instr, Access::Read),
        }
    }

    /// The planes this micro-op writes, in write order.
    ///
    /// [`MicroOp::FullAdd`] writes the reserved scratch latch plane (the
    /// staged sum), then the carry plane, then the sum plane — the exact
    /// sequence [`MicroOp::apply`] performs.
    pub fn writes(&self) -> Vec<Plane> {
        match *self {
            MicroOp::Nor { out, .. }
            | MicroOp::Tra { out, .. }
            | MicroOp::Not { out, .. }
            | MicroOp::And { out, .. }
            | MicroOp::Or { out, .. }
            | MicroOp::Xor { out, .. }
            | MicroOp::Copy { out, .. }
            | MicroOp::Set { out, .. }
            | MicroOp::Lut { out, .. } => vec![out],
            MicroOp::FullAdd { carry, sum, .. } => {
                vec![Plane::Scratch(crate::bitplane::SCRATCH_PLANES as u16 - 1), carry, sum]
            }
            MicroOp::Word { instr } => word_reg_planes(&instr, Access::Write),
        }
    }

    /// Applies this micro-op's functional semantics to a VRF. All lanes are
    /// processed in parallel; writes to architectural planes honour the
    /// lane mask (see [`BitPlaneVrf`]).
    ///
    /// If the VRF carries a fault model, one transient-fault draw is made
    /// per executed micro-op against its output plane — the same sequence
    /// the compiled path draws, keeping both paths byte-identical.
    pub fn apply(&self, vrf: &mut BitPlaneVrf) {
        match *self {
            MicroOp::Nor { a, b, out } => vrf.apply2(a, b, out, |x, y| !(x | y)),
            MicroOp::Tra { a, b, c, out } => {
                vrf.apply3(a, b, c, out, |x, y, z| (x & y) | (y & z) | (x & z))
            }
            MicroOp::Not { a, out } => {
                // Unary NOT via apply2 with the input on both ports.
                vrf.apply2(a, a, out, |x, _| !x)
            }
            MicroOp::And { a, b, out } => vrf.apply2(a, b, out, |x, y| x & y),
            MicroOp::Or { a, b, out } => vrf.apply2(a, b, out, |x, y| x | y),
            MicroOp::Xor { a, b, out } => vrf.apply2(a, b, out, |x, y| x ^ y),
            MicroOp::FullAdd { a, b, carry, sum } => {
                // sum = a^b^cin, cout = maj(a,b,cin). The sum must be
                // computed before the carry plane is overwritten, and both
                // land atomically as in the CMOS adder latch.
                vrf.apply3(
                    a,
                    b,
                    carry,
                    Plane::Scratch(crate::bitplane::SCRATCH_PLANES as u16 - 1),
                    |x, y, z| x ^ y ^ z,
                );
                vrf.apply3(a, b, carry, carry, |x, y, z| (x & y) | (y & z) | (x & z));
                vrf.copy_plane(Plane::Scratch(crate::bitplane::SCRATCH_PLANES as u16 - 1), sum);
            }
            MicroOp::Copy { a, out } => vrf.copy_plane(a, out),
            MicroOp::Set { out, value } => vrf.fill_plane(out, value),
            MicroOp::Lut { a, b, c, out, table } => {
                vrf.apply3(a, b, c, out, |x, y, z| lut3_word(table, x, y, z))
            }
            MicroOp::Word { instr } => apply_word(vrf, &instr),
        }
        vrf.post_op(self.kind(), self.out_plane());
    }
}

/// Register access direction for [`word_reg_planes`].
enum Access {
    Read,
    Write,
}

/// The bit-0 planes of the registers a word-serial instruction touches,
/// used for the coarse [`MicroOp::reads`]/[`MicroOp::writes`] summaries.
fn word_reg_planes(instr: &Instruction, access: Access) -> Vec<Plane> {
    let reg = |r: mpu_isa::RegId| Plane::Reg { reg: r.0 as u8, bit: 0 };
    match (instr, access) {
        (Instruction::Binary { rs, rt, rd, .. }, Access::Read) => {
            vec![reg(*rs), reg(*rt), reg(*rd)]
        }
        (Instruction::Binary { op: BinaryOp::QRDiv, rt, rd, .. }, Access::Write) => {
            vec![reg(*rt), reg(*rd)]
        }
        (Instruction::Binary { rd, .. }, Access::Write) => vec![reg(*rd)],
        (Instruction::Unary { rs, .. }, Access::Read) => vec![reg(*rs)],
        (Instruction::Unary { rd, .. }, Access::Write) => vec![reg(*rd)],
        (Instruction::Compare { rs, rt, .. }, Access::Read) => vec![reg(*rs), reg(*rt)],
        (Instruction::Compare { .. }, Access::Write) => vec![Plane::Cond],
        (Instruction::Fuzzy { rs, rt, rd }, Access::Read) => vec![reg(*rs), reg(*rt), reg(*rd)],
        (Instruction::Fuzzy { .. }, Access::Write) => vec![Plane::Cond],
        (Instruction::Cas { rs, rt }, Access::Read) => vec![reg(*rs), reg(*rt)],
        (Instruction::Cas { rs, rt }, Access::Write) => vec![reg(*rs), reg(*rt)],
        (Instruction::Init { .. }, Access::Read) => vec![],
        (Instruction::Init { rd, .. }, Access::Write) => vec![reg(*rd)],
        (other, _) => panic!("word micro-op carries non-compute instruction {other:?}"),
    }
}

/// The primary destination plane of a word-serial instruction.
fn word_out_plane(instr: &Instruction) -> Plane {
    match instr {
        Instruction::Binary { rd, .. } | Instruction::Unary { rd, .. } => {
            Plane::Reg { reg: rd.0 as u8, bit: 0 }
        }
        Instruction::Compare { .. } | Instruction::Fuzzy { .. } => Plane::Cond,
        Instruction::Cas { rs, .. } => Plane::Reg { reg: rs.0 as u8, bit: 0 },
        Instruction::Init { rd, .. } => Plane::Reg { reg: rd.0 as u8, bit: 0 },
        other => panic!("word micro-op carries non-compute instruction {other:?}"),
    }
}

/// Evaluates a compute instruction word-serially against the VRF: read
/// every operand lane, apply the shared word-level semantics
/// ([`crate::recipe::semantics`] — the same functions the reference model
/// uses), and write the results back under the lane mask.
///
/// Both the interpreted and compiled tiers call this same function, so the
/// DPU path is byte-identical across tiers by construction. The single
/// per-op fault draw is made by the caller ([`MicroOp::apply`] /
/// `compiled::run_ops`) against [`MicroOp::writes`]'s primary target.
pub(crate) fn apply_word(vrf: &mut BitPlaneVrf, instr: &Instruction) {
    use crate::recipe::semantics as sem;
    let lanes = vrf.lanes();
    let r = |id: mpu_isa::RegId| id.0 as u8;
    match *instr {
        Instruction::Binary { op, rs, rt, rd } => {
            let xs = vrf.read_lane_values(r(rs));
            let ys = vrf.read_lane_values(r(rt));
            let acc = vrf.read_lane_values(r(rd)); // MUX and MAC read rd
            if op == BinaryOp::QRDiv {
                let rem: Vec<u64> = (0..lanes).map(|i| sem::qrdiv(xs[i], ys[i]).1).collect();
                vrf.store_lane_values(r(rt), &rem);
            }
            let out: Vec<u64> = (0..lanes).map(|i| sem::binary(op, xs[i], ys[i], acc[i])).collect();
            vrf.store_lane_values(r(rd), &out);
        }
        Instruction::Unary { op, rs, rd } => {
            let xs = vrf.read_lane_values(r(rs));
            let out: Vec<u64> = xs.iter().map(|&x| sem::unary(op, x)).collect();
            vrf.store_lane_values(r(rd), &out);
        }
        Instruction::Compare { op, rs, rt } => {
            let xs = vrf.read_lane_values(r(rs));
            let ys = vrf.read_lane_values(r(rt));
            let mut packed = vec![0u64; lanes.div_ceil(64)];
            for i in 0..lanes {
                if sem::compare(op, xs[i], ys[i]) {
                    packed[i / 64] |= 1 << (i % 64);
                }
            }
            vrf.store_cond_words(&packed);
        }
        Instruction::Fuzzy { rs, rt, rd } => {
            let xs = vrf.read_lane_values(r(rs));
            let ys = vrf.read_lane_values(r(rt));
            let ds = vrf.read_lane_values(r(rd));
            let mut packed = vec![0u64; lanes.div_ceil(64)];
            for i in 0..lanes {
                if sem::fuzzy(xs[i], ys[i], ds[i]) {
                    packed[i / 64] |= 1 << (i % 64);
                }
            }
            vrf.store_cond_words(&packed);
        }
        Instruction::Cas { rs, rt } => {
            let xs = vrf.read_lane_values(r(rs));
            let ys = vrf.read_lane_values(r(rt));
            let (mins, maxs): (Vec<u64>, Vec<u64>) =
                xs.iter().zip(&ys).map(|(&x, &y)| sem::cas(x, y)).unzip();
            vrf.store_lane_values(r(rs), &mins);
            vrf.store_lane_values(r(rt), &maxs);
        }
        Instruction::Init { value, rd } => {
            let v = u64::from(value == InitValue::One);
            vrf.store_lane_values(r(rd), &vec![v; lanes]);
        }
        ref other => panic!("word micro-op carries non-compute instruction {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrf() -> BitPlaneVrf {
        BitPlaneVrf::new(64, 4)
    }

    fn s(i: u16) -> Plane {
        Plane::Scratch(i)
    }

    #[test]
    fn nor_truth_table() {
        let mut v = vrf();
        // lanes 0..4 encode the four input combinations via two planes.
        v.set_plane_words(s(0), &[0b1010]);
        v.set_plane_words(s(1), &[0b1100]);
        MicroOp::Nor { a: s(0), b: s(1), out: s(2) }.apply(&mut v);
        let got = v.plane_words(s(2))[0] & 0b1111;
        // NOR: only lane 0 (a=0, b=0) yields 1.
        assert_eq!(got, 0b0001);
    }

    #[test]
    fn tra_is_majority() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0b0101_0101]); // a
        v.set_plane_words(s(1), &[0b0011_0011]); // b
        v.set_plane_words(s(2), &[0b0000_1111]); // c
        MicroOp::Tra { a: s(0), b: s(1), c: s(2), out: s(3) }.apply(&mut v);
        let got = v.plane_words(s(3))[0] & 0xff;
        // maj per lane of (a,b,c) bits above.
        let mut expect = 0u64;
        for lane in 0..8 {
            let a = (0b0101_0101u64 >> lane) & 1;
            let b = (0b0011_0011u64 >> lane) & 1;
            let c = (0b0000_1111u64 >> lane) & 1;
            if a + b + c >= 2 {
                expect |= 1 << lane;
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn tra_with_preset_rows_gives_and_or() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0b0101]);
        v.set_plane_words(s(1), &[0b0011]);
        MicroOp::Tra { a: s(0), b: s(1), c: Plane::Const(false), out: s(2) }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0] & 0b1111, 0b0001 & (0b0101 & 0b0011)); // AND
        MicroOp::Tra { a: s(0), b: s(1), c: Plane::Const(true), out: s(3) }.apply(&mut v);
        assert_eq!(v.plane_words(s(3))[0] & 0b1111, 0b0101 | 0b0011); // OR
    }

    #[test]
    fn full_add_computes_sum_and_carry() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0b0101_0101]);
        v.set_plane_words(s(1), &[0b0011_0011]);
        v.set_plane_words(s(2), &[0b0000_1111]); // carry-in
        MicroOp::FullAdd { a: s(0), b: s(1), carry: s(2), sum: s(3) }.apply(&mut v);
        for lane in 0..8 {
            let a = (0b0101_0101u64 >> lane) & 1;
            let b = (0b0011_0011u64 >> lane) & 1;
            let c = (0b0000_1111u64 >> lane) & 1;
            let total = a + b + c;
            assert_eq!(v.lane_bit(s(3), lane), total & 1 == 1, "sum lane {lane}");
            assert_eq!(v.lane_bit(s(2), lane), total >= 2, "carry lane {lane}");
        }
    }

    #[test]
    fn not_and_copy_and_set() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0xf0f0]);
        MicroOp::Not { a: s(0), out: s(1) }.apply(&mut v);
        assert_eq!(v.plane_words(s(1))[0], !0xf0f0u64);
        MicroOp::Copy { a: s(1), out: s(2) }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0], !0xf0f0u64);
        MicroOp::Set { out: s(2), value: false }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0], 0);
    }

    #[test]
    fn bitline_ops() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0b0101]);
        v.set_plane_words(s(1), &[0b0011]);
        MicroOp::And { a: s(0), b: s(1), out: s(2) }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0] & 0b1111, 0b0001);
        MicroOp::Or { a: s(0), b: s(1), out: s(2) }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0] & 0b1111, 0b0111);
        MicroOp::Xor { a: s(0), b: s(1), out: s(2) }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0] & 0b1111, 0b0110);
    }

    #[test]
    fn kinds_are_reported() {
        assert_eq!(MicroOp::Set { out: s(0), value: true }.kind(), MicroOpKind::Set);
        assert_eq!(
            MicroOp::FullAdd { a: s(0), b: s(1), carry: s(2), sum: s(3) }.kind(),
            MicroOpKind::FullAdd
        );
        assert_eq!(
            MicroOp::Lut { a: s(0), b: s(1), c: s(2), out: s(3), table: 0x96 }.kind(),
            MicroOpKind::Lut
        );
        let mul = Instruction::Binary {
            op: BinaryOp::Mul,
            rs: mpu_isa::RegId(0),
            rt: mpu_isa::RegId(1),
            rd: mpu_isa::RegId(2),
        };
        assert_eq!(MicroOp::Word { instr: mul }.kind(), MicroOpKind::WordMul);
        assert_eq!(MicroOpKind::ALL.len(), 13);
        for (i, kind) in MicroOpKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn lut3_word_matches_truth_table() {
        for table in [0x00u8, 0x01, 0x06, 0x08, 0x96, 0xe8, 0xd8, 0xff] {
            for idx in 0..8u64 {
                let x = if idx & 1 != 0 { !0 } else { 0 };
                let y = if idx & 2 != 0 { !0 } else { 0 };
                let z = if idx & 4 != 0 { !0 } else { 0 };
                let want = if table >> idx & 1 != 0 { !0u64 } else { 0 };
                assert_eq!(lut3_word(table, x, y, z), want, "table {table:#x} idx {idx}");
            }
        }
    }

    #[test]
    fn lut_op_evaluates_per_lane() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0b0101_0101]);
        v.set_plane_words(s(1), &[0b0011_0011]);
        v.set_plane_words(s(2), &[0b0000_1111]);
        // 0x96 is the 3-input parity table (full-adder sum).
        MicroOp::Lut { a: s(0), b: s(1), c: s(2), out: s(3), table: 0x96 }.apply(&mut v);
        for lane in 0..8 {
            let a = (0b0101_0101u64 >> lane) & 1;
            let b = (0b0011_0011u64 >> lane) & 1;
            let c = (0b0000_1111u64 >> lane) & 1;
            assert_eq!(v.lane_bit(s(3), lane), (a ^ b ^ c) == 1, "lane {lane}");
        }
    }

    #[test]
    fn word_op_applies_instruction_semantics() {
        let mut v = BitPlaneVrf::new(8, 4);
        v.write_lane_values(0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        v.write_lane_values(1, &[10, 20, 30, 40, 50, 60, 70, 80]);
        let add = Instruction::Binary {
            op: BinaryOp::Add,
            rs: mpu_isa::RegId(0),
            rt: mpu_isa::RegId(1),
            rd: mpu_isa::RegId(2),
        };
        MicroOp::Word { instr: add }.apply(&mut v);
        assert_eq!(v.read_lane_values(2), vec![11, 22, 33, 44, 55, 66, 77, 88]);
    }
}
