//! Technology-level micro-operations.
//!
//! Every bitwise PUM technology exposes a small set of column-parallel
//! primitives (paper §II-B): ReRAM crossbars perform NOR via state-dependent
//! voltage division; DRAM performs a majority vote via triple-row activation
//! (TRA), specialized to AND/OR with preset rows, plus NOT via dual-contact
//! cells and row copies via AAP; SRAM bitline computing yields AND/OR/XOR,
//! and Duality Cache adds single-cycle CMOS full adders at the sense amps.
//!
//! [`MicroOp`] is the union of these primitives; each backend reports which
//! subset it natively supports ([`crate::Datapath::supports`]) and its
//! recipes are synthesized from that subset only — this is checked by tests.

use crate::bitplane::{BitPlaneVrf, Plane};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single column-parallel micro-operation applied to whole bit-planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MicroOp {
    /// ReRAM crossbar NOR: `out = !(a | b)` (OSCAR primitive).
    Nor {
        /// First input plane.
        a: Plane,
        /// Second input plane.
        b: Plane,
        /// Output plane.
        out: Plane,
    },
    /// DRAM triple-row-activate majority vote: `out = maj(a, b, c)`.
    Tra {
        /// First input plane.
        a: Plane,
        /// Second input plane.
        b: Plane,
        /// Third input plane.
        c: Plane,
        /// Output plane.
        out: Plane,
    },
    /// Bitwise NOT (dual-contact cell readout or inverting buffer).
    Not {
        /// Input plane.
        a: Plane,
        /// Output plane.
        out: Plane,
    },
    /// SRAM bitline AND: `out = a & b`.
    And {
        /// First input plane.
        a: Plane,
        /// Second input plane.
        b: Plane,
        /// Output plane.
        out: Plane,
    },
    /// SRAM bitline OR: `out = a | b`.
    Or {
        /// First input plane.
        a: Plane,
        /// Second input plane.
        b: Plane,
        /// Output plane.
        out: Plane,
    },
    /// SRAM bitline XOR: `out = a ^ b`.
    Xor {
        /// First input plane.
        a: Plane,
        /// Second input plane.
        b: Plane,
        /// Output plane.
        out: Plane,
    },
    /// Duality Cache CMOS full adder: `sum = a ^ b ^ cin`,
    /// `cout = maj(a, b, cin)`, computed in a single operation.
    FullAdd {
        /// First addend plane.
        a: Plane,
        /// Second addend plane.
        b: Plane,
        /// Carry-in plane (also receives the carry-out).
        carry: Plane,
        /// Sum output plane.
        sum: Plane,
    },
    /// Row copy (DRAM AAP, RACER buffer move, SRAM read/write-back).
    Copy {
        /// Source plane.
        a: Plane,
        /// Destination plane.
        out: Plane,
    },
    /// Initialize a plane to a constant (preset row write).
    Set {
        /// Destination plane.
        out: Plane,
        /// Constant value.
        value: bool,
    },
}

/// The kind of a micro-op, used for capability checks and cost lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MicroOpKind {
    /// ReRAM NOR.
    Nor,
    /// DRAM triple-row-activate majority.
    Tra,
    /// Bitwise NOT.
    Not,
    /// Bitline AND.
    And,
    /// Bitline OR.
    Or,
    /// Bitline XOR.
    Xor,
    /// CMOS full adder.
    FullAdd,
    /// Row copy.
    Copy,
    /// Constant preset.
    Set,
}

impl MicroOpKind {
    /// All micro-op kinds.
    pub const ALL: [MicroOpKind; 9] = [
        MicroOpKind::Nor,
        MicroOpKind::Tra,
        MicroOpKind::Not,
        MicroOpKind::And,
        MicroOpKind::Or,
        MicroOpKind::Xor,
        MicroOpKind::FullAdd,
        MicroOpKind::Copy,
        MicroOpKind::Set,
    ];

    /// This kind's position in [`MicroOpKind::ALL`], for dense per-kind
    /// tables (histograms, attribution profiles) without a map allocation.
    pub const fn index(self) -> usize {
        match self {
            MicroOpKind::Nor => 0,
            MicroOpKind::Tra => 1,
            MicroOpKind::Not => 2,
            MicroOpKind::And => 3,
            MicroOpKind::Or => 4,
            MicroOpKind::Xor => 5,
            MicroOpKind::FullAdd => 6,
            MicroOpKind::Copy => 7,
            MicroOpKind::Set => 8,
        }
    }
}

impl fmt::Display for MicroOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MicroOpKind::Nor => "NOR",
            MicroOpKind::Tra => "TRA",
            MicroOpKind::Not => "NOT",
            MicroOpKind::And => "AND",
            MicroOpKind::Or => "OR",
            MicroOpKind::Xor => "XOR",
            MicroOpKind::FullAdd => "FULLADD",
            MicroOpKind::Copy => "COPY",
            MicroOpKind::Set => "SET",
        };
        f.write_str(s)
    }
}

impl MicroOp {
    /// This micro-op's kind.
    pub fn kind(&self) -> MicroOpKind {
        match self {
            MicroOp::Nor { .. } => MicroOpKind::Nor,
            MicroOp::Tra { .. } => MicroOpKind::Tra,
            MicroOp::Not { .. } => MicroOpKind::Not,
            MicroOp::And { .. } => MicroOpKind::And,
            MicroOp::Or { .. } => MicroOpKind::Or,
            MicroOp::Xor { .. } => MicroOpKind::Xor,
            MicroOp::FullAdd { .. } => MicroOpKind::FullAdd,
            MicroOp::Copy { .. } => MicroOpKind::Copy,
            MicroOp::Set { .. } => MicroOpKind::Set,
        }
    }

    /// The plane this micro-op writes (for [`MicroOp::FullAdd`], the sum
    /// plane — the single fault-injection target of the fused operation).
    fn out_plane(&self) -> Plane {
        match *self {
            MicroOp::Nor { out, .. }
            | MicroOp::Tra { out, .. }
            | MicroOp::Not { out, .. }
            | MicroOp::And { out, .. }
            | MicroOp::Or { out, .. }
            | MicroOp::Xor { out, .. }
            | MicroOp::Copy { out, .. }
            | MicroOp::Set { out, .. } => out,
            MicroOp::FullAdd { sum, .. } => sum,
        }
    }

    /// The planes this micro-op reads, in operand order.
    ///
    /// [`MicroOp::FullAdd`] reads its addends and the carry-in; the carry
    /// plane also appears in [`MicroOp::writes`] because it receives the
    /// carry-out. `Set` reads nothing. Used by the recipe optimizer's
    /// dataflow analysis (`crate::opt`).
    pub fn reads(&self) -> Vec<Plane> {
        match *self {
            MicroOp::Nor { a, b, .. }
            | MicroOp::And { a, b, .. }
            | MicroOp::Or { a, b, .. }
            | MicroOp::Xor { a, b, .. } => vec![a, b],
            MicroOp::Tra { a, b, c, .. } => vec![a, b, c],
            MicroOp::Not { a, .. } | MicroOp::Copy { a, .. } => vec![a],
            MicroOp::FullAdd { a, b, carry, .. } => vec![a, b, carry],
            MicroOp::Set { .. } => vec![],
        }
    }

    /// The planes this micro-op writes, in write order.
    ///
    /// [`MicroOp::FullAdd`] writes the reserved scratch latch plane (the
    /// staged sum), then the carry plane, then the sum plane — the exact
    /// sequence [`MicroOp::apply`] performs.
    pub fn writes(&self) -> Vec<Plane> {
        match *self {
            MicroOp::Nor { out, .. }
            | MicroOp::Tra { out, .. }
            | MicroOp::Not { out, .. }
            | MicroOp::And { out, .. }
            | MicroOp::Or { out, .. }
            | MicroOp::Xor { out, .. }
            | MicroOp::Copy { out, .. }
            | MicroOp::Set { out, .. } => vec![out],
            MicroOp::FullAdd { carry, sum, .. } => {
                vec![Plane::Scratch(crate::bitplane::SCRATCH_PLANES as u16 - 1), carry, sum]
            }
        }
    }

    /// Applies this micro-op's functional semantics to a VRF. All lanes are
    /// processed in parallel; writes to architectural planes honour the
    /// lane mask (see [`BitPlaneVrf`]).
    ///
    /// If the VRF carries a fault model, one transient-fault draw is made
    /// per executed micro-op against its output plane — the same sequence
    /// the compiled path draws, keeping both paths byte-identical.
    pub fn apply(&self, vrf: &mut BitPlaneVrf) {
        match *self {
            MicroOp::Nor { a, b, out } => vrf.apply2(a, b, out, |x, y| !(x | y)),
            MicroOp::Tra { a, b, c, out } => {
                vrf.apply3(a, b, c, out, |x, y, z| (x & y) | (y & z) | (x & z))
            }
            MicroOp::Not { a, out } => {
                // Unary NOT via apply2 with the input on both ports.
                vrf.apply2(a, a, out, |x, _| !x)
            }
            MicroOp::And { a, b, out } => vrf.apply2(a, b, out, |x, y| x & y),
            MicroOp::Or { a, b, out } => vrf.apply2(a, b, out, |x, y| x | y),
            MicroOp::Xor { a, b, out } => vrf.apply2(a, b, out, |x, y| x ^ y),
            MicroOp::FullAdd { a, b, carry, sum } => {
                // sum = a^b^cin, cout = maj(a,b,cin). The sum must be
                // computed before the carry plane is overwritten, and both
                // land atomically as in the CMOS adder latch.
                vrf.apply3(
                    a,
                    b,
                    carry,
                    Plane::Scratch(crate::bitplane::SCRATCH_PLANES as u16 - 1),
                    |x, y, z| x ^ y ^ z,
                );
                vrf.apply3(a, b, carry, carry, |x, y, z| (x & y) | (y & z) | (x & z));
                vrf.copy_plane(Plane::Scratch(crate::bitplane::SCRATCH_PLANES as u16 - 1), sum);
            }
            MicroOp::Copy { a, out } => vrf.copy_plane(a, out),
            MicroOp::Set { out, value } => vrf.fill_plane(out, value),
        }
        vrf.post_op(self.kind(), self.out_plane());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrf() -> BitPlaneVrf {
        BitPlaneVrf::new(64, 4)
    }

    fn s(i: u16) -> Plane {
        Plane::Scratch(i)
    }

    #[test]
    fn nor_truth_table() {
        let mut v = vrf();
        // lanes 0..4 encode the four input combinations via two planes.
        v.set_plane_words(s(0), &[0b1010]);
        v.set_plane_words(s(1), &[0b1100]);
        MicroOp::Nor { a: s(0), b: s(1), out: s(2) }.apply(&mut v);
        let got = v.plane_words(s(2))[0] & 0b1111;
        // NOR: only lane 0 (a=0, b=0) yields 1.
        assert_eq!(got, 0b0001);
    }

    #[test]
    fn tra_is_majority() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0b0101_0101]); // a
        v.set_plane_words(s(1), &[0b0011_0011]); // b
        v.set_plane_words(s(2), &[0b0000_1111]); // c
        MicroOp::Tra { a: s(0), b: s(1), c: s(2), out: s(3) }.apply(&mut v);
        let got = v.plane_words(s(3))[0] & 0xff;
        // maj per lane of (a,b,c) bits above.
        let mut expect = 0u64;
        for lane in 0..8 {
            let a = (0b0101_0101u64 >> lane) & 1;
            let b = (0b0011_0011u64 >> lane) & 1;
            let c = (0b0000_1111u64 >> lane) & 1;
            if a + b + c >= 2 {
                expect |= 1 << lane;
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn tra_with_preset_rows_gives_and_or() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0b0101]);
        v.set_plane_words(s(1), &[0b0011]);
        MicroOp::Tra { a: s(0), b: s(1), c: Plane::Const(false), out: s(2) }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0] & 0b1111, 0b0001 & (0b0101 & 0b0011)); // AND
        MicroOp::Tra { a: s(0), b: s(1), c: Plane::Const(true), out: s(3) }.apply(&mut v);
        assert_eq!(v.plane_words(s(3))[0] & 0b1111, 0b0101 | 0b0011); // OR
    }

    #[test]
    fn full_add_computes_sum_and_carry() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0b0101_0101]);
        v.set_plane_words(s(1), &[0b0011_0011]);
        v.set_plane_words(s(2), &[0b0000_1111]); // carry-in
        MicroOp::FullAdd { a: s(0), b: s(1), carry: s(2), sum: s(3) }.apply(&mut v);
        for lane in 0..8 {
            let a = (0b0101_0101u64 >> lane) & 1;
            let b = (0b0011_0011u64 >> lane) & 1;
            let c = (0b0000_1111u64 >> lane) & 1;
            let total = a + b + c;
            assert_eq!(v.lane_bit(s(3), lane), total & 1 == 1, "sum lane {lane}");
            assert_eq!(v.lane_bit(s(2), lane), total >= 2, "carry lane {lane}");
        }
    }

    #[test]
    fn not_and_copy_and_set() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0xf0f0]);
        MicroOp::Not { a: s(0), out: s(1) }.apply(&mut v);
        assert_eq!(v.plane_words(s(1))[0], !0xf0f0u64);
        MicroOp::Copy { a: s(1), out: s(2) }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0], !0xf0f0u64);
        MicroOp::Set { out: s(2), value: false }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0], 0);
    }

    #[test]
    fn bitline_ops() {
        let mut v = vrf();
        v.set_plane_words(s(0), &[0b0101]);
        v.set_plane_words(s(1), &[0b0011]);
        MicroOp::And { a: s(0), b: s(1), out: s(2) }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0] & 0b1111, 0b0001);
        MicroOp::Or { a: s(0), b: s(1), out: s(2) }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0] & 0b1111, 0b0111);
        MicroOp::Xor { a: s(0), b: s(1), out: s(2) }.apply(&mut v);
        assert_eq!(v.plane_words(s(2))[0] & 0b1111, 0b0110);
    }

    #[test]
    fn kinds_are_reported() {
        assert_eq!(MicroOp::Set { out: s(0), value: true }.kind(), MicroOpKind::Set);
        assert_eq!(
            MicroOp::FullAdd { a: s(0), b: s(1), carry: s(2), sum: s(3) }.kind(),
            MicroOpKind::FullAdd
        );
        assert_eq!(MicroOpKind::ALL.len(), 9);
    }
}
