//! Instruction → micro-op recipes.
//!
//! The MPU control path's I2M decoder expands each ISA instruction into a
//! *recipe*: a technology-specific micro-op sequence template (paper §VI-B).
//! This module synthesizes those recipes from a backend's [`LogicFamily`],
//! using textbook bit-serial algorithms: ripple-carry addition, shift-add
//! multiplication, restoring division, borrow-chain comparison.
//!
//! Recipes are *functionally exact*: executing a recipe's micro-ops on a
//! [`crate::BitPlaneVrf`] computes the instruction's architectural
//! semantics (defined in [`semantics`]) on every enabled lane. Property
//! tests in this crate verify that equivalence on random data for all
//! three logic families.
//!
//! # Register aliasing
//!
//! Multi-step recipes (`MUL`, `MAC`, `QDIV`, `QRDIV`, `RDIV`) accumulate
//! into their destination and therefore require `rd` to be distinct from
//! the sources; [`build_recipe`] panics otherwise (the `ezpim` assembler
//! enforces this statically). Divisions additionally use two
//! hardware-reserved temporary registers ([`RecipeCtx::temp_regs`]).

use crate::bitplane::Plane;
use crate::logic::{GateBuilder, LogicFamily};
use crate::microop::{MicroOp, MicroOpKind};
use mpu_isa::{BinaryOp, CompareOp, InitValue, Instruction, UnaryOp, DATA_BITS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

const W: usize = DATA_BITS as usize;
/// Input width (bits) for `MUL`/`MAC`, per Table II ("only 8-/16-/32-bit
/// inputs"); we model the widest supported case.
pub const MUL_INPUT_BITS: usize = 32;

/// Operand width (bits) for the division family. Like `MUL`, divisions are
/// narrow-operand instructions (bit-serial restoring division costs grow
/// quadratically with width); operands are taken from the low 32 bits and
/// results are zero-extended.
pub const DIV_INPUT_BITS: usize = 32;

/// Context a backend supplies for recipe synthesis.
///
/// `build_recipe` is a pure function of `(RecipeCtx, Instruction)`, so the
/// context doubles as a cache key for cross-simulation recipe sharing
/// (`Hash`/`Eq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RecipeCtx {
    /// The backend's native logic family.
    pub family: LogicFamily,
    /// Two architectural registers reserved as recipe temporaries
    /// (division needs a remainder register and a trial-subtraction
    /// register, mapped to buffer rows in real datapaths).
    pub temp_regs: (u8, u8),
    /// Recipe-optimizer configuration (see [`crate::opt`]). Part of the
    /// cache key: recipes optimized under different configurations are
    /// distinct template entries. [`build_recipe`] itself ignores this —
    /// synthesis always emits the unoptimized template; the optimizer runs
    /// as a separate pass in [`crate::DatapathModel::recipe`].
    #[serde(default)]
    pub opt: crate::opt::OptConfig,
}

/// A synthesized micro-op sequence implementing one ISA instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recipe {
    ops: Vec<MicroOp>,
    scratch_high_water: usize,
    #[serde(default)]
    saved_uops: u32,
}

impl Recipe {
    /// The micro-ops, in issue order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Total micro-op count (the paper's "an instruction can expand into
    /// hundreds, if not thousands, of micro-ops").
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for the empty recipe (e.g. `NOP`).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Peak number of simultaneously live scratch planes.
    pub fn scratch_high_water(&self) -> usize {
        self.scratch_high_water
    }

    /// Micro-ops the recipe optimizer removed relative to the synthesized
    /// template this recipe was derived from (zero for unoptimized
    /// recipes). The simulator charges this into `Stats::uops_saved` so
    /// optimization payoffs are visible per wave.
    pub fn saved_uops(&self) -> u32 {
        self.saved_uops
    }

    /// Rebuilds this recipe with an optimized op sequence, preserving the
    /// (conservative) scratch high-water mark and recording the saving.
    pub(crate) fn with_optimized_ops(&self, ops: Vec<MicroOp>, saved_uops: u32) -> Recipe {
        Recipe { ops, scratch_high_water: self.scratch_high_water, saved_uops }
    }

    /// Micro-op counts per kind, for cost accounting.
    pub fn histogram(&self) -> BTreeMap<MicroOpKind, usize> {
        let mut h = BTreeMap::new();
        for op in &self.ops {
            *h.entry(op.kind()).or_insert(0) += 1;
        }
        h
    }

    /// Micro-op counts per kind as a dense array indexed by
    /// [`MicroOpKind::index`] — the allocation-free form of
    /// [`Recipe::histogram`], used by tracing on the execution hot path.
    pub fn kind_counts(&self) -> [u32; MicroOpKind::ALL.len()] {
        let mut counts = [0u32; MicroOpKind::ALL.len()];
        for op in &self.ops {
            counts[op.kind().index()] += 1;
        }
        counts
    }

    /// Compiles this recipe for a `(lanes, regs)` VRF geometry: plane
    /// operands resolve to flat storage offsets and mask-target decisions
    /// are precomputed, so [`crate::BitPlaneVrf::run_compiled`] executes
    /// the sequence without per-op plane resolution. Byte-identical to
    /// interpreting [`Recipe::ops`] in order.
    pub fn compile(&self, lanes: usize, regs: usize) -> crate::CompiledRecipe {
        crate::compiled::compile(&self.ops, lanes, regs)
    }

    /// Builds a recipe from an explicit micro-op sequence.
    ///
    /// Intended for conformance tooling (e.g. injecting a deliberately
    /// corrupted recipe into a recipe pool to prove the differential
    /// harness catches it) and for experimenting with hand-written
    /// sequences. The scratch high-water mark is conservatively taken as
    /// the highest scratch plane index touched, plus one.
    pub fn from_ops(ops: Vec<MicroOp>) -> Self {
        let scratch = |p: &Plane| match *p {
            Plane::Scratch(i) => Some(i as usize + 1),
            _ => None,
        };
        let scratch_high_water = ops
            .iter()
            .flat_map(|op| {
                let planes: Vec<&Plane> = match op {
                    MicroOp::Nor { a, b, out }
                    | MicroOp::And { a, b, out }
                    | MicroOp::Or { a, b, out }
                    | MicroOp::Xor { a, b, out } => vec![a, b, out],
                    MicroOp::Tra { a, b, c, out } | MicroOp::Lut { a, b, c, out, .. } => {
                        vec![a, b, c, out]
                    }
                    MicroOp::Not { a, out } | MicroOp::Copy { a, out } => vec![a, out],
                    MicroOp::FullAdd { a, b, carry, sum } => vec![a, b, carry, sum],
                    MicroOp::Set { out, .. } => vec![out],
                    MicroOp::Word { .. } => vec![],
                };
                planes.into_iter().filter_map(scratch).collect::<Vec<_>>()
            })
            .max()
            .unwrap_or(0);
        Self { ops, scratch_high_water, saved_uops: 0 }
    }
}

fn rp(reg: u16, bit: usize) -> Plane {
    Plane::Reg { reg: reg as u8, bit: bit as u8 }
}

/// Builds the recipe for a compute-class instruction, or `None` for
/// instructions handled by the control path (ensemble markers, jumps,
/// masking, `MEMCPY`, `NOP`).
///
/// # Panics
///
/// Panics if a multi-step instruction aliases `rd` with a source register
/// (see module docs), or if a register index exceeds 63.
pub fn build_recipe(ctx: RecipeCtx, instr: &Instruction) -> Option<Recipe> {
    if ctx.family == LogicFamily::WordSerial {
        return build_word_recipe(instr);
    }
    let mut g = GateBuilder::new(ctx.family);
    match *instr {
        Instruction::Binary { op, rs, rt, rd } => build_binary(&mut g, ctx, op, rs.0, rt.0, rd.0),
        Instruction::Unary { op, rs, rd } => build_unary(&mut g, op, rs.0, rd.0),
        Instruction::Compare { op, rs, rt } => build_compare(&mut g, op, rs.0, rt.0),
        Instruction::Fuzzy { rs, rt, rd } => build_fuzzy(&mut g, rs.0, rt.0, rd.0),
        Instruction::Cas { rs, rt } => build_cas(&mut g, rs.0, rt.0),
        Instruction::Init { value, rd } => build_init(&mut g, value, rd.0),
        _ => return None,
    }
    let scratch_high_water = g.scratch_high_water();
    Some(Recipe { ops: g.finish(), scratch_high_water, saved_uops: 0 })
}

/// Word-serial synthesis fallback (UPMEM-style DPUs): the substrate has no
/// inter-lane bit-plane primitives, so every compute instruction lowers to
/// a single [`MicroOp::Word`] evaluated lane-by-lane by the near-bank
/// core. The ISA aliasing contract is enforced identically to the
/// bit-serial builders so the same programs are legal on every backend.
fn build_word_recipe(instr: &Instruction) -> Option<Recipe> {
    match *instr {
        Instruction::Binary { op, rs, rt, rd } => match op {
            BinaryOp::Mul => assert_no_alias("MUL", rd.0, &[rs.0, rt.0]),
            BinaryOp::Mac => assert_no_alias("MAC", rd.0, &[rs.0, rt.0]),
            BinaryOp::QDiv | BinaryOp::QRDiv | BinaryOp::RDiv => {
                assert_no_alias(op.mnemonic(), rd.0, &[rs.0, rt.0]);
            }
            _ => {}
        },
        Instruction::Unary { .. }
        | Instruction::Compare { .. }
        | Instruction::Fuzzy { .. }
        | Instruction::Cas { .. }
        | Instruction::Init { .. } => {}
        _ => return None,
    }
    Some(Recipe {
        ops: vec![MicroOp::Word { instr: *instr }],
        scratch_high_water: 0,
        saved_uops: 0,
    })
}

fn build_binary(g: &mut GateBuilder, ctx: RecipeCtx, op: BinaryOp, rs: u16, rt: u16, rd: u16) {
    match op {
        BinaryOp::Add => ripple_add(g, rs, rt, rd, false),
        BinaryOp::Sub => ripple_add(g, rs, rt, rd, true),
        BinaryOp::And => bitwise(g, rs, rt, rd, GateBuilder::and),
        BinaryOp::Nand => bitwise(g, rs, rt, rd, GateBuilder::nand),
        BinaryOp::Nor => bitwise(g, rs, rt, rd, GateBuilder::nor),
        BinaryOp::Or => bitwise(g, rs, rt, rd, GateBuilder::or),
        BinaryOp::Xor => bitwise(g, rs, rt, rd, GateBuilder::xor),
        BinaryOp::Xnor => bitwise(g, rs, rt, rd, GateBuilder::xnor),
        BinaryOp::Mux => {
            // rd holds the select bitmask and receives the result:
            // rd[j] = rd[j] ? rs[j] : rt[j].
            for j in 0..W {
                g.mux(rp(rd, j), rp(rs, j), rp(rt, j), rp(rd, j));
            }
        }
        BinaryOp::Max | BinaryOp::Min => {
            let lt = borrow_less_than(g, rs, rt);
            for j in 0..W {
                // lt = (rs < rt); max picks rt, min picks rs.
                match op {
                    BinaryOp::Max => g.mux(lt, rp(rt, j), rp(rs, j), rp(rd, j)),
                    _ => g.mux(lt, rp(rs, j), rp(rt, j), rp(rd, j)),
                }
            }
            g.release(lt);
        }
        BinaryOp::Mul => {
            assert_no_alias("MUL", rd, &[rs, rt]);
            for j in 0..W {
                g.set(rp(rd, j), false);
            }
            shift_add_multiply(g, rs, rt, rd);
        }
        BinaryOp::Mac => {
            assert_no_alias("MAC", rd, &[rs, rt]);
            shift_add_multiply(g, rs, rt, rd);
        }
        BinaryOp::QDiv | BinaryOp::QRDiv | BinaryOp::RDiv => {
            restoring_divide(g, ctx, op, rs, rt, rd);
        }
    }
}

fn assert_no_alias(mnemonic: &str, rd: u16, sources: &[u16]) {
    assert!(
        !sources.contains(&rd),
        "{mnemonic}: rd must not alias a source register (multi-step recipe)"
    );
}

fn bitwise(
    g: &mut GateBuilder,
    rs: u16,
    rt: u16,
    rd: u16,
    gate: fn(&mut GateBuilder, Plane, Plane, Plane),
) {
    for j in 0..W {
        gate(g, rp(rs, j), rp(rt, j), rp(rd, j));
    }
}

/// `rd = rs + rt` (or `rs - rt` when `subtract`, via `rs + !rt + 1`).
fn ripple_add(g: &mut GateBuilder, rs: u16, rt: u16, rd: u16, subtract: bool) {
    let carry = g.alloc();
    g.set(carry, subtract);
    if subtract {
        let nt = g.alloc();
        for j in 0..W {
            g.not(rp(rt, j), nt);
            g.full_add(rp(rs, j), nt, carry, rp(rd, j));
        }
        g.release(nt);
    } else {
        for j in 0..W {
            g.full_add(rp(rs, j), rp(rt, j), carry, rp(rd, j));
        }
    }
    g.release(carry);
}

/// Computes the borrow of `rs - rt`, i.e. a scratch plane holding
/// `rs < rt` (unsigned) per lane. Caller releases the returned plane.
fn borrow_less_than(g: &mut GateBuilder, rs: u16, rt: u16) -> Plane {
    let carry = g.alloc();
    let junk = g.alloc();
    let nt = g.alloc();
    g.set(carry, true);
    for j in 0..W {
        g.not(rp(rt, j), nt);
        g.full_add(rp(rs, j), nt, carry, junk);
    }
    // No carry-out means a borrow occurred: rs < rt.
    let lt = g.alloc();
    g.not(carry, lt);
    g.release(nt);
    g.release(junk);
    g.release(carry);
    lt
}

/// `rd += rs * rt` with 32-bit inputs and a 64-bit accumulator.
fn shift_add_multiply(g: &mut GateBuilder, rs: u16, rt: u16, rd: u16) {
    for i in 0..MUL_INPUT_BITS {
        let carry = g.alloc();
        let t = g.alloc();
        g.set(carry, false);
        for j in 0..MUL_INPUT_BITS {
            // Partial-product bit: rt[j] & rs[i], accumulated at rd[i+j].
            g.and(rp(rt, j), rp(rs, i), t);
            g.full_add(rp(rd, i + j), t, carry, rp(rd, i + j));
        }
        // Propagate the final carry through the upper accumulator bits.
        for k in (i + MUL_INPUT_BITS)..W {
            g.half_add(rp(rd, k), carry, rp(rd, k));
        }
        g.release(t);
        g.release(carry);
    }
}

/// Restoring division: quotient and/or remainder of `rs / rt` (unsigned,
/// on the low [`DIV_INPUT_BITS`] bits; results zero-extended). Division by
/// zero yields an all-ones quotient and remainder `rs`, the natural output
/// of the restoring-division hardware.
fn restoring_divide(g: &mut GateBuilder, ctx: RecipeCtx, op: BinaryOp, rs: u16, rt: u16, rd: u16) {
    let mnemonic = match op {
        BinaryOp::QDiv => "QDIV",
        BinaryOp::QRDiv => "QRDIV",
        _ => "RDIV",
    };
    assert_no_alias(mnemonic, rd, &[rs, rt]);
    let (ta, tb) = ctx.temp_regs;
    let (ta, tb) = (ta as u16, tb as u16);
    assert!(
        ![rs, rt, rd].contains(&ta) && ![rs, rt, rd].contains(&tb),
        "{mnemonic}: operands collide with reserved temp registers r{ta}/r{tb}"
    );
    let writes_quotient = matches!(op, BinaryOp::QDiv | BinaryOp::QRDiv);
    const DW: usize = DIV_INPUT_BITS;

    if writes_quotient {
        for j in DW..W {
            g.set(rp(rd, j), false);
        }
    }
    // R (remainder) = 0.
    for j in 0..DW {
        g.set(rp(ta, j), false);
    }
    for i in (0..DW).rev() {
        // R <<= 1; R[0] = N[i].
        for j in (1..DW).rev() {
            g.copy(rp(ta, j - 1), rp(ta, j));
        }
        g.copy(rp(rs, i), rp(ta, 0));
        // T = R - D (borrow chain); carry-out==1 means R >= D.
        let carry = g.alloc();
        let nt = g.alloc();
        g.set(carry, true);
        for j in 0..DW {
            g.not(rp(rt, j), nt);
            g.full_add(rp(ta, j), nt, carry, rp(tb, j));
        }
        g.release(nt);
        if writes_quotient {
            g.copy(carry, rp(rd, i));
        }
        // R = carry ? T : R.
        for j in 0..DW {
            g.mux(carry, rp(tb, j), rp(ta, j), rp(ta, j));
        }
        g.release(carry);
    }
    match op {
        BinaryOp::RDiv => {
            for j in 0..DW {
                g.copy(rp(ta, j), rp(rd, j));
            }
            for j in DW..W {
                g.set(rp(rd, j), false);
            }
        }
        BinaryOp::QRDiv => {
            // Remainder overwrites rt, per Table II.
            for j in 0..DW {
                g.copy(rp(ta, j), rp(rt, j));
            }
            for j in DW..W {
                g.set(rp(rt, j), false);
            }
        }
        _ => {}
    }
}

fn build_unary(g: &mut GateBuilder, op: UnaryOp, rs: u16, rd: u16) {
    match op {
        UnaryOp::Inc => {
            let carry = g.alloc();
            g.set(carry, true);
            for j in 0..W {
                g.half_add(rp(rs, j), carry, rp(rd, j));
            }
            g.release(carry);
        }
        UnaryOp::Popc => {
            // 7-bit accumulator in scratch; add each source bit.
            let acc: Vec<Plane> = (0..7).map(|_| g.alloc()).collect();
            for &p in &acc {
                g.set(p, false);
            }
            let c = g.alloc();
            for i in 0..W {
                g.copy(rp(rs, i), c);
                for &p in &acc {
                    g.half_add(p, c, p);
                }
            }
            g.release(c);
            for (k, &p) in acc.iter().enumerate() {
                g.copy(p, rp(rd, k));
            }
            for j in 7..W {
                g.set(rp(rd, j), false);
            }
            for p in acc.into_iter().rev() {
                g.release(p);
            }
        }
        UnaryOp::Relu => {
            let keep = g.alloc();
            g.not(rp(rs, W - 1), keep);
            for j in 0..W {
                g.and(rp(rs, j), keep, rp(rd, j));
            }
            g.release(keep);
        }
        UnaryOp::Inv => {
            for j in 0..W {
                g.not(rp(rs, j), rp(rd, j));
            }
        }
        UnaryOp::BFlip => {
            if rs == rd {
                // In-place reversal: swap symmetric bit pairs via scratch.
                let t = g.alloc();
                for j in 0..W / 2 {
                    g.copy(rp(rs, j), t);
                    g.copy(rp(rs, W - 1 - j), rp(rd, j));
                    g.copy(t, rp(rd, W - 1 - j));
                }
                g.release(t);
            } else {
                for j in 0..W {
                    g.copy(rp(rs, W - 1 - j), rp(rd, j));
                }
            }
        }
        UnaryOp::LShift => {
            for j in (1..W).rev() {
                g.copy(rp(rs, j - 1), rp(rd, j));
            }
            g.set(rp(rd, 0), false);
        }
        UnaryOp::Mov => {
            for j in 0..W {
                g.copy(rp(rs, j), rp(rd, j));
            }
        }
    }
}

fn build_compare(g: &mut GateBuilder, op: CompareOp, rs: u16, rt: u16) {
    match op {
        CompareOp::Eq => {
            let acc = g.alloc();
            let x = g.alloc();
            g.set(acc, false);
            for j in 0..W {
                g.xor(rp(rs, j), rp(rt, j), x);
                g.or(acc, x, acc);
            }
            g.not(acc, Plane::Cond);
            g.release(x);
            g.release(acc);
        }
        CompareOp::Lt => {
            let lt = borrow_less_than(g, rs, rt);
            g.copy(lt, Plane::Cond);
            g.release(lt);
        }
        CompareOp::Gt => {
            let lt = borrow_less_than(g, rt, rs);
            g.copy(lt, Plane::Cond);
            g.release(lt);
        }
    }
}

fn build_fuzzy(g: &mut GateBuilder, rs: u16, rt: u16, rd: u16) {
    // Equality ignoring bit positions set in rd.
    let acc = g.alloc();
    let x = g.alloc();
    let nskip = g.alloc();
    g.set(acc, false);
    for j in 0..W {
        g.xor(rp(rs, j), rp(rt, j), x);
        g.not(rp(rd, j), nskip);
        g.and(x, nskip, x);
        g.or(acc, x, acc);
    }
    g.not(acc, Plane::Cond);
    g.release(nskip);
    g.release(x);
    g.release(acc);
}

fn build_cas(g: &mut GateBuilder, rs: u16, rt: u16) {
    // After CAS: rs = min, rt = max (per-lane sort).
    let lt = borrow_less_than(g, rs, rt);
    let tmin = g.alloc();
    let tmax = g.alloc();
    for j in 0..W {
        g.mux(lt, rp(rs, j), rp(rt, j), tmin);
        g.mux(lt, rp(rt, j), rp(rs, j), tmax);
        g.copy(tmin, rp(rs, j));
        g.copy(tmax, rp(rt, j));
    }
    g.release(tmax);
    g.release(tmin);
    g.release(lt);
}

fn build_init(g: &mut GateBuilder, value: InitValue, rd: u16) {
    g.set(rp(rd, 0), value == InitValue::One);
    for j in 1..W {
        g.set(rp(rd, j), false);
    }
}

/// Golden architectural semantics of the compute instructions, used by
/// recipe equivalence tests and by reference kernel implementations.
pub mod semantics {
    use mpu_isa::{BinaryOp, CompareOp, UnaryOp};

    /// Result of `rd = rs OP rt` (for `MUX` and `MAC`, `rd_in` is the
    /// third input). `QRDIV` also rewrites `rt`; see [`qrdiv`].
    pub fn binary(op: BinaryOp, rs: u64, rt: u64, rd_in: u64) -> u64 {
        match op {
            BinaryOp::Add => rs.wrapping_add(rt),
            BinaryOp::Sub => rs.wrapping_sub(rt),
            BinaryOp::Mul => mul32(rs, rt),
            BinaryOp::Mac => rd_in.wrapping_add(mul32(rs, rt)),
            BinaryOp::QDiv | BinaryOp::QRDiv => qrdiv(rs, rt).0,
            BinaryOp::RDiv => qrdiv(rs, rt).1,
            BinaryOp::And => rs & rt,
            BinaryOp::Nand => !(rs & rt),
            BinaryOp::Nor => !(rs | rt),
            BinaryOp::Or => rs | rt,
            BinaryOp::Xor => rs ^ rt,
            BinaryOp::Xnor => !(rs ^ rt),
            BinaryOp::Mux => (rd_in & rs) | (!rd_in & rt),
            BinaryOp::Max => rs.max(rt),
            BinaryOp::Min => rs.min(rt),
        }
    }

    /// 32-bit-input multiply with a full 64-bit product.
    pub fn mul32(rs: u64, rt: u64) -> u64 {
        (rs & 0xffff_ffff).wrapping_mul(rt & 0xffff_ffff)
    }

    /// The `(quotient, remainder)` pair of the division family: operands
    /// are the low 32 bits (like `MUL`, divisions are narrow-operand
    /// instructions), results zero-extended; division by zero yields an
    /// all-ones 32-bit quotient and the dividend as remainder.
    pub fn qrdiv(rs: u64, rt: u64) -> (u64, u64) {
        let (n, d) = (rs & 0xffff_ffff, rt & 0xffff_ffff);
        match (n.checked_div(d), n.checked_rem(d)) {
            (Some(q), Some(r)) => (q, r),
            _ => (0xffff_ffff, n),
        }
    }

    /// Result of `rd = OP rs`.
    pub fn unary(op: UnaryOp, rs: u64) -> u64 {
        match op {
            UnaryOp::Inc => rs.wrapping_add(1),
            UnaryOp::Popc => rs.count_ones() as u64,
            UnaryOp::Relu => {
                if rs >> 63 == 1 {
                    0
                } else {
                    rs
                }
            }
            UnaryOp::Inv => !rs,
            UnaryOp::BFlip => rs.reverse_bits(),
            UnaryOp::LShift => rs << 1,
            UnaryOp::Mov => rs,
        }
    }

    /// Per-lane comparison result (unsigned).
    pub fn compare(op: CompareOp, rs: u64, rt: u64) -> bool {
        match op {
            CompareOp::Eq => rs == rt,
            CompareOp::Gt => rs > rt,
            CompareOp::Lt => rs < rt,
        }
    }

    /// `FUZZY`: equality ignoring the bit positions set in `rd`.
    pub fn fuzzy(rs: u64, rt: u64, rd: u64) -> bool {
        (rs ^ rt) & !rd == 0
    }

    /// `CAS`: the `(rs, rt)` pair after the per-lane sort.
    pub fn cas(rs: u64, rt: u64) -> (u64, u64) {
        (rs.min(rt), rs.max(rt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitplane::BitPlaneVrf;
    use mpu_isa::RegId;

    const FAMILIES: [LogicFamily; 5] = [
        LogicFamily::Nor,
        LogicFamily::Maj,
        LogicFamily::Bitline,
        LogicFamily::Lut,
        LogicFamily::WordSerial,
    ];

    fn ctx(family: LogicFamily) -> RecipeCtx {
        RecipeCtx { family, temp_regs: (14, 15), opt: Default::default() }
    }

    fn run(family: LogicFamily, instr: Instruction, setup: &[(u8, Vec<u64>)]) -> BitPlaneVrf {
        let mut vrf = BitPlaneVrf::new(8, 16);
        for (reg, values) in setup {
            vrf.write_lane_values(*reg, values);
        }
        let recipe = build_recipe(ctx(family), &instr).expect("compute instruction");
        for op in recipe.ops() {
            op.apply(&mut vrf);
        }
        vrf
    }

    fn lanes(vals: &[u64]) -> Vec<u64> {
        let mut v = vals.to_vec();
        v.resize(8, 0);
        v
    }

    #[test]
    fn add_matches_semantics_all_families() {
        let a = [0u64, 1, u64::MAX, 5, 1 << 63, 0xdead_beef, 42, 7];
        let b = [0u64, 1, 1, 11, 1 << 63, 0xcafe_f00d, 58, u64::MAX];
        for family in FAMILIES {
            let vrf = run(
                family,
                Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
                &[(0, lanes(&a)), (1, lanes(&b))],
            );
            let got = vrf.read_lane_values(2);
            for i in 0..8 {
                assert_eq!(got[i], a[i].wrapping_add(b[i]), "{family:?} lane {i}");
            }
        }
    }

    #[test]
    fn sub_and_inc() {
        let a = [10u64, 0, u64::MAX, 100, 1, 2, 3, 4];
        let b = [3u64, 1, u64::MAX, 7, 0, 5, 3, 2];
        for family in FAMILIES {
            let vrf = run(
                family,
                Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
                &[(0, lanes(&a)), (1, lanes(&b))],
            );
            let got = vrf.read_lane_values(2);
            for i in 0..8 {
                assert_eq!(got[i], a[i].wrapping_sub(b[i]), "{family:?} SUB lane {i}");
            }
            let vrf = run(
                family,
                Instruction::Unary { op: UnaryOp::Inc, rs: RegId(0), rd: RegId(2) },
                &[(0, lanes(&a))],
            );
            let got = vrf.read_lane_values(2);
            for i in 0..8 {
                assert_eq!(got[i], a[i].wrapping_add(1), "{family:?} INC lane {i}");
            }
        }
    }

    #[test]
    fn mul_and_mac_32bit_inputs() {
        let a = [0u64, 3, 0xffff_ffff, 1 << 20, 7, 123_456, 2, 0x8000_0000];
        let b = [5u64, 3, 0xffff_ffff, 1 << 20, 0, 654_321, 1 << 31, 2];
        let acc = [1u64, 2, 3, 4, 5, 6, 7, 8];
        for family in FAMILIES {
            let vrf = run(
                family,
                Instruction::Binary { op: BinaryOp::Mul, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
                &[(0, lanes(&a)), (1, lanes(&b))],
            );
            let got = vrf.read_lane_values(2);
            for i in 0..8 {
                assert_eq!(got[i], semantics::mul32(a[i], b[i]), "{family:?} MUL lane {i}");
            }
            let vrf = run(
                family,
                Instruction::Binary { op: BinaryOp::Mac, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
                &[(0, lanes(&a)), (1, lanes(&b)), (2, lanes(&acc))],
            );
            let got = vrf.read_lane_values(2);
            for i in 0..8 {
                assert_eq!(
                    got[i],
                    acc[i].wrapping_add(semantics::mul32(a[i], b[i])),
                    "{family:?} MAC lane {i}"
                );
            }
        }
    }

    #[test]
    fn division_family_nor() {
        // Full family sweep is covered by proptests; exercise NOR here.
        let n = [100u64, 7, 0, (1 << 31) + 5, 1 << 30, 17, 81, 5];
        let d = [7u64, 100, 5, 3, 1 << 20, 17, 9, 0];
        let vrf = run(
            LogicFamily::Nor,
            Instruction::Binary { op: BinaryOp::QDiv, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            &[(0, lanes(&n)), (1, lanes(&d))],
        );
        let got = vrf.read_lane_values(2);
        for i in 0..8 {
            assert_eq!(got[i], semantics::binary(BinaryOp::QDiv, n[i], d[i], 0), "QDIV lane {i}");
        }
        let vrf = run(
            LogicFamily::Nor,
            Instruction::Binary { op: BinaryOp::RDiv, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            &[(0, lanes(&n)), (1, lanes(&d))],
        );
        let got = vrf.read_lane_values(2);
        for i in 0..8 {
            assert_eq!(got[i], semantics::binary(BinaryOp::RDiv, n[i], d[i], 0), "RDIV lane {i}");
        }
        let vrf = run(
            LogicFamily::Nor,
            Instruction::Binary { op: BinaryOp::QRDiv, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            &[(0, lanes(&n)), (1, lanes(&d))],
        );
        let q = vrf.read_lane_values(2);
        let r = vrf.read_lane_values(1);
        for i in 0..8 {
            let (eq, er) = semantics::qrdiv(n[i], d[i]);
            assert_eq!(q[i], eq, "QRDIV quotient lane {i}");
            assert_eq!(r[i], er, "QRDIV remainder lane {i}");
        }
    }

    #[test]
    fn comparisons_write_conditional_register() {
        let a = [1u64, 5, 5, 0, u64::MAX, 3, 9, 2];
        let b = [2u64, 5, 4, 0, 0, 4, 9, 1];
        for family in FAMILIES {
            for op in CompareOp::ALL {
                let vrf = run(
                    family,
                    Instruction::Compare { op, rs: RegId(0), rt: RegId(1) },
                    &[(0, lanes(&a)), (1, lanes(&b))],
                );
                for i in 0..8 {
                    assert_eq!(
                        vrf.lane_bit(Plane::Cond, i),
                        semantics::compare(op, a[i], b[i]),
                        "{family:?} {op:?} lane {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn max_min_mux_cas() {
        let a = [1u64, 9, 5, 0, u64::MAX, 3, 1 << 50, 2];
        let b = [2u64, 5, 5, 7, 0, 4, 1 << 49, 1];
        let m = [!0u64, 0, 0xff, 0xf0f0, 1, !0 >> 1, 0, 5];
        for family in FAMILIES {
            for op in [BinaryOp::Max, BinaryOp::Min] {
                let vrf = run(
                    family,
                    Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
                    &[(0, lanes(&a)), (1, lanes(&b))],
                );
                let got = vrf.read_lane_values(2);
                for i in 0..8 {
                    assert_eq!(
                        got[i],
                        semantics::binary(op, a[i], b[i], 0),
                        "{family:?} {op:?} {i}"
                    );
                }
            }
            let vrf = run(
                family,
                Instruction::Binary { op: BinaryOp::Mux, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
                &[(0, lanes(&a)), (1, lanes(&b)), (2, lanes(&m))],
            );
            let got = vrf.read_lane_values(2);
            for i in 0..8 {
                assert_eq!(got[i], (m[i] & a[i]) | (!m[i] & b[i]), "{family:?} MUX {i}");
            }
            let vrf = run(
                family,
                Instruction::Cas { rs: RegId(0), rt: RegId(1) },
                &[(0, lanes(&a)), (1, lanes(&b))],
            );
            let lo = vrf.read_lane_values(0);
            let hi = vrf.read_lane_values(1);
            for i in 0..8 {
                assert_eq!((lo[i], hi[i]), semantics::cas(a[i], b[i]), "{family:?} CAS {i}");
            }
        }
    }

    #[test]
    fn unary_ops_match_semantics() {
        let a = [0u64, 1, u64::MAX, 1 << 63, 0xdead_beef, 5, (1 << 63) - 1, 3];
        for family in FAMILIES {
            for op in UnaryOp::ALL {
                let vrf = run(
                    family,
                    Instruction::Unary { op, rs: RegId(0), rd: RegId(2) },
                    &[(0, lanes(&a))],
                );
                let got = vrf.read_lane_values(2);
                for i in 0..8 {
                    assert_eq!(got[i], semantics::unary(op, a[i]), "{family:?} {op:?} lane {i}");
                }
            }
        }
    }

    #[test]
    fn bflip_in_place() {
        let a = [0x8000_0000_0000_0001u64, 1, 2, 3, 4, 5, 6, 7];
        for family in FAMILIES {
            let vrf = run(
                family,
                Instruction::Unary { op: UnaryOp::BFlip, rs: RegId(0), rd: RegId(0) },
                &[(0, lanes(&a))],
            );
            let got = vrf.read_lane_values(0);
            for i in 0..8 {
                assert_eq!(got[i], a[i].reverse_bits(), "{family:?} lane {i}");
            }
        }
    }

    #[test]
    fn fuzzy_and_init() {
        let a = [0b1010u64, 0b1010, 0xff00, 5, 5, 0, 1, 2];
        let b = [0b1000u64, 0b0010, 0xff0f, 5, 6, 0, 3, 2];
        let skip = [0b0010u64, 0b1000, 0x00ff, 0, 3, 0, 2, 0];
        for family in FAMILIES {
            let vrf = run(
                family,
                Instruction::Fuzzy { rs: RegId(0), rt: RegId(1), rd: RegId(2) },
                &[(0, lanes(&a)), (1, lanes(&b)), (2, lanes(&skip))],
            );
            for i in 0..8 {
                assert_eq!(
                    vrf.lane_bit(Plane::Cond, i),
                    semantics::fuzzy(a[i], b[i], skip[i]),
                    "{family:?} FUZZY lane {i}"
                );
            }
            let vrf = run(
                family,
                Instruction::Init { value: InitValue::One, rd: RegId(3) },
                &[(3, lanes(&a))],
            );
            assert!(vrf.read_lane_values(3).iter().all(|&v| v == 1), "{family:?} INIT1");
        }
    }

    #[test]
    fn masked_lanes_do_not_change() {
        // Disable lanes 4..8, run an ADD, check they kept old rd contents.
        let a = [1u64; 8];
        let b = [2u64; 8];
        let old = [9u64; 8];
        for family in FAMILIES {
            let mut vrf = BitPlaneVrf::new(8, 16);
            vrf.write_lane_values(0, &a);
            vrf.write_lane_values(1, &b);
            vrf.write_lane_values(2, &old);
            vrf.set_plane_words(Plane::Mask, &[0b0000_1111]);
            let recipe = build_recipe(
                ctx(family),
                &Instruction::Binary {
                    op: BinaryOp::Add,
                    rs: RegId(0),
                    rt: RegId(1),
                    rd: RegId(2),
                },
            )
            .unwrap();
            for op in recipe.ops() {
                op.apply(&mut vrf);
            }
            let got = vrf.read_lane_values(2);
            for (i, &lane) in got.iter().enumerate().take(4) {
                assert_eq!(lane, 3, "{family:?} enabled lane {i}");
            }
            for (i, &lane) in got.iter().enumerate().take(8).skip(4) {
                assert_eq!(lane, 9, "{family:?} disabled lane {i}");
            }
        }
    }

    #[test]
    fn recipes_use_only_family_ops() {
        for family in FAMILIES {
            for op in BinaryOp::ALL {
                let instr = Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
                let recipe = build_recipe(ctx(family), &instr).unwrap();
                for uop in recipe.ops() {
                    assert!(
                        family.supported_kinds().contains(&uop.kind()),
                        "{family:?} {op:?} emitted {:?}",
                        uop.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn recipe_sizes_reflect_bit_serial_costs() {
        let c = ctx(LogicFamily::Nor);
        let add = build_recipe(
            c,
            &Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
        )
        .unwrap();
        // 64 x (9 NOR + 1 copy) + 1 set = 641.
        assert_eq!(add.len(), 641);
        let and = build_recipe(
            c,
            &Instruction::Binary { op: BinaryOp::And, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
        )
        .unwrap();
        assert_eq!(and.len(), 3 * 64);
        let mul = build_recipe(
            c,
            &Instruction::Binary { op: BinaryOp::Mul, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
        )
        .unwrap();
        assert!(mul.len() > 10_000, "MUL expands into thousands of micro-ops: {}", mul.len());
        let div = build_recipe(
            c,
            &Instruction::Binary { op: BinaryOp::QDiv, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
        )
        .unwrap();
        assert!(div.len() > 12_000, "QDIV is the largest recipe: {}", div.len());
        assert!(add.scratch_high_water() <= 16);
    }

    #[test]
    fn control_instructions_have_no_recipe() {
        let c = ctx(LogicFamily::Nor);
        assert!(build_recipe(c, &Instruction::Nop).is_none());
        assert!(build_recipe(c, &Instruction::Unmask).is_none());
        assert!(build_recipe(c, &Instruction::ComputeDone).is_none());
    }

    #[test]
    #[should_panic(expected = "must not alias")]
    fn mul_aliasing_rejected() {
        build_recipe(
            ctx(LogicFamily::Nor),
            &Instruction::Binary { op: BinaryOp::Mul, rs: RegId(2), rt: RegId(1), rd: RegId(2) },
        );
    }

    #[test]
    #[should_panic(expected = "temp registers")]
    fn division_colliding_with_temps_rejected() {
        build_recipe(
            ctx(LogicFamily::Nor),
            &Instruction::Binary { op: BinaryOp::QDiv, rs: RegId(14), rt: RegId(1), rd: RegId(2) },
        );
    }

    #[test]
    fn word_recipes_are_single_ops_with_no_scratch() {
        let c = ctx(LogicFamily::WordSerial);
        for op in BinaryOp::ALL {
            let instr = Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
            let recipe = build_recipe(c, &instr).unwrap();
            assert_eq!(recipe.len(), 1, "{op:?}");
            assert_eq!(recipe.scratch_high_water(), 0);
        }
        assert!(build_recipe(c, &Instruction::Nop).is_none());
    }

    #[test]
    #[should_panic(expected = "must not alias")]
    fn word_mul_aliasing_rejected() {
        build_recipe(
            ctx(LogicFamily::WordSerial),
            &Instruction::Binary { op: BinaryOp::Mul, rs: RegId(2), rt: RegId(1), rd: RegId(2) },
        );
    }

    #[test]
    fn histogram_counts_ops() {
        let recipe = build_recipe(
            ctx(LogicFamily::Maj),
            &Instruction::Binary { op: BinaryOp::And, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
        )
        .unwrap();
        let h = recipe.histogram();
        assert_eq!(h[&MicroOpKind::Tra], 64);
        assert_eq!(h.values().sum::<usize>(), recipe.len());
    }
}
