//! # pum-backend — bitwise processing-using-memory datapath models
//!
//! The substrates underneath the MPU front end (paper §II, §IV): bit-plane
//! vector register files, per-technology micro-operations, instruction →
//! micro-op recipe synthesis, and calibrated models of the three evaluated
//! datapaths (ReRAM RACER, DRAM MIMDRAM, SRAM Duality Cache) plus two
//! further shipped substrates — pLUTo DRAM LUT-in-memory queries and an
//! UPMEM-style word-serial DPU — alongside the power-density (Fig. 5),
//! front-end area/power (Fig. 11), and Table I feature-matrix models.
//!
//! The functional model is *gate-exact*: executing a recipe's micro-ops on
//! a [`BitPlaneVrf`] performs the actual column-parallel boolean physics of
//! the memory (NOR voltage division, triple-row-activation majority votes,
//! bitline logic), and property tests confirm the results match the ISA's
//! architectural semantics for all three logic families.
//!
//! # Execution engine
//!
//! Micro-op execution is **allocation-free and in place**: plane operands
//! resolve to offsets into one flat storage buffer and output words are
//! computed directly over it, with the lane mask fused into the same word
//! loop — no temporaries, no separate commit pass. For steady-state
//! simulation, a [`Recipe`] can additionally be [`Recipe::compile`]d into a
//! [`CompiledRecipe`] whose plane addresses are pre-resolved per VRF
//! geometry; the simulator builds these at synthesis time and caches them
//! through its recipe cache/pool. Host data loads
//! ([`BitPlaneVrf::write_lane_values`] / `read_lane_values`) go through a
//! word-level 64×64 bit-matrix transpose rather than per-bit shifts.
//!
//! All three paths — interpreted, compiled, and the pre-optimization
//! reference semantics — are **byte-identical**: same plane contents after
//! every micro-op, same simulator `Stats`. Differential property tests
//! (`tests/inplace_differential.rs`) pit the in-place engine against a
//! naive allocating reference across logic families, mask patterns, and
//! aliased operands to enforce this determinism guarantee.
//!
//! # Example: run an ADD through RACER's NOR-only datapath
//!
//! ```
//! use mpu_isa::{BinaryOp, Instruction, RegId};
//! use pum_backend::{BitPlaneVrf, DatapathModel};
//!
//! let racer = DatapathModel::racer();
//! let add = Instruction::Binary {
//!     op: BinaryOp::Add,
//!     rs: RegId(0),
//!     rt: RegId(1),
//!     rd: RegId(2),
//! };
//! let recipe = racer.recipe(&add).expect("ADD is a compute instruction");
//!
//! let mut vrf = BitPlaneVrf::new(64, 16);
//! vrf.write_lane_values(0, &[7; 64]);
//! vrf.write_lane_values(1, &[35; 64]);
//! for uop in recipe.ops() {
//!     uop.apply(&mut vrf); // every micro-op is a NOR / copy / preset
//! }
//! assert_eq!(vrf.read_lane_values(2)[0], 42);
//!
//! // And the model prices it: issue cycles + energy across the lanes.
//! let cycles = racer.recipe_cycles(&recipe);
//! let picojoules = racer.recipe_energy_pj(&recipe, 64);
//! assert!(cycles > 0 && picojoules > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod area;
mod bitplane;
mod compiled;
mod datapath;
pub mod fault;
mod features;
mod logic;
mod microop;
pub mod opt;
pub mod power;
pub mod recipe;
mod trace_tier;

pub use bitplane::{BitPlaneVrf, Plane, SCRATCH_PLANES};
pub use compiled::CompiledRecipe;
pub use datapath::{DatapathBuilder, DatapathKind, DatapathModel, Geometry};
pub use fault::{FaultModel, FaultPrng};
pub use features::{supports, Feature, Platform};
pub use logic::{GateBuilder, LogicFamily};
pub use microop::{lut3_word, word_kind, MicroOp, MicroOpKind};
pub use opt::{optimize, OptConfig, OptRule, OptStats, RuleStats};
pub use recipe::{build_recipe, semantics, Recipe, RecipeCtx};
pub use trace_tier::{fuse_ensemble, fuse_ensemble_with, EnsembleStep, EnsembleTrace};

/// Bits per vector data element (mirrors [`mpu_isa::DATA_BITS`]).
pub const DATA_BITS: u32 = mpu_isa::DATA_BITS;

/// The MPU clock frequency (paper §VII: 1 GHz synthesized control path).
pub const CLOCK_HZ: f64 = 1.0e9;
