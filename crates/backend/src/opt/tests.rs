use super::{optimize, OptConfig, OptRule, OptStats};
use crate::bitplane::{BitPlaneVrf, Plane};
use crate::datapath::DatapathModel;
use crate::microop::{MicroOp, MicroOpKind};
use crate::recipe::{build_recipe, Recipe};
use mpu_isa::{BinaryOp, CompareOp, Instruction, RegId, UnaryOp};

fn binary(op: BinaryOp) -> Instruction {
    Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(2) }
}

fn smoke_instrs() -> Vec<Instruction> {
    vec![
        binary(BinaryOp::Add),
        binary(BinaryOp::Sub),
        binary(BinaryOp::Mul),
        Instruction::Unary { op: UnaryOp::Inc, rs: RegId(0), rd: RegId(2) },
        Instruction::Unary { op: UnaryOp::Popc, rs: RegId(0), rd: RegId(2) },
        Instruction::Compare { op: CompareOp::Lt, rs: RegId(0), rt: RegId(1) },
        Instruction::Cas { rs: RegId(0), rt: RegId(1) },
    ]
}

fn seeded_vrf(mask: u64) -> BitPlaneVrf {
    let mut vrf = BitPlaneVrf::new(64, 16);
    for reg in 0..4u8 {
        let vals: Vec<u64> = (0..64u64)
            .map(|l| {
                (l ^ (u64::from(reg) << 7))
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left(reg as u32 + 1)
            })
            .collect();
        vrf.write_lane_values(reg, &vals);
    }
    vrf.set_plane_words(Plane::Mask, &[mask]);
    vrf
}

fn run_recipe(recipe: &Recipe, vrf: &mut BitPlaneVrf) {
    for op in recipe.ops() {
        op.apply(vrf);
    }
}

/// Registers + conditional plane: everything architecturally observable.
fn arch_state(vrf: &BitPlaneVrf) -> (Vec<Vec<u64>>, Vec<u64>) {
    let regs = (0..16).map(|r| vrf.read_lane_values(r)).collect();
    (regs, vrf.plane_words(Plane::Cond).to_vec())
}

fn all_backends() -> [DatapathModel; 5] {
    [
        DatapathModel::racer(),
        DatapathModel::mimdram(),
        DatapathModel::duality_cache(),
        DatapathModel::pluto(),
        DatapathModel::dpu(),
    ]
}

#[test]
fn optimized_matches_template_across_backends_and_masks() {
    for dp in all_backends() {
        for instr in smoke_instrs() {
            for mask in [u64::MAX, 0x0f0f_0f0f_0f0f_0f0f, 0x8000_0000_0000_0001] {
                let template = build_recipe(dp.recipe_ctx(), &instr).expect("compute instr");
                let (optimized, stats) = dp.recipe_with_stats(&instr).expect("compute instr");
                assert!(
                    optimized.len() <= template.len(),
                    "{} on {}: optimizer grew the recipe",
                    instr.mnemonic(),
                    dp.name()
                );
                assert_eq!(
                    u64::from(optimized.saved_uops()),
                    stats.saved_uops(),
                    "saved_uops bookkeeping out of sync"
                );
                let mut a = seeded_vrf(mask);
                let mut b = seeded_vrf(mask);
                run_recipe(&template, &mut a);
                run_recipe(&optimized, &mut b);
                assert_eq!(
                    arch_state(&a),
                    arch_state(&b),
                    "{} on {} mask {mask:#x}: optimized recipe diverged",
                    instr.mnemonic(),
                    dp.name()
                );
            }
        }
    }
}

#[test]
fn racer_add_saves_at_least_ten_percent() {
    let dp = DatapathModel::racer();
    let add = binary(BinaryOp::Add);
    let template = build_recipe(dp.recipe_ctx(), &add).expect("ADD");
    let optimized = dp.recipe(&add).expect("ADD");
    assert!(
        optimized.len() * 10 <= template.len() * 9,
        "expected >= 10% uop reduction on RACER ADD, got {} -> {}",
        template.len(),
        optimized.len()
    );
    assert_eq!(optimized.saved_uops() as usize, template.len() - optimized.len());
}

#[test]
fn disabled_optimizer_is_identity() {
    let dp = DatapathModel::racer().with_opt_config(OptConfig::disabled());
    let add = binary(BinaryOp::Add);
    let template = build_recipe(dp.recipe_ctx(), &add).expect("ADD");
    let recipe = dp.recipe(&add).expect("ADD");
    assert_eq!(recipe.ops(), template.ops());
    assert_eq!(recipe.saved_uops(), 0);
}

#[test]
fn optimized_kinds_stay_inside_the_family() {
    for dp in all_backends() {
        for instr in smoke_instrs() {
            let recipe = dp.recipe(&instr).expect("compute instr");
            for op in recipe.ops() {
                assert!(
                    dp.family().supports(op.kind()),
                    "{} emitted {} for {}",
                    dp.name(),
                    op.kind(),
                    instr.mnemonic()
                );
            }
        }
    }
}

#[test]
fn rule_bitmask_gates_every_family() {
    let dp = DatapathModel::racer();
    let add = binary(BinaryOp::Add);
    let (_, all_stats) = dp.recipe_with_stats(&add).expect("ADD");
    assert!(all_stats.rule(OptRule::CopyProp).fires > 0, "NOR ADD must exercise copy-prop");
    assert!(all_stats.saved_uops() > 0);

    let only_dead = dp.with_opt_config(OptConfig::with_rules(OptRule::DeadPlane.bit()));
    let (_, stats) = only_dead.recipe_with_stats(&add).expect("ADD");
    for rule in
        [OptRule::CopyProp, OptRule::ConstFold, OptRule::ChainCollapse, OptRule::MaskStrength]
    {
        assert_eq!(stats.rule(rule).fires, 0, "{} fired while masked off", rule.name());
    }
}

#[test]
fn canary_config_produces_wrong_lanes() {
    let dp = DatapathModel::racer();
    let canary = dp.clone().with_opt_config(OptConfig { canary: true, ..OptConfig::default() });
    let add = binary(BinaryOp::Add);
    let good = dp.recipe(&add).expect("ADD");
    let bad = canary.recipe(&add).expect("ADD");
    let mut a = seeded_vrf(u64::MAX);
    let mut b = seeded_vrf(u64::MAX);
    run_recipe(&good, &mut a);
    run_recipe(&bad, &mut b);
    assert_ne!(
        a.read_lane_values(2),
        b.read_lane_values(2),
        "the injected unsound rewrite must be lane-visible"
    );
}

#[test]
fn memo_key_hash_distinguishes_configs() {
    let on = OptConfig::default();
    let off = OptConfig::disabled();
    let partial = OptConfig::with_rules(OptRule::DeadPlane.bit());
    let canary = OptConfig { canary: true, ..OptConfig::default() };
    let hashes = [on.key_hash(), off.key_hash(), partial.key_hash(), canary.key_hash()];
    for i in 0..hashes.len() {
        for j in i + 1..hashes.len() {
            assert_ne!(hashes[i], hashes[j], "configs {i} and {j} collide");
        }
    }
}

// --- synthetic-sequence rule tests (uniform costs: removals only) ---

fn flat_cost(_: MicroOpKind) -> Option<(u64, f64)> {
    Some((2, 0.02))
}

fn rb(reg: u8, bit: u8) -> Plane {
    Plane::Reg { reg, bit }
}

#[test]
fn double_negation_collapses_to_copy_prop() {
    // !!x recomputed through two NORs, then copied out: the whole chain
    // folds to a single copy of the original plane.
    let ops = vec![
        MicroOp::Nor { a: rb(0, 0), b: rb(0, 0), out: Plane::Scratch(0) },
        MicroOp::Nor { a: Plane::Scratch(0), b: Plane::Scratch(0), out: Plane::Scratch(1) },
        MicroOp::Copy { a: Plane::Scratch(1), out: rb(1, 0) },
    ];
    let recipe = Recipe::from_ops(ops);
    let (opt, stats) = optimize(&recipe, crate::LogicFamily::Nor, OptConfig::default(), &flat_cost);
    assert_eq!(opt.ops(), &[MicroOp::Copy { a: rb(0, 0), out: rb(1, 0) }]);
    assert_eq!(opt.saved_uops(), 2);
    assert!(
        stats.rule(OptRule::ChainCollapse).removed_uops
            + stats.rule(OptRule::DeadPlane).removed_uops
            == 2
    );
}

#[test]
fn dead_masked_store_attributed_to_mask_strength() {
    // The first masked store's enabled lanes are overwritten before any
    // read; only the mask-disabled lanes survive — which deleting the
    // store preserves exactly.
    let ops = vec![
        MicroOp::Set { out: rb(0, 0), value: true },
        MicroOp::Set { out: rb(0, 0), value: false },
    ];
    let recipe = Recipe::from_ops(ops);
    let (opt, stats) = optimize(&recipe, crate::LogicFamily::Nor, OptConfig::default(), &flat_cost);
    assert_eq!(opt.ops(), &[MicroOp::Set { out: rb(0, 0), value: false }]);
    assert_eq!(stats.rule(OptRule::MaskStrength).removed_uops, 1);
}

#[test]
fn repeated_masked_store_is_a_no_op() {
    // merge(merge(old, x), x) = merge(old, x): the second copy is removed
    // even though the destination is masked.
    let ops = vec![
        MicroOp::Copy { a: rb(0, 0), out: rb(1, 0) },
        MicroOp::Copy { a: rb(0, 0), out: rb(1, 0) },
    ];
    let recipe = Recipe::from_ops(ops);
    let (opt, stats) = optimize(&recipe, crate::LogicFamily::Nor, OptConfig::default(), &flat_cost);
    assert_eq!(opt.len(), 1);
    assert_eq!(stats.rule(OptRule::MaskStrength).removed_uops, 1);
}

#[test]
fn constant_result_strength_reduces_to_set_when_cheaper() {
    let cheap_set =
        |kind: MicroOpKind| Some(if kind == MicroOpKind::Set { (1, 0.01) } else { (2, 0.02) });
    // NOR of a plane holding 0 with itself = constant 1.
    let ops = vec![
        MicroOp::Set { out: Plane::Scratch(0), value: false },
        MicroOp::Nor { a: Plane::Scratch(0), b: Plane::Scratch(0), out: rb(0, 0) },
    ];
    let recipe = Recipe::from_ops(ops);
    let (opt, stats) = optimize(&recipe, crate::LogicFamily::Nor, OptConfig::default(), &cheap_set);
    assert_eq!(opt.ops(), &[MicroOp::Set { out: rb(0, 0), value: true }]);
    assert!(stats.rule(OptRule::ConstFold).fires > 0);
}

#[test]
fn compute_into_scratch_then_copy_coalesces() {
    let ops = vec![
        MicroOp::Nor { a: rb(0, 0), b: rb(1, 0), out: Plane::Scratch(0) },
        MicroOp::Copy { a: Plane::Scratch(0), out: rb(2, 0) },
    ];
    let recipe = Recipe::from_ops(ops);
    let (opt, stats) = optimize(&recipe, crate::LogicFamily::Nor, OptConfig::default(), &flat_cost);
    assert_eq!(opt.ops(), &[MicroOp::Nor { a: rb(0, 0), b: rb(1, 0), out: rb(2, 0) }]);
    assert_eq!(stats.rule(OptRule::CopyProp).removed_uops, 1);
}

#[test]
fn mask_plane_writes_bail_to_identity() {
    // `Recipe::from_ops` sequences may write the mask plane; the merge
    // model would be unsound there, so the pass must pass them through.
    let ops = vec![
        MicroOp::Set { out: Plane::Mask, value: true },
        MicroOp::Set { out: Plane::Scratch(0), value: true },
    ];
    let recipe = Recipe::from_ops(ops.clone());
    let (opt, stats) = optimize(&recipe, crate::LogicFamily::Nor, OptConfig::default(), &flat_cost);
    assert_eq!(opt.ops(), ops.as_slice());
    assert_eq!(stats, OptStats::default());
}

#[test]
fn family_soundness_declarations_gate_rules() {
    for rule in OptRule::ALL {
        assert!(rule.sound_for(crate::LogicFamily::Nor));
        assert!(rule.sound_for(crate::LogicFamily::Maj));
        assert!(rule.sound_for(crate::LogicFamily::Bitline));
        assert_eq!(
            rule.sound_for(crate::LogicFamily::Lut),
            rule != OptRule::ChainCollapse,
            "{} on LUT",
            rule.name()
        );
        assert!(!rule.sound_for(crate::LogicFamily::WordSerial), "{} on DPU", rule.name());
    }
}

#[test]
fn word_recipes_pass_through_unmodified() {
    let dp = DatapathModel::dpu();
    for instr in smoke_instrs() {
        let template = build_recipe(dp.recipe_ctx(), &instr).expect("compute instr");
        let (optimized, stats) = dp.recipe_with_stats(&instr).expect("compute instr");
        assert_eq!(optimized.ops(), template.ops(), "{}", instr.mnemonic());
        assert_eq!(optimized.saved_uops(), 0);
        assert_eq!(stats, OptStats::default());
    }
}

#[test]
fn lut_recipes_optimize_without_chain_collapse() {
    let dp = DatapathModel::pluto();
    let add = binary(BinaryOp::Add);
    let template = build_recipe(dp.recipe_ctx(), &add).expect("ADD");
    let (optimized, stats) = dp.recipe_with_stats(&add).expect("ADD");
    assert!(optimized.len() <= template.len());
    assert_eq!(stats.rule(OptRule::ChainCollapse).fires, 0, "withheld rule must not fire");
}

#[test]
fn merged_stats_accumulate() {
    let dp = DatapathModel::racer();
    let (_, a) = dp.recipe_with_stats(&binary(BinaryOp::Add)).expect("ADD");
    let (_, b) = dp.recipe_with_stats(&binary(BinaryOp::Sub)).expect("SUB");
    let mut merged = a;
    merged.merge(&b);
    assert_eq!(merged.saved_uops(), a.saved_uops() + b.saved_uops());
    assert_eq!(merged.total_fires(), a.total_fires() + b.total_fires());
}
