//! Recipe optimization: a rule-driven micro-op rewrite pass with a
//! per-technology cost model (DESIGN.md §10).
//!
//! Recipe synthesis ([`crate::build_recipe`]) emits fixed per-technology
//! templates: every gate lowering allocates scratch planes, re-derives
//! inverses, and copies staged results exactly the way the textbook netlist
//! does, so kernels pay for dead planes, redundant copies, and uncollapsed
//! NOR/MAJ chains on every thermal wave. This module rewrites a synthesized
//! [`Recipe`] once, at synthesis time — before compilation
//! ([`crate::CompiledRecipe`]) and fusion ([`crate::EnsembleTrace`]), and
//! cached through the simulator's recipe cache/pool — so the cost is paid
//! per template miss, not per wave, and all three execution tiers run the
//! optimized form.
//!
//! # Rule families
//!
//! Five declarative rule families share one dataflow analysis (a forward
//! copy/constant value lattice plus a backward per-plane liveness pass):
//!
//! * [`OptRule::DeadPlane`] — dead-plane elimination: ops whose destination
//!   planes are all dead (never observed architecturally, never read before
//!   being overwritten) are deleted.
//! * [`OptRule::CopyProp`] — copy propagation and coalescing: reads through
//!   `Copy` chains are redirected to the canonical source plane, and a
//!   compute-into-scratch-then-`Copy`-out pair is coalesced into a single
//!   compute-into-destination op when the scratch value is dead afterwards.
//! * [`OptRule::ConstFold`] — constant-plane folding: operands whose value
//!   is statically known are rewired to the preset constant planes
//!   ([`Plane::Const`]), and ops that compute a constant are strength-reduced
//!   to `Set` when the substrate prices `Set` below the original kind.
//! * [`OptRule::ChainCollapse`] — NOR/MAJ chain collapsing: double
//!   negations, absorbing inputs (`x NOR x`, `Maj(x, x, y)`,
//!   `Maj(x, !x, y)`, …), and recomputed subexpressions are collapsed by
//!   hash-consed value numbering; a recomputation whose value already lives
//!   in a plane is bypassed (consumers read the existing plane) and the
//!   producer then falls to the liveness pass.
//! * [`OptRule::MaskStrength`] — mask-aware store strength reduction: a
//!   masked store whose merged result provably equals the destination's
//!   current contents is a no-op and is deleted, as is a masked store whose
//!   enabled lanes are never observed (only the mask-disabled lanes flow
//!   onward — those are the old contents, which survive deletion verbatim).
//!
//! # Cost-model gating
//!
//! Rules *remove* ops or *rewrite operands* freely (both strictly reduce
//! work), but any rewrite that changes an op's kind (e.g. `Nor` → `Set`,
//! `Xor` → `Copy`) consults the substrate's calibrated per-kind cycle and
//! energy tables ([`crate::DatapathModel`]) and only fires when the new kind
//! is no worse on both axes and strictly better on at least one. This is
//! why the same recipe optimizes differently per technology: RACER prices a
//! `Copy` above a `Nor` (0.025 pJ vs 0.020 pJ per lane), so NOR-chain
//! results are bypassed by operand redirection instead of materialized
//! copies, while Duality Cache prices `Copy` below `Xor` and accepts the
//! same rewrite.
//!
//! Every rule also declares which [`LogicFamily`]s it is sound for
//! ([`OptRule::sound_for`]); the pass consults the declaration before
//! firing, so a family-restricted rule cannot leak onto a substrate whose
//! micro-op semantics it was not proven against.
//!
//! # Memo-key semantics
//!
//! [`OptConfig`] is embedded in [`crate::RecipeCtx`], which keys every
//! recipe memo (per-MPU cache, shared pool, compiled and trace tiers), so
//! toggling optimization or individual rules can never serve a stale
//! recipe optimized under a different configuration.

mod pass;

use crate::logic::LogicFamily;
use crate::microop::MicroOpKind;
use crate::recipe::Recipe;
use serde::{Deserialize, Serialize};

/// One rewrite-rule family of the recipe optimizer (module docs give the
/// catalog; DESIGN.md §10 gives the soundness argument per family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptRule {
    /// Dead-plane elimination.
    DeadPlane,
    /// Copy propagation and copy coalescing.
    CopyProp,
    /// Constant-plane folding through the preset [`crate::Plane::Const`]
    /// planes, plus `Set` strength reduction of constant results.
    ConstFold,
    /// NOR/MAJ chain collapsing (double negation, absorbing inputs,
    /// recomputed subexpressions) via hash-consed value numbering.
    ChainCollapse,
    /// Mask-aware store strength reduction (no-op masked stores and masked
    /// stores whose enabled lanes are dead).
    MaskStrength,
}

impl OptRule {
    /// All rule families, in attribution-table order.
    pub const ALL: [OptRule; 5] = [
        OptRule::DeadPlane,
        OptRule::CopyProp,
        OptRule::ConstFold,
        OptRule::ChainCollapse,
        OptRule::MaskStrength,
    ];

    /// Bitmask enabling every rule (see [`OptConfig::rules`]).
    pub const ALL_MASK: u32 = (1 << Self::ALL.len()) - 1;

    /// This rule's position in [`OptRule::ALL`].
    pub const fn index(self) -> usize {
        match self {
            OptRule::DeadPlane => 0,
            OptRule::CopyProp => 1,
            OptRule::ConstFold => 2,
            OptRule::ChainCollapse => 3,
            OptRule::MaskStrength => 4,
        }
    }

    /// The rule's bit in [`OptConfig::rules`].
    pub const fn bit(self) -> u32 {
        1 << self.index()
    }

    /// Short stable name for attribution tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            OptRule::DeadPlane => "dead-plane",
            OptRule::CopyProp => "copy-prop",
            OptRule::ConstFold => "const-fold",
            OptRule::ChainCollapse => "chain-collapse",
            OptRule::MaskStrength => "mask-strength",
        }
    }

    /// Logic families this rule is sound for.
    ///
    /// All five shipped rules are proven against the shared micro-op
    /// semantics the bit-plane families lower onto (`MicroOp::apply` is
    /// the single source of truth for NOR, MAJ, and bitline execution
    /// alike), so each is sound for those families — DESIGN.md §10 records
    /// the per-family argument. Two restrictions apply:
    ///
    /// * [`LogicFamily::Lut`] withholds [`OptRule::ChainCollapse`]: the
    ///   value model expands LUT tables into minterm DAGs, and the
    ///   chain-collapse equivalences have not been proven against that
    ///   expansion, so the rule is conservatively gated off.
    /// * [`LogicFamily::WordSerial`] supports no rules: word recipes
    ///   execute whole instructions outside the bit-plane value lattice
    ///   and pass through the optimizer unmodified.
    ///
    /// The pass consults this declaration before firing a rule, so a
    /// family-restricted rewrite cannot leak onto a substrate it was not
    /// proven against.
    pub fn sound_for(self, family: LogicFamily) -> bool {
        match family {
            LogicFamily::Nor | LogicFamily::Maj | LogicFamily::Bitline => true,
            LogicFamily::Lut => !matches!(self, OptRule::ChainCollapse),
            LogicFamily::WordSerial => false,
        }
    }
}

/// Recipe-optimizer configuration.
///
/// Carried inside [`crate::RecipeCtx`] and therefore part of every recipe
/// memo key: flipping any field invalidates cached recipes, compiled
/// recipes, and ensemble traces built under the old configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptConfig {
    /// Master switch. When `false` the optimizer is the identity transform
    /// and synthesized recipes execute verbatim.
    #[serde(default)]
    pub enabled: bool,
    /// Bitmask of enabled rule families (bit positions from
    /// [`OptRule::bit`]). Rules outside the mask never fire, including
    /// the removals they would otherwise attribute.
    #[serde(default)]
    pub rules: u32,
    /// Test-only injected **unsound** rewrite: flips the polarity of the
    /// first `Set` micro-op in the recipe before optimization, producing a
    /// lane-visible wrong result that the conformance canary must catch
    /// and shrink (mirrors the MAJ-carry corruption canary). Never enable
    /// outside tests.
    #[serde(default)]
    pub canary: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig { enabled: true, rules: OptRule::ALL_MASK, canary: false }
    }
}

impl OptConfig {
    /// Configuration with the optimizer switched off entirely.
    pub fn disabled() -> Self {
        OptConfig { enabled: false, ..OptConfig::default() }
    }

    /// Default configuration restricted to the given rule bitmask.
    pub fn with_rules(rules: u32) -> Self {
        OptConfig { rules: rules & OptRule::ALL_MASK, ..OptConfig::default() }
    }

    /// Whether `rule` may fire under this configuration.
    pub fn rule_enabled(self, rule: OptRule) -> bool {
        self.enabled && self.rules & rule.bit() != 0
    }

    /// Deterministic hash of the configuration (enabled flag + rule-set +
    /// canary), suitable for memo-key stamping and report headers.
    pub fn key_hash(self) -> u64 {
        (u64::from(self.enabled) << 33) | (u64::from(self.canary) << 32) | u64::from(self.rules)
    }
}

/// Fire/removal counters for one rule family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleStats {
    /// Times the rule rewrote or removed a micro-op.
    pub fires: u64,
    /// Micro-ops deleted under this rule's attribution.
    pub removed_uops: u64,
}

impl RuleStats {
    fn merge(&mut self, other: RuleStats) {
        self.fires += other.fires;
        self.removed_uops += other.removed_uops;
    }
}

/// Per-rule attribution counters accumulated over one or more optimizer
/// runs. Surfaced through the simulator's `PoolStats` and the attribution
/// profiler so every rule's payoff is measured, not asserted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptStats {
    /// Counters for [`OptRule::DeadPlane`].
    pub dead_plane: RuleStats,
    /// Counters for [`OptRule::CopyProp`].
    pub copy_prop: RuleStats,
    /// Counters for [`OptRule::ConstFold`].
    pub const_fold: RuleStats,
    /// Counters for [`OptRule::ChainCollapse`].
    pub chain_collapse: RuleStats,
    /// Counters for [`OptRule::MaskStrength`].
    pub mask_strength: RuleStats,
}

impl OptStats {
    /// Counters for one rule family.
    pub fn rule(&self, rule: OptRule) -> RuleStats {
        match rule {
            OptRule::DeadPlane => self.dead_plane,
            OptRule::CopyProp => self.copy_prop,
            OptRule::ConstFold => self.const_fold,
            OptRule::ChainCollapse => self.chain_collapse,
            OptRule::MaskStrength => self.mask_strength,
        }
    }

    pub(crate) fn rule_mut(&mut self, rule: OptRule) -> &mut RuleStats {
        match rule {
            OptRule::DeadPlane => &mut self.dead_plane,
            OptRule::CopyProp => &mut self.copy_prop,
            OptRule::ConstFold => &mut self.const_fold,
            OptRule::ChainCollapse => &mut self.chain_collapse,
            OptRule::MaskStrength => &mut self.mask_strength,
        }
    }

    /// Total micro-ops removed across all rules.
    pub fn saved_uops(&self) -> u64 {
        OptRule::ALL.iter().map(|&r| self.rule(r).removed_uops).sum()
    }

    /// Total rule firings (rewrites + removals) across all rules.
    pub fn total_fires(&self) -> u64 {
        OptRule::ALL.iter().map(|&r| self.rule(r).fires).sum()
    }

    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &OptStats) {
        for &rule in &OptRule::ALL {
            let theirs = other.rule(rule);
            self.rule_mut(rule).merge(theirs);
        }
    }
}

/// Optimizes a synthesized recipe for one substrate.
///
/// `cost` prices a micro-op kind as `(issue cycles, energy pJ/lane)` and
/// returns `None` for kinds the substrate cannot issue; kind-changing
/// rewrites only fire when the replacement is supported by `family`,
/// priced by `cost`, no worse on both axes, and strictly better on one.
/// [`crate::DatapathModel::recipe`] wires its calibrated tables in here —
/// call that (or [`crate::DatapathModel::recipe_with_stats`]) rather than
/// this function unless you are building a custom harness.
///
/// Returns the optimized recipe (with [`Recipe::saved_uops`] recording the
/// reduction) and the per-rule attribution counters. With
/// [`OptConfig::enabled`] false this is the identity transform. Sequences
/// hand-built via [`Recipe::from_ops`] that write the mask plane or a
/// constant plane are returned unmodified: the merge model assumes a
/// wave-constant mask, and constant-plane writes trap at execution time.
pub fn optimize(
    recipe: &Recipe,
    family: LogicFamily,
    config: OptConfig,
    cost: &dyn Fn(MicroOpKind) -> Option<(u64, f64)>,
) -> (Recipe, OptStats) {
    pass::run(recipe, family, config, cost)
}

#[cfg(test)]
mod tests;
